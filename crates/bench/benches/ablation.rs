//! Ablation: greedy selectivity-based join ordering vs. syntactic order.
//!
//! `DESIGN.md` calls out the planner's join ordering as a design choice;
//! this bench quantifies it. The facet pattern is written with its most
//! selective triple last, so syntactic order pays the worst-case
//! intermediate-result blowup while the ordered plan starts from the
//! filtered predicate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sofos_sparql::Evaluator;
use sofos_workload::dbpedia;

fn bench_join_ordering(c: &mut Criterion) {
    let generated = dbpedia::generate(&dbpedia::Config::scaled(3));
    let ds = &generated.dataset;
    let ns = dbpedia::NS;
    // Most selective pattern (language equality) last.
    let query = format!(
        "SELECT ?c (SUM(?p) AS ?total) WHERE {{ \
           ?o <{ns}country> ?c . \
           ?c <{ns}partOf> ?r . \
           ?o <{ns}year> ?y . \
           ?o <{ns}population> ?p . \
           ?o <{ns}language> \"Language1\" }} GROUP BY ?c"
    );

    let ordered = Evaluator::new(ds);
    let syntactic = Evaluator::new(ds).without_join_ordering();
    // Same answers either way — the ablation is performance-only.
    assert_eq!(
        ordered.evaluate_str(&query).unwrap().sorted(),
        syntactic.evaluate_str(&query).unwrap().sorted()
    );

    let mut group = c.benchmark_group("ablation/join_ordering");
    group.sample_size(30);
    group.bench_function("greedy_selectivity", |b| {
        b.iter(|| black_box(ordered.evaluate_str(&query).unwrap().len()));
    });
    group.bench_function("syntactic_order", |b| {
        b.iter(|| black_box(syntactic.evaluate_str(&query).unwrap().len()));
    });
    group.finish();
}

criterion_group!(benches, bench_join_ordering);
criterion_main!(benches);
