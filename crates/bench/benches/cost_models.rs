//! E1 companion bench: per-cost-model offline phase (selection +
//! materialization) and the online phase with the resulting views.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sofos_core::{run_offline, run_online, EngineConfig, SizedLattice};
use sofos_cost::CostModelKind;
use sofos_select::WorkloadProfile;
use sofos_workload::{dbpedia, generate_workload, WorkloadConfig};

fn bench_offline(c: &mut Criterion) {
    let generated = dbpedia::generate(&dbpedia::Config::default());
    let facet = generated.default_facet().clone();
    let sized = SizedLattice::compute(&generated.dataset, &facet).unwrap();
    let workload = generate_workload(
        &generated.dataset,
        &facet,
        &WorkloadConfig {
            num_queries: 20,
            ..WorkloadConfig::default()
        },
    );
    let profile = WorkloadProfile::from_masks(workload.iter().map(|q| q.required));
    let mut config = EngineConfig::default();
    config.train.epochs = 40;

    let mut group = c.benchmark_group("e1/offline");
    group.sample_size(20);
    for kind in [
        CostModelKind::Random,
        CostModelKind::Triples,
        CostModelKind::AggValues,
        CostModelKind::Nodes,
        CostModelKind::Learned,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| {
                let mut expanded = generated.dataset.clone();
                let outcome = run_offline(&mut expanded, &sized, &profile, kind, &config).unwrap();
                black_box(outcome.materialized.len())
            });
        });
    }
    group.finish();
}

fn bench_online(c: &mut Criterion) {
    let generated = dbpedia::generate(&dbpedia::Config::default());
    let facet = generated.default_facet().clone();
    let sized = SizedLattice::compute(&generated.dataset, &facet).unwrap();
    let workload = generate_workload(
        &generated.dataset,
        &facet,
        &WorkloadConfig {
            num_queries: 20,
            ..WorkloadConfig::default()
        },
    );
    let profile = WorkloadProfile::from_masks(workload.iter().map(|q| q.required));
    let config = EngineConfig::default();

    // Expand once with the agg-values model.
    let mut expanded = generated.dataset.clone();
    let offline = run_offline(
        &mut expanded,
        &sized,
        &profile,
        CostModelKind::AggValues,
        &config,
    )
    .unwrap();
    let catalog = offline.view_catalog();

    let mut group = c.benchmark_group("e1/online");
    group.sample_size(20);
    group.bench_function("with_views", |b| {
        b.iter(|| {
            black_box(
                run_online(&expanded, &facet, &catalog, &workload, 1, false)
                    .unwrap()
                    .summary
                    .total_us,
            )
        });
    });
    group.bench_function("no_views", |b| {
        b.iter(|| {
            black_box(
                run_online(&generated.dataset, &facet, &[], &workload, 1, false)
                    .unwrap()
                    .summary
                    .total_us,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_offline, bench_online);
criterion_main!(benches);
