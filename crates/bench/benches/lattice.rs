//! E2 companion bench: lattice sizing and full materialization as the
//! dimension count grows (2^d views).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sofos_core::SizedLattice;
use sofos_cube::Lattice;
use sofos_materialize::materialize_view;
use sofos_workload::synthetic;

fn bench_sizing(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2/size_lattice");
    group.sample_size(10);
    for dims in [2usize, 4, 6] {
        let generated = synthetic::generate(&synthetic::Config::with_dims(dims, 300));
        group.bench_with_input(BenchmarkId::from_parameter(dims), &generated, |b, g| {
            b.iter(|| {
                black_box(
                    SizedLattice::compute(&g.dataset, g.default_facet())
                        .unwrap()
                        .stats
                        .len(),
                )
            });
        });
    }
    group.finish();
}

fn bench_full_materialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2/materialize_full_lattice");
    group.sample_size(10);
    for dims in [2usize, 4, 6] {
        let generated = synthetic::generate(&synthetic::Config::with_dims(dims, 300));
        let facet = generated.default_facet().clone();
        let lattice = Lattice::new(facet.clone());
        group.bench_with_input(BenchmarkId::from_parameter(dims), &generated, |b, g| {
            b.iter(|| {
                let mut ds = g.dataset.clone();
                let mut total = 0usize;
                for mask in lattice.views() {
                    total += materialize_view(&mut ds, &facet, mask)
                        .unwrap()
                        .stats
                        .triples;
                }
                black_box(total)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sizing, bench_full_materialization);
criterion_main!(benches);
