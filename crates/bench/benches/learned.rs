//! E4 companion bench: learned-model training and inference throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sofos_core::SizedLattice;
use sofos_cost::{CostModel, LearnedCostModel, TrainConfig};
use sofos_cube::ViewMask;
use sofos_workload::synthetic;

fn bench_learned(c: &mut Criterion) {
    let generated = synthetic::generate(&synthetic::Config::with_dims(5, 300));
    let facet = generated.default_facet().clone();
    let sized = SizedLattice::compute(&generated.dataset, &facet).unwrap();
    let ctx = sized.context();
    let samples: Vec<(ViewMask, f64)> = sized
        .timings_us
        .iter()
        .map(|(&m, &us)| (m, us as f64))
        .collect();

    let mut group = c.benchmark_group("e4/learned");
    group.sample_size(10);
    group.bench_function("train_100_epochs", |b| {
        b.iter(|| {
            let mut model = LearnedCostModel::new(&facet, 1);
            let history = model.fit(
                &ctx,
                &samples,
                TrainConfig {
                    epochs: 100,
                    ..TrainConfig::default()
                },
            );
            black_box(history.len())
        });
    });

    let mut trained = LearnedCostModel::new(&facet, 1);
    trained.fit(
        &ctx,
        &samples,
        TrainConfig {
            epochs: 50,
            ..TrainConfig::default()
        },
    );
    group.bench_function("predict_whole_lattice", |b| {
        b.iter(|| {
            let total: f64 = sized.lattice.views().map(|v| trained.cost(&ctx, v)).sum();
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_learned);
criterion_main!(benches);
