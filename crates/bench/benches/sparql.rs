//! SPARQL engine micro-benchmarks: parsing, BGP joins, grouped aggregation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sofos_sparql::{parse_query, Evaluator};
use sofos_workload::dbpedia;

fn bench_parse(c: &mut Criterion) {
    let query = "PREFIX ex: <http://e/> \
                 SELECT ?c (SUM(?p) AS ?total) WHERE { \
                   ?o ex:country ?c . ?o ex:language ?l . ?o ex:pop ?p . \
                   FILTER(?l = \"French\" && ?p > 10) } \
                 GROUP BY ?c HAVING (SUM(?p) > 100) ORDER BY DESC(?total) LIMIT 10";
    c.bench_function("sparql/parse", |b| {
        b.iter(|| black_box(parse_query(black_box(query)).unwrap()));
    });
}

fn bench_eval(c: &mut Criterion) {
    let generated = dbpedia::generate(&dbpedia::Config::scaled(3));
    let ds = &generated.dataset;
    let ns = dbpedia::NS;
    let evaluator = Evaluator::new(ds);

    let mut group = c.benchmark_group("sparql/eval");
    group.sample_size(30);

    let bgp = format!(
        "SELECT ?c ?l WHERE {{ ?o <{ns}country> ?c . ?o <{ns}language> ?l . \
         ?c <{ns}partOf> ?r }}"
    );
    group.bench_function("bgp_join", |b| {
        b.iter(|| black_box(evaluator.evaluate_str(&bgp).unwrap().len()));
    });

    let grouped = format!(
        "SELECT ?c (SUM(?p) AS ?total) WHERE {{ \
           ?o <{ns}country> ?c . ?o <{ns}population> ?p }} GROUP BY ?c"
    );
    group.bench_function("group_aggregate", |b| {
        b.iter(|| black_box(evaluator.evaluate_str(&grouped).unwrap().len()));
    });

    let filtered = format!(
        "SELECT ?c (SUM(?p) AS ?total) WHERE {{ \
           ?o <{ns}country> ?c . ?o <{ns}language> ?l . ?o <{ns}population> ?p . \
           FILTER(?l = \"Language0\") }} GROUP BY ?c ORDER BY DESC(?total)"
    );
    group.bench_function("filter_group_order", |b| {
        b.iter(|| black_box(evaluator.evaluate_str(&filtered).unwrap().len()));
    });
    group.finish();
}

criterion_group!(benches, bench_parse, bench_eval);
criterion_main!(benches);
