//! Substrate micro-benchmarks: triple-store bulk load, inserts and pattern
//! scans across the index shapes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sofos_rdf::TermId;
use sofos_store::{EncodedTriple, GraphStore, IdPattern};

fn synthetic_triples(n: u32) -> Vec<EncodedTriple> {
    // s in [0, n/8), p in [0, 16), o in [0, n/4): realistic fan-outs.
    (0..n)
        .map(|i| {
            [
                TermId(i % (n / 8).max(1)),
                TermId(i % 16),
                TermId((i * 7) % (n / 4).max(1)),
            ]
        })
        .collect()
}

fn bench_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/load");
    for &n in &[10_000u32, 100_000] {
        let triples = synthetic_triples(n);
        group.bench_with_input(BenchmarkId::new("bulk", n), &triples, |b, t| {
            b.iter(|| {
                let mut g = GraphStore::new();
                g.bulk_load(t.clone());
                black_box(g.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &triples, |b, t| {
            b.iter(|| {
                let mut g = GraphStore::new();
                for &triple in t {
                    g.insert(triple);
                }
                black_box(g.len())
            });
        });
    }
    group.finish();
}

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/scan");
    let triples = synthetic_triples(100_000);
    let mut store = GraphStore::new();
    store.bulk_load(triples);

    let patterns = [
        ("by_subject", IdPattern::new(Some(TermId(5)), None, None)),
        ("by_predicate", IdPattern::new(None, Some(TermId(3)), None)),
        ("by_object", IdPattern::new(None, None, Some(TermId(9)))),
        (
            "by_pred_obj",
            IdPattern::new(None, Some(TermId(3)), Some(TermId(24))),
        ),
        ("full", IdPattern::ANY),
    ];
    for (name, pattern) in patterns {
        group.bench_function(name, |b| {
            b.iter(|| black_box(store.scan(black_box(pattern)).count()));
        });
    }
    group.bench_function("count_by_predicate", |b| {
        b.iter(|| black_box(store.count(IdPattern::new(None, Some(TermId(3)), None))));
    });
    group.finish();
}

criterion_group!(benches, bench_load, bench_scans);
criterion_main!(benches);
