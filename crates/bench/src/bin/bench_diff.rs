//! `bench_diff` — the CI bench-regression gate.
//!
//! Compares freshly-produced `BENCH_*.json` smoke reports against the
//! committed baselines (`benchmarks/baselines/`) and fails with a
//! readable table when a report drifts. Field policy, by name:
//!
//! * **correctness fields are exact** — booleans (`all_valid`,
//!   `meets_threshold`; `adaptive_beats_*` is volatile, see below),
//!   strings (sweep coordinates), and count-valued integers (`view_hits`,
//!   `fallbacks`, `reevaluations`, `maintenance_triples`, …): the sweeps
//!   are seeded, so these are deterministic and any change is a real
//!   behaviour change;
//! * **cost/latency fields get tolerance** — integers ending in `_us` and
//!   all floats: within ±`--tolerance` (default 20%) *or* within
//!   `--slack-us` (default 5000) absolutely, whichever is more lenient —
//!   micro-scale wall times jitter far more than 20% without meaning
//!   anything, while a genuine 2× regression on a substantial number
//!   still fails;
//! * **volatile fields are reported, not gated** — counts that depend on
//!   thread scheduling (`reads`, `batches_applied`, `epochs_*`) and
//!   wall-clock-derived verdicts (`adaptive_beats_*`): they appear in the
//!   table as `info` rows only.
//!
//! Row identity is positional: the sweeps emit cells in a deterministic
//! order, so row `i` compares against baseline row `i`; a row-count
//! mismatch means the sweep's shape changed and the baselines must be
//! regenerated (that is a loud failure on purpose).
//!
//! Usage:
//! `bench_diff --baseline benchmarks/baselines --fresh . [--tolerance 0.2] [--slack-us 5000]`

use sofos_bench::{print_table, Json};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Comparison verdict for one reported field (fields within bounds are
/// not reported at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Info,
    Fail,
}

/// Wall-clock-scale fields: tolerance + slack instead of exactness.
fn is_latency_field(key: &str) -> bool {
    key.ends_with("_us") || key.ends_with("_ms")
}

/// Scheduling-dependent fields: shown but never gated. Free-running
/// reader counts, contended wall totals, and extreme-tail percentiles
/// swing factors of 2 between identical runs; the p50/p95 fields and the
/// deterministic counts carry the regression signal instead.
fn is_volatile_field(key: &str) -> bool {
    const VOLATILE: &[&str] = &[
        "reads",
        "batches_applied",
        "epochs_published",
        "epochs_retired",
        "maintenance_passes",
        "stale_views_at_end",
        "writer_wall_us",
        "maintenance_wall_us",
        "round_wall_us",
        "pr3_wall_us",
        "pipeline_wall_us",
        "read_p99_us",
        // The overhead cell's raw walls and percentage swing with the
        // runner; `metrics_overhead_ok` is the gated verdict.
        "enabled_wall_us",
        "disabled_wall_us",
        "metrics_overhead_pct",
        // Wall-derived measurements swing with the machine; their boolean
        // verdicts (`meets_threshold`) are the gated fields.
        "p95_speedup",
        "wall_speedup",
        "serial_fraction",
        "mean_lag",
        // E11 (serving): everything scheduling- or machine-derived — the
        // calibrated capacity, the offered/achieved rates built from it,
        // admission counts, and the latency percentiles of a live socket
        // run. The gated verdicts are `overload_has_rejects`,
        // `p99_within_bound`, and `meets_threshold`.
        "effective_parallelism",
        "lanes",
        "service_us",
        "capacity_rps",
        "offered_rps",
        "achieved_rps",
        "admitted",
        "rejected",
        "transport_errors",
        "p50_us",
        "p95_us",
        "p99_us",
        "skew_p95_us",
        "unsat_p99_us",
        "overload_p99_us",
        "overload_rejects",
        "p99_ratio",
        // E12 (durability): ingest and recovery walls are machine-paced
        // (fsync latency dominates the durable column), and the overhead
        // ratio is their quotient. The gated verdicts are
        // `overhead_gate_ok`, per-cell `recovered_epoch_ok`, and
        // `meets_threshold`; `replayed_records` stays gated too — the
        // publish count per tail is deterministic.
        "memory_wall_us",
        "durable_wall_us",
        "overhead_ratio",
        "recover_wall_us",
        // E13 (bitmap scan): plan-phase walls are micro-scale and the
        // speedups are their quotients; `cores` is whatever machine ran
        // the report. The gated verdicts are `meets_threshold`,
        // `split_gate_ok`, and the deterministic maintenance counts
        // (`groups_patched`, `rows_inserted`, …), which stay exact.
        "plan_wall_us",
        "plan_speedup",
        "sparse_runwalk_plan_us",
        "sparse_bitmap_plan_us",
        "split_split1_plan_us",
        "split_deepest_plan_us",
        "split_speedup",
        "cores",
        // E14 (selection at scale): selector walls and their quotient are
        // machine-paced, and the anytime search's move/restart/pricing
        // counters shift whenever the search internals are tuned — the
        // deterministic costs (`greedy_cost`, `local_cost`), the
        // `quality_ratio`, and the verdict booleans (`quality_ok`,
        // `wall_ok`, `budget_exhausted`, `converged`) carry the gate.
        "greedy_wall_us",
        "local_wall_us",
        "wall_ratio",
        "moves_tried",
        "moves_accepted",
        "restarts",
        "views_priced",
    ];
    VOLATILE.contains(&key) || key.starts_with("adaptive_beats_")
}

struct Config {
    baseline_dir: PathBuf,
    fresh_dir: PathBuf,
    tolerance: f64,
    slack_us: f64,
}

fn parse_args() -> Result<Config, String> {
    let mut config = Config {
        baseline_dir: PathBuf::from("benchmarks/baselines"),
        fresh_dir: PathBuf::from("."),
        tolerance: 0.20,
        slack_us: 5000.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--baseline" => config.baseline_dir = PathBuf::from(value("--baseline")?),
            "--fresh" => config.fresh_dir = PathBuf::from(value("--fresh")?),
            "--tolerance" => {
                config.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?
            }
            "--slack-us" => {
                config.slack_us = value("--slack-us")?
                    .parse()
                    .map_err(|e| format!("bad --slack-us: {e}"))?
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(config)
}

fn load_report(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// One comparison row for the output table.
struct DiffRow {
    experiment: String,
    row: String,
    field: String,
    baseline: String,
    fresh: String,
    delta: String,
    verdict: Verdict,
}

#[allow(clippy::too_many_arguments)]
fn compare_field(
    config: &Config,
    experiment: &str,
    row_label: &str,
    key: &str,
    base: &Json,
    fresh: &Json,
    rows: &mut Vec<DiffRow>,
) {
    let fmt = |v: &Json| v.to_string();
    let mut push = |verdict: Verdict, delta: String| {
        rows.push(DiffRow {
            experiment: experiment.to_string(),
            row: row_label.to_string(),
            field: key.to_string(),
            baseline: fmt(base),
            fresh: fmt(fresh),
            delta,
            verdict,
        });
    };

    if is_volatile_field(key) {
        let differs = base.to_string() != fresh.to_string();
        if differs {
            push(Verdict::Info, "volatile".into());
        }
        return;
    }

    match (base.as_f64(), fresh.as_f64()) {
        (Some(b), Some(f)) if is_latency_field(key) || matches!(base, Json::Num(_)) => {
            let diff = (f - b).abs();
            let rel = if b.abs() > f64::EPSILON {
                diff / b.abs()
            } else if diff > f64::EPSILON {
                f64::INFINITY
            } else {
                0.0
            };
            let slack = if is_latency_field(key) {
                config.slack_us
            } else {
                // Pure ratios/floats: small absolute slack for rounding.
                1e-9
            };
            let ok = rel <= config.tolerance || diff <= slack;
            let delta = if b.abs() > f64::EPSILON {
                format!("{:+.1}%", 100.0 * (f - b) / b)
            } else {
                format!("{diff:+.1}")
            };
            if !ok {
                push(Verdict::Fail, delta);
            }
        }
        _ => {
            // Exact: strings, booleans, count-valued integers.
            if base.to_string() != fresh.to_string() {
                push(Verdict::Fail, "exact-mismatch".into());
            }
        }
    }
}

fn compare_reports(
    config: &Config,
    experiment: &str,
    baseline: &Json,
    fresh: &Json,
    rows: &mut Vec<DiffRow>,
) {
    let baseline_rows = baseline
        .get("rows")
        .and_then(Json::items)
        .unwrap_or_default();
    let fresh_rows = fresh.get("rows").and_then(Json::items).unwrap_or_default();
    if baseline_rows.len() != fresh_rows.len() {
        rows.push(DiffRow {
            experiment: experiment.to_string(),
            row: "*".into(),
            field: "rows".into(),
            baseline: baseline_rows.len().to_string(),
            fresh: fresh_rows.len().to_string(),
            delta: "sweep shape changed — regenerate baselines".into(),
            verdict: Verdict::Fail,
        });
        return;
    }
    for (i, (base_row, fresh_row)) in baseline_rows.iter().zip(fresh_rows).enumerate() {
        let (Json::Object(base_pairs), Json::Object(fresh_pairs)) = (base_row, fresh_row) else {
            continue;
        };
        let label = base_row
            .get("summary")
            .map(|_| format!("{i} (summary)"))
            .unwrap_or_else(|| i.to_string());
        for (key, base_value) in base_pairs {
            match fresh_row.get(key) {
                Some(fresh_value) => compare_field(
                    config,
                    experiment,
                    &label,
                    key,
                    base_value,
                    fresh_value,
                    rows,
                ),
                None => rows.push(DiffRow {
                    experiment: experiment.to_string(),
                    row: label.clone(),
                    field: key.clone(),
                    baseline: base_value.to_string(),
                    fresh: "<missing>".into(),
                    delta: "field removed".into(),
                    verdict: Verdict::Fail,
                }),
            }
        }
        for (key, fresh_value) in fresh_pairs {
            if base_row.get(key).is_none() {
                rows.push(DiffRow {
                    experiment: experiment.to_string(),
                    row: label.clone(),
                    field: key.clone(),
                    baseline: "<missing>".into(),
                    fresh: fresh_value.to_string(),
                    delta: "field added — regenerate baselines".into(),
                    verdict: Verdict::Fail,
                });
            }
        }
    }
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::from(2);
        }
    };

    let mut baselines: Vec<PathBuf> = match std::fs::read_dir(&config.baseline_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => {
            eprintln!(
                "bench_diff: cannot list {}: {e}",
                config.baseline_dir.display()
            );
            return ExitCode::from(2);
        }
    };
    baselines.sort();
    if baselines.is_empty() {
        eprintln!(
            "bench_diff: no BENCH_*.json baselines under {}",
            config.baseline_dir.display()
        );
        return ExitCode::from(2);
    }

    let mut rows: Vec<DiffRow> = Vec::new();
    let mut compared = 0usize;

    // Fresh reports with no committed baseline yet (a newly-added
    // experiment) are informational, not failures: the gate cannot diff
    // against nothing, and blocking the PR that *introduces* a report
    // would force committing the baseline before the code that emits it.
    if let Ok(entries) = std::fs::read_dir(&config.fresh_dir) {
        let baseline_names: Vec<String> = baselines
            .iter()
            .filter_map(|p| p.file_name().and_then(|n| n.to_str()).map(String::from))
            .collect();
        let mut unmatched: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().to_str().map(String::from))
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .filter(|n| !baseline_names.iter().any(|b| b == n))
            .collect();
        unmatched.sort();
        for name in unmatched {
            rows.push(DiffRow {
                experiment: name
                    .trim_start_matches("BENCH_")
                    .trim_end_matches(".json")
                    .to_string(),
                row: "*".into(),
                field: "report".into(),
                baseline: "<none>".into(),
                fresh: "present".into(),
                delta: "no baseline — informational; commit one to start gating".into(),
                verdict: Verdict::Info,
            });
        }
    }

    for baseline_path in &baselines {
        let name = baseline_path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("filtered above");
        let experiment = name
            .trim_start_matches("BENCH_")
            .trim_end_matches(".json")
            .to_string();
        let fresh_path = config.fresh_dir.join(name);
        let baseline = match load_report(baseline_path) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench_diff: {e}");
                return ExitCode::from(2);
            }
        };
        let fresh = match load_report(&fresh_path) {
            Ok(v) => v,
            Err(e) => {
                rows.push(DiffRow {
                    experiment,
                    row: "*".into(),
                    field: "report".into(),
                    baseline: "present".into(),
                    fresh: format!("unreadable: {e}"),
                    delta: "missing fresh report".into(),
                    verdict: Verdict::Fail,
                });
                continue;
            }
        };
        compared += 1;
        compare_reports(&config, &experiment, &baseline, &fresh, &mut rows);
    }

    let failures = rows.iter().filter(|r| r.verdict == Verdict::Fail).count();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.experiment.clone(),
                r.row.clone(),
                r.field.clone(),
                r.baseline.clone(),
                r.fresh.clone(),
                r.delta.clone(),
                match r.verdict {
                    Verdict::Info => "info".into(),
                    Verdict::Fail => "FAIL".into(),
                },
            ]
        })
        .collect();
    if table.is_empty() {
        println!(
            "bench_diff: {compared} report(s) match their baselines \
             (tolerance {:.0}%, slack {}us)",
            config.tolerance * 100.0,
            config.slack_us
        );
    } else {
        print_table(
            "bench_diff · fresh reports vs committed baselines",
            &[
                "experiment",
                "row",
                "field",
                "baseline",
                "fresh",
                "delta",
                "verdict",
            ],
            &table,
        );
        println!(
            "{failures} failing field(s) across {compared} report(s); tolerance {:.0}%, \
             slack {}us. `info` rows are scheduling-dependent and not gated.",
            config.tolerance * 100.0,
            config.slack_us
        );
    }
    if failures > 0 {
        eprintln!(
            "bench_diff: FAILED — if the drift is intentional, regenerate the baselines \
             (run the smoke binaries and copy BENCH_*.json into {})",
            config.baseline_dir.display()
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
