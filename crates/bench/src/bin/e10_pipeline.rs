//! E10 — the two-phase maintenance pipeline: batched epochs vs. the PR 3
//! per-delta path, and bounded-staleness serving.
//!
//! Two sweeps share one dataset, view catalog, and pre-generated update
//! stream:
//!
//! * **maintenance modes** (shards × writer-threads × batch size): the
//!   same stream flows through
//!   - `pr3` — the PR 3 architecture, faithfully: per delta, sharded
//!     binding scans (`apply_sharded`), a *serial* per-view group-patch
//!     pass (`maintain`), and one epoch publish (master clone + swap);
//!   - `two-phase` — `batch` deltas coalesced per epoch
//!     (`EpochStore::begin_batch`): scans per delta, row deltas *merged*
//!     (intra-batch churn cancels), one parallel-plan / serial-apply
//!     maintenance pass (`maintain_pipelined`), ONE publish.
//!
//!   Each cell reports maintenance wall-clock and the pipeline's measured
//!   serial fraction — the figure `sofos_cost::ShardedMaintenance`
//!   should replace its 0.4 prior with.
//! * **bounded staleness** (lag bound sweep at the headline shard
//!   config): an epoch-backend `Engine` under
//!   `StalenessPolicy::Bounded { max_batches, max_epoch_lag }` serves an
//!   interleaved update/query stream; every answer's freshness tag is
//!   recorded and the observed maximum must respect the bound. Lag
//!   percentiles are read from the engine's own `sofos_freshness_lag`
//!   metrics histogram.
//! * **metrics overhead** (one cell): the same serve loop with an enabled
//!   vs a disabled `MetricsHandle`; the wall-clock ratio must stay within
//!   a generous budget (`metrics_overhead_ok`, gated by `bench_diff`).
//!
//! The summary row records the acceptance criterion: two-phase batched
//! maintenance at 4 shards / batch 4 must beat the PR 3 path by ≥1.3× on
//! maintenance wall-clock (full runs; `--smoke` gates a 1.1× floor so a
//! shared CI runner's noise cannot flake the job — a genuine regression
//! lands near 1×, the full-run margin is measured well above the gate).
//!
//! Run with: `cargo run -p sofos-bench --release --bin e10_pipeline [--smoke]`

use sofos_bench::{finish_report, ms, print_table, ratio, sized, BenchReport, Json};
use sofos_core::{
    results_equivalent, run_offline, Backend, Engine, EngineConfig, MetricsHandle, SizedLattice,
    StalenessPolicy,
};
use sofos_cost::CostModelKind;
use sofos_cube::{AggOp, Facet, ViewMask};
use sofos_maintain::{Maintainer, PipelineTelemetry, RowDelta};
use sofos_materialize::virtual_view_stats;
use sofos_select::WorkloadProfile;
use sofos_sparql::Evaluator;
use sofos_store::{Dataset, Delta, EpochStore, ShardRouter};
use std::time::Instant;

/// Pre-generate `rounds` update batches, cycling through freshly-seeded
/// streams so inserts never degenerate into no-ops across cycles.
fn update_schedule(base: &Dataset, facet: &Facet, batch_size: usize, rounds: usize) -> Vec<Delta> {
    use sofos_workload::{generate_update_stream, UpdateStreamConfig};
    let mut batches = Vec::with_capacity(rounds);
    let mut cycle = 0u64;
    while batches.len() < rounds {
        cycle += 1;
        batches.extend(generate_update_stream(
            base,
            facet,
            &UpdateStreamConfig {
                batches: 16.min(rounds - batches.len()),
                batch_size,
                insert_ratio: 0.6,
                skew: 0.8,
                seed: 31 + cycle,
                ..UpdateStreamConfig::default()
            },
        ));
    }
    batches
}

/// Outcome of one maintenance-mode cell.
struct ModeOutcome {
    maintenance_wall_us: u64,
    epochs_published: u64,
    telemetry: PipelineTelemetry,
    final_base_len: usize,
    all_valid: bool,
}

/// Every catalog view's live row count must equal a fresh evaluation of
/// its view query over the final base graph — the cheap end-state
/// fidelity check (bit-equality itself is proptested in sofos-maintain).
fn catalog_matches_reevaluation(
    store: &EpochStore,
    facet: &Facet,
    views: &[(ViewMask, usize)],
) -> bool {
    let snapshot = store.pin();
    views.iter().all(|&(mask, rows)| {
        virtual_view_stats(snapshot.dataset(), facet, mask)
            .map(|stats| stats.rows == rows)
            .unwrap_or(false)
    })
}

/// The PR 3 path: per delta — sharded scans, serial per-view patching,
/// one epoch.
fn run_pr3(
    expanded: &Dataset,
    facet: &Facet,
    catalog: &[(ViewMask, usize)],
    deltas: Vec<Delta>,
    shards: usize,
    threads: usize,
) -> ModeOutcome {
    let store = EpochStore::new(expanded.clone(), shards);
    let router = ShardRouter::new(shards);
    let mut maintainer = Maintainer::new(facet);
    let mut views = catalog.to_vec();
    let mut wall_us = 0u64;
    for delta in deltas {
        let start = Instant::now();
        let mut txn = store.begin();
        let sharded = maintainer.apply_sharded(txn.dataset(), delta, &router, threads);
        maintainer
            .maintain(txn.dataset(), sharded.outcome.rows.as_ref(), &mut views)
            .expect("serial maintenance succeeds");
        txn.touch_changes(&sharded.outcome.changes);
        txn.publish();
        wall_us += start.elapsed().as_micros() as u64;
    }
    ModeOutcome {
        maintenance_wall_us: wall_us,
        epochs_published: store.epoch(),
        telemetry: PipelineTelemetry::default(),
        final_base_len: store.pin().dataset().default_graph().len(),
        all_valid: catalog_matches_reevaluation(&store, facet, &views),
    }
}

/// The two-phase path: `batch` deltas per epoch — merged row delta,
/// parallel plan, serial apply, one publish.
fn run_two_phase(
    expanded: &Dataset,
    facet: &Facet,
    catalog: &[(ViewMask, usize)],
    deltas: Vec<Delta>,
    shards: usize,
    threads: usize,
    batch: usize,
) -> ModeOutcome {
    let store = EpochStore::new(expanded.clone(), shards);
    let router = ShardRouter::new(shards);
    let mut maintainer = Maintainer::new(facet);
    let mut views = catalog.to_vec();
    let mut wall_us = 0u64;
    let mut telemetry = PipelineTelemetry::default();
    for chunk in deltas.chunks(batch.max(1)) {
        let start = Instant::now();
        let mut txn = store.begin_batch();
        let mut merged = RowDelta::default();
        for delta in chunk {
            let sharded = maintainer.apply_sharded(txn.dataset(), delta.clone(), &router, threads);
            telemetry.merge(&PipelineTelemetry {
                serial_us: sharded.serial_us,
                parallel_work_us: sharded.scan_work_us(),
                parallel_wall_us: sharded.scan_wall_us,
            });
            txn.absorb(&sharded.outcome.changes);
            merged.merge(sharded.outcome.rows.as_ref().expect("star facet"));
        }
        let outcome = maintainer
            .maintain_pipelined(txn.dataset(), Some(&merged), &mut views, threads)
            .expect("pipelined maintenance succeeds");
        telemetry.merge(&outcome.telemetry);
        txn.publish();
        wall_us += start.elapsed().as_micros() as u64;
    }
    ModeOutcome {
        maintenance_wall_us: wall_us,
        epochs_published: store.epoch(),
        telemetry,
        final_base_len: store.pin().dataset().default_graph().len(),
        all_valid: catalog_matches_reevaluation(&store, facet, &views),
    }
}

fn main() {
    let observations = sized(240, 160);
    let update_batch_size = 32;
    let rounds = sized(48, 16);
    // (shards, writer threads) × deltas-per-epoch. (4, 2) × 4 is the
    // acceptance cell.
    let shard_configs: Vec<(usize, usize)> = sized(
        vec![(1, 1), (2, 2), (4, 2), (4, 4), (8, 4)],
        vec![(1, 1), (4, 2)],
    );
    let batch_sizes: Vec<usize> = sized(vec![1, 2, 4, 8], vec![1, 4]);
    let lag_bounds: Vec<(usize, u64)> = sized(
        vec![(1, 0), (4, 2), (8, 8)], // (max_batches, max_epoch_lag)
        vec![(4, 2)],
    );

    let generated = sofos_workload::synthetic::generate(&sofos_workload::synthetic::Config {
        observations,
        cardinalities: vec![8, 5, 3],
        skew: 0.8,
        agg: AggOp::Avg,
        seed: 19,
    });
    let facet = generated.default_facet().clone();
    let base = generated.dataset;
    let workload = sofos_workload::generate_workload(
        &base,
        &facet,
        &sofos_workload::WorkloadConfig {
            num_queries: 10,
            ..sofos_workload::WorkloadConfig::default()
        },
    );
    let sized_lattice = SizedLattice::compute(&base, &facet).expect("lattice sizes");
    let profile = WorkloadProfile::from_masks(workload.iter().map(|q| q.required));
    let mut expanded = base.clone();
    let offline = run_offline(
        &mut expanded,
        &sized_lattice,
        &profile,
        CostModelKind::AggValues,
        &EngineConfig::default(),
    )
    .expect("offline phase runs");
    let catalog = offline.view_catalog();

    let mut report = BenchReport::new(
        "pipeline",
        format!(
            "two-phase batched maintenance vs the PR 3 per-delta path; shards x \
             writer-threads x deltas-per-epoch over {rounds} batches of \
             {update_batch_size} zipf-skewed ops, plus bounded-staleness serving \
             cells sweeping the lag budget"
        ),
    );
    let headers = [
        "mode", "shards", "wr-thr", "batch", "lag-bnd", "epochs", "maint ms", "ser-frac",
        "max-lag", "valid",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let deltas = update_schedule(&base, &facet, update_batch_size, rounds);

    // ---- Sweep A: maintenance modes -------------------------------------
    let mut headline_pr3: Option<u64> = None;
    let mut headline_pipeline: Option<u64> = None;
    let mut reference_base_len: Option<usize> = None;
    for &(shards, threads) in &shard_configs {
        let pr3 = run_pr3(&expanded, &facet, &catalog, deltas.clone(), shards, threads);
        match reference_base_len {
            None => reference_base_len = Some(pr3.final_base_len),
            Some(len) => assert_eq!(len, pr3.final_base_len, "modes apply the same stream"),
        }
        assert!(pr3.all_valid, "pr3 {shards}x{threads}: stale catalog");
        if (shards, threads) == (4, 2) {
            headline_pr3 = Some(pr3.maintenance_wall_us);
        }
        rows.push(vec![
            "pr3".into(),
            shards.to_string(),
            threads.to_string(),
            "1".into(),
            String::new(),
            pr3.epochs_published.to_string(),
            ms(pr3.maintenance_wall_us),
            String::new(),
            String::new(),
            "yes".into(),
        ]);
        report.push(Json::object([
            ("mode", Json::from("pr3")),
            ("shards", Json::from(shards)),
            ("writer_threads", Json::from(threads)),
            ("batch_size", Json::from(1usize)),
            ("batches_applied", Json::from(rounds)),
            ("epochs_published", Json::from(pr3.epochs_published)),
            ("maintenance_wall_us", Json::from(pr3.maintenance_wall_us)),
            ("all_valid", Json::from(pr3.all_valid)),
        ]));

        for &batch in &batch_sizes {
            let cell = run_two_phase(
                &expanded,
                &facet,
                &catalog,
                deltas.clone(),
                shards,
                threads,
                batch,
            );
            assert_eq!(
                cell.final_base_len,
                reference_base_len.expect("set above"),
                "two-phase {shards}x{threads} batch {batch}: base diverged"
            );
            assert!(
                cell.all_valid,
                "two-phase {shards}x{threads} batch {batch}: stale catalog"
            );
            let fraction = cell.telemetry.serial_fraction().unwrap_or(1.0);
            if (shards, threads, batch) == (4, 2, 4) {
                headline_pipeline = Some(cell.maintenance_wall_us);
            }
            rows.push(vec![
                "two-phase".into(),
                shards.to_string(),
                threads.to_string(),
                batch.to_string(),
                String::new(),
                cell.epochs_published.to_string(),
                ms(cell.maintenance_wall_us),
                format!("{fraction:.3}"),
                String::new(),
                "yes".into(),
            ]);
            report.push(Json::object([
                ("mode", Json::from("two-phase")),
                ("shards", Json::from(shards)),
                ("writer_threads", Json::from(threads)),
                ("batch_size", Json::from(batch)),
                ("batches_applied", Json::from(rounds)),
                ("epochs_published", Json::from(cell.epochs_published)),
                ("maintenance_wall_us", Json::from(cell.maintenance_wall_us)),
                ("serial_fraction", Json::from(fraction)),
                ("all_valid", Json::from(cell.all_valid)),
            ]));
        }
    }

    // ---- Sweep B: bounded-staleness serving ------------------------------
    // Through the one front door: the same Engine API the maintenance
    // sweeps' serial logic now lives behind, with the epoch backend.
    for &(max_batches, max_epoch_lag) in &lag_bounds {
        let engine = Engine::builder()
            .dataset(expanded.clone())
            .facet(facet.clone())
            .catalog(catalog.clone())
            .staleness(StalenessPolicy::bounded(max_batches, max_epoch_lag))
            .backend(Backend::Epoch {
                shards: 4,
                threads: 2,
            })
            .metrics(MetricsHandle::new())
            .build()
            .expect("engine builds");
        let mut round_wall_us = 0u64;
        let mut last_freshness = None;
        for (round, delta) in deltas.iter().cloned().enumerate() {
            // Time the whole round: scheduled flushes land in update(),
            // budget-forced ones inside the read path.
            let start = Instant::now();
            engine.update(delta).expect("update runs");
            // One read between updates: the freshness tag is the point.
            let q = &workload[round % workload.len()];
            let answer = engine.query(&q.query).expect("query runs");
            round_wall_us += start.elapsed().as_micros() as u64;
            assert!(
                answer.freshness.lag <= max_epoch_lag,
                "bounded({max_batches},{max_epoch_lag}): served {}",
                answer.freshness
            );
            last_freshness = Some(answer.freshness);
        }
        // Freshness-lag distribution straight from the engine's metrics
        // layer — the same histogram an operator would scrape. Snapshot
        // before the validation reads below so the distribution covers
        // exactly the interleaved serving rounds.
        let metrics = engine.metrics().snapshot();
        let lag_hist = metrics
            .histogram("sofos_freshness_lag", &[("backend", "epoch")])
            .expect("engine records freshness lag")
            .snapshot
            .clone();
        engine.flush().expect("drain runs");
        let mut all_valid = true;
        let snapshot = engine.snapshot();
        let reference = Evaluator::new(&snapshot);
        for q in &workload {
            let answer = engine.query(&q.query).expect("query runs");
            let base = reference.evaluate(&q.query).expect("base evaluation runs");
            all_valid &= results_equivalent(&answer.results, &base);
        }
        assert!(
            all_valid,
            "bounded({max_batches},{max_epoch_lag}): wrong answers"
        );
        let reads = lag_hist.count;
        let max_lag = lag_hist.max;
        let mean_lag = lag_hist.mean();
        // Freshness lag percentiles: how stale served reads actually ran
        // under each budget (lag is in buffered batches, not time; lags
        // are far below the histogram's exact range, so these are exact).
        let (lag_p50, lag_p95, lag_p99) = (lag_hist.p50(), lag_hist.p95(), lag_hist.p99());
        rows.push(vec![
            "bounded".into(),
            "4".into(),
            "2".into(),
            max_batches.to_string(),
            max_epoch_lag.to_string(),
            engine.epoch().to_string(),
            ms(round_wall_us),
            String::new(),
            format!("{max_lag} (p95 {lag_p95})"),
            "yes".into(),
        ]);
        report.push(Json::object([
            ("mode", Json::from("bounded")),
            ("shards", Json::from(4usize)),
            ("writer_threads", Json::from(2usize)),
            ("max_batches", Json::from(max_batches)),
            ("max_epoch_lag", Json::from(max_epoch_lag)),
            ("reads", Json::from(reads)),
            ("max_lag_observed", Json::from(max_lag)),
            ("mean_lag", Json::from(mean_lag)),
            ("lag_p50", Json::from(lag_p50)),
            ("lag_p95", Json::from(lag_p95)),
            ("lag_p99", Json::from(lag_p99)),
            // The last serve-time tag, built field-by-field (same keys as
            // Freshness::to_json_string) — structured data, not a
            // Display → parse round-trip.
            ("final_freshness", {
                let last = last_freshness.expect("at least one read");
                Json::object([
                    ("lag", Json::from(last.lag)),
                    ("epoch", Json::from(last.epoch)),
                    ("oldest_shard_epoch", Json::from(last.oldest_shard_epoch)),
                ])
            }),
            ("epochs_published", Json::from(engine.epoch())),
            ("round_wall_us", Json::from(round_wall_us)),
            ("all_valid", Json::from(all_valid)),
        ]));
    }

    // ---- Sweep C: metrics recording overhead -----------------------------
    // The same serve loop twice — once recording into an enabled
    // MetricsHandle, once through MetricsHandle::disabled() (every
    // instrument call early-outs on one branch). The gated verdict is the
    // boolean: recording must cost less than the generous budget below;
    // the raw percentage is reported but volatile (micro-scale walls
    // jitter on shared runners).
    let overhead_reads = sized(600, 200);
    let mut walls = [0u64; 2];
    for (slot, enabled) in [(0usize, true), (1usize, false)] {
        let handle = if enabled {
            MetricsHandle::new()
        } else {
            MetricsHandle::disabled()
        };
        let engine = Engine::builder()
            .dataset(expanded.clone())
            .facet(facet.clone())
            .catalog(catalog.clone())
            .staleness(StalenessPolicy::Eager)
            .backend(Backend::Epoch {
                shards: 4,
                threads: 2,
            })
            .metrics(handle.clone())
            .build()
            .expect("engine builds");
        for q in &workload {
            engine.query(&q.query).expect("warmup query runs");
        }
        let start = Instant::now();
        for read in 0..overhead_reads {
            let q = &workload[read % workload.len()];
            engine.query(&q.query).expect("query runs");
        }
        walls[slot] = start.elapsed().as_micros() as u64;
        let served = handle
            .snapshot()
            .histogram(
                "sofos_serve_latency_us",
                &[("backend", "epoch"), ("route", "view")],
            )
            .map(|h| h.snapshot.count)
            .unwrap_or(0);
        if enabled {
            assert!(served > 0, "enabled handle must record serve latencies");
        } else {
            assert_eq!(served, 0, "disabled handle must record nothing");
        }
    }
    let (enabled_wall, disabled_wall) = (walls[0], walls[1]);
    let overhead_pct =
        100.0 * (enabled_wall as f64 - disabled_wall as f64) / disabled_wall.max(1) as f64;
    // Budget: recording is a handful of relaxed atomics per serve — far
    // below run-to-run noise. 2x + 20ms absorbs shared-runner jitter
    // while still catching a pathological regression (e.g. a lock on the
    // hot path).
    let metrics_overhead_ok = enabled_wall <= disabled_wall.saturating_mul(2) + 20_000;
    rows.push(vec![
        "metrics".into(),
        "4".into(),
        "2".into(),
        String::new(),
        String::new(),
        String::new(),
        ms(enabled_wall),
        format!("{overhead_pct:+.1}%"),
        String::new(),
        if metrics_overhead_ok {
            "yes".into()
        } else {
            "NO".into()
        },
    ]);
    report.push(Json::object([
        ("mode", Json::from("metrics-overhead")),
        ("reads", Json::from(overhead_reads)),
        ("enabled_wall_us", Json::from(enabled_wall)),
        ("disabled_wall_us", Json::from(disabled_wall)),
        ("metrics_overhead_pct", Json::from(overhead_pct)),
        ("metrics_overhead_ok", Json::from(metrics_overhead_ok)),
    ]));
    assert!(
        metrics_overhead_ok,
        "metrics recording overhead out of budget: enabled {enabled_wall}us vs \
         disabled {disabled_wall}us ({overhead_pct:+.1}%)"
    );

    // ---- Summary: the acceptance criterion --------------------------------
    let threshold = sized(1.3, 1.1);
    let pr3_wall = headline_pr3.expect("sweep includes 4x2");
    let pipeline_wall = headline_pipeline.expect("sweep includes 4x2 batch 4");
    let speedup = pr3_wall as f64 / pipeline_wall.max(1) as f64;
    rows.push(vec![
        "summary".into(),
        "4".into(),
        "2".into(),
        "4".into(),
        String::new(),
        String::new(),
        String::new(),
        ratio(speedup),
        String::new(),
        if speedup >= threshold {
            "yes".into()
        } else {
            "NO".into()
        },
    ]);
    report.push(Json::object([
        ("summary", Json::from(true)),
        ("shards", Json::from(4usize)),
        ("writer_threads", Json::from(2usize)),
        ("batch_size", Json::from(4usize)),
        ("pr3_wall_us", Json::from(pr3_wall)),
        ("pipeline_wall_us", Json::from(pipeline_wall)),
        ("wall_speedup", Json::from(speedup)),
        ("threshold", Json::from(threshold)),
        ("meets_threshold", Json::from(speedup >= threshold)),
    ]));

    print_table(
        "E10 · two-phase pipeline: batched epochs vs PR 3 per-delta maintenance",
        &headers,
        &rows,
    );
    assert!(
        speedup >= threshold,
        "two-phase batched maintenance must beat the PR 3 path by >={threshold}x on \
         wall-clock at 4 shards / batch 4 (pr3 {pr3_wall}us vs pipeline {pipeline_wall}us)"
    );
    println!(
        "Reading: 'pr3' pays one serial group-patch pass and one epoch publish per\n\
         delta; 'two-phase' merges each batch's row deltas (churn cancels), plans\n\
         every view's patch in parallel, applies serially, and publishes ONE epoch\n\
         per batch. 'ser-frac' is the measured Amdahl floor the sharded maintenance\n\
         cost model now consumes instead of its 0.4 prior. 'bounded' rows serve\n\
         reads from pinned snapshots with freshness tags; max-lag never exceeds the\n\
         configured bound (lag percentiles come straight from the engine's\n\
         sofos_freshness_lag histogram). 'metrics' compares the serve loop with\n\
         recording on vs a disabled handle; the ser-frac column shows the measured\n\
         overhead."
    );
    finish_report(&report);
}
