//! E11 — serving through the network front door: throughput vs tail
//! latency under open-loop load, up to and past saturation.
//!
//! Boots a real `sofos-server` (epoch backend, eager maintenance) on a
//! loopback port and drives it with `workload::openloop` — Poisson
//! arrivals, zipf query mix, a 90:10 read:write ratio — over real
//! sockets. The sweep fixes the mix and scales the arrival rate against
//! a calibrated capacity estimate: unsaturated cells (0.25×, 0.5×), the
//! knee (1×), and a deliberate overload cell (3×) where the acceptor's
//! in-flight cap must start refusing with 503s.
//!
//! The acceptance criterion is the overload story: admission control
//! sheds load (503s > 0 at 3×) **and** the p99 of *admitted* requests
//! stays within 2× of the unsaturated cell — overload degrades, it does
//! not collapse. Smoke mode gates a softer 3× bound: its percentiles
//! come from a few hundred requests on a shared CI runner where one
//! scheduling hiccup moves p99; a real failure mode (unbounded queueing)
//! blows the ratio out by 10× or more, and still fails.
//!
//! All rates, counts, and percentiles are machine-derived and listed as
//! volatile in `bench_diff`; the gated fields are the three verdict
//! booleans.
//!
//! Run with: `cargo run -p sofos-bench --release --bin e11_serving [--smoke]`

use sofos_bench::{finish_report, ms, percentile, print_table, ratio, sized, BenchReport, Json};
use sofos_core::{run_offline, Backend, Engine, EngineConfig, SizedLattice, StalenessPolicy};
use sofos_cost::CostModelKind;
use sofos_cube::AggOp;
use sofos_select::WorkloadProfile;
use sofos_server::{serve, ServerConfig};
use sofos_store::OpKind;
use sofos_workload::openloop::{self, OpenLoopConfig};
use sofos_workload::{
    generate_update_stream, generate_workload, synthetic, UpdateStreamConfig, WorkloadConfig,
};
use std::sync::Arc;

fn mean(samples: &[u64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<u64>() as f64 / samples.len() as f64
}

fn main() {
    let observations = sized(240, 160);
    let requests_per_cell = sized(1200, 480);
    let calibration_requests = sized(80, 40);
    let workers = 4usize;
    // Worker threads beyond the core count add no capacity — they timeshare.
    // The capacity estimate and the client-lane count must both be sized off
    // real parallelism or the "0.25x" cell silently sits at saturation.
    let effective_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(workers);
    let lanes = (8 * effective_parallelism).clamp(12, 64);
    // No standing queue: admission equals a free worker, so an admitted
    // request's latency is (accept + service) regardless of offered load —
    // the whole point of the door. Anything beyond that is refused fast.
    let max_inflight = workers;
    let read_ratio = 0.9;
    let threshold = sized(2.0, 3.0);
    let rates: [(&str, f64); 4] = [
        ("0.25x", 0.25),
        ("0.5x", 0.5),
        ("1x", 1.0),
        ("3x-overload", 3.0),
    ];

    // --- The engine under test: same shape as E9's sweep subject --------
    let generated = synthetic::generate(&synthetic::Config {
        observations,
        cardinalities: vec![8, 5, 3],
        skew: 0.8,
        agg: AggOp::Avg,
        seed: 17,
    });
    let facet = generated.default_facet().clone();
    let base = generated.dataset;
    let workload = generate_workload(
        &base,
        &facet,
        &WorkloadConfig {
            num_queries: 12,
            ..WorkloadConfig::default()
        },
    );
    let sized_lattice = SizedLattice::compute(&base, &facet).expect("lattice sizes");
    let profile = WorkloadProfile::from_masks(workload.iter().map(|q| q.required));
    let mut expanded = base.clone();
    let offline = run_offline(
        &mut expanded,
        &sized_lattice,
        &profile,
        CostModelKind::AggValues,
        &EngineConfig::default(),
    )
    .expect("offline phase runs");
    let catalog = offline.view_catalog();

    let query_texts: Vec<String> = workload.iter().map(|q| q.text.clone()).collect();

    // Insert-only update stream, rendered to the wire's N-Triples form.
    let update_docs: Vec<String> = generate_update_stream(
        &base,
        &facet,
        &UpdateStreamConfig {
            batches: 64,
            batch_size: 4,
            insert_ratio: 1.0,
            skew: 0.8,
            seed: 29,
            ..UpdateStreamConfig::default()
        },
    )
    .iter()
    .map(|delta| {
        let mut doc = String::new();
        for op in delta.ops() {
            if matches!(op.kind, OpKind::Insert) && op.graph.is_none() {
                let [s, p, o] = &op.triple;
                doc.push_str(&format!("{s} {p} {o} .\n"));
            }
        }
        doc
    })
    .filter(|doc| !doc.is_empty())
    .collect();
    assert!(!update_docs.is_empty(), "write mix needs update documents");

    let engine = Engine::builder()
        .dataset(expanded)
        .facet(facet)
        .catalog(catalog)
        .staleness(StalenessPolicy::Eager)
        .backend(Backend::Epoch {
            shards: 4,
            threads: 2,
        })
        .build()
        .expect("engine builds");
    let handle = serve(
        Arc::new(engine),
        ServerConfig {
            workers,
            max_inflight,
            ..ServerConfig::default()
        },
    )
    .expect("server boots");
    let addr = handle.addr();

    // --- Calibrate: one closed-loop lane of reads ⇒ capacity estimate ---
    // An effectively-infinite arrival rate turns the open loop into a
    // back-to-back closed loop on a single lane; the mean end-to-end
    // latency (connect included — that is what a request costs) gives
    // service time, and capacity ≈ effective parallelism / service.
    let calibration = openloop::run(
        addr,
        &openloop::plan(
            &OpenLoopConfig {
                requests: calibration_requests,
                arrival_rate: 1e9,
                read_ratio: 1.0,
                zipf_skew: 0.8,
                lanes: 1,
                seed: 7,
            },
            &query_texts,
            &update_docs,
        ),
        1,
    );
    let calibration_latencies = calibration.admitted_latencies_us();
    assert_eq!(
        calibration_latencies.len(),
        calibration_requests,
        "calibration requests must all be admitted"
    );
    let service_us = mean(&calibration_latencies);
    let capacity_rps = effective_parallelism as f64 * 1e6 / service_us.max(1.0);

    let mut report = BenchReport::new(
        "serving",
        format!(
            "open-loop load through the sofos-server front door: poisson arrivals, \
             zipf query mix, {read_ratio} read ratio, {requests_per_cell} requests per \
             cell over {lanes} lanes against {workers} workers (in-flight cap \
             {max_inflight}); rates scale a calibrated capacity estimate, the 3x cell \
             is deliberate overload"
        ),
    );
    report.push(Json::object([
        ("cell", Json::from("calibrate")),
        ("requests", Json::from(calibration_requests)),
        ("effective_parallelism", Json::from(effective_parallelism)),
        ("service_us", Json::from(service_us)),
        ("capacity_rps", Json::from(capacity_rps)),
    ]));

    let headers = [
        "cell",
        "offered/s",
        "achieved/s",
        "admitted",
        "503s",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "skew p95 ms",
    ];
    let mut rows: Vec<Vec<String>> = vec![vec![
        "calibrate".into(),
        String::new(),
        format!("{capacity_rps:.0} (cap)"),
        calibration_latencies.len().to_string(),
        "0".into(),
        ms(service_us as u64),
        String::new(),
        String::new(),
        String::new(),
    ]];

    // --- The sweep -------------------------------------------------------
    let mut unsat_p99 = 0u64;
    let mut overload_p99 = 0u64;
    let mut overload_rejects = 0usize;
    for (i, (label, multiplier)) in rates.iter().enumerate() {
        let offered_rps = capacity_rps * multiplier;
        let schedule = openloop::plan(
            &OpenLoopConfig {
                requests: requests_per_cell,
                arrival_rate: offered_rps,
                read_ratio,
                zipf_skew: 0.8,
                lanes,
                seed: 101 + i as u64,
            },
            &query_texts,
            &update_docs,
        );
        let outcome = openloop::run(addr, &schedule, lanes);
        let admitted = outcome.admitted_latencies_us();
        let p50 = percentile(&admitted, 50.0);
        let p95 = percentile(&admitted, 95.0);
        let p99 = percentile(&admitted, 99.0);
        if i == 0 {
            unsat_p99 = p99;
        }
        if *multiplier >= 3.0 {
            overload_p99 = p99;
            overload_rejects = outcome.rejected();
        }
        rows.push(vec![
            label.to_string(),
            format!("{offered_rps:.0}"),
            format!("{:.0}", outcome.achieved_rps()),
            admitted.len().to_string(),
            outcome.rejected().to_string(),
            ms(p50),
            ms(p95),
            ms(p99),
            ms(outcome.skew_p95_us()),
        ]);
        report.push(Json::object([
            ("cell", Json::from(*label)),
            ("requests", Json::from(requests_per_cell)),
            ("lanes", Json::from(lanes)),
            ("workers", Json::from(workers)),
            ("max_inflight", Json::from(max_inflight)),
            ("read_ratio", Json::from(read_ratio)),
            ("offered_rps", Json::from(offered_rps)),
            ("achieved_rps", Json::from(outcome.achieved_rps())),
            ("admitted", Json::from(admitted.len())),
            ("rejected", Json::from(outcome.rejected())),
            ("transport_errors", Json::from(outcome.transport_errors())),
            ("p50_us", Json::from(p50)),
            ("p95_us", Json::from(p95)),
            ("p99_us", Json::from(p99)),
            ("skew_p95_us", Json::from(outcome.skew_p95_us())),
        ]));
    }

    // --- Verdicts --------------------------------------------------------
    let p99_ratio = overload_p99 as f64 / unsat_p99.max(1) as f64;
    let has_rejects = overload_rejects > 0;
    let within_bound = p99_ratio <= threshold;
    rows.push(vec![
        "summary".into(),
        String::new(),
        String::new(),
        String::new(),
        overload_rejects.to_string(),
        String::new(),
        String::new(),
        ratio(p99_ratio),
        if has_rejects && within_bound {
            "ok".into()
        } else {
            "NO".into()
        },
    ]);
    report.push(Json::object([
        ("summary", Json::from(true)),
        ("unsat_p99_us", Json::from(unsat_p99)),
        ("overload_p99_us", Json::from(overload_p99)),
        ("overload_rejects", Json::from(overload_rejects)),
        ("p99_ratio", Json::from(p99_ratio)),
        ("threshold", Json::from(threshold)),
        ("overload_has_rejects", Json::from(has_rejects)),
        ("p99_within_bound", Json::from(within_bound)),
        ("meets_threshold", Json::from(has_rejects && within_bound)),
    ]));

    print_table(
        "E11 · serving: open-loop throughput vs tail latency through sofos-server",
        &headers,
        &rows,
    );
    let stats = handle.shutdown();
    println!(
        "server: served={} rejected_at_door={} bad_requests={}",
        stats.served, stats.rejected_connections, stats.bad_requests
    );
    println!(
        "Reading: the in-flight cap turns overload into fast 503s instead of an\n\
         unbounded queue, so the p99 of requests that ARE admitted barely moves\n\
         past saturation — bounded queue, bounded tail."
    );
    assert!(
        has_rejects,
        "the 3x overload cell must trip admission control (0 rejections seen)"
    );
    assert!(
        within_bound,
        "admitted p99 under overload must stay within {threshold}x of the \
         unsaturated cell (got {p99_ratio:.2}x: {unsat_p99}us -> {overload_p99}us)"
    );
    finish_report(&report);
}
