//! E12 — what durability costs: ingest overhead of the epoch log, and
//! recovery time as a function of the log tail.
//!
//! Two sweeps over the same engine shape as E9/E11 (epoch backend, eager
//! maintenance, offline-selected views):
//!
//! * **ingest** — identical update streams through an in-memory engine
//!   and a durable one (`--data-dir` semantics: per-publish log append +
//!   fsync before the epoch swap, cadence snapshots). The gate is the
//!   wall ratio: durable ingest must stay within 1.5× of in-memory
//!   (smoke gates a softer 2× — its walls come from a few dozen batches
//!   on a shared CI runner where one slow fsync moves the ratio; a real
//!   regression, like fsync-per-triple or a snapshot in the hot loop,
//!   blows past 10×).
//! * **recover** — durable engines crashed (dropped, never drained) with
//!   log tails of increasing length, then rebuilt from the dir, timing
//!   the full recovery: scan + replay + view re-materialization +
//!   re-baseline. Reported, not gated (wall-clock on shared runners);
//!   the gated invariant is that every tail recovers to exactly the
//!   published epoch.
//!
//! All `*_wall_us` fields and the ratio are volatile in `bench_diff`;
//! the gated fields are `replayed_records` per recovery cell and the
//! `overhead_gate_ok` / `meets_threshold` booleans.
//!
//! Run with: `cargo run -p sofos-bench --release --bin e12_durability [--smoke]`

use sofos_bench::{finish_report, ms, print_table, ratio, sized, BenchReport, Json};
use sofos_core::{
    run_offline, Backend, DurabilityConfig, Engine, EngineBuilder, EngineConfig, SizedLattice,
    StalenessPolicy,
};
use sofos_cost::CostModelKind;
use sofos_cube::{AggOp, Facet, ViewMask};
use sofos_select::WorkloadProfile;
use sofos_store::{Dataset, Delta};
use sofos_workload::{generate_update_stream, synthetic, UpdateStreamConfig};
use std::path::PathBuf;
use std::time::Instant;

struct Subject {
    expanded: Dataset,
    facet: Facet,
    catalog: Vec<(ViewMask, usize)>,
}

impl Subject {
    fn builder(&self) -> EngineBuilder {
        Engine::builder()
            .dataset(self.expanded.clone())
            .facet(self.facet.clone())
            .catalog(self.catalog.clone())
            .staleness(StalenessPolicy::Eager)
            .backend(Backend::Epoch {
                shards: 4,
                threads: 2,
            })
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sofos-e12-{tag}-{}", std::process::id()));
    // A leftover dir from a killed earlier run would turn the build into
    // a recovery; start clean.
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    dir
}

/// Drive one engine through the stream and return the ingest wall in µs.
fn ingest(engine: &Engine, stream: &[Delta]) -> u64 {
    let start = Instant::now();
    for delta in stream {
        engine.update(delta.clone()).expect("update applies");
    }
    engine.flush().expect("flush drains");
    start.elapsed().as_micros() as u64
}

fn main() {
    let observations = sized(240, 120);
    let ingest_batches = sized(96, 24);
    // Full-size batches carry enough maintenance work that the per-publish
    // fsync is amortized the way real ingest amortizes it; 4-triple smoke
    // batches make the cell an fsync microbenchmark, hence its softer gate.
    let batch_size = sized(16, 4);
    let tail_lengths: Vec<usize> = if sofos_bench::smoke() {
        vec![8, 32]
    } else {
        vec![16, 64, 256]
    };
    let threshold = sized(1.5, 2.0);

    // --- The engine under test: same shape as E9/E11's sweep subject ----
    let generated = synthetic::generate(&synthetic::Config {
        observations,
        cardinalities: vec![8, 5, 3],
        skew: 0.8,
        agg: AggOp::Avg,
        seed: 17,
    });
    let facet = generated.default_facet().clone();
    let base = generated.dataset;
    let sized_lattice = SizedLattice::compute(&base, &facet).expect("lattice sizes");
    let profile = WorkloadProfile::uniform(&sized_lattice.lattice);
    let mut expanded = base.clone();
    let offline = run_offline(
        &mut expanded,
        &sized_lattice,
        &profile,
        CostModelKind::AggValues,
        &EngineConfig::default(),
    )
    .expect("offline phase runs");
    let subject = Subject {
        catalog: offline.view_catalog(),
        expanded,
        facet: facet.clone(),
    };

    let max_batches = ingest_batches.max(tail_lengths.iter().copied().max().unwrap_or(0));
    let stream = generate_update_stream(
        &base,
        &facet,
        &UpdateStreamConfig {
            batches: max_batches,
            batch_size,
            insert_ratio: 0.8,
            skew: 0.8,
            seed: 29,
            ..UpdateStreamConfig::default()
        },
    );

    let mut report = BenchReport::new(
        "durability",
        format!(
            "the price of the epoch log: identical {ingest_batches}-batch update \
             streams through in-memory vs durable engines (fsync-before-swap, \
             snapshot cadence 16) gate the ingest wall ratio at {threshold}x; \
             recovery walls are swept over log tails of {tail_lengths:?} batches"
        ),
    );
    let headers = ["cell", "batches", "replayed", "wall ms", "ratio", "ok"];
    let mut rows: Vec<Vec<String>> = Vec::new();

    // --- Ingest: in-memory vs durable ------------------------------------
    let memory = subject.builder().build().expect("in-memory engine builds");
    let memory_wall_us = ingest(&memory, &stream[..ingest_batches]);

    let dir = scratch_dir("ingest");
    let durable = subject
        .builder()
        .durability(DurabilityConfig::new(&dir).snapshot_every(16))
        .build()
        .expect("durable engine builds");
    let durable_wall_us = ingest(&durable, &stream[..ingest_batches]);
    assert_eq!(
        durable.epoch(),
        memory.epoch(),
        "durable and in-memory ingest must publish the same epochs"
    );
    drop(durable);
    drop(memory);

    let overhead_ratio = durable_wall_us as f64 / memory_wall_us.max(1) as f64;
    let overhead_gate_ok = overhead_ratio <= threshold;
    rows.push(vec![
        "ingest-memory".into(),
        ingest_batches.to_string(),
        String::new(),
        ms(memory_wall_us),
        String::new(),
        String::new(),
    ]);
    rows.push(vec![
        "ingest-durable".into(),
        ingest_batches.to_string(),
        String::new(),
        ms(durable_wall_us),
        ratio(overhead_ratio),
        if overhead_gate_ok {
            "ok".into()
        } else {
            "NO".into()
        },
    ]);
    report.push(Json::object([
        ("cell", Json::from("ingest")),
        ("batches", Json::from(ingest_batches)),
        ("memory_wall_us", Json::from(memory_wall_us)),
        ("durable_wall_us", Json::from(durable_wall_us)),
        ("overhead_ratio", Json::from(overhead_ratio)),
        ("threshold", Json::from(threshold)),
        ("overhead_gate_ok", Json::from(overhead_gate_ok)),
    ]));
    std::fs::remove_dir_all(&dir).ok();

    // --- Recovery wall vs log-tail length ---------------------------------
    for &tail in &tail_lengths {
        let dir = scratch_dir(&format!("recover-{tail}"));
        // No cadence snapshots: the whole tail replays from the log, so
        // the cell measures replay length, not snapshot luck.
        let config = DurabilityConfig::new(&dir).snapshot_every(u64::MAX);
        let engine = subject
            .builder()
            .durability(config.clone())
            .build()
            .expect("durable engine builds");
        let _ = ingest(&engine, &stream[..tail]);
        let published = engine.epoch();
        drop(engine); // the "crash": no drain, no shutdown hook

        let start = Instant::now();
        let recovered = subject
            .builder()
            .durability(config)
            .build()
            .expect("recovery builds");
        let recover_wall_us = start.elapsed().as_micros() as u64;
        let rec = recovered.recovery().expect("recovery reported").clone();
        assert_eq!(
            rec.epoch, published,
            "tail {tail}: recovery must land on the published epoch"
        );
        rows.push(vec![
            format!("recover-{tail}"),
            tail.to_string(),
            rec.replayed_records.to_string(),
            ms(recover_wall_us),
            String::new(),
            "ok".into(),
        ]);
        report.push(Json::object([
            ("cell", Json::from(format!("recover-{tail}"))),
            ("tail_batches", Json::from(tail)),
            ("replayed_records", Json::from(rec.replayed_records)),
            ("rematerialized_views", Json::from(rec.rematerialized_views)),
            ("recover_wall_us", Json::from(recover_wall_us)),
            ("recovered_epoch_ok", Json::from(true)),
        ]));
        drop(recovered);
        std::fs::remove_dir_all(&dir).ok();
    }

    report.push(Json::object([
        ("summary", Json::from(true)),
        ("overhead_ratio", Json::from(overhead_ratio)),
        ("threshold", Json::from(threshold)),
        ("meets_threshold", Json::from(overhead_gate_ok)),
    ]));

    print_table(
        "E12 · durability: ingest overhead of the epoch log, recovery wall vs tail",
        &headers,
        &rows,
    );
    println!(
        "Reading: the log appends and fsyncs once per published batch, before the\n\
         epoch swap — so the durable column pays one sequential write per publish,\n\
         not per triple, and recovery is linear in the unsnapshotted tail."
    );
    assert!(
        overhead_gate_ok,
        "durable ingest must stay within {threshold}x of in-memory \
         (got {overhead_ratio:.2}x: {memory_wall_us}us -> {durable_wall_us}us)"
    );
    finish_report(&report);
}
