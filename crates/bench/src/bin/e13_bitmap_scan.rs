//! E13 — bitmap posting lists on the maintenance hot path: indexed vs
//! run-walk planning, and within-view parallel planning.
//!
//! Three ingredients land together in PR 9 and this binary prices each:
//!
//! * **index mode** (`PlanIndexMode::Bitmap` vs `RunWalk`): the plan
//!   phase locates each touched group's observation node. Run-walk
//!   collects, sorts, and intersects subject lists from the permutation
//!   indexes per dimension; bitmap mode ANDs pre-maintained
//!   per-`(pred, value)` subject bitmaps. The sweep runs the *same*
//!   pre-generated update stream through both modes and compares the
//!   summed plan-phase walls (`PipelineTelemetry.parallel_wall_us`).
//!   Sweep A plans with one thread on purpose: inline planning measures
//!   pure plan work, no scoped-spawn noise in either mode's column.
//! * **delta sparsity × group skew**: a sparse batch (4 ops) touches a
//!   handful of groups of a ~thousand-group view — the regime where
//!   per-group lookup cost dominates planning and the bitmap index pays;
//!   a dense batch amortizes lookups over more per-key patch work.
//!   `group_skew` (the workload crate's finest-group zipf knob)
//!   concentrates ops on hot existing groups (pure patch path) vs
//!   uniform per-dimension sampling (fresh groups, create path).
//! * **within-view split** (`maintain_pipelined_split`): sweep B plans
//!   a delete-heavy stream (retractions re-evaluate groups — real
//!   per-key plan work) on 4 threads with every view's key range cut
//!   into 1/2/4 chunks — a catalog dominated by one hot view can now
//!   fill the pool instead of pinning the plan phase to one core.
//!
//! Correctness is asserted in-band: both modes (and every split) must
//! report identical deterministic maintenance counts and identical final
//! catalogs, and every final catalog must match a fresh re-evaluation
//! (bit-equality itself is proptested in sofos-maintain).
//!
//! The summary gates: bitmap plan-phase speedup on the sparse hot cell
//! ≥1.5× (full; ≥1.1× under `--smoke` so shared-runner noise cannot
//! flake CI), and the within-view split benefit (split 4 vs 1) ≥1.05×
//! on full runs on machines with enough cores to host the pool — smoke
//! runs (and starved machines) report the ratio but gate trivially.
//!
//! Run with: `cargo run -p sofos-bench --release --bin e13_bitmap_scan [--smoke]`

use sofos_bench::{finish_report, ms, print_table, ratio, sized, BenchReport, Json};
use sofos_cube::{AggOp, Facet, ViewMask};
use sofos_maintain::{Maintainer, PipelineTelemetry, PlanIndexMode};
use sofos_materialize::{materialize_view, virtual_view_stats};
use sofos_store::{Dataset, Delta, ShardRouter};
use sofos_workload::{generate_update_stream, synthetic, UpdateStreamConfig};
use std::time::Instant;

/// Catalog: the finest view (the dominant planning load), two middles,
/// and the apex.
const MASKS: [ViewMask; 4] = [
    ViewMask(0b111),
    ViewMask(0b011),
    ViewMask(0b110),
    ViewMask::APEX,
];

const SHARDS: usize = 4;

/// One sweep-A stream family: `((batch_size, batches), one pre-generated
/// delta stream per skew level)`.
type SkewStreams = ((usize, usize), Vec<Vec<Delta>>);

/// One cell's measurements: the plan-phase wall (the gated quantity),
/// the end-to-end maintenance wall, and the deterministic maintenance
/// counts every variant of the same stream must reproduce exactly.
struct Cell {
    plan_wall_us: u64,
    maint_wall_us: u64,
    groups_patched: usize,
    groups_reevaluated: usize,
    rows_inserted: usize,
    rows_retracted: usize,
    final_rows: Vec<usize>,
    all_valid: bool,
}

/// Replay `deltas` through a fresh clone of the seeded dataset under one
/// (mode, split, threads) configuration.
fn run_cell(
    seeded: &Dataset,
    facet: &Facet,
    catalog: &[(ViewMask, usize)],
    deltas: &[Delta],
    mode: PlanIndexMode,
    split: usize,
    threads: usize,
) -> Cell {
    let mut ds = seeded.clone();
    let mut views = catalog.to_vec();
    let router = ShardRouter::new(SHARDS);
    let mut maintainer = Maintainer::new(facet);
    maintainer.set_index_mode(mode);
    let mut plan = PipelineTelemetry::default();
    let mut cell = Cell {
        plan_wall_us: 0,
        maint_wall_us: 0,
        groups_patched: 0,
        groups_reevaluated: 0,
        rows_inserted: 0,
        rows_retracted: 0,
        final_rows: Vec::new(),
        all_valid: false,
    };
    for delta in deltas {
        let start = Instant::now();
        let sharded = maintainer.apply_sharded(&mut ds, delta.clone(), &router, threads);
        let rows = sharded.outcome.rows.expect("star facet");
        let outcome = maintainer
            .maintain_pipelined_split(&mut ds, Some(&rows), &mut views, threads, split)
            .expect("pipelined maintenance succeeds");
        cell.maint_wall_us += start.elapsed().as_micros() as u64;
        // The pipelined pass's parallel wall IS the plan phase (the
        // sharded scans report their own telemetry, not merged here).
        plan.merge(&outcome.telemetry);
        for cost in &outcome.report.per_view {
            cell.groups_patched += cost.groups_patched;
            cell.groups_reevaluated += cost.groups_reevaluated;
            cell.rows_inserted += cost.rows_inserted;
            cell.rows_retracted += cost.rows_retracted;
        }
    }
    cell.plan_wall_us = plan.parallel_wall_us;
    cell.all_valid = views.iter().all(|&(mask, rows)| {
        virtual_view_stats(&ds, facet, mask)
            .map(|stats| stats.rows == rows)
            .unwrap_or(false)
    });
    cell.final_rows = views.iter().map(|&(_, rows)| rows).collect();
    cell
}

fn mode_name(mode: PlanIndexMode) -> &'static str {
    match mode {
        PlanIndexMode::Bitmap => "bitmap",
        PlanIndexMode::RunWalk => "run-walk",
    }
}

fn main() {
    // Large-ish views are the point: with ~2 subjects per thousand
    // touched, group lookups dominate planning.
    let observations = sized(6000, 1200);
    let cardinalities = vec![24usize, 14, 8];
    // (label, ops per batch, batches): a sparse stream touching a few
    // groups per pass, and a dense one amortizing the per-pass overheads.
    let sparsities: Vec<(&str, usize, usize)> = vec![
        ("sparse", 4, sized(120, 40)),
        ("dense", sized(256, 64), sized(8, 4)),
    ];
    // Finest-group zipf exponents: 0 = fresh-group heavy (uniform
    // per-dimension sampling), 1.2 = hot existing groups.
    let skews: Vec<f64> = sized(vec![0.0, 1.2], vec![1.2]);
    let split_threads = 4usize;
    let splits: Vec<usize> = sized(vec![1, 2, 4], vec![1, 4]);

    let generated = synthetic::generate(&synthetic::Config {
        observations,
        cardinalities: cardinalities.clone(),
        skew: 0.8,
        agg: AggOp::Sum,
        seed: 29,
    });
    let facet = generated.default_facet().clone();
    let mut seeded = generated.dataset;
    let mut catalog = Vec::new();
    for &mask in &MASKS {
        let v = materialize_view(&mut seeded, &facet, mask).expect("view materializes");
        catalog.push((mask, v.stats.rows));
    }
    let finest_rows = catalog[0].1;

    // Pre-generate one stream per (sparsity, skew) cell; every variant
    // replays the identical deltas against its own clone of the store.
    // Sweep A streams are pure inserts: deletes trigger per-group
    // re-evaluations, a mode-independent cost that would drown the
    // lookup signal the index sweep measures.
    let streams: Vec<SkewStreams> = sparsities
        .iter()
        .map(|&(_, batch_size, batches)| {
            let per_skew = skews
                .iter()
                .enumerate()
                .map(|(i, &group_skew)| {
                    generate_update_stream(
                        &seeded,
                        &facet,
                        &UpdateStreamConfig {
                            batches,
                            batch_size,
                            insert_ratio: 1.0,
                            skew: 0.8,
                            group_skew,
                            seed: 47 + i as u64,
                            ..UpdateStreamConfig::default()
                        },
                    )
                })
                .collect();
            ((batch_size, batches), per_skew)
        })
        .collect();

    let mut report = BenchReport::new(
        "bitmap_scan",
        format!(
            "bitmap posting-list planning vs run-walk, and within-view split \
             planning; {observations} observations, finest view {finest_rows} \
             groups, delta sparsity x group skew x split factor"
        ),
    );
    let headers = [
        "sweep", "cell", "skew", "mode", "split", "thr", "batches", "ops/b", "plan ms", "maint ms",
        "patched", "valid",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let push_cell = |rows: &mut Vec<Vec<String>>,
                     report: &mut BenchReport,
                     sweep: &str,
                     label: &str,
                     group_skew: f64,
                     mode: PlanIndexMode,
                     split: usize,
                     threads: usize,
                     batch_size: usize,
                     batches: usize,
                     cell: &Cell| {
        assert!(cell.all_valid, "{sweep}/{label}/{:?}: stale catalog", mode);
        rows.push(vec![
            sweep.into(),
            label.into(),
            format!("{group_skew}"),
            mode_name(mode).into(),
            split.to_string(),
            threads.to_string(),
            batches.to_string(),
            batch_size.to_string(),
            ms(cell.plan_wall_us),
            ms(cell.maint_wall_us),
            cell.groups_patched.to_string(),
            "yes".into(),
        ]);
        report.push(Json::object([
            ("sweep", Json::from(sweep)),
            ("cell", Json::from(label)),
            ("group_skew", Json::from(group_skew)),
            ("mode", Json::from(mode_name(mode))),
            ("split", Json::from(split)),
            ("threads", Json::from(threads)),
            ("batches", Json::from(batches)),
            ("batch_size", Json::from(batch_size)),
            ("plan_wall_us", Json::from(cell.plan_wall_us)),
            ("maintenance_wall_us", Json::from(cell.maint_wall_us)),
            ("groups_patched", Json::from(cell.groups_patched)),
            ("groups_reevaluated", Json::from(cell.groups_reevaluated)),
            ("rows_inserted", Json::from(cell.rows_inserted)),
            ("rows_retracted", Json::from(cell.rows_retracted)),
            (
                "final_rows",
                Json::from(cell.final_rows.iter().sum::<usize>()),
            ),
            ("all_valid", Json::from(cell.all_valid)),
        ]));
    };

    // ---- Sweep A: index mode x sparsity x skew (single-thread plans) ----
    let mut sparse_hot: Option<(u64, u64)> = None; // (run-walk, bitmap)
    for (s, &(label, batch_size, batches)) in sparsities.iter().enumerate() {
        for (k, &group_skew) in skews.iter().enumerate() {
            let deltas = &streams[s].1[k];
            let walk = run_cell(
                &seeded,
                &facet,
                &catalog,
                deltas,
                PlanIndexMode::RunWalk,
                1,
                1,
            );
            let bitmap = run_cell(
                &seeded,
                &facet,
                &catalog,
                deltas,
                PlanIndexMode::Bitmap,
                1,
                1,
            );
            // Bit-equal planning: identical deterministic counts and
            // identical final catalogs, whatever the index answered.
            assert_eq!(
                (
                    walk.groups_patched,
                    walk.groups_reevaluated,
                    walk.rows_inserted,
                    walk.rows_retracted,
                    &walk.final_rows
                ),
                (
                    bitmap.groups_patched,
                    bitmap.groups_reevaluated,
                    bitmap.rows_inserted,
                    bitmap.rows_retracted,
                    &bitmap.final_rows
                ),
                "{label} skew {group_skew}: modes diverged"
            );
            if label == "sparse" && group_skew > 0.0 {
                sparse_hot = Some((walk.plan_wall_us, bitmap.plan_wall_us));
            }
            for (mode, cell) in [
                (PlanIndexMode::RunWalk, &walk),
                (PlanIndexMode::Bitmap, &bitmap),
            ] {
                push_cell(
                    &mut rows,
                    &mut report,
                    "index-mode",
                    label,
                    group_skew,
                    mode,
                    1,
                    1,
                    batch_size,
                    batches,
                    cell,
                );
            }
        }
    }

    // ---- Sweep B: within-view split on a re-eval-heavy stream ----------
    // Delete-heavy on purpose: retractions make the plan phase do real
    // per-group work (re-evaluation), which is exactly what splitting a
    // dominant view's key range parallelizes. Pure-insert plans are too
    // cheap per key for a wall-clock split signal.
    let hot_skew = skews[skews.len() - 1];
    let (dense_batch_size, dense_batches) = (sized(256, 64), sized(4, 2));
    let dense_hot = &generate_update_stream(
        &seeded,
        &facet,
        &UpdateStreamConfig {
            batches: dense_batches,
            batch_size: dense_batch_size,
            insert_ratio: 0.6,
            skew: 0.8,
            group_skew: hot_skew,
            seed: 53,
            ..UpdateStreamConfig::default()
        },
    );
    let mut split_walls: Vec<(usize, u64)> = Vec::new();
    let mut split_reference: Option<Vec<usize>> = None;
    for &split in &splits {
        let cell = run_cell(
            &seeded,
            &facet,
            &catalog,
            dense_hot,
            PlanIndexMode::Bitmap,
            split,
            split_threads,
        );
        match &split_reference {
            None => split_reference = Some(cell.final_rows.clone()),
            Some(reference) => assert_eq!(
                reference, &cell.final_rows,
                "split {split}: catalog diverged from split 1"
            ),
        }
        split_walls.push((split, cell.plan_wall_us));
        push_cell(
            &mut rows,
            &mut report,
            "split",
            "dense",
            hot_skew,
            PlanIndexMode::Bitmap,
            split,
            split_threads,
            dense_batch_size,
            dense_batches,
            &cell,
        );
    }

    // ---- Summary: the acceptance criteria ------------------------------
    let plan_threshold = sized(1.5, 1.1);
    let (walk_plan, bitmap_plan) = sparse_hot.expect("sweep includes the sparse hot cell");
    let plan_speedup = walk_plan as f64 / bitmap_plan.max(1) as f64;
    let meets_threshold = plan_speedup >= plan_threshold;

    let split_threshold = 1.05;
    let split1_plan = split_walls.first().expect("split 1 runs").1;
    let split_max_plan = split_walls.last().expect("deepest split runs").1;
    let split_speedup = split1_plan as f64 / split_max_plan.max(1) as f64;
    // The split is a wall-clock effect: it needs real cores under the
    // pool. Smoke cells (and starved machines) report the ratio but
    // gate trivially; full runs on a machine that can host the pool
    // must show the benefit.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let split_gate_ok = sized(
        cores < split_threads || split_speedup >= split_threshold,
        true,
    );

    rows.push(vec![
        "summary".into(),
        "sparse".into(),
        format!("{hot_skew}"),
        "bitmap/walk".into(),
        String::new(),
        "1".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        ratio(plan_speedup),
        if meets_threshold { "yes" } else { "NO" }.into(),
    ]);
    rows.push(vec![
        "summary".into(),
        "dense".into(),
        format!("{hot_skew}"),
        "split 4 vs 1".into(),
        String::new(),
        split_threads.to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        ratio(split_speedup),
        if split_gate_ok { "yes" } else { "NO" }.into(),
    ]);
    report.push(Json::object([
        ("summary", Json::from(true)),
        ("sparse_runwalk_plan_us", Json::from(walk_plan)),
        ("sparse_bitmap_plan_us", Json::from(bitmap_plan)),
        ("plan_speedup", Json::from(plan_speedup)),
        ("plan_threshold", Json::from(plan_threshold)),
        ("meets_threshold", Json::from(meets_threshold)),
        ("split_split1_plan_us", Json::from(split1_plan)),
        ("split_deepest_plan_us", Json::from(split_max_plan)),
        ("split_speedup", Json::from(split_speedup)),
        ("split_threshold", Json::from(split_threshold)),
        ("cores", Json::from(cores)),
        ("split_gate_ok", Json::from(split_gate_ok)),
    ]));

    print_table(
        "E13 · bitmap posting-list planning vs run-walk + within-view split",
        &headers,
        &rows,
    );
    assert!(
        meets_threshold,
        "bitmap planning must beat run-walk by >={plan_threshold}x on the sparse hot \
         cell (run-walk {walk_plan}us vs bitmap {bitmap_plan}us)"
    );
    assert!(
        split_gate_ok,
        "within-view split must cut the dense plan wall by >={split_threshold}x \
         (split 1 {split1_plan}us vs deepest {split_max_plan}us)"
    );
    println!(
        "Reading: 'index-mode' rows replay one pure-insert stream through both\n\
         planners on a single thread (pure plan work, no spawn noise): run-walk\n\
         locates each touched group by collecting and intersecting subject lists\n\
         from the permutation indexes, bitmap mode ANDs maintained posting-list\n\
         bitmaps. Counts ('patched' etc.) are asserted identical — the modes plan\n\
         the same patches. 'split' rows plan a delete-heavy stream (retractions\n\
         re-evaluate groups: real per-key plan work) on 4 threads with every\n\
         view's key range cut into 1/2/4 chunks; the plan wall drops as the\n\
         dominant view stops serializing the phase (gated only where the machine\n\
         can actually host the pool). Walls are volatile (bench_diff reports,\n\
         never gates them); the gated verdicts are the two summary booleans."
    );
    finish_report(&report);
}
