//! E14 — selection at lattice scale: anytime local search vs full greedy.
//!
//! PR 10 adds `sofos_select::anytime` — hill-climbing with swap/add/drop
//! moves seeded from greedy-on-a-sample — precisely for the regime this
//! binary sweeps: lattices 10–100× beyond the hands-on demo's `2^4`
//! cubes, where full-lattice greedy re-prices every candidate on every
//! pick and the wall grows with `2^d`. Three measurements per grid cell:
//!
//! * **full greedy** (`greedy_select_with`) over all `2^d` candidates —
//!   the quality reference and the wall to beat;
//! * **anytime local search** (`local_search_select_with`), run to
//!   convergence (unlimited `SearchBudget`, the configured restarts) over
//!   a candidate pool of a few hundred views (demand masks, their
//!   pairwise unions, apex/base, random fill) — the incremental
//!   re-pricing means each move re-prices only touched views;
//! * **interrupt-at-deadline** (largest cell only): the same search under
//!   a deadline clock that expires after a handful of polls, proving the
//!   anytime contract — a *valid* best-so-far outcome (within budget,
//!   never worse than its seed) long before convergence.
//!
//! Lattices are sized analytically (`estimate_lattice`: per-dimension
//! cardinalities × observation cap) rather than by evaluating `2^d` view
//! queries — the sizing pass would otherwise dwarf selection itself and
//! cap the sweep at toy scale. Both selectors price from the *same*
//! estimates, so quality ratios compare like with like.
//!
//! The summary gates, on the largest cell: local-search combined cost
//! ≤1.05× greedy's, at ≤0.5× greedy's wall (≤0.8× under `--smoke`, where
//! lattices are small enough that greedy is only a few milliseconds and
//! constant overheads loom larger). Costs, move counts, and the
//! interrupt verdict are deterministic (seeded RNG, analytic sizing);
//! walls are volatile (`bench_diff` reports, never gates them).
//!
//! Run with: `cargo run -p sofos-bench --release --bin e14_select_scale [--smoke]`
//!
//! Emits `BENCH_select_scale.json`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sofos_bench::{finish_report, ms, print_table, ratio, sized, BenchReport, Json};
use sofos_cost::{
    estimate_lattice, AggValuesCost, CostContext, TouchedGroupsMaintenance, UpdateRates,
};
use sofos_cube::{Lattice, ViewMask};
use sofos_select::{
    local_search_select_with, Budget, LocalSearchConfig, Objective, SearchBudget, SearchReport,
    SelectionOutcome, WorkloadProfile,
};
use sofos_workload::synthetic;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// λ of the combined objective: maintenance pressure high enough that
/// drop/swap moves carry real signal, low enough that query cost still
/// dominates the ranking.
const LAMBDA: f64 = 0.5;

/// Selection quality and wall for one selector on one cell. Walls are the
/// minimum over `reps` identical runs (both selectors are deterministic,
/// so repetition only damps scheduler noise, never changes the answer).
struct Measured {
    outcome: SelectionOutcome,
    report: Option<SearchReport>,
    wall_us: u64,
}

fn measure<F>(reps: usize, mut run: F) -> Measured
where
    F: FnMut() -> (SelectionOutcome, Option<SearchReport>),
{
    let mut best_wall = u64::MAX;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let (outcome, report) = run();
        best_wall = best_wall.min(start.elapsed().as_micros() as u64);
        if let Some((prev, _)) = &result {
            assert_eq!(prev, &outcome, "selector must be deterministic across reps");
        }
        result = Some((outcome, report));
    }
    let (outcome, report) = result.expect("at least one rep");
    Measured {
        outcome,
        report,
        wall_us: best_wall,
    }
}

/// Combined objective value of an outcome (query cost + λ-weighted
/// upkeep) — the quantity both selectors minimize.
fn combined(outcome: &SelectionOutcome) -> f64 {
    outcome.estimated_cost + outcome.upkeep_cost
}

fn main() {
    // View-count targets; `with_view_target` turns each into the smallest
    // covering dimension count (2^10..2^13 full, 2^8/2^10 smoke).
    let targets: Vec<usize> = sized(vec![1024, 4096, 8192], vec![256, 1024]);
    let observations = sized(4000, 1200);
    let demand_count = sized(48usize, 16);
    let budget_views = sized(12, 8);
    let pool_target = sized(256, 96);
    let reps = 3;
    let rates = UpdateRates::new(4.0, 1.0);

    let mut report = BenchReport::new(
        "select_scale",
        format!(
            "anytime local search vs full greedy at lattice scale; view targets \
             {targets:?}, {observations} observations, {demand_count} demands, \
             budget {budget_views} views, lambda {LAMBDA}"
        ),
    );
    let headers = [
        "cell",
        "views",
        "dims",
        "greedy ms",
        "local ms",
        "wall",
        "greedy cost",
        "local cost",
        "quality",
        "moves",
        "verdict",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut largest: Option<(f64, f64)> = None; // (quality_ratio, wall_ratio)

    for (c, &views) in targets.iter().enumerate() {
        let config = synthetic::Config::with_view_target(views, observations);
        let generated = synthetic::generate(&config);
        let facet = generated.default_facet().clone();
        let lattice = Lattice::new(facet.clone());
        let num_views = lattice.num_views();
        let dims = config.cardinalities.len();

        // Analytic sizing: the piece that keeps 2^13 lattices affordable.
        let estimated = estimate_lattice(&lattice, &config.cardinalities, config.observations);
        let base = generated.dataset.base_stats();
        let ctx = CostContext {
            facet: &facet,
            view_stats: &estimated,
            base: &base,
        };

        // A seeded demand profile over the whole lattice; duplicates fold
        // into weights, so hot views carry more demand.
        let mut rng = StdRng::seed_from_u64(71 + c as u64);
        let profile = WorkloadProfile::from_masks(
            (0..demand_count).map(|_| ViewMask(rng.gen_range(0..num_views))),
        );
        let objective =
            Objective::maintenance_aware(&AggValuesCost, &TouchedGroupsMaintenance, rates, LAMBDA);
        let budget = Budget::Views(budget_views);

        let greedy = measure(reps, || {
            (
                sofos_select::greedy_select_with(&ctx, &lattice, &objective, &profile, budget),
                None,
            )
        });
        let search_config = LocalSearchConfig {
            rng_seed: 0xE14 + c as u64,
            pool_target,
            ..LocalSearchConfig::default()
        };
        let local = measure(reps, || {
            let (outcome, search) = local_search_select_with(
                &ctx,
                &lattice,
                &objective,
                &profile,
                budget,
                &search_config,
                &SearchBudget::unlimited(),
            );
            (outcome, Some(search))
        });
        let search = local.report.as_ref().expect("local search reports");
        assert!(
            search.converged,
            "unlimited budget must run every restart to convergence"
        );
        assert!(local.outcome.selected.len() <= budget_views);

        let quality_ratio = combined(&local.outcome) / combined(&greedy.outcome).max(f64::EPSILON);
        let wall_ratio = local.wall_us as f64 / greedy.wall_us.max(1) as f64;
        let is_largest = c == targets.len() - 1;
        if is_largest {
            largest = Some((quality_ratio, wall_ratio));
        }

        rows.push(vec![
            "scale".into(),
            num_views.to_string(),
            dims.to_string(),
            ms(greedy.wall_us),
            ms(local.wall_us),
            ratio(wall_ratio),
            format!("{:.1}", combined(&greedy.outcome)),
            format!("{:.1}", combined(&local.outcome)),
            ratio(quality_ratio),
            search.moves_tried.to_string(),
            "ok".into(),
        ]);
        report.push(Json::object([
            ("cell", Json::from("scale")),
            ("views", Json::from(num_views)),
            ("dims", Json::from(dims)),
            ("demands", Json::from(demand_count)),
            ("budget_views", Json::from(budget_views)),
            ("greedy_cost", Json::from(combined(&greedy.outcome))),
            ("local_cost", Json::from(combined(&local.outcome))),
            ("quality_ratio", Json::from(quality_ratio)),
            ("greedy_wall_us", Json::from(greedy.wall_us)),
            ("local_wall_us", Json::from(local.wall_us)),
            ("wall_ratio", Json::from(wall_ratio)),
            ("greedy_selected", Json::from(greedy.outcome.selected.len())),
            ("local_selected", Json::from(local.outcome.selected.len())),
            ("moves_tried", Json::from(search.moves_tried)),
            ("moves_accepted", Json::from(search.moves_accepted)),
            ("restarts", Json::from(search.restarts)),
            ("views_priced", Json::from(search.views_priced)),
            ("converged", Json::from(search.converged)),
        ]));

        // ---- Interrupt-at-deadline: the anytime contract, largest cell --
        if is_largest {
            // A deadline clock that "expires" after a few dozen polls: the
            // budget samples it once per proposal, so the search is cut
            // off deterministically mid-climb, far before convergence.
            let polls = Arc::new(AtomicU64::new(0));
            let clock = {
                let polls = polls.clone();
                Arc::new(move || polls.fetch_add(1, Ordering::SeqCst))
            };
            let deadline_budget = SearchBudget::unlimited().with_deadline(clock, 48);
            let (outcome, search) = local_search_select_with(
                &ctx,
                &lattice,
                &objective,
                &profile,
                budget,
                &search_config,
                &deadline_budget,
            );
            assert!(
                search.budget_exhausted && !search.converged,
                "the deadline must interrupt the search mid-climb"
            );
            assert!(
                search.final_cost <= search.seed_cost + 1e-9,
                "interrupted best-so-far worse than its seed: {} > {}",
                search.final_cost,
                search.seed_cost
            );
            assert!(
                outcome.selected.len() <= budget_views
                    && outcome.selected.iter().all(|v| v.0 < num_views),
                "interrupted outcome must still be a valid selection"
            );
            let interrupted_ratio =
                combined(&outcome) / combined(&greedy.outcome).max(f64::EPSILON);
            rows.push(vec![
                "interrupt".into(),
                num_views.to_string(),
                dims.to_string(),
                String::new(),
                String::new(),
                String::new(),
                format!("{:.1}", combined(&greedy.outcome)),
                format!("{:.1}", combined(&outcome)),
                ratio(interrupted_ratio),
                search.moves_tried.to_string(),
                "valid".into(),
            ]);
            report.push(Json::object([
                ("cell", Json::from("interrupt")),
                ("views", Json::from(num_views)),
                ("deadline_polls", Json::from(48u64)),
                ("moves_tried", Json::from(search.moves_tried)),
                ("moves_accepted", Json::from(search.moves_accepted)),
                ("budget_exhausted", Json::from(search.budget_exhausted)),
                ("converged", Json::from(search.converged)),
                ("interrupted_cost", Json::from(combined(&outcome))),
                ("interrupted_ratio", Json::from(interrupted_ratio)),
                ("never_worse_than_seed", Json::from(true)),
                ("selected_views", Json::from(outcome.selected.len())),
            ]));
        }
    }

    // ---- Summary: the acceptance criteria ------------------------------
    let quality_threshold = 1.05;
    let wall_threshold = sized(0.5, 0.8);
    let (quality_ratio, wall_ratio) = largest.expect("sweep includes the largest cell");
    let quality_ok = quality_ratio <= quality_threshold;
    let wall_ok = wall_ratio <= wall_threshold;

    rows.push(vec![
        "summary".into(),
        targets.last().expect("non-empty sweep").to_string(),
        String::new(),
        String::new(),
        String::new(),
        ratio(wall_ratio),
        String::new(),
        String::new(),
        ratio(quality_ratio),
        String::new(),
        if quality_ok && wall_ok { "yes" } else { "NO" }.into(),
    ]);
    report.push(Json::object([
        ("summary", Json::from(true)),
        ("quality_ratio", Json::from(quality_ratio)),
        ("quality_threshold", Json::from(quality_threshold)),
        ("quality_ok", Json::from(quality_ok)),
        ("wall_ratio", Json::from(wall_ratio)),
        ("wall_threshold", Json::from(wall_threshold)),
        ("wall_ok", Json::from(wall_ok)),
    ]));

    print_table(
        "E14 · anytime local search vs full greedy at lattice scale",
        &headers,
        &rows,
    );
    assert!(
        quality_ok,
        "local search must match greedy quality within {quality_threshold}x on the \
         largest lattice (got {quality_ratio:.3}x)"
    );
    assert!(
        wall_ok,
        "local search must finish within {wall_threshold}x of greedy's wall on the \
         largest lattice (got {wall_ratio:.3}x)"
    );
    println!(
        "Reading: 'scale' rows run full-lattice greedy and converged local search\n\
         over the same analytically-sized lattice, demands, and combined objective\n\
         (query + {LAMBDA}*maintenance); 'quality' is local/greedy combined cost\n\
         (<=1 means local matched or beat greedy), 'wall' is the wall-clock ratio.\n\
         The 'interrupt' row cuts the same search off after ~48 deadline polls:\n\
         the returned catalog is still valid and never worse than its seed — the\n\
         anytime contract. Costs and move counts are deterministic; walls are\n\
         volatile (bench_diff reports, never gates them); the gated verdicts are\n\
         the summary booleans."
    );
    finish_report(&report);
}
