//! E1 — "Exploring Cost Models" (demo §4, Figure 3 panel ④).
//!
//! For each of the three demo datasets, compare all six cost models at a
//! fixed view budget on an identical 40-query workload: selection time,
//! materialization time, storage amplification, query latency, speedup.
//!
//! Run with: `cargo run -p sofos-bench --release --bin e1_cost_models`

use sofos_core::{compare_cost_models, EngineConfig};
use sofos_cost::CostModelKind;
use sofos_workload::all_datasets;

fn main() {
    let mut config = EngineConfig::default();
    config.workload.num_queries = 40;
    config.workload.filter_probability = 0.4;
    config.timing_reps = 3;
    config.train.epochs = 120;

    for generated in all_datasets() {
        let facet = generated.default_facet();
        println!(
            "\n================ E1 · {} ({} triples, facet `{}`, {} dims) ================\n",
            generated.name,
            generated.dataset.total_triples(),
            facet.id,
            facet.dim_count()
        );
        let report = compare_cost_models(
            generated.name,
            &generated.dataset,
            facet,
            &CostModelKind::ALL,
            &config,
        )
        .expect("comparison runs");
        println!("{}", report.to_table());
        for row in &report.models {
            assert!(row.all_valid, "{}: invalid answers", row.model);
            println!("  {:<12} -> {}", row.model, row.selected_views.join(", "));
        }
    }
}
