//! E1 — "Exploring Cost Models" (demo §4, Figure 3 panel ④).
//!
//! For each of the three demo datasets, compare all six cost models at a
//! fixed view budget on an identical 40-query workload: selection time,
//! materialization time, storage amplification, query latency, speedup.
//!
//! Run with: `cargo run -p sofos-bench --release --bin e1_cost_models [--smoke]`
//!
//! Emits `BENCH_cost_models.json`.

use sofos_bench::{finish_report, sized, BenchReport, Json};
use sofos_core::{compare_cost_models, EngineConfig};
use sofos_cost::CostModelKind;
use sofos_workload::all_datasets;

fn main() {
    let mut config = EngineConfig::default();
    config.workload.num_queries = sized(40, 10);
    config.workload.filter_probability = 0.4;
    config.timing_reps = sized(3, 1);
    config.train.epochs = sized(120, 25);

    let mut report = BenchReport::new(
        "cost_models",
        format!(
            "all six cost models x demo datasets, {} queries, budget 4 views",
            config.workload.num_queries
        ),
    );

    for generated in all_datasets() {
        let facet = generated.default_facet();
        println!(
            "\n================ E1 · {} ({} triples, facet `{}`, {} dims) ================\n",
            generated.name,
            generated.dataset.total_triples(),
            facet.id,
            facet.dim_count()
        );
        let comparison = compare_cost_models(
            generated.name,
            &generated.dataset,
            facet,
            &CostModelKind::ALL,
            &config,
        )
        .expect("comparison runs");
        println!("{}", comparison.to_table());
        for row in &comparison.models {
            assert!(row.all_valid, "{}: invalid answers", row.model);
            println!("  {:<12} -> {}", row.model, row.selected_views.join(", "));
            report.push(Json::object([
                ("dataset", Json::from(generated.name)),
                ("model", Json::from(row.model.clone())),
                ("selected_views", Json::from(row.selected_views.len())),
                ("training_us", Json::from(row.training_us)),
                ("selection_us", Json::from(row.selection_us)),
                ("materialization_us", Json::from(row.materialization_us)),
                ("materialized_triples", Json::from(row.materialized_triples)),
                (
                    "storage_amplification",
                    Json::from(row.storage_amplification),
                ),
                ("view_hits", Json::from(row.view_hits)),
                ("fallbacks", Json::from(row.fallbacks)),
                ("query_total_us", Json::from(row.latency.total_us)),
                ("query_p95_us", Json::from(row.latency.p95_us)),
                ("speedup", Json::from(row.speedup)),
                ("all_valid", Json::from(row.all_valid)),
            ]));
        }
    }

    finish_report(&report);
}
