//! E2 — "Exploration of the Full Lattice" (demo §4): why materializing
//! everything is impractical. Sweeps the dimension count d = 1..=6 and
//! reports lattice size (2^d views), total materialized rows/triples/bytes
//! and full-materialization wall time.
//!
//! Run with: `cargo run -p sofos-bench --release --bin e2_lattice [--smoke]`
//!
//! Emits `BENCH_lattice.json`.

use sofos_bench::{finish_report, ms, print_table, sized, BenchReport, Json};
use sofos_core::measure_once;
use sofos_cube::Lattice;
use sofos_materialize::materialize_view;
use sofos_workload::synthetic;

fn main() {
    let max_dims = sized(6usize, 4);
    let observations = sized(400, 120);
    let mut report = BenchReport::new(
        "lattice",
        format!("full-lattice materialization, d = 1..={max_dims}, {observations} observations"),
    );
    let mut rows = Vec::new();
    for dims in 1..=max_dims {
        let generated = synthetic::generate(&synthetic::Config::with_dims(dims, observations));
        let facet = generated.default_facet().clone();
        let lattice = Lattice::new(facet.clone());
        let base_bytes = generated.dataset.estimated_bytes();

        let mut dataset = generated.dataset.clone();
        let (elapsed_us, stats) = measure_once(|| {
            let mut totals = (0usize, 0usize); // (rows, triples)
            for mask in lattice.views() {
                let view =
                    materialize_view(&mut dataset, &facet, mask).expect("materialization succeeds");
                totals.0 += view.stats.rows;
                totals.1 += view.stats.triples;
            }
            totals
        });
        let expanded_bytes = dataset.estimated_bytes();
        let amplification = expanded_bytes as f64 / base_bytes as f64;

        rows.push(vec![
            dims.to_string(),
            lattice.num_views().to_string(),
            lattice.num_edges().to_string(),
            stats.0.to_string(),
            stats.1.to_string(),
            format!("{amplification:.2}"),
            ms(elapsed_us),
        ]);
        report.push(Json::object([
            ("dims", Json::from(dims)),
            ("views", Json::from(lattice.num_views())),
            ("edges", Json::from(lattice.num_edges())),
            ("rows", Json::from(stats.0)),
            ("triples", Json::from(stats.1)),
            ("space_amplification", Json::from(amplification)),
            ("materialize_us", Json::from(elapsed_us)),
        ]));
    }
    print_table(
        &format!(
            "E2 · full-lattice materialization vs dimension count ({observations} observations)"
        ),
        &[
            "dims",
            "views",
            "edges",
            "rows",
            "triples",
            "space amp",
            "time ms",
        ],
        &rows,
    );
    println!("Reading: views double per dimension; space amplification and");
    println!("materialization time grow with them — the motivation for selecting k views.");
    finish_report(&report);
}
