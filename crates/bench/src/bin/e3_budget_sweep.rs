//! E3 — the "User Selected Views" sweet spot (demo §4): sweep the view
//! budget k = 0..2^d and chart query time against space amplification.
//! With `--bytes` the sweep uses byte budgets instead of view counts
//! (the paper's "up to a certain memory budget" variant).
//!
//! Run with: `cargo run -p sofos-bench --release --bin e3_budget_sweep [--bytes] [--smoke]`
//!
//! Emits `BENCH_budget_sweep.json`.

use sofos_bench::{finish_report, ms, print_table, ratio, sized, BenchReport, Json};
use sofos_core::{run_offline, run_online, EngineConfig, SizedLattice};
use sofos_cost::CostModelKind;
use sofos_select::{Budget, WorkloadProfile};
use sofos_workload::{dbpedia, generate_workload, WorkloadConfig};

fn main() {
    let by_bytes = std::env::args().any(|a| a == "--bytes");
    let generated = dbpedia::generate(&dbpedia::Config::default());
    let facet = generated.default_facet().clone();
    let sized_lattice = SizedLattice::compute(&generated.dataset, &facet).expect("sizing");
    let workload = generate_workload(
        &generated.dataset,
        &facet,
        &WorkloadConfig {
            num_queries: sized(30, 10),
            ..WorkloadConfig::default()
        },
    );
    let profile = WorkloadProfile::from_masks(workload.iter().map(|q| q.required));
    let timing_reps = sized(3, 1);
    let baseline = run_online(
        &generated.dataset,
        &facet,
        &[],
        &workload,
        timing_reps,
        false,
    )
    .expect("baseline")
    .summary;

    let mut config = EngineConfig {
        timing_reps,
        ..EngineConfig::default()
    };

    let budgets: Vec<Budget> = if by_bytes {
        let full: usize = sized_lattice.stats.values().map(|s| s.bytes).sum();
        (0..=8).map(|i| Budget::Bytes(full * i / 8)).collect()
    } else {
        (0..=sized_lattice.lattice.num_views() as usize)
            .map(Budget::Views)
            .collect()
    };

    let mut report = BenchReport::new(
        "budget_sweep",
        format!(
            "budget sweep ({}) on {}, {} queries",
            if by_bytes { "bytes" } else { "views" },
            generated.name,
            workload.len()
        ),
    );
    let mut rows = Vec::new();
    for budget in budgets {
        config.budget = budget;
        let mut expanded = generated.dataset.clone();
        let offline = run_offline(
            &mut expanded,
            &sized_lattice,
            &profile,
            CostModelKind::AggValues,
            &config,
        )
        .expect("offline");
        let online = run_online(
            &expanded,
            &facet,
            &offline.view_catalog(),
            &workload,
            config.timing_reps,
            true,
        )
        .expect("online");
        assert!(online.all_valid);
        let speedup = baseline.total_us as f64 / online.summary.total_us.max(1) as f64;
        rows.push(vec![
            match budget {
                Budget::Views(k) => format!("{k} views"),
                Budget::Bytes(b) => format!("{b} B"),
            },
            offline.selection.selected.len().to_string(),
            format!("{}/{}", online.view_hits, workload.len()),
            ms(online.summary.total_us),
            format!("{:.3}", offline.storage_amplification()),
            ratio(speedup),
        ]);
        report.push(Json::object([
            (
                "budget",
                match budget {
                    Budget::Views(k) => Json::from(format!("views:{k}")),
                    Budget::Bytes(b) => Json::from(format!("bytes:{b}")),
                },
            ),
            (
                "selected_views",
                Json::from(offline.selection.selected.len()),
            ),
            ("view_hits", Json::from(online.view_hits)),
            ("fallbacks", Json::from(online.fallbacks)),
            ("query_total_us", Json::from(online.summary.total_us)),
            (
                "storage_amplification",
                Json::from(offline.storage_amplification()),
            ),
            ("speedup", Json::from(speedup)),
        ]));
    }
    print_table(
        &format!(
            "E3 · budget sweep on {} (facet `{}`, {} queries; baseline {} ms)",
            generated.name,
            facet.id,
            workload.len(),
            ms(baseline.total_us),
        ),
        &[
            "budget",
            "views",
            "hits",
            "total ms",
            "space amp",
            "speedup",
        ],
        &rows,
    );
    println!("Reading: the sweet spot is the smallest budget whose speedup plateaus —");
    println!("beyond it, space amplification keeps rising with no latency return.");
    finish_report(&report);
}
