//! E3 — the "User Selected Views" sweet spot (demo §4): sweep the view
//! budget k = 0..2^d and chart query time against space amplification.
//! With `--bytes` the sweep uses byte budgets instead of view counts
//! (the paper's "up to a certain memory budget" variant).
//!
//! Run with: `cargo run -p sofos-bench --release --bin e3_budget_sweep [--bytes]`

use sofos_bench::{ms, print_table, ratio};
use sofos_core::{run_offline, run_online, EngineConfig, SizedLattice};
use sofos_cost::CostModelKind;
use sofos_select::{Budget, WorkloadProfile};
use sofos_workload::{dbpedia, generate_workload, WorkloadConfig};

fn main() {
    let by_bytes = std::env::args().any(|a| a == "--bytes");
    let generated = dbpedia::generate(&dbpedia::Config::default());
    let facet = generated.default_facet().clone();
    let sized = SizedLattice::compute(&generated.dataset, &facet).expect("sizing");
    let workload = generate_workload(
        &generated.dataset,
        &facet,
        &WorkloadConfig {
            num_queries: 30,
            ..WorkloadConfig::default()
        },
    );
    let profile = WorkloadProfile::from_masks(workload.iter().map(|q| q.required));
    let baseline = run_online(&generated.dataset, &facet, &[], &workload, 3, false)
        .expect("baseline")
        .summary;

    let mut config = EngineConfig {
        timing_reps: 3,
        ..EngineConfig::default()
    };

    let budgets: Vec<Budget> = if by_bytes {
        let full: usize = sized.stats.values().map(|s| s.bytes).sum();
        (0..=8).map(|i| Budget::Bytes(full * i / 8)).collect()
    } else {
        (0..=sized.lattice.num_views() as usize)
            .map(Budget::Views)
            .collect()
    };

    let mut rows = Vec::new();
    for budget in budgets {
        config.budget = budget;
        let mut expanded = generated.dataset.clone();
        let offline = run_offline(
            &mut expanded,
            &sized,
            &profile,
            CostModelKind::AggValues,
            &config,
        )
        .expect("offline");
        let online = run_online(
            &expanded,
            &facet,
            &offline.view_catalog(),
            &workload,
            config.timing_reps,
            true,
        )
        .expect("online");
        assert!(online.all_valid);
        rows.push(vec![
            match budget {
                Budget::Views(k) => format!("{k} views"),
                Budget::Bytes(b) => format!("{b} B"),
            },
            offline.selection.selected.len().to_string(),
            format!("{}/{}", online.view_hits, workload.len()),
            ms(online.summary.total_us),
            format!("{:.3}", offline.storage_amplification()),
            ratio(baseline.total_us as f64 / online.summary.total_us.max(1) as f64),
        ]);
    }
    print_table(
        &format!(
            "E3 · budget sweep on {} (facet `{}`, {} queries; baseline {} ms)",
            generated.name,
            facet.id,
            workload.len(),
            ms(baseline.total_us),
        ),
        &[
            "budget",
            "views",
            "hits",
            "total ms",
            "space amp",
            "speedup",
        ],
        &rows,
    );
    println!("Reading: the sweet spot is the smallest budget whose speedup plateaus —");
    println!("beyond it, space amplification keeps rising with no latency return.");
}
