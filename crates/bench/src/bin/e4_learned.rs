//! E4 — the learned cost model (§3.1): training convergence and prediction
//! quality (MAE + Spearman rank correlation against measured view-query
//! times) as a function of training-set size, across the demo datasets.
//!
//! Run with: `cargo run -p sofos-bench --release --bin e4_learned [--smoke]`
//!
//! Emits `BENCH_learned.json`.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use sofos_bench::{finish_report, sized, BenchReport, Json};
use sofos_core::SizedLattice;
use sofos_cost::{regression_metrics, LearnedCostModel, TrainConfig};
use sofos_cube::ViewMask;
use sofos_workload::all_datasets;

fn main() {
    let epochs = sized(300, 60);
    let mut datasets = all_datasets();
    if sofos_bench::smoke() {
        datasets.truncate(1);
    }
    let mut report = BenchReport::new(
        "learned",
        format!("learned-model quality vs training fraction, {epochs} epochs"),
    );
    println!("== E4 · learned cost model: prediction quality vs training size ==\n");
    for generated in datasets {
        let facet = generated.default_facet().clone();
        let sized_lattice = SizedLattice::compute(&generated.dataset, &facet).expect("sizing");
        let ctx = sized_lattice.context();

        // Ground truth: measured view-query time per lattice view.
        let mut all: Vec<(ViewMask, f64)> = sized_lattice
            .timings_us
            .iter()
            .map(|(&m, &us)| (m, us as f64))
            .collect();
        all.sort_by_key(|(m, _)| m.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        all.shuffle(&mut rng);

        println!(
            "--- {} (facet `{}`, {} views) ---",
            generated.name,
            facet.id,
            all.len()
        );
        println!(
            "{:<10} {:>12} {:>10} {:>12}",
            "train n", "final MSE", "MAE µs", "Spearman"
        );
        for fraction in [0.25, 0.5, 0.75, 1.0] {
            let n = ((all.len() as f64) * fraction).ceil() as usize;
            let train = &all[..n.max(2).min(all.len())];
            let mut model = LearnedCostModel::new(&facet, 11);
            let history = model.fit(
                &ctx,
                train,
                TrainConfig {
                    epochs,
                    ..TrainConfig::default()
                },
            );
            // Evaluate on the *whole* lattice (train ∪ held-out).
            let predictions: Vec<f64> = all.iter().map(|(m, _)| model.predict(&ctx, *m)).collect();
            let truths: Vec<f64> = all.iter().map(|(_, t)| *t).collect();
            let metrics = regression_metrics(&predictions, &truths);
            let final_mse = history.last().copied().unwrap_or(f64::NAN);
            println!(
                "{:<10} {:>12.4} {:>10.1} {:>12.3}",
                train.len(),
                final_mse,
                metrics.mae,
                metrics.spearman
            );
            report.push(Json::object([
                ("dataset", Json::from(generated.name)),
                ("train_n", Json::from(train.len())),
                ("train_fraction", Json::from(fraction)),
                ("final_mse", Json::from(final_mse)),
                ("mae_us", Json::from(metrics.mae)),
                ("spearman", Json::from(metrics.spearman)),
            ]));
        }
        println!();
    }
    println!("Reading: rank correlation is what matters for selection; it should rise");
    println!("with training size — and remains imperfect, one of the paper's pitfalls.");
    finish_report(&report);
}
