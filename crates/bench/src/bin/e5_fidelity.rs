//! E5 — the paper's core claim (§3): "in the relational case … there is a
//! linear correlation between number of tuples and running time. This
//! linear correlation does not trivially hold in the case of knowledge
//! graphs."
//!
//! For every demo dataset this experiment measures, per lattice view, the
//! actual time to answer a covered query from that view, then reports the
//! Spearman rank correlation between each static cost statistic
//! (triples / agg-values / nodes) and the measured time. Correlations far
//! below 1 are exactly the pitfall SOFOS demonstrates.
//!
//! Run with: `cargo run -p sofos-bench --release --bin e5_fidelity [--smoke]`
//!
//! Emits `BENCH_fidelity.json`.

use sofos_bench::{finish_report, print_table, sized, BenchReport, Json};
use sofos_core::{measure_median, SizedLattice};
use sofos_cost::spearman;
use sofos_cube::facet_query;
use sofos_materialize::materialize_view;
use sofos_rewrite::{analyze_query, rewrite_query};
use sofos_sparql::{CompareOp, Evaluator, Expr};
use sofos_workload::{all_datasets, derivable_aggs, dimension_values};

fn main() {
    let reps = sized(5, 2);
    let mut datasets = all_datasets();
    if sofos_bench::smoke() {
        datasets.truncate(1);
    }
    let mut report = BenchReport::new(
        "fidelity",
        format!("Spearman(cost statistic, measured time), median of {reps} reps"),
    );
    let mut identity_rows = Vec::new();
    let mut mixed_rows = Vec::new();
    for generated in datasets {
        let facet = generated.default_facet().clone();
        let sized_lattice = SizedLattice::compute(&generated.dataset, &facet).expect("sizing");
        let agg = derivable_aggs(&facet)[0];
        let dim_values = dimension_values(&generated.dataset, &facet);

        // Materialize the full lattice once.
        let mut expanded = generated.dataset.clone();
        for mask in sized_lattice.lattice.views() {
            materialize_view(&mut expanded, &facet, mask).expect("materializes");
        }
        let evaluator = Evaluator::new(&expanded);

        // Series 1 — identity: answer the exactly-matching query from each
        // view. Series 2 — mixed: a *coarser* query with a filter on the
        // dropped dimension, answered from the same view (re-aggregation +
        // selection, the realistic online path).
        let mut triples = Vec::new();
        let mut rows_stat = Vec::new();
        let mut nodes = Vec::new();
        let mut identity_times = Vec::new();
        let mut mixed_triples = Vec::new();
        let mut mixed_times = Vec::new();
        for mask in sized_lattice.lattice.views() {
            let query = facet_query(&facet, mask, agg, vec![]);
            let analysis = analyze_query(&facet, &query).expect("facet query analyzes");
            let rewritten = rewrite_query(&facet, &analysis, mask);
            let (us, result) = measure_median(reps, || evaluator.evaluate(&rewritten));
            result.expect("query evaluates");
            let stats = &sized_lattice.stats[&mask];
            triples.push(stats.triples as f64);
            rows_stat.push(stats.rows as f64);
            nodes.push(stats.nodes as f64);
            identity_times.push(us as f64);

            // Mixed: drop the view's highest dimension, filter on it.
            if let Some(&dropped) = mask.dims().last() {
                let coarser = mask.without(dropped);
                if let Some(value) = dim_values[dropped].first() {
                    let filter = Expr::Compare(
                        CompareOp::Eq,
                        Box::new(Expr::var(facet.dimensions[dropped].var.clone())),
                        Box::new(Expr::Const(value.clone())),
                    );
                    let q = facet_query(&facet, coarser, agg, vec![filter]);
                    let a = analyze_query(&facet, &q).expect("filtered query analyzes");
                    debug_assert!(mask.covers(a.required));
                    let rewritten = rewrite_query(&facet, &a, mask);
                    let (us, result) = measure_median(reps, || evaluator.evaluate(&rewritten));
                    result.expect("query evaluates");
                    mixed_triples.push(stats.triples as f64);
                    mixed_times.push(us as f64);
                }
            }
        }

        let s_triples = spearman(&triples, &identity_times);
        let s_rows = spearman(&rows_stat, &identity_times);
        let s_nodes = spearman(&nodes, &identity_times);
        let s_mixed = spearman(&mixed_triples, &mixed_times);
        identity_rows.push(vec![
            generated.name.to_string(),
            sized_lattice.lattice.num_views().to_string(),
            format!("{s_triples:.3}"),
            format!("{s_rows:.3}"),
            format!("{s_nodes:.3}"),
        ]);
        mixed_rows.push(vec![
            generated.name.to_string(),
            mixed_times.len().to_string(),
            format!("{s_mixed:.3}"),
        ]);
        report.push(Json::object([
            ("dataset", Json::from(generated.name)),
            ("views", Json::from(sized_lattice.lattice.num_views())),
            ("spearman_triples", Json::from(s_triples)),
            ("spearman_agg_values", Json::from(s_rows)),
            ("spearman_nodes", Json::from(s_nodes)),
            ("mixed_queries", Json::from(mixed_times.len())),
            ("spearman_mixed_triples", Json::from(s_mixed)),
        ]));
    }
    print_table(
        "E5a · Spearman(cost statistic, time of the exactly-matching query)",
        &["dataset", "views", "triples", "agg-values", "nodes"],
        &identity_rows,
    );
    print_table(
        "E5b · Spearman(view triples, time of filtered re-aggregating queries)",
        &["dataset", "queries", "triples"],
        &mixed_rows,
    );
    println!("Reading: 1.000 would mean the relational 'size ⇒ time' proxy transfers");
    println!("perfectly to RDF. Identity queries track view size closely on this");
    println!("substrate; the filtered/re-aggregating series (E5b) is where the");
    println!("proxy degrades — selective filters decouple work from view size.");
    finish_report(&report);
}
