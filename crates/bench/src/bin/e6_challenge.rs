//! E6 — the "Hands-on Challenge" quantified: greedy-under-each-cost-model
//! versus the exhaustive oracle, under uniform and skewed workloads, for
//! budgets k = 1..4. Reports the achieved-vs-optimal workload cost ratio
//! (1.00 = optimal).
//!
//! Run with: `cargo run -p sofos-bench --release --bin e6_challenge [--smoke]`
//!
//! Emits `BENCH_challenge.json`.

use sofos_bench::{finish_report, print_table, sized, BenchReport, Json};
use sofos_core::{build_model, EngineConfig, SizedLattice};
use sofos_cost::{AggValuesCost, CostModelKind};
use sofos_select::{exhaustive_select, greedy_select, workload_cost, Budget, WorkloadProfile};
use sofos_workload::{generate_workload, swdf, WorkloadConfig};

fn main() {
    let generated = swdf::generate(&swdf::Config::default());
    let facet = generated.default_facet().clone();
    let sized_lattice = SizedLattice::compute(&generated.dataset, &facet).expect("sizing");
    let ctx = sized_lattice.context();
    let config = EngineConfig::default();
    let judge = AggValuesCost; // common scorer across contestants
    let num_queries = sized(60, 20);
    let max_k = sized(4usize, 3);

    let mut report = BenchReport::new(
        "challenge",
        format!("greedy/oracle cost ratio, k = 1..={max_k}, {num_queries} queries"),
    );
    for (label, skew) in [
        ("uniform workload", None),
        ("zipf-skewed workload", Some(1.5)),
    ] {
        let workload = generate_workload(
            &generated.dataset,
            &facet,
            &WorkloadConfig {
                num_queries,
                mask_skew: skew,
                ..WorkloadConfig::default()
            },
        );
        let profile = WorkloadProfile::from_masks(workload.iter().map(|q| q.required));

        let mut rows = Vec::new();
        for k in 1..=max_k {
            let oracle =
                exhaustive_select(&ctx, &sized_lattice.lattice, &judge, &profile, k, 1_000_000)
                    .expect("challenge lattices stay under the exhaustive caps");
            let mut row = vec![k.to_string()];
            for kind in CostModelKind::ALL {
                let (model, _, _) = build_model(kind, &sized_lattice, &config);
                let outcome = greedy_select(
                    &ctx,
                    &sized_lattice.lattice,
                    model.as_ref(),
                    &profile,
                    Budget::Views(k),
                );
                let score = workload_cost(&ctx, &judge, &profile, &outcome.selected);
                let oracle_ratio = score / oracle.estimated_cost;
                row.push(format!("{oracle_ratio:.2}"));
                report.push(Json::object([
                    ("workload", Json::from(label)),
                    ("k", Json::from(k)),
                    ("model", Json::from(kind.name())),
                    ("oracle_ratio", Json::from(oracle_ratio)),
                ]));
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "E6 · greedy/oracle cost ratio — {} ({} queries, dataset {})",
                label,
                workload.len(),
                generated.name
            ),
            &[
                "k",
                "random",
                "triples",
                "agg-values",
                "nodes",
                "learned",
                "user-defined",
            ],
            &rows,
        );
    }
    println!("Reading: 1.00 = the greedy selection under that cost model matched the");
    println!("exhaustive optimum; larger values quantify how much the model misleads it.");
    finish_report(&report);
}
