//! E7 — view maintenance on a living `G+`.
//!
//! The sweep the paper could not run on a frozen store: interleave
//! zipf-skewed update batches with the query workload and measure, per
//! (cost model × staleness policy × update pressure) cell, what view
//! upkeep costs and what query benefit survives. Every view-answered query
//! is validated against the base graph, so the numbers are for *correct*
//! serving, not stale reads.
//!
//! Run with: `cargo run -p sofos-bench --release --bin e7_maintenance [--smoke]`
//!
//! Emits `BENCH_maintenance.json` (see `sofos_bench::json`) next to the
//! table output.

use sofos_bench::{finish_report, ms, print_table, sized, BenchReport, Json};
use sofos_core::{
    results_equivalent, run_offline, Backend, Engine, EngineConfig, SizedLattice, StalenessPolicy,
};
use sofos_cost::CostModelKind;
use sofos_cube::AggOp;
use sofos_select::WorkloadProfile;
use sofos_sparql::Evaluator;
use sofos_workload::{
    generate_update_stream, generate_workload, synthetic, UpdateStreamConfig, WorkloadConfig,
};
use std::time::Instant;

fn main() {
    let rounds = sized(5usize, 2);
    let queries_per_round = sized(8usize, 4);
    let generated = synthetic::generate(&synthetic::Config {
        observations: sized(240, 100),
        cardinalities: vec![8, 5, 3],
        skew: 0.8,
        agg: AggOp::Avg, // SUM+COUNT components: SUM/COUNT/AVG all derivable
        seed: 17,
    });
    let facet = generated.default_facet().clone();
    let base = generated.dataset;
    let workload = generate_workload(
        &base,
        &facet,
        &WorkloadConfig {
            num_queries: queries_per_round,
            ..WorkloadConfig::default()
        },
    );

    let sized_lattice = SizedLattice::compute(&base, &facet).expect("lattice sizes");
    let profile = WorkloadProfile::from_masks(workload.iter().map(|q| q.required));
    let config = EngineConfig::default();

    let models = [
        CostModelKind::Triples,
        CostModelKind::AggValues,
        CostModelKind::Nodes,
    ];
    let batch_sizes: Vec<usize> = sized(vec![4, 16, 48], vec![4, 16]);

    let mut report = BenchReport::new(
        "maintenance",
        format!(
            "synthetic cube, {} rounds x {} queries, update batch sweep {:?}, \
             zipf-skewed 60/40 insert/delete mix",
            rounds, queries_per_round, batch_sizes
        ),
    );
    let headers = [
        "model",
        "policy",
        "batch",
        "upd ms",
        "maint ms",
        "maint triples",
        "re-evals",
        "query ms",
        "hits",
        "falls",
        "valid",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();

    for model in models {
        let mut expanded = base.clone();
        let offline = run_offline(&mut expanded, &sized_lattice, &profile, model, &config)
            .expect("offline phase runs");
        let catalog = offline.view_catalog();

        for policy in StalenessPolicy::ALL {
            for &batch_size in &batch_sizes {
                // Streams are deterministic per (seed, shape): every cell
                // of one batch size replays the same updates.
                let stream = generate_update_stream(
                    &base,
                    &facet,
                    &UpdateStreamConfig {
                        batches: rounds,
                        batch_size,
                        insert_ratio: 0.6,
                        skew: 0.8,
                        seed: 23,
                        ..UpdateStreamConfig::default()
                    },
                );
                let engine = Engine::builder()
                    .dataset(expanded.clone())
                    .facet(facet.clone())
                    .catalog(catalog.clone())
                    .staleness(policy)
                    .backend(Backend::Serial)
                    .build()
                    .expect("engine builds");

                let mut update_us = 0u64;
                let mut query_us = 0u64;
                let mut all_valid = true;
                for delta in stream {
                    let start = Instant::now();
                    engine.update(delta).expect("update applies");
                    update_us += start.elapsed().as_micros() as u64;

                    // One snapshot per round for validation (cheap clone,
                    // but not per-query cheap) — outside the timers.
                    let snapshot = engine.snapshot();
                    let reference = Evaluator::new(&snapshot);
                    for q in &workload {
                        let start = Instant::now();
                        let answer = engine.query(&q.query).expect("query runs");
                        query_us += start.elapsed().as_micros() as u64;
                        let base = reference.evaluate(&q.query).expect("base evaluation runs");
                        all_valid &= results_equivalent(&answer.results, &base);
                    }
                }
                let maintenance = engine.maintenance();
                let (hits, fallbacks) = engine.routing_counts();
                // Under the lazy policy maintenance happens inside
                // queries; under eager inside updates. Report it apart so
                // the cells stay comparable.
                let maint_us = maintenance.total_us;
                let queries_total = rounds * queries_per_round;

                rows.push(vec![
                    model.name().to_string(),
                    policy.name().to_string(),
                    batch_size.to_string(),
                    ms(
                        update_us.saturating_sub(if policy == StalenessPolicy::Eager {
                            maint_us
                        } else {
                            0
                        }),
                    ),
                    ms(maint_us),
                    maintenance.triples_touched().to_string(),
                    maintenance.reevaluations().to_string(),
                    ms(
                        query_us.saturating_sub(if policy == StalenessPolicy::LazyOnHit {
                            maint_us
                        } else {
                            0
                        }),
                    ),
                    format!("{hits}/{queries_total}"),
                    fallbacks.to_string(),
                    if all_valid { "yes".into() } else { "NO".into() },
                ]);
                report.push(Json::object([
                    ("model", Json::from(model.name())),
                    ("policy", Json::from(policy.name())),
                    ("batch_size", Json::from(batch_size)),
                    ("rounds", Json::from(rounds)),
                    ("queries", Json::from(queries_total)),
                    ("update_us", Json::from(update_us)),
                    ("query_us", Json::from(query_us)),
                    ("maintenance_us", Json::from(maint_us)),
                    (
                        "maintenance_triples",
                        Json::from(maintenance.triples_touched()),
                    ),
                    ("reevaluations", Json::from(maintenance.reevaluations())),
                    ("maintenance_passes", Json::from(maintenance.per_view.len())),
                    ("view_hits", Json::from(hits)),
                    ("fallbacks", Json::from(fallbacks)),
                    ("stale_views_at_end", Json::from(engine.stale_views())),
                    ("all_valid", Json::from(all_valid)),
                ]));
                assert!(
                    all_valid,
                    "{model}/{policy}/{batch_size}: stale or wrong answers"
                );
            }
        }
    }

    print_table(
        "E7 · maintenance: cost model x staleness policy x update batch size",
        &headers,
        &rows,
    );

    finish_report(&report);
}
