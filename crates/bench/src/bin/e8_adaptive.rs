//! E8 — adaptive re-selection under workload drift.
//!
//! The experiment the maintenance-aware objective exists for: a living
//! graph (zipf-skewed update batches) serves a query workload whose hot
//! grouping masks *drift* over time. Per (drift schedule × λ ×
//! re-selection policy) cell the sweep measures the total cost of serving
//! the run — query time + view maintenance + re-selection overhead
//! (lattice re-sizing, selection, materialization churn) — and how much of
//! the workload still hits a view.
//!
//! Policies:
//! * **never** — the initial selection serves the whole run (the frozen
//!   SOFOS behaviour): free of overhead, but drifted demand falls back to
//!   the base graph;
//! * **always** — re-select after every round: maximal fit, maximal
//!   overhead;
//! * **adaptive** — a [`sofos_core::Reselector`] re-selects only when the
//!   session's sliding demand profile drifts past a total-variation
//!   threshold.
//!
//! The point of the experiment: on an abrupt-shift schedule, *adaptive*
//! should beat both fixed policies on total cost. The summary rows in
//! `BENCH_adaptive.json` record exactly that comparison.
//!
//! Run with: `cargo run -p sofos-bench --release --bin e8_adaptive [--smoke]`

use sofos_bench::{finish_report, ms, print_table, sized, BenchReport, Json};
use sofos_core::{
    results_equivalent, Backend, Engine, EngineConfig, Reselector, SizedLattice, StalenessPolicy,
};
use sofos_cost::{AggValuesCost, CostModelKind, TouchedGroupsMaintenance, UpdateRates};
use sofos_cube::{AggOp, Facet};
use sofos_select::{greedy_select_with, Budget, Objective, WorkloadProfile};
use sofos_sparql::Evaluator;
use sofos_store::Dataset;
use sofos_workload::{
    generate_update_stream, generate_workload, synthetic, GeneratedQuery, UpdateStreamConfig,
    WorkloadConfig,
};
use std::time::Instant;

/// A drift schedule maps each round to a workload *phase*; all queries of
/// one phase share a zipf-hot mask distribution (seeded differently per
/// phase, so distinct phases have distinct hot masks).
#[derive(Clone, Copy)]
struct Schedule {
    name: &'static str,
    phase_of_round: fn(usize, usize) -> usize,
}

const SCHEDULES: [Schedule; 3] = [
    // One phase throughout: the frozen-graph assumption holds.
    Schedule {
        name: "stable",
        phase_of_round: |_round, _rounds| 0,
    },
    // One abrupt shift a third of the way in: the regime adaptive
    // re-selection targets (most of the run happens post-drift).
    Schedule {
        name: "abrupt",
        phase_of_round: |round, rounds| usize::from(round >= rounds / 3),
    },
    // The hot mask rotates every three rounds: near-continuous drift.
    Schedule {
        name: "rolling",
        phase_of_round: |round, _rounds| round / 3,
    },
];

#[derive(Clone, Copy, PartialEq, Eq)]
enum Policy {
    Never,
    Always,
    Adaptive,
}

/// Insert fraction of the update stream (the rest are deletes).
const INSERT_RATIO: f64 = 0.75;

impl Policy {
    const ALL: [Policy; 3] = [Policy::Never, Policy::Always, Policy::Adaptive];

    fn name(self) -> &'static str {
        match self {
            Policy::Never => "never",
            Policy::Always => "always",
            Policy::Adaptive => "adaptive",
        }
    }
}

/// Totals of one cell run.
struct CellOutcome {
    update_us: u64,
    query_us: u64,
    maintenance_us: u64,
    reselect_us: u64,
    reselections: usize,
    churned: usize,
    view_hits: usize,
    fallbacks: usize,
    all_valid: bool,
}

impl CellOutcome {
    fn total_us(&self) -> u64 {
        // Maintenance runs inside eager updates; count it once.
        self.update_us + self.query_us + self.reselect_us
    }
}

fn phase_workload(
    dataset: &Dataset,
    facet: &Facet,
    phase: usize,
    queries_per_round: usize,
) -> Vec<GeneratedQuery> {
    generate_workload(
        dataset,
        facet,
        &WorkloadConfig {
            num_queries: queries_per_round,
            // Distinct seeds give each phase its own zipf-hot masks.
            seed: 1000 + 7919 * phase as u64,
            mask_skew: Some(1.6),
            filter_probability: 0.0,
            aggs: vec![AggOp::Sum],
            // Analysts slice, they don't dump the cube: demand stays on
            // coarse groupings, so a memory budget can exclude the fat
            // views without starving the workload.
            max_group_dims: Some(2),
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    base: &Dataset,
    facet: &Facet,
    schedule: Schedule,
    lambda: f64,
    staleness: StalenessPolicy,
    policy: Policy,
    rounds: usize,
    queries_per_round: usize,
    batch_size: usize,
    drift_threshold: f64,
) -> CellOutcome {
    // Identical update stream for every cell of one configuration.
    // Insert-heavy stream (see [`INSERT_RATIO`]): the base graph grows
    // over the run, so every base-graph fallback gets progressively more
    // expensive while view hits stay cheap — the real-world pressure to
    // keep coverage fresh.
    let insert_ratio = INSERT_RATIO;
    let stream = generate_update_stream(
        base,
        facet,
        &UpdateStreamConfig {
            batches: rounds,
            batch_size,
            insert_ratio,
            skew: 0.8,
            seed: 23,
            ..UpdateStreamConfig::default()
        },
    );
    let expected_rates = UpdateRates::new(
        batch_size as f64 * insert_ratio,
        batch_size as f64 * (1.0 - insert_ratio),
    );

    // Initial maintenance-aware selection, optimized for phase 0.
    let sized = SizedLattice::compute(base, facet).expect("lattice sizes");
    let ctx = sized.context();
    let initial_workload = phase_workload(base, facet, 0, queries_per_round);
    let initial_profile = WorkloadProfile::from_masks(initial_workload.iter().map(|q| q.required));
    let objective = if lambda > 0.0 {
        Objective::maintenance_aware(
            &AggValuesCost,
            &TouchedGroupsMaintenance,
            expected_rates,
            lambda,
        )
    } else {
        Objective::query_only(&AggValuesCost)
    };
    // Memory budget sized to the coarse end of the lattice: ~40% of the
    // demandable (≤ 2-dim) views fit, the fat fine-grained views do not.
    // Any one phase's working set is affordable, but only by *evicting*
    // the previous phase's views — the regime where a drifted workload
    // loses coverage and re-selection can win it back.
    let coarse_bytes: usize = sized
        .stats
        .iter()
        .filter(|(mask, _)| mask.dim_count() <= 2)
        .map(|(_, s)| s.bytes)
        .sum();
    let budget = Budget::Bytes(coarse_bytes * 2 / 5);
    let selection = greedy_select_with(&ctx, &sized.lattice, &objective, &initial_profile, budget);
    if std::env::var("SOFOS_E8_DEBUG").is_ok() {
        eprintln!(
            "debug {} lambda={lambda} policy={}: budget {budget:?} selected {:?} demands {:?}",
            schedule.name,
            policy.name(),
            selection.selected,
            initial_profile.demands
        );
    }

    let mut expanded = base.clone();
    let materialized =
        sofos_materialize::materialize_views(&mut expanded, facet, &selection.selected)
            .expect("initial materialization");
    let catalog: Vec<_> = materialized
        .iter()
        .map(|v| (v.stats.mask, v.stats.rows))
        .collect();
    let engine = Engine::builder()
        .dataset(expanded)
        .facet(facet.clone())
        .catalog(catalog)
        .staleness(staleness)
        .backend(Backend::Serial)
        .build()
        .expect("engine builds");
    let mut reselector = Reselector::new(
        CostModelKind::AggValues,
        EngineConfig {
            budget,
            ..EngineConfig::default()
        },
        lambda,
        &initial_profile,
        drift_threshold,
    )
    // Re-sizing the lattice per pass would cost one query per view —
    // reuse the offline sizing so re-selection stays economical.
    .with_sizing_cache(sized);

    let mut outcome = CellOutcome {
        update_us: 0,
        query_us: 0,
        maintenance_us: 0,
        reselect_us: 0,
        reselections: 0,
        churned: 0,
        view_hits: 0,
        fallbacks: 0,
        all_valid: true,
    };

    for (round, delta) in stream.into_iter().enumerate() {
        let start = Instant::now();
        engine.update(delta).expect("update applies");
        outcome.update_us += start.elapsed().as_micros() as u64;

        let phase = (schedule.phase_of_round)(round, rounds);
        let snapshot = engine.snapshot();
        let workload = phase_workload(&snapshot, facet, phase, queries_per_round);
        let reference = Evaluator::new(&snapshot);
        for q in &workload {
            let start = Instant::now();
            let answer = engine.query(&q.query).expect("query runs");
            outcome.query_us += start.elapsed().as_micros() as u64;
            // Validation runs outside the timers against the round's
            // snapshot: correctness is asserted, not billed.
            let base = reference.evaluate(&q.query).expect("base evaluation runs");
            outcome.all_valid &= results_equivalent(&answer.results, &base);
        }

        let start = Instant::now();
        let report = match policy {
            Policy::Never => None,
            Policy::Always => Some(reselector.reselect(&engine).expect("reselect runs")),
            Policy::Adaptive => reselector.check(&engine).expect("check runs"),
        };
        outcome.reselect_us += start.elapsed().as_micros() as u64;
        if let Some(report) = report {
            if policy == Policy::Adaptive && std::env::var("SOFOS_E8_DEBUG").is_ok() {
                // ReselectionReport renders itself — no hand-formatting.
                eprintln!(
                    "debug {} lambda={lambda} round={round}: {report}",
                    schedule.name
                );
            }
            outcome.reselections += 1;
            outcome.churned += report.churn.churned();
        }
    }

    outcome.maintenance_us = engine.maintenance().total_us;
    let (hits, fallbacks) = engine.routing_counts();
    outcome.view_hits = hits;
    outcome.fallbacks = fallbacks;
    outcome
}

fn main() {
    let rounds = sized(24, 6);
    let queries_per_round = sized(20, 6);
    let batch_size = sized(16, 6);
    let observations = sized(240, 100);
    // λ is in the analytic (triples-scale) units of
    // `TouchedGroupsMaintenance`. The interesting regime starts where
    // λ·upkeep rivals the HRU benefit of the *finest* view — below that
    // the greedy materializes it and every query hits regardless of
    // drift; above it the selection is lean and drift actually bites.
    let lambdas: Vec<f64> = sized(vec![0.0, 4.0, 32.0], vec![0.0, 32.0]);
    let drift_threshold = 0.2;

    // Four dimensions = a 16-view lattice: a 3-view budget is genuinely
    // partial coverage, so drifted demand actually falls back.
    let generated = synthetic::generate(&synthetic::Config {
        observations,
        cardinalities: vec![8, 5, 4, 3],
        skew: 0.8,
        agg: AggOp::Avg, // SUM+COUNT components: SUM/COUNT/AVG derivable
        seed: 17,
    });
    let facet = generated.default_facet().clone();
    let base = generated.dataset;

    let stalenesses = [StalenessPolicy::Eager, StalenessPolicy::LazyOnHit];
    let mut report = BenchReport::new(
        "adaptive",
        format!(
            "drift schedule x lambda x staleness (eager | lazy-on-hit) x re-selection \
             policy; {rounds} rounds x {queries_per_round} queries, batch {batch_size}, \
             zipf-skewed {}/{} insert/delete mix, drift threshold {drift_threshold}",
            (INSERT_RATIO * 100.0).round() as u32,
            ((1.0 - INSERT_RATIO) * 100.0).round() as u32
        ),
    );
    let headers = [
        "schedule", "lambda", "stale", "policy", "total ms", "query ms", "upd ms", "maint ms",
        "resel ms", "resels", "churn", "hits", "falls", "valid",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();

    for schedule in SCHEDULES {
        for &lambda in &lambdas {
            for staleness in stalenesses {
                let mut totals: Vec<(Policy, u64)> = Vec::new();
                for policy in Policy::ALL {
                    let cell = run_cell(
                        &base,
                        &facet,
                        schedule,
                        lambda,
                        staleness,
                        policy,
                        rounds,
                        queries_per_round,
                        batch_size,
                        drift_threshold,
                    );
                    let queries_total = rounds * queries_per_round;
                    totals.push((policy, cell.total_us()));
                    rows.push(vec![
                        schedule.name.to_string(),
                        format!("{lambda}"),
                        staleness.name().to_string(),
                        policy.name().to_string(),
                        ms(cell.total_us()),
                        ms(cell.query_us),
                        ms(cell.update_us),
                        ms(cell.maintenance_us),
                        ms(cell.reselect_us),
                        cell.reselections.to_string(),
                        cell.churned.to_string(),
                        format!("{}/{queries_total}", cell.view_hits),
                        cell.fallbacks.to_string(),
                        if cell.all_valid {
                            "yes".into()
                        } else {
                            "NO".into()
                        },
                    ]);
                    report.push(Json::object([
                        ("schedule", Json::from(schedule.name)),
                        ("lambda", Json::from(lambda)),
                        ("staleness", Json::from(staleness.name())),
                        ("policy", Json::from(policy.name())),
                        ("rounds", Json::from(rounds)),
                        ("queries", Json::from(queries_total)),
                        ("total_us", Json::from(cell.total_us())),
                        ("query_us", Json::from(cell.query_us)),
                        ("update_us", Json::from(cell.update_us)),
                        ("maintenance_us", Json::from(cell.maintenance_us)),
                        ("reselect_us", Json::from(cell.reselect_us)),
                        ("reselections", Json::from(cell.reselections)),
                        ("views_churned", Json::from(cell.churned)),
                        ("view_hits", Json::from(cell.view_hits)),
                        ("fallbacks", Json::from(cell.fallbacks)),
                        ("all_valid", Json::from(cell.all_valid)),
                    ]));
                    assert!(
                        cell.all_valid,
                        "{}/{lambda}/{}/{}: stale or wrong answers",
                        schedule.name,
                        staleness.name(),
                        policy.name()
                    );
                }

                // Summary row: does adaptive beat both fixed policies on
                // total serving cost in this (schedule, lambda, staleness)
                // cell?
                let total_of = |p: Policy| totals.iter().find(|(q, _)| *q == p).unwrap().1;
                let (never, always, adaptive) = (
                    total_of(Policy::Never),
                    total_of(Policy::Always),
                    total_of(Policy::Adaptive),
                );
                report.push(Json::object([
                    ("summary", Json::from(true)),
                    ("schedule", Json::from(schedule.name)),
                    ("lambda", Json::from(lambda)),
                    ("staleness", Json::from(staleness.name())),
                    ("never_total_us", Json::from(never)),
                    ("always_total_us", Json::from(always)),
                    ("adaptive_total_us", Json::from(adaptive)),
                    ("adaptive_beats_never", Json::from(adaptive < never)),
                    ("adaptive_beats_always", Json::from(adaptive < always)),
                    (
                        "adaptive_beats_both",
                        Json::from(adaptive < never && adaptive < always),
                    ),
                ]));
            }
        }
    }

    print_table(
        "E8 · adaptive re-selection: drift schedule x lambda x staleness x policy",
        &headers,
        &rows,
    );
    println!(
        "Reading: 'never' pays fallbacks after the drift, 'always' pays re-selection\n\
         every round; 'adaptive' re-selects only when the sliding profile moves, and\n\
         should win on total cost under the abrupt schedule. The staleness column\n\
         charts the third axis of the trade: eager pays upkeep inside every update,\n\
         lazy-on-hit defers it to the first hit on a stale view — cheap under drift\n\
         (deferred backlogs on evicted views are never paid) but first-hit latency\n\
         spikes after busy update stretches."
    );
    finish_report(&report);
}
