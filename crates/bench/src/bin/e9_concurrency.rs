//! E9 — concurrent serving: read latency under live maintenance.
//!
//! The experiment the epoch store exists for — now expressed as ONE knob
//! on the unified [`sofos_core::Engine`]: the same workload runs against
//! the same engine API with only the backend flipped.
//!
//! * **serial** — [`Backend::Serial`]: one mutable dataset behind the
//!   engine's internal mutex. Every query waits out any in-flight
//!   maintenance batch (and every other query) — the pre-epoch
//!   architecture.
//! * **epoch** — [`Backend::Epoch`]: queries pin immutable epoch
//!   snapshots and never wait for the writer; maintenance splits
//!   per-shard binding scans across a scoped thread pool.
//!
//! The sweep crosses shards × writer-threads × read-mix and reports read
//! latency percentiles, writer throughput, and epoch accounting. The
//! summary rows record the acceptance criterion: read p95 at
//! 4 shards / 2 writer threads must be ≥ 2× lower than the serial
//! single-shard baseline on the same workload (full runs; `--smoke`
//! gates a softer 1.3× floor so CI-runner noise on its small sample
//! cannot flake the job — a genuine regression still lands near 1×).
//!
//! Run with: `cargo run -p sofos-bench --release --bin e9_concurrency [--smoke]`

use sofos_bench::{finish_report, ms, percentile, print_table, ratio, sized, BenchReport, Json};
use sofos_core::{
    results_equivalent, run_offline, Backend, Engine, EngineConfig, SizedLattice, StalenessPolicy,
};
use sofos_cost::CostModelKind;
use sofos_cube::{AggOp, Facet, ViewMask};
use sofos_select::WorkloadProfile;
use sofos_sparql::{Evaluator, Query};
use sofos_store::{Dataset, Delta};
use sofos_workload::{
    generate_update_stream, generate_workload, synthetic, GeneratedQuery, UpdateStreamConfig,
    WorkloadConfig,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Reader-side shape of one sweep cell.
#[derive(Clone, Copy)]
struct ReadMix {
    name: &'static str,
    readers: usize,
}

/// Pre-generate `rounds` update batches, cycling through freshly-seeded
/// streams so inserts never degenerate into no-ops across cycles.
fn batch_schedule(base: &Dataset, facet: &Facet, batch_size: usize, rounds: usize) -> Vec<Delta> {
    let mut batches = Vec::with_capacity(rounds);
    let mut cycle = 0u64;
    while batches.len() < rounds {
        cycle += 1;
        batches.extend(generate_update_stream(
            base,
            facet,
            &UpdateStreamConfig {
                batches: 16.min(rounds - batches.len()),
                batch_size,
                insert_ratio: 0.6,
                skew: 0.8,
                seed: 23 + cycle,
                ..UpdateStreamConfig::default()
            },
        ));
    }
    batches
}

/// Totals of one cell run.
struct CellOutcome {
    read_latencies_us: Vec<u64>,
    batches_applied: usize,
    writer_wall_us: u64,
    maintenance_us: u64,
    epochs_published: u64,
    all_valid: bool,
}

/// Drive one cell: the writer applies every pre-generated batch while
/// `mix.readers` threads keep querying until the stream is exhausted.
/// A barrier lines everyone up so reads and maintenance fully overlap;
/// the writer's work is fixed (deterministic), the read count is not.
fn drive<Q, U>(
    mix: ReadMix,
    workload: &[GeneratedQuery],
    batches: Vec<Delta>,
    query: Q,
    update: U,
) -> (Vec<u64>, u64)
where
    Q: Fn(&Query) + Sync,
    U: Fn(Delta),
{
    let done = AtomicBool::new(false);
    let barrier = std::sync::Barrier::new(mix.readers + 1);
    let mut latencies: Vec<u64> = Vec::new();
    let mut writer_wall_us = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for reader in 0..mix.readers {
            let done = &done;
            let barrier = &barrier;
            let query = &query;
            handles.push(scope.spawn(move || {
                barrier.wait();
                let mut samples = Vec::new();
                let mut i = 0usize;
                while !done.load(Ordering::Acquire) {
                    let q = &workload[(reader + i) % workload.len()];
                    let start = Instant::now();
                    query(&q.query);
                    samples.push(start.elapsed().as_micros() as u64);
                    i += 1;
                }
                samples
            }));
        }
        barrier.wait();
        for delta in batches {
            let start = Instant::now();
            update(delta);
            writer_wall_us += start.elapsed().as_micros() as u64;
        }
        done.store(true, Ordering::Release);
        for handle in handles {
            latencies.extend(handle.join().expect("reader ran clean"));
        }
    });
    (latencies, writer_wall_us)
}

/// Serialized baseline: the pre-epoch architecture, faithfully. One
/// serving loop owns the serial-backend [`Engine`] (its internal mutex
/// serializes everything — that is the point), so every read is a request
/// queued behind whatever the serving loop is doing. Under continuous
/// maintenance pressure the loop is always mid-batch, and read latency
/// *is* the stall: queue wait plus service. Queued queries are drained
/// between batches — free-running readers would dilute the percentile
/// with cheap between-batch reads and hide the stall the serialized
/// regime actually inflicts.
fn run_serialized(
    expanded: &Dataset,
    facet: &Facet,
    catalog: &[(ViewMask, usize)],
    workload: &[GeneratedQuery],
    mix: ReadMix,
    batches: Vec<Delta>,
) -> CellOutcome {
    use std::sync::mpsc;
    let batches_applied = batches.len();
    let engine = Engine::builder()
        .dataset(expanded.clone())
        .facet(facet.clone())
        .catalog(catalog.to_vec())
        .staleness(StalenessPolicy::Eager)
        .backend(Backend::Serial)
        .build()
        .expect("engine builds");
    let (request_tx, request_rx) = mpsc::channel::<(usize, mpsc::Sender<()>)>();
    let barrier = std::sync::Barrier::new(mix.readers + 1);
    let mut latencies: Vec<u64> = Vec::new();
    let mut writer_wall_us = 0u64;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for reader in 0..mix.readers {
            let request_tx = request_tx.clone();
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                barrier.wait();
                let mut samples = Vec::new();
                let mut i = reader;
                loop {
                    let (reply_tx, reply_rx) = mpsc::channel();
                    let start = Instant::now();
                    if request_tx.send((i % 64, reply_tx)).is_err() {
                        break; // serving loop shut down: the run is over
                    }
                    if reply_rx.recv().is_err() {
                        break;
                    }
                    samples.push(start.elapsed().as_micros() as u64);
                    i += 1;
                }
                samples
            }));
        }
        drop(request_tx);
        barrier.wait();
        let serve = |idx: usize, reply: mpsc::Sender<()>| {
            let q = &workload[idx % workload.len()];
            engine.query(&q.query).expect("query runs");
            let _ = reply.send(());
        };
        for delta in batches {
            let start = Instant::now();
            engine.update(delta).expect("update applies");
            writer_wall_us += start.elapsed().as_micros() as u64;
            // Serve what queued up during the batch (at most one request
            // per reader can be parked), then take the next pending batch
            // — the stream models *continuous* update pressure, so
            // maintenance never yields the loop for long.
            for _ in 0..mix.readers {
                match request_rx.try_recv() {
                    Ok((idx, reply)) => serve(idx, reply),
                    Err(_) => break,
                }
            }
        }
        // Stream exhausted: answer stragglers, then hang up.
        while let Ok((idx, reply)) = request_rx.try_recv() {
            serve(idx, reply);
        }
        drop(request_rx);
        for handle in handles {
            latencies.extend(handle.join().expect("reader ran clean"));
        }
    });

    // Validation after the dust settles: answers must match the base.
    let mut all_valid = true;
    let snapshot = engine.snapshot();
    let reference = Evaluator::new(&snapshot);
    for q in workload {
        let answer = engine.query(&q.query).expect("query runs");
        let base = reference.evaluate(&q.query).expect("base evaluation runs");
        all_valid &= results_equivalent(&answer.results, &base);
    }

    CellOutcome {
        read_latencies_us: latencies,
        batches_applied,
        writer_wall_us,
        maintenance_us: engine.maintenance().total_us,
        epochs_published: 0, // the serial backend publishes nothing
        all_valid,
    }
}

/// Epoch mode, through the same engine — the backend knob is the ONLY
/// thing that differs from the baseline's engine.
fn run_mode(
    expanded: &Dataset,
    facet: &Facet,
    catalog: &[(ViewMask, usize)],
    workload: &[GeneratedQuery],
    mix: ReadMix,
    batches: Vec<Delta>,
    backend: Backend,
) -> CellOutcome {
    let batches_applied = batches.len();
    let engine = Engine::builder()
        .dataset(expanded.clone())
        .facet(facet.clone())
        .catalog(catalog.to_vec())
        .staleness(StalenessPolicy::Eager)
        .backend(backend)
        .build()
        .expect("engine builds");
    let (latencies, writer_wall_us) = drive(
        mix,
        workload,
        batches,
        |q| {
            engine.query(q).expect("query runs");
        },
        |delta| {
            engine.update(delta).expect("update applies");
        },
    );

    // Validation after the dust settles: answers must match the base.
    let mut all_valid = true;
    let snapshot = engine.snapshot();
    let reference = Evaluator::new(&snapshot);
    for q in workload {
        let answer = engine.query(&q.query).expect("query runs");
        let base = reference.evaluate(&q.query).expect("base evaluation runs");
        all_valid &= results_equivalent(&answer.results, &base);
    }

    CellOutcome {
        read_latencies_us: latencies,
        batches_applied,
        writer_wall_us,
        maintenance_us: engine.maintenance().total_us,
        epochs_published: match backend {
            Backend::Serial => 0, // the serial backend publishes nothing
            Backend::Epoch { .. } => engine.epoch(),
        },
        all_valid,
    }
}

#[allow(clippy::too_many_arguments)]
fn record_cell(
    report: &mut BenchReport,
    rows: &mut Vec<Vec<String>>,
    mode: &str,
    mix: ReadMix,
    shards: usize,
    writer_threads: usize,
    cell: &CellOutcome,
) -> u64 {
    let p50 = percentile(&cell.read_latencies_us, 50.0);
    let p95 = percentile(&cell.read_latencies_us, 95.0);
    let p99 = percentile(&cell.read_latencies_us, 99.0);
    let reads = cell.read_latencies_us.len();
    rows.push(vec![
        mode.to_string(),
        mix.name.to_string(),
        shards.to_string(),
        writer_threads.to_string(),
        reads.to_string(),
        ms(p50),
        ms(p95),
        ms(p99),
        cell.batches_applied.to_string(),
        ms(cell.writer_wall_us),
        cell.epochs_published.to_string(),
        if cell.all_valid {
            "yes".into()
        } else {
            "NO".into()
        },
    ]);
    report.push(Json::object([
        ("mode", Json::from(mode)),
        ("read_mix", Json::from(mix.name)),
        ("shards", Json::from(shards)),
        ("writer_threads", Json::from(writer_threads)),
        ("readers", Json::from(mix.readers)),
        ("reads", Json::from(reads)),
        ("read_p50_us", Json::from(p50)),
        ("read_p95_us", Json::from(p95)),
        ("read_p99_us", Json::from(p99)),
        ("batches_applied", Json::from(cell.batches_applied)),
        ("writer_wall_us", Json::from(cell.writer_wall_us)),
        // Named apart from E7's single-threaded `maintenance_us`: under
        // reader contention this wall total is scheduling noise, and the
        // regression differ treats it as informational.
        ("maintenance_wall_us", Json::from(cell.maintenance_us)),
        ("epochs_published", Json::from(cell.epochs_published)),
        ("all_valid", Json::from(cell.all_valid)),
    ]));
    assert!(cell.all_valid, "{mode}/{}: wrong answers", mix.name);
    p95
}

fn main() {
    let observations = sized(240, 160);
    // Full-size batches even in smoke: the stall a batch inflicts on the
    // serial baseline IS the measurement — shrinking it would shrink
    // the signal, not the runtime (the sweep is bounded by `rounds`).
    let batch_size = 48;
    let rounds = sized(48, 12);
    let shard_configs: Vec<(usize, usize)> = sized(
        vec![(1, 1), (2, 1), (2, 2), (4, 1), (4, 2), (8, 2), (8, 4)],
        vec![(1, 1), (4, 2)],
    );
    let mixes: Vec<ReadMix> = sized(
        vec![
            ReadMix {
                name: "balanced",
                readers: 2,
            },
            ReadMix {
                name: "read-heavy",
                readers: 4,
            },
        ],
        vec![ReadMix {
            name: "read-heavy",
            readers: 4,
        }],
    );

    let generated = synthetic::generate(&synthetic::Config {
        observations,
        cardinalities: vec![8, 5, 3],
        skew: 0.8,
        agg: AggOp::Avg,
        seed: 17,
    });
    let facet = generated.default_facet().clone();
    let base = generated.dataset;
    let workload = generate_workload(
        &base,
        &facet,
        &WorkloadConfig {
            num_queries: 12,
            ..WorkloadConfig::default()
        },
    );
    let sized_lattice = SizedLattice::compute(&base, &facet).expect("lattice sizes");
    let profile = WorkloadProfile::from_masks(workload.iter().map(|q| q.required));
    let mut expanded = base.clone();
    let offline = run_offline(
        &mut expanded,
        &sized_lattice,
        &profile,
        CostModelKind::AggValues,
        &EngineConfig::default(),
    )
    .expect("offline phase runs");
    let catalog = offline.view_catalog();

    let mut report = BenchReport::new(
        "concurrency",
        format!(
            "epoch-snapshot serving vs the serial-backend baseline, one Engine knob \
             apart; shards x writer-threads x read-mix, {rounds} batches of \
             {batch_size} zipf-skewed ops under eager maintenance, readers \
             free-running until the stream drains"
        ),
    );
    let headers = [
        "mode", "mix", "shards", "wr-thr", "reads", "p50 ms", "p95 ms", "p99 ms", "batches",
        "wr ms", "epochs", "valid",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();

    let batches = batch_schedule(&base, &facet, batch_size, rounds);
    let mut summaries: Vec<(&str, u64, u64, f64, f64)> = Vec::new();
    for mix in &mixes {
        let serialized = run_serialized(
            &expanded,
            &facet,
            &catalog,
            &workload,
            *mix,
            batches.clone(),
        );
        let serialized_p95 = record_cell(
            &mut report,
            &mut rows,
            "serialized",
            *mix,
            1,
            1,
            &serialized,
        );

        let mut headline_p95: Option<u64> = None;
        for &(shards, writer_threads) in &shard_configs {
            let cell = run_mode(
                &expanded,
                &facet,
                &catalog,
                &workload,
                *mix,
                batches.clone(),
                Backend::Epoch {
                    shards,
                    threads: writer_threads,
                },
            );
            let p95 = record_cell(
                &mut report,
                &mut rows,
                "epoch",
                *mix,
                shards,
                writer_threads,
                &cell,
            );
            if shards == 4 && writer_threads == 2 {
                headline_p95 = Some(p95);
            }
        }

        // Summary: the acceptance criterion — 4 shards / 2 writer threads
        // must serve reads with ≥2× lower p95 than the serial backend.
        // Smoke mode gates a softer floor (1.3×): its p95 comes from a
        // 12-batch sample on a shared CI runner, where the full-run
        // margin (4–5× here) can legitimately compress; a genuine
        // regression (epoch ≈ serialized ⇒ ratio ≈ 1) still fails.
        let threshold = sized(2.0, 1.3);
        let headline_p95 = headline_p95.expect("sweep includes the 4x2 configuration");
        let speedup = serialized_p95 as f64 / headline_p95.max(1) as f64;
        rows.push(vec![
            "summary".into(),
            mix.name.to_string(),
            "4".into(),
            "2".into(),
            String::new(),
            String::new(),
            ratio(speedup),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            if speedup >= threshold {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
        report.push(Json::object([
            ("summary", Json::from(true)),
            ("read_mix", Json::from(mix.name)),
            ("serialized_p95_us", Json::from(serialized_p95)),
            ("epoch_4x2_p95_us", Json::from(headline_p95)),
            ("p95_speedup", Json::from(speedup)),
            ("threshold", Json::from(threshold)),
            ("meets_threshold", Json::from(speedup >= threshold)),
        ]));
        summaries.push((mix.name, serialized_p95, headline_p95, speedup, threshold));
    }

    print_table(
        "E9 · concurrency: epoch snapshots vs serial-backend serving under maintenance",
        &headers,
        &rows,
    );
    for (name, serialized_p95, headline_p95, speedup, threshold) in summaries {
        assert!(
            speedup >= threshold,
            "{name}: epoch serving must beat the serial backend by >={threshold}x on \
             read p95 (serialized {serialized_p95}us vs epoch {headline_p95}us)"
        );
    }
    println!(
        "Reading: both modes run the SAME Engine API — only Backend differs.\n\
         'serialized' readers wait out every maintenance batch behind the serial\n\
         backend's mutex; 'epoch' readers pin immutable snapshots and only ever\n\
         wait for a pointer swap, so read p95 decouples from maintenance entirely."
    );
    finish_report(&report);
}
