//! The experiment-report format: `BENCH_<experiment>.json`.
//!
//! The experiment binaries record their sweep results as
//! `BENCH_<experiment>.json` files in the repository root so the
//! performance trajectory accumulates across runs and PRs (`e7_maintenance`
//! starts the convention; E1–E6 can adopt [`BenchReport`] as they grow
//! JSON output). The underlying JSON value type ([`Json`] — writer *and*
//! recursive-descent parser) lives in `sofos_telemetry::json` so the
//! HTTP serving tier can share it without depending on the bench crate;
//! the `bench_diff` regression harness parses committed baselines with
//! the same type.

pub use sofos_telemetry::json::{escape_into, Json};

/// A sweep report: one row per experiment cell.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Experiment id (`maintenance` → `BENCH_maintenance.json`).
    pub experiment: String,
    /// Free-form sweep description.
    pub description: String,
    /// One object per cell.
    pub rows: Vec<Json>,
}

impl BenchReport {
    /// Start a report.
    pub fn new(experiment: impl Into<String>, description: impl Into<String>) -> BenchReport {
        BenchReport {
            experiment: experiment.into(),
            description: description.into(),
            rows: Vec::new(),
        }
    }

    /// Append one cell row.
    pub fn push(&mut self, row: Json) {
        self.rows.push(row);
    }

    /// The report as a JSON string (pretty enough for diffs: one row per
    /// line).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"experiment\": ");
        escape_into(&self.experiment, &mut out);
        out.push_str(",\n  \"description\": ");
        escape_into(&self.description, &mut out);
        out.push_str(",\n  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    ");
            row.write(&mut out);
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `BENCH_<experiment>.json` into the given directory, returning
    /// the path.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.experiment));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_pretty_reports() {
        let mut report = BenchReport::new("x", "d");
        report.push(Json::object([("a", Json::from(1usize))]));
        let parsed = Json::parse(&report.to_json()).expect("report parses");
        assert_eq!(
            parsed.get("rows").and_then(Json::items).map(<[_]>::len),
            Some(1)
        );
    }

    #[test]
    fn report_round_trip_shape() {
        let mut report = BenchReport::new("maintenance", "sweep");
        report.push(Json::object([("cell", Json::from(1usize))]));
        report.push(Json::object([("cell", Json::from(2usize))]));
        let text = report.to_json();
        assert!(text.contains("\"experiment\": \"maintenance\""));
        assert_eq!(text.matches("{\"cell\":").count(), 2);
        assert!(text.trim_end().ends_with('}'));

        let dir = std::env::temp_dir();
        let path = report.write_to(&dir).unwrap();
        assert!(path.ends_with("BENCH_maintenance.json"));
        let read_back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read_back, text);
        let _ = std::fs::remove_file(path);
    }
}
