//! Minimal JSON emission for experiment reports.
//!
//! The experiment binaries record their sweep results as
//! `BENCH_<experiment>.json` files in the repository root so the
//! performance trajectory accumulates across runs and PRs (`e7_maintenance`
//! starts the convention; E1–E6 can adopt [`BenchReport`] as they grow
//! JSON output). No serialization dependency exists offline, so this is a
//! small hand-rolled writer: objects, arrays, strings, numbers, booleans.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// A string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float (non-finite values are emitted as `null`).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object builder from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl Json {
    fn write(&self, out: &mut String) {
        match self {
            Json::Str(s) => escape(s, out),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) if v.is_finite() => out.push_str(&format!("{v}")),
            Json::Num(_) => out.push_str("null"),
            Json::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// A sweep report: one row per experiment cell.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Experiment id (`maintenance` → `BENCH_maintenance.json`).
    pub experiment: String,
    /// Free-form sweep description.
    pub description: String,
    /// One object per cell.
    pub rows: Vec<Json>,
}

impl BenchReport {
    /// Start a report.
    pub fn new(experiment: impl Into<String>, description: impl Into<String>) -> BenchReport {
        BenchReport {
            experiment: experiment.into(),
            description: description.into(),
            rows: Vec::new(),
        }
    }

    /// Append one cell row.
    pub fn push(&mut self, row: Json) {
        self.rows.push(row);
    }

    /// The report as a JSON string (pretty enough for diffs: one row per
    /// line).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"experiment\": ");
        escape(&self.experiment, &mut out);
        out.push_str(",\n  \"description\": ");
        escape(&self.description, &mut out);
        out.push_str(",\n  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    ");
            row.write(&mut out);
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `BENCH_<experiment>.json` into the given directory, returning
    /// the path.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.experiment));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_render_as_json() {
        let v = Json::object([
            ("name", Json::from("e7")),
            ("count", Json::from(3usize)),
            ("ratio", Json::from(0.5)),
            ("ok", Json::from(true)),
            ("tags", Json::Array(vec![Json::from("a"), Json::from("b")])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"e7","count":3,"ratio":0.5,"ok":true,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::from("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn report_round_trip_shape() {
        let mut report = BenchReport::new("maintenance", "sweep");
        report.push(Json::object([("cell", Json::from(1usize))]));
        report.push(Json::object([("cell", Json::from(2usize))]));
        let text = report.to_json();
        assert!(text.contains("\"experiment\": \"maintenance\""));
        assert_eq!(text.matches("{\"cell\":").count(), 2);
        assert!(text.trim_end().ends_with('}'));

        let dir = std::env::temp_dir();
        let path = report.write_to(&dir).unwrap();
        assert!(path.ends_with("BENCH_maintenance.json"));
        let read_back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read_back, text);
        let _ = std::fs::remove_file(path);
    }
}
