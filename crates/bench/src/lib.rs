//! # sofos-bench — the SOFOS experiment harness
//!
//! One Criterion bench and/or experiment binary per demo-scenario station
//! (see `DESIGN.md` §3 for the experiment index and `EXPERIMENTS.md` for
//! recorded results):
//!
//! | id | binary | bench |
//! |----|--------|-------|
//! | E1 cost-model comparison     | `e1_cost_models`  | `benches/cost_models.rs` |
//! | E2 full-lattice exploration  | `e2_lattice`      | `benches/lattice.rs` |
//! | E3 budget sweep / sweet spot | `e3_budget_sweep` | — |
//! | E4 learned-model quality     | `e4_learned`      | `benches/learned.rs` |
//! | E5 cost↛time fidelity        | `e5_fidelity`     | — |
//! | E6 hands-on challenge oracle | `e6_challenge`    | — |
//! | E7 maintenance sweep         | `e7_maintenance`  | — |
//! | E8 adaptive re-selection     | `e8_adaptive`     | — |
//! | E9 concurrent serving        | `e9_concurrency`  | — |
//! | E10 two-phase pipeline       | `e10_pipeline`    | — |
//! | E11 network serving          | `e11_serving`     | — |
//! | E12 durability               | `e12_durability`  | — |
//! | E13 bitmap scan planning     | `e13_bitmap_scan` | — |
//! | E14 selection at scale       | `e14_select_scale`| — |
//! | CI bench-regression gate     | `bench_diff`      | — |
//! | substrate micro-benches      | —                 | `benches/store.rs`, `benches/sparql.rs` |
//!
//! The library part hosts shared helpers for the binaries, including the
//! [`json`] report writer *and parser* (`BENCH_<experiment>.json` files
//! that accumulate the perf trajectory across runs). Every experiment
//! binary accepts `--smoke` ([`smoke`]): a seconds-not-minutes sweep for
//! CI's `bench-smoke` job, emitting the same JSON shape as the full run.
//! `bench_diff` closes the loop: CI compares the fresh smoke reports
//! against the committed `benchmarks/baselines/` and fails on drift.

pub mod json;

pub use json::{BenchReport, Json};

use sofos_core::render_table;
use sofos_telemetry::Histogram;

/// True when the binary was invoked with `--smoke`: shrink the sweep to
/// run in seconds (CI), keeping the report shape identical.
pub fn smoke() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

/// Pick the full- or smoke-sized value of a parameter.
pub fn sized<T>(full: T, smoke_sized: T) -> T {
    if smoke() {
        smoke_sized
    } else {
        full
    }
}

/// Write a report's `BENCH_<experiment>.json` into the current directory
/// and announce the path (shared tail of every experiment binary).
pub fn finish_report(report: &BenchReport) {
    let dir = std::env::current_dir().expect("cwd");
    let path = report.write_to(&dir).expect("report written");
    println!("wrote {}", path.display());
}

/// Print a titled table to stdout (shared by the experiment binaries).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("== {title} ==");
    println!("{}", render_table(headers, rows));
}

/// Format microseconds as milliseconds with two decimals.
pub fn ms(us: u64) -> String {
    format!("{:.2}", us as f64 / 1000.0)
}

/// Format a ratio with two decimals and an `x` suffix.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// The `p`-th percentile (0–100, nearest-rank) of a sample set; 0 when
/// empty.
///
/// Computed through a [`sofos_telemetry::Histogram`] snapshot so bench
/// reports and the engine's metrics layer agree on one quantile
/// definition: exact below 32, < 1/32 relative error above (the answer is
/// the lower bound of the bucket holding the nearest-rank sample).
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    let hist = Histogram::new();
    hist.record_all(samples);
    hist.snapshot().quantile((p / 100.0).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(1500), "1.50");
        assert_eq!(ratio(2.0), "2.00x");
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 95.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 50.0), 50);
        // 95 lands in the [64, 128) range where buckets are 2 wide: the
        // histogram answers the bucket lower bound, 94.
        assert_eq!(percentile(&samples, 95.0), 94);
        assert_eq!(percentile(&samples, 100.0), 100);
        assert_eq!(percentile(&samples, 0.0), 1);
    }

    #[test]
    fn sized_follows_smoke_flag() {
        // The test harness is never invoked with `--smoke`.
        assert!(!smoke());
        assert_eq!(sized(100, 10), 100);
    }
}
