//! The adaptive layer: drift detection and re-selection over a live
//! [`Engine`].
//!
//! Every engine backend tracks a *sliding* workload/update profile
//! (recent demanded masks, recent insert/delete pressure, per-group
//! churn — see [`crate::policy::ProfileWindows`]); a [`DriftDetector`]
//! measures how far that window has moved from the profile the current
//! selection was optimized for; and a [`Reselector`] re-runs
//! maintenance-aware selection when the drift crosses a threshold,
//! swapping the materialized set transactionally
//! ([`Engine::swap_views`]) and reporting the churn.
//!
//! Because the surface is the [`Engine`], the whole layer works
//! identically over the serial and epoch backends — re-selection against
//! a concurrent serving loop is the same three calls as against the
//! single-threaded one.

use crate::config::EngineConfig;
use crate::engine::{Engine, ViewChurn};
use crate::policy::total_variation;
use crate::timing::measure_once;
use sofos_cost::{CalibratedMaintenance, CostModelKind};
use sofos_rdf::FxHashMap;
use sofos_select::{
    greedy_select_with, local_search_select_with, LocalSearchConfig, Objective, SearchBudget,
    SearchReport, SelectionOutcome, WorkloadProfile,
};
use sofos_sparql::SparqlError;
use std::sync::Arc;

/// Measures how far the live workload has drifted from the profile the
/// current selection was optimized for.
///
/// Distance is total variation between the two *normalized* demand
/// distributions: `½ Σ_m |p(m) − q(m)| ∈ [0, 1]`. 0 means the window
/// replays the reference mix exactly; 1 means disjoint demand. The weight
/// scale of either profile cancels, so windows and references of
/// different lengths compare directly.
///
/// Alongside demand, the detector can track update *locality*: a
/// per-group churn distribution ([`Engine::churn_profile`]) anchored by
/// [`DriftDetector::with_churn_reference`]. Maintenance hotspots then
/// register as drift even when query demand is perfectly steady — the
/// trigger maintenance-aware selection needs, since upkeep cost depends
/// on *which* groups churn, not only on how much.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    /// Reference demand mass by mask (un-normalized —
    /// `total_variation` normalizes both sides).
    reference: FxHashMap<u64, f64>,
    /// Churn reference; `None` disables the locality trigger.
    churn_reference: Option<FxHashMap<u64, f64>>,
    threshold: f64,
    min_weight: f64,
}

impl DriftDetector {
    /// A detector anchored at `reference`, firing past `threshold`.
    pub fn new(reference: &WorkloadProfile, threshold: f64) -> DriftDetector {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "drift threshold must be in [0, 1], got {threshold}"
        );
        DriftDetector {
            reference: Self::mass(reference),
            churn_reference: None,
            threshold,
            min_weight: 1.0,
        }
    }

    /// Require at least this much window weight before `drifted` can fire
    /// (defaults to 1 observation; raise to debounce cold windows).
    pub fn with_min_weight(mut self, min_weight: f64) -> DriftDetector {
        self.min_weight = min_weight.max(1.0);
        self
    }

    /// Anchor the locality trigger at a reference per-group churn
    /// distribution (typically [`Engine::churn_profile`] at selection
    /// time). Until set, churn never registers as drift.
    pub fn with_churn_reference(mut self, churn: &FxHashMap<u64, f64>) -> DriftDetector {
        self.set_churn_reference(churn);
        self
    }

    /// Re-anchor the churn reference (after a re-selection).
    pub fn set_churn_reference(&mut self, churn: &FxHashMap<u64, f64>) {
        self.churn_reference = Some(churn.clone());
    }

    /// True when a churn reference is anchored.
    pub(crate) fn has_churn_reference(&self) -> bool {
        self.churn_reference.is_some()
    }

    /// A profile's demand mass by mask, the shape `total_variation`
    /// consumes (no normalization here — TV normalizes both sides).
    fn mass(profile: &WorkloadProfile) -> FxHashMap<u64, f64> {
        let mut mass: FxHashMap<u64, f64> = FxHashMap::default();
        for &(mask, w) in &profile.demands {
            *mass.entry(mask.0).or_insert(0.0) += w;
        }
        mass
    }

    /// The configured firing threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Total-variation distance between the reference and `current` —
    /// the same `total_variation` the churn trigger
    /// uses. Both empty → 0 (nothing moved); exactly one empty → 1.
    pub fn drift(&self, current: &WorkloadProfile) -> f64 {
        total_variation(&self.reference, &Self::mass(current))
    }

    /// True when `current` carries enough weight and its drift exceeds
    /// the threshold.
    pub fn drifted(&self, current: &WorkloadProfile) -> bool {
        current.total_weight() >= self.min_weight && self.drift(current) > self.threshold
    }

    /// Total-variation distance between the anchored churn reference and
    /// the current per-group churn distribution. 0 when no churn
    /// reference was set, or when neither side carries any churn —
    /// *locality* drift is undefined without churn, and an empty window
    /// must not read as "everything moved".
    pub fn churn_drift(&self, current: &FxHashMap<u64, f64>) -> f64 {
        let Some(reference) = &self.churn_reference else {
            return 0.0;
        };
        if current.values().all(|&w| w <= 0.0) {
            return 0.0;
        }
        total_variation(reference, current)
    }

    /// True when update locality moved past the threshold under a set
    /// churn reference — the maintenance-hotspot trigger, independent of
    /// demand.
    pub fn churn_drifted(&self, current: &FxHashMap<u64, f64>) -> bool {
        self.churn_drift(current) > self.threshold
    }

    /// Re-anchor at a new reference (after a re-selection).
    pub fn rebase(&mut self, reference: &WorkloadProfile) {
        self.reference = Self::mass(reference);
    }
}

/// One re-selection pass: what drove it, what was selected, what churned.
#[derive(Debug, Clone)]
pub struct ReselectionReport {
    /// Demand drift at the moment of re-selection.
    pub drift: f64,
    /// Update-locality (per-group churn) drift at the moment of
    /// re-selection; 0 when the locality trigger is off.
    pub locality_drift: f64,
    /// The new selection (combined-objective costs included).
    pub selection: SelectionOutcome,
    /// Catalog churn from the transactional swap.
    pub churn: ViewChurn,
    /// Wall time of the lattice re-sizing pass (µs) — the growth-scaling
    /// refresh when the sizing cache is on, the full per-view evaluation
    /// otherwise.
    pub sizing_us: u64,
    /// True when sizing came from the cache, refreshed by live
    /// [`sofos_store::GraphStats`] growth instead of re-evaluated.
    pub sizing_refreshed: bool,
    /// Wall time of the selection algorithm (µs).
    pub selection_us: u64,
    /// What the anytime local search did, when the pass ran under a
    /// [`Reselector::with_anytime_budget`]; `None` for greedy passes.
    pub search: Option<SearchReport>,
}

impl ReselectionReport {
    /// Total re-selection overhead (µs): sizing + selection +
    /// materialization + drops.
    pub fn overhead_us(&self) -> u64 {
        self.sizing_us + self.selection_us + self.churn.materialize_us + self.churn.drop_us
    }

    /// JSON object with the numbers bench reports record (selection masks
    /// as integers, drifts, churn counts, overhead breakdown).
    pub fn to_json_string(&self) -> String {
        let masks: Vec<String> = self
            .selection
            .selected
            .iter()
            .map(|m| m.0.to_string())
            .collect();
        let search = match &self.search {
            None => String::new(),
            Some(s) => format!(
                ",\"moves_tried\":{},\"moves_accepted\":{},\"restarts\":{},\"converged\":{}",
                s.moves_tried, s.moves_accepted, s.restarts, s.converged
            ),
        };
        format!(
            "{{\"drift\":{},\"locality_drift\":{},\"selected\":[{}],\"added\":{},\
             \"retired\":{},\"kept\":{},\"sizing_us\":{},\"sizing_refreshed\":{},\
             \"selection_us\":{},\"materialize_us\":{},\"drop_us\":{},\"overhead_us\":{}{}}}",
            self.drift,
            self.locality_drift,
            masks.join(","),
            self.churn.added.len(),
            self.churn.retired.len(),
            self.churn.kept.len(),
            self.sizing_us,
            self.sizing_refreshed,
            self.selection_us,
            self.churn.materialize_us,
            self.churn.drop_us,
            self.overhead_us(),
            search
        )
    }
}

impl std::fmt::Display for ReselectionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "drift {:.2} (locality {:.2}) → {} views (+{} −{} ={}), {} µs overhead",
            self.drift,
            self.locality_drift,
            self.selection.selected.len(),
            self.churn.added.len(),
            self.churn.retired.len(),
            self.churn.kept.len(),
            self.overhead_us()
        )?;
        if let Some(s) = &self.search {
            write!(
                f,
                " [anytime: {} moves, {} accepted, {} restarts, {}]",
                s.moves_tried,
                s.moves_accepted,
                s.restarts,
                if s.converged {
                    "converged"
                } else {
                    "truncated"
                }
            )?;
        }
        Ok(())
    }
}

/// Budget for anytime re-selection passes ([`Reselector::with_anytime_budget`]):
/// a move cap and/or a wall deadline. The deadline is measured from pass
/// start on the engine's injected [`crate::policy::Clock`], so serving
/// budgets hold and `ManualClock` tests stay deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnytimeBudget {
    /// Cap on local-search moves per pass (`None` = uncapped).
    pub max_moves: Option<u64>,
    /// Wall budget per pass in clock milliseconds (`None` = no deadline).
    pub deadline_ms: Option<u64>,
}

impl AnytimeBudget {
    /// A move-capped budget.
    pub fn moves(max_moves: u64) -> AnytimeBudget {
        AnytimeBudget {
            max_moves: Some(max_moves),
            deadline_ms: None,
        }
    }

    /// A wall-deadline budget (milliseconds from pass start).
    pub fn deadline_ms(deadline_ms: u64) -> AnytimeBudget {
        AnytimeBudget {
            max_moves: None,
            deadline_ms: Some(deadline_ms),
        }
    }
}

/// Adaptive re-selection: watches an engine's sliding workload/update
/// profile through a [`DriftDetector`] and, when the workload has moved,
/// re-runs maintenance-aware selection over a freshly re-sized lattice
/// and swaps the materialized set transactionally.
///
/// The maintenance term defaults to the analytic
/// [`sofos_cost::TouchedGroupsMaintenance`] estimator, so λ keeps the
/// same (abstract, triples-scale) meaning across the whole run. Opting in
/// to [`Reselector::with_calibrated_maintenance`] instead fits
/// [`CalibratedMaintenance`] to the maintenance telemetry the engine has
/// accumulated so far — predictions move to real microseconds, and λ must
/// be chosen against that scale. Update pressure is read from
/// [`Engine::observed_rates`] either way.
pub struct Reselector {
    kind: CostModelKind,
    config: EngineConfig,
    lambda: f64,
    detector: DriftDetector,
    calibrated: bool,
    locality: bool,
    sizing_cache: Option<crate::offline::SizedLattice>,
    anytime: Option<AnytimeBudget>,
    reselections: usize,
}

impl Reselector {
    /// A re-selector optimizing `kind` + λ·maintenance under `config`'s
    /// budget, anchored at the profile the current selection served.
    pub fn new(
        kind: CostModelKind,
        config: EngineConfig,
        lambda: f64,
        reference: &WorkloadProfile,
        threshold: f64,
    ) -> Reselector {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "lambda must be finite and non-negative, got {lambda}"
        );
        Reselector {
            kind,
            config,
            lambda,
            detector: DriftDetector::new(reference, threshold),
            calibrated: false,
            locality: false,
            sizing_cache: None,
            anytime: None,
            reselections: 0,
        }
    }

    /// Re-select with the anytime local search
    /// ([`sofos_select::local_search_select_with`]) instead of the full
    /// greedy: seeded from the engine's *current catalog*, improving
    /// within `budget` — so adaptive re-selection fits inside a serving
    /// deadline even at lattice scales where a greedy pass would blow it.
    /// The resulting [`SearchReport`] lands on
    /// [`ReselectionReport::search`] and the
    /// `sofos_select_moves_total` / `sofos_select_restarts_total`
    /// counters.
    pub fn with_anytime_budget(mut self, budget: AnytimeBudget) -> Reselector {
        self.anytime = Some(budget);
        self
    }

    /// Also fire on update-*locality* drift: when the per-group churn
    /// distribution (which groups the update stream hits) moves past the
    /// detector's threshold, re-select even under perfectly steady
    /// demand — maintenance hotspots shift which views are worth keeping.
    /// The churn reference is anchored lazily at the first checked
    /// window and re-anchored on every re-selection.
    pub fn with_locality_trigger(mut self) -> Reselector {
        self.locality = true;
        self
    }

    /// Price upkeep in real microseconds, re-fit from the engine's
    /// accumulated maintenance telemetry on every pass (λ must then be
    /// chosen against the µs scale rather than the analytic one).
    pub fn with_calibrated_maintenance(mut self) -> Reselector {
        self.calibrated = true;
        self
    }

    /// Reuse an offline sizing pass instead of re-evaluating the whole
    /// lattice on every re-selection.
    ///
    /// Re-sizing costs as much as answering one query per lattice view —
    /// on a 2^d lattice that dwarfs everything else a re-selection does,
    /// and is exactly the overhead that makes frequent re-selection
    /// uneconomical. Cached estimates are **not** frozen: every pass
    /// rescales the cached per-view rows/triples/bytes by the live
    /// [`sofos_store::GraphStats`] growth since the cache was taken
    /// ([`crate::offline::SizedLattice::refreshed`]), so byte budgets
    /// keep pricing against the graph that actually exists. The scaling
    /// is uniform — it tracks size, not shape; drop the cache (a fresh
    /// `Reselector`) when the graph's *distribution* has changed.
    pub fn with_sizing_cache(mut self, sized: crate::offline::SizedLattice) -> Reselector {
        self.sizing_cache = Some(sized);
        self
    }

    /// The drift detector (for inspection / reporting).
    pub fn detector(&self) -> &DriftDetector {
        &self.detector
    }

    /// Re-selections performed so far.
    pub fn reselections(&self) -> usize {
        self.reselections
    }

    /// Check the engine's sliding window against the reference profile;
    /// re-select only if demand — or, with the locality trigger, the
    /// per-group churn distribution — drifted past the threshold.
    /// `Ok(None)` means the standing selection still fits.
    pub fn check(&mut self, engine: &Engine) -> Result<Option<ReselectionReport>, SparqlError> {
        let window = engine.window_profile();
        let churn = self.engine_churn(engine);
        let demand_drifted = self.detector.drifted(&window);
        let locality_drifted = self.locality
            && if !self.detector.has_churn_reference() {
                // First sighting of churn anchors the reference; nothing
                // to compare against yet.
                if !churn.is_empty() {
                    self.detector.set_churn_reference(&churn);
                }
                false
            } else {
                self.detector.churn_drifted(&churn)
            };
        if !demand_drifted && !locality_drifted {
            return Ok(None);
        }
        self.reselect_for(engine, window, churn).map(Some)
    }

    /// The engine's churn profile when the locality trigger is on
    /// (empty — and never consulted — otherwise).
    fn engine_churn(&self, engine: &Engine) -> FxHashMap<u64, f64> {
        if self.locality {
            engine.churn_profile()
        } else {
            FxHashMap::default()
        }
    }

    /// Unconditional re-selection against the current window (the
    /// always-reselect policy; also useful to force an initial swap).
    pub fn reselect(&mut self, engine: &Engine) -> Result<ReselectionReport, SparqlError> {
        let window = engine.window_profile();
        let churn = self.engine_churn(engine);
        self.reselect_for(engine, window, churn)
    }

    fn reselect_for(
        &mut self,
        engine: &Engine,
        window: WorkloadProfile,
        engine_churn: FxHashMap<u64, f64>,
    ) -> Result<ReselectionReport, SparqlError> {
        let drift = self.detector.drift(&window);
        let locality_drift = if self.locality {
            self.detector.churn_drift(&engine_churn)
        } else {
            0.0
        };
        // A cold window (no queries yet) has nothing to optimize for;
        // fall back to uniform demand rather than selecting nothing.
        let profile = if window.total_weight() > 0.0 {
            window.clone()
        } else {
            let lattice = sofos_cube::Lattice::new(engine.facet().clone());
            WorkloadProfile::uniform(&lattice)
        };

        // A consistent snapshot of the served dataset: cheap (datasets
        // clone by Arc-sharing), and the epoch backend's serving loop
        // keeps running while sizing and selection think.
        let snapshot = engine.snapshot();
        let computed;
        let refreshed;
        let sizing_refreshed = self.sizing_cache.is_some();
        let (sized, sizing_us) = match &self.sizing_cache {
            Some(cached) => {
                // Incremental re-sizing: scale the cached estimates by
                // live base-graph growth instead of freezing them (or
                // paying a full lattice re-evaluation).
                let live = snapshot.base_stats();
                let (us, r) = measure_once(|| cached.refreshed(&live));
                refreshed = r;
                (&refreshed, us)
            }
            None => {
                computed = crate::offline::SizedLattice::compute(&snapshot, engine.facet())?;
                (&computed, computed.sizing_us)
            }
        };
        let (query_model, _history, _train_us) =
            crate::offline::build_model(self.kind, sized, &self.config);
        let analytic = sofos_cost::TouchedGroupsMaintenance;
        let calibrated;
        let maintenance: &dyn sofos_cost::MaintenanceCostModel = if self.calibrated {
            calibrated = CalibratedMaintenance::calibrate(&engine.maintenance().per_view);
            &calibrated
        } else {
            &analytic
        };
        let rates = engine.observed_rates();
        let ctx = sized.context();
        let objective = if self.lambda > 0.0 {
            Objective::maintenance_aware(query_model.as_ref(), maintenance, rates, self.lambda)
        } else {
            Objective::query_only(query_model.as_ref())
        };
        let (selection_us, (selection, search)) = measure_once(|| match self.anytime {
            None => (
                greedy_select_with(
                    &ctx,
                    &sized.lattice,
                    &objective,
                    &profile,
                    self.config.budget,
                ),
                None,
            ),
            Some(budget) => {
                let mut search = SearchBudget::unlimited();
                if let Some(max_moves) = budget.max_moves {
                    search = search.with_moves(max_moves);
                }
                if let Some(deadline_ms) = budget.deadline_ms {
                    let clock = engine.clock();
                    let deadline = clock.now_ms().saturating_add(deadline_ms);
                    search = search.with_deadline(Arc::new(move || clock.now_ms()), deadline);
                }
                let config = LocalSearchConfig {
                    rng_seed: self.config.seed,
                    initial: Some(engine.views().iter().map(|&(mask, _)| mask).collect()),
                    ..LocalSearchConfig::default()
                };
                let (outcome, report) = local_search_select_with(
                    &ctx,
                    &sized.lattice,
                    &objective,
                    &profile,
                    self.config.budget,
                    &config,
                    &search,
                );
                (outcome, Some(report))
            }
        });

        let churn = engine.swap_views(&selection.selected)?;
        // Anchor at the profile the new selection was *optimized for* —
        // not the raw window, which on a cold forced reselect is empty
        // and would make every subsequent query read as drift 1.0. The
        // churn reference re-anchors at the window's distribution for the
        // same reason.
        self.detector.rebase(&profile);
        if self.locality && !engine_churn.is_empty() {
            self.detector.set_churn_reference(&engine_churn);
        }
        self.reselections += 1;
        let report = ReselectionReport {
            drift,
            locality_drift,
            selection,
            churn,
            sizing_us,
            sizing_refreshed,
            selection_us,
            search,
        };
        let (moves, restarts) = report
            .search
            .as_ref()
            .map_or((0, 0), |s| (s.moves_tried, s.restarts));
        crate::metrics::record_reselection(
            engine.metrics(),
            engine.now_ms(),
            report.overhead_us(),
            moves,
            restarts,
            report.to_string(),
        );
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engine::{Backend, Engine, Route};
    use crate::offline::{run_offline, SizedLattice};
    use crate::policy::StalenessPolicy;
    use sofos_cube::{facet_query, AggOp, ViewMask};
    use sofos_rdf::Term;
    use sofos_select::Budget;
    use sofos_workload::synthetic;

    fn engine_setup(policy: StalenessPolicy, backend: Backend) -> Engine {
        let g = synthetic::generate(&synthetic::Config {
            observations: 120,
            agg: AggOp::Avg,
            ..synthetic::Config::default()
        });
        let facet = g.facets[0].clone();
        let mut ds = g.dataset;
        let sized = SizedLattice::compute(&ds, &facet).unwrap();
        let profile = WorkloadProfile::uniform(&sized.lattice);
        let offline = run_offline(
            &mut ds,
            &sized,
            &profile,
            CostModelKind::AggValues,
            &EngineConfig::default(),
        )
        .unwrap();
        Engine::builder()
            .dataset(ds)
            .facet(facet)
            .catalog(offline.view_catalog())
            .staleness(policy)
            .backend(backend)
            .build()
            .unwrap()
    }

    fn session_delta(batch: usize) -> sofos_store::Delta {
        use sofos_workload::synthetic::NS;
        let mut delta = sofos_store::Delta::new();
        for i in 0..3usize {
            let node = Term::blank(format!("u{batch}_{i}"));
            for d in 0..3usize {
                delta.insert(
                    node.clone(),
                    Term::iri(format!("{NS}dim{d}")),
                    Term::iri(format!("{NS}v{d}_{}", (batch + i + d) % 3)),
                );
            }
            delta.insert(
                node,
                Term::iri(format!("{NS}measure")),
                Term::literal_int(100 + (batch * 7 + i) as i64),
            );
        }
        delta
    }

    /// A delta whose observations all land on one fixed dimension-value
    /// combination — the lever for steering per-group churn.
    fn hotspot_delta(batch: usize, dims: [usize; 3]) -> sofos_store::Delta {
        use sofos_workload::synthetic::NS;
        let mut delta = sofos_store::Delta::new();
        for i in 0..3usize {
            let node = Term::blank(format!("h{batch}_{i}"));
            for (d, v) in dims.iter().enumerate() {
                delta.insert(
                    node.clone(),
                    Term::iri(format!("{NS}dim{d}")),
                    Term::iri(format!("{NS}v{d}_{v}")),
                );
            }
            delta.insert(
                node,
                Term::iri(format!("{NS}measure")),
                Term::literal_int(10 + (batch * 3 + i) as i64),
            );
        }
        delta
    }

    #[test]
    fn drift_detector_measures_total_variation() {
        let a = WorkloadProfile::from_masks([ViewMask(1), ViewMask(1), ViewMask(2), ViewMask(2)]);
        let detector = DriftDetector::new(&a, 0.25);
        // Same mix, different scale: no drift.
        let same = WorkloadProfile::from_masks([ViewMask(1), ViewMask(2)]);
        assert!(detector.drift(&same).abs() < 1e-12);
        assert!(!detector.drifted(&same));
        // Half the mass moved from mask 2 to mask 3: TV = 0.25.
        let shifted =
            WorkloadProfile::from_masks([ViewMask(1), ViewMask(1), ViewMask(2), ViewMask(3)]);
        assert!((detector.drift(&shifted) - 0.25).abs() < 1e-12);
        // Disjoint demand: TV = 1.
        let disjoint = WorkloadProfile::from_masks([ViewMask(5)]);
        assert_eq!(detector.drift(&disjoint), 1.0);
        assert!(detector.drifted(&disjoint));
        // Empty windows never fire.
        let empty = WorkloadProfile { demands: vec![] };
        assert_eq!(detector.drift(&empty), 1.0);
        assert!(!detector.drifted(&empty));
    }

    #[test]
    fn drift_detector_tracks_churn_locality() {
        let reference: FxHashMap<u64, f64> = [(1u64, 2.0), (2u64, 2.0)].into_iter().collect();
        let profile = WorkloadProfile::from_masks([ViewMask(1)]);
        let detector = DriftDetector::new(&profile, 0.25).with_churn_reference(&reference);

        // Same mix, different scale: no locality drift.
        let same: FxHashMap<u64, f64> = [(1u64, 1.0), (2u64, 1.0)].into_iter().collect();
        assert!(detector.churn_drift(&same).abs() < 1e-12);
        assert!(!detector.churn_drifted(&same));

        // Half the churn moved to a new group: TV = 0.5.
        let shifted: FxHashMap<u64, f64> = [(1u64, 2.0), (9u64, 2.0)].into_iter().collect();
        assert!((detector.churn_drift(&shifted) - 0.5).abs() < 1e-12);
        assert!(detector.churn_drifted(&shifted));

        // An empty window is "no churn", not "everything moved".
        assert_eq!(detector.churn_drift(&FxHashMap::default()), 0.0);

        // Without a reference the locality trigger is inert.
        let unanchored = DriftDetector::new(&profile, 0.25);
        assert_eq!(unanchored.churn_drift(&shifted), 0.0);
    }

    #[test]
    fn reselector_fires_on_drift_and_recovers_view_hits_on_both_backends() {
        for backend in [
            Backend::Serial,
            Backend::Epoch {
                shards: 2,
                threads: 2,
            },
        ] {
            let engine = engine_setup(StalenessPolicy::Eager, backend);
            // Force a catalog that only answers apex queries.
            engine.swap_views(&[ViewMask::APEX]).unwrap();
            let apex_profile = WorkloadProfile::from_masks([ViewMask::APEX]);
            let mut reselector = Reselector::new(
                CostModelKind::AggValues,
                EngineConfig::default(),
                0.0,
                &apex_profile,
                0.5,
            );

            // The workload moves to the finest grouping, which the apex
            // cannot answer: every query falls back.
            let base_mask = ViewMask::full(engine.facet().dim_count());
            let q = facet_query(engine.facet(), base_mask, AggOp::Sum, vec![]);
            for _ in 0..6 {
                engine.query(&q).unwrap();
            }
            let (hits_before, fallbacks_before) = engine.routing_counts();
            assert_eq!(hits_before, 0, "{backend}");
            assert_eq!(fallbacks_before, 6, "{backend}");

            let report = reselector
                .check(&engine)
                .unwrap()
                .expect("profile moved entirely: drift 1.0 > threshold 0.5");
            assert_eq!(report.drift, 1.0, "{backend}");
            assert!(
                report
                    .selection
                    .selected
                    .iter()
                    .any(|v| v.covers(base_mask)),
                "{backend}: re-selection must cover the new hot demand: {:?}",
                report.selection.selected
            );
            assert!(!report.churn.added.is_empty(), "{backend}");
            assert_eq!(reselector.reselections(), 1, "{backend}");

            // After the swap the same query routes to a view again.
            let answer = engine.query(&q).unwrap();
            assert!(matches!(answer.route, Route::View(_)), "{backend}");

            // And the detector is re-anchored: the same workload no longer
            // triggers another pass.
            assert!(reselector.check(&engine).unwrap().is_none(), "{backend}");
        }
    }

    #[test]
    fn reselector_options_calibrated_and_cached() {
        let engine = engine_setup(StalenessPolicy::Eager, Backend::Serial);
        // Accumulate maintenance telemetry for calibration.
        for batch in 0..3 {
            engine.update(session_delta(batch)).unwrap();
        }
        assert!(!engine.maintenance().per_view.is_empty());
        let sized = SizedLattice::compute(&engine.snapshot(), engine.facet()).unwrap();
        engine.swap_views(&[ViewMask::APEX]).unwrap();
        let apex_profile = WorkloadProfile::from_masks([ViewMask::APEX]);
        let mut reselector = Reselector::new(
            CostModelKind::Triples,
            EngineConfig::default(),
            1.0,
            &apex_profile,
            0.5,
        )
        .with_calibrated_maintenance()
        .with_sizing_cache(sized);

        let base_mask = ViewMask::full(engine.facet().dim_count());
        let q = facet_query(engine.facet(), base_mask, AggOp::Sum, vec![]);
        for _ in 0..4 {
            engine.query(&q).unwrap();
        }
        let report = reselector
            .check(&engine)
            .unwrap()
            .expect("disjoint demand triggers re-selection");
        assert!(
            report.sizing_refreshed,
            "cached sizing is refreshed, not re-evaluated"
        );
        assert!(report
            .selection
            .selected
            .iter()
            .any(|v| v.covers(base_mask)));
        let answer = engine.query(&q).unwrap();
        assert!(matches!(answer.route, Route::View(_)));

        // The report renders and serializes without hand-formatting.
        let line = report.to_string();
        assert!(line.starts_with("drift 1.00"), "{line}");
        let json = report.to_json_string();
        assert!(json.contains("\"drift\":1"), "{json}");
        assert!(json.contains("\"sizing_refreshed\":true"), "{json}");
    }

    #[test]
    fn reselector_stays_quiet_without_drift() {
        let engine = engine_setup(StalenessPolicy::Eager, Backend::Serial);
        let workload = sofos_workload::generate_workload(
            &engine.snapshot(),
            engine.facet(),
            &sofos_workload::WorkloadConfig {
                num_queries: 10,
                ..Default::default()
            },
        );
        let reference = WorkloadProfile::from_masks(workload.iter().map(|q| q.required));
        let mut reselector = Reselector::new(
            CostModelKind::AggValues,
            EngineConfig::default(),
            1.0,
            &reference,
            0.5,
        );
        for q in &workload {
            engine.query(&q.query).unwrap();
        }
        assert!(
            reselector.check(&engine).unwrap().is_none(),
            "replaying the reference workload is not drift"
        );
        assert_eq!(reselector.reselections(), 0);
    }

    #[test]
    fn reselector_fires_on_locality_drift_under_steady_demand() {
        let engine = engine_setup(StalenessPolicy::Eager, Backend::Serial);
        // Steady demand: the same query before and after the hotspot
        // moves, so demand drift stays ~0 throughout.
        let demand_mask = ViewMask::full(engine.facet().dim_count());
        let q = facet_query(engine.facet(), demand_mask, AggOp::Sum, vec![]);
        let reference = WorkloadProfile::from_masks([demand_mask]);
        let mut reselector = Reselector::new(
            CostModelKind::AggValues,
            EngineConfig::default(),
            1.0,
            &reference,
            0.5,
        )
        .with_locality_trigger();

        for _ in 0..4 {
            engine.query(&q).unwrap();
        }
        for batch in 0..3 {
            engine.update(hotspot_delta(batch, [0, 0, 0])).unwrap();
        }
        // First check anchors the churn reference; steady demand, no fire.
        assert!(reselector.check(&engine).unwrap().is_none());

        // The update stream migrates to a disjoint hotspot; demand is
        // unchanged (same query keeps arriving).
        for batch in 3..3 + crate::policy::ProfileWindows::RATE_WINDOW {
            engine.update(hotspot_delta(batch, [2, 2, 2])).unwrap();
            engine.query(&q).unwrap();
        }
        let report = reselector
            .check(&engine)
            .unwrap()
            .expect("locality drift alone triggers re-selection");
        assert!(
            report.drift <= 0.5,
            "demand stayed steady: {}",
            report.drift
        );
        assert!(
            report.locality_drift > 0.5,
            "churn moved: {}",
            report.locality_drift
        );
        assert_eq!(reselector.reselections(), 1);
        // Re-anchored: the same hotspot no longer reads as drift.
        assert!(reselector.check(&engine).unwrap().is_none());
    }

    #[test]
    fn anytime_reselection_improves_within_a_move_budget_on_both_backends() {
        for backend in [
            Backend::Serial,
            Backend::Epoch {
                shards: 2,
                threads: 2,
            },
        ] {
            let engine = engine_setup(StalenessPolicy::Eager, backend);
            engine.swap_views(&[ViewMask::APEX]).unwrap();
            let apex_profile = WorkloadProfile::from_masks([ViewMask::APEX]);
            let mut reselector = Reselector::new(
                CostModelKind::AggValues,
                EngineConfig::default(),
                0.0,
                &apex_profile,
                0.5,
            )
            .with_anytime_budget(AnytimeBudget::moves(2_000));

            let base_mask = ViewMask::full(engine.facet().dim_count());
            let q = facet_query(engine.facet(), base_mask, AggOp::Sum, vec![]);
            for _ in 0..6 {
                engine.query(&q).unwrap();
            }
            let report = reselector
                .check(&engine)
                .unwrap()
                .expect("disjoint demand triggers re-selection");
            let search = report.search.as_ref().expect("anytime pass reports search");
            assert!(search.moves_tried <= 2_000, "{backend}");
            assert!(
                search.final_cost <= search.seed_cost,
                "{backend}: never worse than the catalog seed"
            );
            assert!(
                report
                    .selection
                    .selected
                    .iter()
                    .any(|v| v.covers(base_mask)),
                "{backend}: local search finds the hot demand: {:?}",
                report.selection.selected
            );
            let line = report.to_string();
            assert!(line.contains("anytime:"), "{line}");
            assert!(report.to_json_string().contains("\"moves_tried\":"));

            // The pass lands on the adaptive instruments.
            let snap = engine.metrics().snapshot();
            assert_eq!(snap.counter_value("sofos_reselections_total", &[]), Some(1));
            assert!(
                snap.counter_value("sofos_select_moves_total", &[]).unwrap() > 0,
                "{backend}"
            );
        }
    }

    #[test]
    fn anytime_deadline_on_a_frozen_clock_returns_the_catalog_seed() {
        use crate::policy::{Clock, ManualClock};
        use std::sync::Arc;

        let g = synthetic::generate(&synthetic::Config {
            observations: 120,
            agg: AggOp::Avg,
            ..synthetic::Config::default()
        });
        let facet = g.facets[0].clone();
        let mut ds = g.dataset;
        let sized = SizedLattice::compute(&ds, &facet).unwrap();
        let profile = WorkloadProfile::uniform(&sized.lattice);
        let offline = run_offline(
            &mut ds,
            &sized,
            &profile,
            CostModelKind::AggValues,
            &EngineConfig::default(),
        )
        .unwrap();
        let clock = ManualClock::shared(0);
        let engine = Engine::builder()
            .dataset(ds)
            .facet(facet)
            .catalog(offline.view_catalog())
            .clock(clock.clone() as Arc<dyn Clock>)
            .build()
            .unwrap();
        engine.swap_views(&[ViewMask::APEX]).unwrap();

        // A zero-ms deadline off a frozen clock expires before the first
        // proposal: the pass must come back with the (valid) catalog seed
        // — the interrupt-at-deadline contract, deterministic under
        // ManualClock.
        let apex_profile = WorkloadProfile::from_masks([ViewMask::APEX]);
        let mut reselector = Reselector::new(
            CostModelKind::AggValues,
            EngineConfig::default(),
            0.0,
            &apex_profile,
            0.5,
        )
        .with_anytime_budget(AnytimeBudget::deadline_ms(0));
        let base_mask = ViewMask::full(engine.facet().dim_count());
        let q = facet_query(engine.facet(), base_mask, AggOp::Sum, vec![]);
        for _ in 0..4 {
            engine.query(&q).unwrap();
        }
        let report = reselector.reselect(&engine).unwrap();
        let search = report.search.expect("anytime pass reports search");
        assert!(search.budget_exhausted);
        assert_eq!(search.moves_tried, 0);
        assert_eq!(
            report.selection.selected,
            vec![ViewMask::APEX],
            "seed catalog survives the interrupt"
        );
    }

    #[test]
    fn reselector_budget_variants() {
        // Byte budgets flow through the engine path exactly as view
        // budgets do.
        let engine = engine_setup(StalenessPolicy::Eager, Backend::Serial);
        engine.swap_views(&[ViewMask::APEX]).unwrap();
        let apex_profile = WorkloadProfile::from_masks([ViewMask::APEX]);
        let mut reselector = Reselector::new(
            CostModelKind::AggValues,
            EngineConfig {
                budget: Budget::Views(2),
                ..EngineConfig::default()
            },
            0.0,
            &apex_profile,
            0.5,
        );
        let base_mask = ViewMask::full(engine.facet().dim_count());
        let q = facet_query(engine.facet(), base_mask, AggOp::Sum, vec![]);
        for _ in 0..4 {
            engine.query(&q).unwrap();
        }
        let report = reselector.reselect(&engine).unwrap();
        assert!(report.selection.selected.len() <= 2, "budget respected");
    }
}
