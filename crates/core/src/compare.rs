//! The cost-model comparison runner: the heart of the SOFOS demonstration.
//!
//! For each requested cost model the runner: clones the base dataset,
//! executes the offline phase (select + materialize) and the online phase
//! (the *same* workload, timed), and tabulates the trade-off between query
//! time and space amplification — §4's "Exploring Cost Models" station.

use crate::config::EngineConfig;
use crate::offline::{run_offline, SizedLattice};
use crate::online::run_online;
use crate::report::{ComparisonReport, ModelRow};
use sofos_cost::CostModelKind;
use sofos_cube::Facet;
use sofos_select::{Budget, WorkloadProfile};
use sofos_sparql::SparqlError;
use sofos_store::Dataset;
use sofos_workload::{generate_workload, GeneratedQuery};

/// Compare cost models on one dataset + facet.
///
/// The lattice is sized once (shared), the workload is generated once
/// (identical queries per model), and the no-views baseline is measured on
/// the unexpanded dataset.
pub fn compare_cost_models(
    dataset_name: &str,
    dataset: &Dataset,
    facet: &Facet,
    kinds: &[CostModelKind],
    config: &EngineConfig,
) -> Result<ComparisonReport, SparqlError> {
    let sized = SizedLattice::compute(dataset, facet)?;
    let workload = generate_workload(dataset, facet, &config.workload);
    let profile = WorkloadProfile::from_masks(workload.iter().map(|q| q.required));

    let baseline = run_online(dataset, facet, &[], &workload, config.timing_reps, false)?.summary;

    let mut models = Vec::with_capacity(kinds.len());
    for &kind in kinds {
        let row = run_one_model(dataset, facet, &sized, &profile, &workload, kind, config)?;
        models.push(row.with_baseline(&baseline));
    }

    Ok(ComparisonReport {
        dataset: dataset_name.to_string(),
        facet: facet.id.clone(),
        dims: facet.dim_count(),
        budget: describe_budget(config.budget),
        queries: workload.len(),
        sizing_us: sized.sizing_us,
        baseline,
        models,
    })
}

/// A model's measurements before the baseline speedup is attached.
struct PendingRow {
    offline: crate::offline::OfflineOutcome,
    online: crate::online::OnlineOutcome,
    view_names: Vec<String>,
}

impl PendingRow {
    fn with_baseline(self, baseline: &crate::timing::TimeSummary) -> ModelRow {
        ModelRow::new(&self.offline, &self.online, baseline, self.view_names)
    }
}

fn run_one_model(
    dataset: &Dataset,
    facet: &Facet,
    sized: &SizedLattice,
    profile: &WorkloadProfile,
    workload: &[GeneratedQuery],
    kind: CostModelKind,
    config: &EngineConfig,
) -> Result<PendingRow, SparqlError> {
    let mut expanded = dataset.clone();
    let offline = run_offline(&mut expanded, sized, profile, kind, config)?;
    let online = run_online(
        &expanded,
        facet,
        &offline.view_catalog(),
        workload,
        config.timing_reps,
        config.validate,
    )?;
    let view_names = offline
        .selection
        .selected
        .iter()
        .map(|&v| sized.lattice.view_name(v))
        .collect();
    Ok(PendingRow {
        offline,
        online,
        view_names,
    })
}

fn describe_budget(budget: Budget) -> String {
    match budget {
        Budget::Views(k) => format!("{k} views"),
        Budget::Bytes(b) => format!("{b} bytes"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_workload::dbpedia;

    #[test]
    fn compares_static_models_end_to_end() {
        let g = dbpedia::generate(&dbpedia::Config {
            countries: 8,
            years: 2,
            ..dbpedia::Config::default()
        });
        let mut config = EngineConfig::default();
        config.workload.num_queries = 10;
        config.timing_reps = 1;
        let kinds = [
            CostModelKind::Random,
            CostModelKind::Triples,
            CostModelKind::AggValues,
            CostModelKind::Nodes,
        ];
        let report =
            compare_cost_models(g.name, &g.dataset, &g.facets[0], &kinds, &config).unwrap();

        assert_eq!(report.models.len(), 4);
        assert_eq!(report.queries, 10);
        for row in &report.models {
            assert!(row.all_valid, "{}: invalid view answers", row.model);
            assert_eq!(row.selected_views.len(), 4);
            assert!(row.storage_amplification > 1.0);
            assert!(row.latency.total_us > 0);
        }
        // Rendering works and contains every model.
        let table = report.to_table();
        for row in &report.models {
            assert!(table.contains(&row.model), "missing {} in table", row.model);
        }
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 1 + 1 + 4, "header + baseline + models");
    }
}
