//! The deprecated [`ConcurrentSession`] shim — a thin wrapper over the
//! engine's epoch backend.
//!
//! The concurrent serving mode (queries against pinned epoch snapshots
//! while maintenance publishes new epochs) now lives behind the one front
//! door: build a [`crate::engine::Engine`] with
//! [`crate::engine::Backend::Epoch`]. This type remains for one release
//! so existing callers keep compiling; it adds nothing the engine does
//! not expose, and delegates every call.

use crate::engine::{EpochBackend, ServingBackend};
use crate::online::{SessionAnswer, StalenessPolicy, ViewChurn};
use crate::policy::system_clock;
use sofos_cube::{Facet, ViewMask};
use sofos_maintain::{MaintenanceReport, PipelineTelemetry, ShardScanCost};
use sofos_sparql::{Query, SparqlError};
use sofos_store::{Dataset, Delta, EpochStore, PinnedSnapshot};

/// The legacy [`StalenessPolicy`]-driven serving loop over an
/// [`EpochStore`]: concurrent readers, one writer, epoch-snapshot
/// isolation.
///
/// Deprecated: build a [`crate::engine::Engine`] with
/// [`crate::engine::Backend::Epoch`] instead — the same serving surface,
/// shared with the serial backend, plus wall-clock staleness bounds.
#[deprecated(
    since = "0.2.0",
    note = "use sofos_core::Engine with Backend::Epoch — one front door over both serving backends"
)]
pub struct ConcurrentSession {
    backend: EpochBackend,
}

#[allow(deprecated)]
impl ConcurrentSession {
    /// Open a concurrent session over an expanded dataset and its view
    /// catalog, sharded `shards` ways with `writer_threads` maintenance
    /// workers per batch.
    pub fn new(
        dataset: Dataset,
        facet: Facet,
        views: Vec<(ViewMask, usize)>,
        policy: StalenessPolicy,
        shards: usize,
        writer_threads: usize,
    ) -> ConcurrentSession {
        ConcurrentSession {
            backend: EpochBackend::new(
                dataset,
                facet,
                views,
                policy,
                shards,
                writer_threads,
                system_clock(),
            ),
        }
    }

    /// The underlying epoch store (epoch numbers, retire accounting).
    pub fn store(&self) -> &EpochStore {
        self.backend.store()
    }

    /// The facet.
    pub fn facet(&self) -> &Facet {
        self.backend.facet()
    }

    /// The session's staleness policy.
    pub fn policy(&self) -> StalenessPolicy {
        self.backend.policy()
    }

    /// Pin the current epoch (for validation and ad-hoc reads).
    pub fn pin(&self) -> PinnedSnapshot {
        self.backend.pin()
    }

    /// The live catalog (cloned; it is small).
    pub fn views(&self) -> Vec<(ViewMask, usize)> {
        self.backend.views()
    }

    /// `(view hits, base-graph fallbacks)` so far.
    pub fn routing_counts(&self) -> (usize, usize) {
        self.backend.routing_counts()
    }

    /// Update batches applied so far.
    pub fn update_batches(&self) -> usize {
        self.backend.update_batches()
    }

    /// Views currently stale (relative to the latest published epoch).
    pub fn stale_views(&self) -> usize {
        self.backend.stale_views()
    }

    /// Accumulated maintenance log (cloned).
    pub fn maintenance(&self) -> MaintenanceReport {
        self.backend.maintenance()
    }

    /// Accumulated per-shard scan telemetry, folded across batches
    /// (sorted by shard).
    pub fn shard_scan_totals(&self) -> Vec<ShardScanCost> {
        self.backend.shard_scan_totals()
    }

    /// Accumulated two-phase pipeline telemetry.
    pub fn pipeline_telemetry(&self) -> PipelineTelemetry {
        self.backend.pipeline_telemetry().unwrap_or_default()
    }

    /// Bounded policy: update batches buffered and not yet published.
    pub fn buffered_updates(&self) -> usize {
        self.backend.buffered_updates()
    }

    /// Apply an update batch under the session's staleness policy.
    pub fn update(&self, delta: Delta) -> Result<(), SparqlError> {
        self.backend.update(delta)
    }

    /// Flush the bounded policy's buffered updates now.
    pub fn flush(&self) -> Result<(), SparqlError> {
        self.backend.flush()
    }

    /// Answer one query from a pinned snapshot.
    pub fn query(&self, query: &Query) -> Result<SessionAnswer, SparqlError> {
        self.backend.query(query)
    }

    /// Replace the materialized set with `target`, transactionally.
    pub fn swap_views(&self, target: &[ViewMask]) -> Result<ViewChurn, SparqlError> {
        self.backend.swap_views(target)
    }
}
