//! The concurrent serving mode: queries against pinned epoch snapshots
//! while maintenance publishes new epochs.
//!
//! [`crate::online::Session`] is single-threaded by construction: it owns
//! the dataset, so every maintenance batch stalls every query for its full
//! duration — the serialized regime the `e9_concurrency` experiment uses
//! as its baseline. [`ConcurrentSession`] is the same serving surface
//! (update / query / swap under a [`StalenessPolicy`]) rebuilt over the
//! store's epoch mechanism ([`EpochStore`]):
//!
//! * **queries** pin an immutable epoch [`sofos_store::Snapshot`] and
//!   evaluate against it — they never wait for a writer, only for the
//!   pointer swap of a publish and a short catalog-routing lock;
//! * **updates** run inside a write transaction: the delta's binding
//!   scans are split by subject shard and run on a scoped thread pool
//!   ([`sofos_maintain::Maintainer::apply_sharded`]), views are patched
//!   on the writer's master, and the whole batch becomes visible
//!   atomically at publish;
//! * the **staleness policies** are re-expressed over epochs. *Eager*
//!   maintains inside the update transaction, so every published epoch is
//!   internally consistent and queries never repair anything. *Lazy*
//!   publishes the base change immediately and buffers the row delta
//!   tagged with its epoch; a view is repaired on its next hit by
//!   replaying exactly the epochs it missed (its cursor is an epoch
//!   number). *Invalidate* drops the catalog inside the update
//!   transaction — readers atomically go from "all views" to "no views",
//!   never observing a half-dropped catalog.
//! * [`ConcurrentSession::swap_views`] keeps the serial session's
//!   materialize-first / rollback contract, with one epoch-store twist:
//!   a failed swap publishes *nothing*, so concurrent readers cannot
//!   observe even a transiently half-swapped catalog.
//!
//! Lock discipline (in acquisition order): write transaction → writer
//! side (maintenance engine) → serving state (catalog routing). The
//! serving lock is held only for catalog reads/installs and the O(1)
//! publish swap — never across maintenance, materialization, snapshot
//! cloning, or query evaluation.

use crate::online::{Freshness, Route, SessionAnswer, StalenessPolicy, ViewChurn};
use crate::timing::measure_once;
use sofos_cube::{Facet, ViewMask};
use sofos_maintain::{Maintainer, MaintenanceReport, PipelineTelemetry, RowDelta, ShardScanCost};
use sofos_materialize::{drop_view, materialize_view, MaterializedView};
use sofos_rdf::{FxHashMap, FxHashSet};
use sofos_rewrite::{analyze_query, best_view, rewrite_query};
use sofos_sparql::{Evaluator, Query, SparqlError};
use sofos_store::{Dataset, Delta, EpochStore, PinnedSnapshot, WriteTxn};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Routing and staleness state shared between readers and the writer.
/// Guarded by a mutex that is only ever held briefly (see module docs).
struct ServingState {
    /// The live catalog: mask + row count, in selection order.
    views: Vec<(ViewMask, usize)>,
    /// Buffered row deltas under the lazy policy, tagged with the epoch
    /// that published them (ascending).
    pending: VecDeque<(u64, RowDelta)>,
    /// Per-view epoch cursor: all pending entries with `epoch <= cursor`
    /// are already applied to that view.
    cursor: FxHashMap<u64, u64>,
    /// Views that must fully refresh on their next hit.
    needs_refresh: FxHashSet<u64>,
    /// Bounded policy only: update batches buffered by the writer and not
    /// yet published — the lag every read serves under (and is tagged
    /// with) until the next flush.
    buffered_batches: usize,
    view_hits: usize,
    fallbacks: usize,
    update_batches: usize,
}

impl ServingState {
    /// Is `view` stale as of `epoch` (exclusive of later epochs)?
    fn stale_at(&self, view: ViewMask, epoch: u64) -> bool {
        if self.needs_refresh.contains(&view.0) {
            return true;
        }
        let cursor = self.cursor.get(&view.0).copied().unwrap_or(0);
        self.pending.iter().any(|&(e, _)| e > cursor && e <= epoch)
    }

    /// Merge the pending entries a view has not applied yet.
    fn backlog(&self, view: ViewMask) -> RowDelta {
        let cursor = self.cursor.get(&view.0).copied().unwrap_or(0);
        let mut merged = RowDelta::default();
        for (epoch, rows) in &self.pending {
            if *epoch > cursor {
                merged.merge(rows);
            }
        }
        merged
    }

    /// Drop pending entries every catalog view has consumed.
    fn compact(&mut self) {
        let consumed = self
            .views
            .iter()
            .map(|(mask, _)| self.cursor.get(&mask.0).copied().unwrap_or(0))
            .min()
            .unwrap_or(u64::MAX);
        while self
            .pending
            .front()
            .is_some_and(|&(epoch, _)| epoch <= consumed)
        {
            self.pending.pop_front();
        }
    }

    /// Bound the pending log: views too far behind are downgraded to a
    /// full refresh (which a view that stale effectively needs anyway).
    fn enforce_cap(&mut self, current_epoch: u64) {
        const CAP: usize = 64;
        while self.pending.len() > CAP {
            let (dropped_epoch, _) = self.pending.pop_front().expect("len > CAP");
            for &(mask, _) in &self.views {
                if self.cursor.get(&mask.0).copied().unwrap_or(0) < dropped_epoch {
                    self.needs_refresh.insert(mask.0);
                    self.cursor.insert(mask.0, current_epoch);
                }
            }
        }
    }
}

/// Writer-only state (the maintenance engine and its telemetry). Guarded
/// by its own mutex, always acquired while holding the store's write
/// transaction, so it never contends with readers.
struct WriterSide {
    maintainer: Maintainer,
    log: MaintenanceReport,
    /// Scan telemetry folded to per-shard totals at absorb time, so a
    /// long-lived session stays O(shards) regardless of batch count.
    shard_scans: Vec<ShardScanCost>,
    /// Accumulated two-phase split (serial spine vs. pool work) across
    /// every sharded apply and pipelined maintenance pass.
    telemetry: PipelineTelemetry,
    /// Bounded policy only: deltas awaiting the next batched flush.
    buffered: Vec<Delta>,
}

impl WriterSide {
    fn absorb_scans(&mut self, costs: &[ShardScanCost]) {
        for cost in costs {
            match self.shard_scans.iter_mut().find(|t| t.shard == cost.shard) {
                Some(total) => total.merge(cost),
                None => self.shard_scans.push(*cost),
            }
        }
    }

    /// Fold one sharded apply's scan/serial split into the running
    /// telemetry and per-shard totals.
    fn absorb_sharded(&mut self, sharded: &sofos_maintain::ShardedApplyOutcome) {
        self.absorb_scans(&sharded.shard_costs);
        self.telemetry.merge(&PipelineTelemetry {
            serial_us: sharded.serial_us,
            parallel_work_us: sharded.scan_work_us(),
            parallel_wall_us: sharded.scan_wall_us,
        });
    }
}

/// A [`StalenessPolicy`]-driven serving loop over an [`EpochStore`]:
/// concurrent readers, one writer, epoch-snapshot isolation.
pub struct ConcurrentSession {
    store: EpochStore,
    facet: Facet,
    policy: StalenessPolicy,
    writer_threads: usize,
    writer: Mutex<WriterSide>,
    serving: Mutex<ServingState>,
}

impl ConcurrentSession {
    /// Open a concurrent session over an expanded dataset and its view
    /// catalog, sharded `shards` ways with `writer_threads` maintenance
    /// workers per batch.
    pub fn new(
        dataset: Dataset,
        facet: Facet,
        views: Vec<(ViewMask, usize)>,
        policy: StalenessPolicy,
        shards: usize,
        writer_threads: usize,
    ) -> ConcurrentSession {
        ConcurrentSession {
            store: EpochStore::new(dataset, shards),
            writer: Mutex::new(WriterSide {
                maintainer: Maintainer::new(&facet),
                log: MaintenanceReport::default(),
                shard_scans: Vec::new(),
                telemetry: PipelineTelemetry::default(),
                buffered: Vec::new(),
            }),
            serving: Mutex::new(ServingState {
                views,
                pending: VecDeque::new(),
                cursor: FxHashMap::default(),
                needs_refresh: FxHashSet::default(),
                buffered_batches: 0,
                view_hits: 0,
                fallbacks: 0,
                update_batches: 0,
            }),
            facet,
            policy,
            writer_threads: writer_threads.max(1),
        }
    }

    /// The underlying epoch store (epoch numbers, retire accounting).
    pub fn store(&self) -> &EpochStore {
        &self.store
    }

    /// The facet.
    pub fn facet(&self) -> &Facet {
        &self.facet
    }

    /// The session's staleness policy.
    pub fn policy(&self) -> StalenessPolicy {
        self.policy
    }

    /// Pin the current epoch (for validation and ad-hoc reads).
    pub fn pin(&self) -> PinnedSnapshot {
        self.store.pin()
    }

    /// The live catalog (cloned; it is small).
    pub fn views(&self) -> Vec<(ViewMask, usize)> {
        self.lock_serving().views.clone()
    }

    /// `(view hits, base-graph fallbacks)` so far.
    pub fn routing_counts(&self) -> (usize, usize) {
        let state = self.lock_serving();
        (state.view_hits, state.fallbacks)
    }

    /// Update batches applied so far.
    pub fn update_batches(&self) -> usize {
        self.lock_serving().update_batches
    }

    /// Views currently stale (relative to the latest published epoch).
    pub fn stale_views(&self) -> usize {
        let epoch = self.store.epoch();
        let state = self.lock_serving();
        state
            .views
            .iter()
            .filter(|(mask, _)| state.stale_at(*mask, epoch))
            .count()
    }

    /// Accumulated maintenance log (cloned).
    pub fn maintenance(&self) -> MaintenanceReport {
        let writer = self.writer.lock().expect("writer lock poisoned");
        writer.log.clone()
    }

    /// Accumulated per-shard scan telemetry, folded across batches
    /// (sorted by shard).
    pub fn shard_scan_totals(&self) -> Vec<ShardScanCost> {
        let writer = self.writer.lock().expect("writer lock poisoned");
        let mut totals = writer.shard_scans.clone();
        totals.sort_by_key(|t| t.shard);
        totals
    }

    /// Accumulated two-phase pipeline telemetry: how the session's
    /// maintenance work split between the serial spine and the thread
    /// pool. Feed its measured serial fraction to
    /// `sofos_cost::ShardedMaintenance::from_telemetry`.
    pub fn pipeline_telemetry(&self) -> PipelineTelemetry {
        self.writer.lock().expect("writer lock poisoned").telemetry
    }

    /// Bounded policy: update batches buffered and not yet published.
    pub fn buffered_updates(&self) -> usize {
        self.lock_serving().buffered_batches
    }

    fn lock_serving(&self) -> std::sync::MutexGuard<'_, ServingState> {
        self.serving.lock().expect("serving lock poisoned")
    }

    /// Apply an update batch under the session's staleness policy. The
    /// batch becomes visible to readers atomically at publish; readers
    /// keep answering from the previous epoch until then.
    pub fn update(&self, delta: Delta) -> Result<(), SparqlError> {
        let mut txn = self.store.begin();
        let router = *self.store.router();
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        self.lock_serving().update_batches += 1;
        // Invariant for every branch below: the serving lock is held
        // *across* the catalog change and the publish, so a reader can
        // never pair the new catalog with the old epoch (or vice versa).
        match self.policy {
            StalenessPolicy::Invalidate => {
                let views: Vec<ViewMask> = {
                    let state = self.lock_serving();
                    state.views.iter().map(|(m, _)| *m).collect()
                };
                for mask in views {
                    drop_view(txn.dataset(), &self.facet, mask);
                }
                let changes = txn.dataset().apply(delta);
                txn.touch_changes(&changes);
                let prepared = txn.prepare();
                let mut state = self.lock_serving();
                state.views.clear();
                state.pending.clear();
                state.cursor.clear();
                state.needs_refresh.clear();
                prepared.publish();
                Ok(())
            }
            StalenessPolicy::Eager => {
                let sharded = writer.maintainer.apply_sharded(
                    txn.dataset(),
                    delta,
                    &router,
                    self.writer_threads,
                );
                writer.absorb_sharded(&sharded);
                // The catalog's masks cannot change concurrently — every
                // view mutator holds the write transaction — so working on
                // a clone and installing it back is race-free.
                let mut views = self.lock_serving().views.clone();
                let result = writer.maintainer.maintain_pipelined(
                    txn.dataset(),
                    sharded.outcome.rows.as_ref(),
                    &mut views,
                    self.writer_threads,
                );
                txn.touch_changes(&sharded.outcome.changes);
                // Snapshot construction (the clone) happens before the
                // serving lock; readers only ever wait for the swap.
                match result {
                    Ok(outcome) => {
                        writer.telemetry.merge(&outcome.telemetry);
                        writer.log.absorb(outcome.report);
                        let prepared = txn.prepare();
                        let mut state = self.lock_serving();
                        state.views = views;
                        prepared.publish();
                        Ok(())
                    }
                    Err(e) => {
                        // The base delta is applied but no view was
                        // patched (pipelined planning is all-or-nothing);
                        // abandoning the transaction would leave the
                        // master diverged from the published epoch
                        // forever. Publish the batch instead and demand a
                        // full refresh of every (now stale) view —
                        // `needs_refresh` bars queries from routing to
                        // any of them before repair, under every policy.
                        let prepared = txn.prepare();
                        let mut state = self.lock_serving();
                        state.views = views;
                        let masks: Vec<u64> = state.views.iter().map(|(m, _)| m.0).collect();
                        let epoch = prepared.publish();
                        for mask in masks {
                            state.needs_refresh.insert(mask);
                            state.cursor.insert(mask, epoch);
                        }
                        state.pending.clear();
                        Err(e)
                    }
                }
            }
            StalenessPolicy::Bounded { max_batches, .. } => {
                writer.buffered.push(delta);
                // Publish the new lag to readers *before* deciding to
                // flush: a racing reader must either see the full buffer
                // count (and spin on the budget check until the flush
                // publishes) or serve a tag that includes this delta —
                // never an undercounted lag.
                self.lock_serving().buffered_batches = writer.buffered.len();
                if writer.buffered.len() >= max_batches.max(1) {
                    self.flush_with(txn, &mut writer)
                } else {
                    // Dropped without publish: nothing was mutated, the
                    // delta only joined the writer-side buffer.
                    drop(txn);
                    Ok(())
                }
            }
            StalenessPolicy::LazyOnHit => {
                let sharded = writer.maintainer.apply_sharded(
                    txn.dataset(),
                    delta,
                    &router,
                    self.writer_threads,
                );
                writer.absorb_sharded(&sharded);
                txn.touch_changes(&sharded.outcome.changes);
                let prepared = txn.prepare();
                let mut state = self.lock_serving();
                let epoch = prepared.publish();
                match sharded.outcome.rows {
                    Some(rows) if rows.is_empty() => {}
                    Some(rows) => {
                        state.pending.push_back((epoch, rows));
                        state.enforce_cap(epoch);
                    }
                    None => {
                        // Non-star facet: buffered deltas cannot repair
                        // anything; every view needs a full refresh.
                        let masks: Vec<u64> = state.views.iter().map(|(m, _)| m.0).collect();
                        for mask in masks {
                            state.needs_refresh.insert(mask);
                            state.cursor.insert(mask, epoch);
                        }
                        state.pending.clear();
                    }
                }
                Ok(())
            }
        }
    }

    /// Flush the bounded policy's buffered updates now: apply them all
    /// inside one batched transaction, maintain every view in one
    /// pipelined pass over the *merged* row delta, and publish the whole
    /// batch as a single epoch. No-op when nothing is buffered.
    pub fn flush(&self) -> Result<(), SparqlError> {
        let txn = self.store.begin();
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        if writer.buffered.is_empty() {
            return Ok(());
        }
        self.flush_with(txn, &mut writer)
    }

    /// The batched-epoch flush (writer lock held, transaction open).
    fn flush_with(&self, txn: WriteTxn<'_>, writer: &mut WriterSide) -> Result<(), SparqlError> {
        let router = *self.store.router();
        let mut batch = txn.batch();
        let deltas: Vec<Delta> = writer.buffered.drain(..).collect();
        // Merge the per-delta row deltas: N batches collapse into one
        // group-patching pass (intra-batch churn cancels for free).
        let mut merged: Option<RowDelta> = Some(RowDelta::default());
        for delta in deltas {
            let sharded = writer.maintainer.apply_sharded(
                batch.dataset(),
                delta,
                &router,
                self.writer_threads,
            );
            writer.absorb_sharded(&sharded);
            batch.absorb(&sharded.outcome.changes);
            match sharded.outcome.rows {
                Some(rows) => {
                    if let Some(m) = merged.as_mut() {
                        m.merge(&rows);
                    }
                }
                // Non-star facet: merged deltas cannot repair anything.
                None => merged = None,
            }
        }
        let mut views = self.lock_serving().views.clone();
        let result = writer.maintainer.maintain_pipelined(
            batch.dataset(),
            merged.as_ref(),
            &mut views,
            self.writer_threads,
        );
        match result {
            Ok(outcome) => {
                writer.telemetry.merge(&outcome.telemetry);
                writer.log.absorb(outcome.report);
                let prepared = batch.prepare();
                let mut state = self.lock_serving();
                state.views = views;
                state.buffered_batches = 0;
                prepared.publish();
                Ok(())
            }
            Err(e) => {
                // Base deltas are applied, views were left unpatched
                // (all-or-nothing planning): publish the base batch and
                // demand a full refresh of every view.
                let prepared = batch.prepare();
                let mut state = self.lock_serving();
                let masks: Vec<u64> = state.views.iter().map(|(m, _)| m.0).collect();
                let epoch = prepared.publish();
                state.buffered_batches = 0;
                for mask in masks {
                    state.needs_refresh.insert(mask);
                    state.cursor.insert(mask, epoch);
                }
                state.pending.clear();
                Err(e)
            }
        }
    }

    /// Answer one query from a pinned snapshot. Under the lazy policy a
    /// stale routed-to view is repaired (and the next epoch published)
    /// first. Under the bounded policy the answer is served from the
    /// standing epoch and *tagged* with its lag — unless the lag exceeds
    /// `max_epoch_lag`, in which case the buffered batches are flushed
    /// before serving. The repair/flush cost is reported on the answer.
    pub fn query(&self, query: &Query) -> Result<SessionAnswer, SparqlError> {
        let Ok(analysis) = analyze_query(&self.facet, query) else {
            let (snapshot, freshness) = self.pin_within_bound()?;
            self.lock_serving().fallbacks += 1;
            let results = Evaluator::new(snapshot.dataset()).evaluate(query)?;
            return Ok(SessionAnswer {
                route: Route::BaseGraph,
                results,
                maintenance_us: 0,
                freshness,
            });
        };

        // Route against the catalog and pin an epoch under one short
        // lock, so the staleness decision, the freshness tag, and the
        // snapshot agree.
        let (planned, snapshot, freshness) = loop {
            {
                let mut state = self.lock_serving();
                let lag = state.buffered_batches as u64;
                if self.within_lag_bound(lag) {
                    let snapshot = self.store.pin();
                    let freshness = Self::freshness_of(&snapshot, lag);
                    let planned = best_view(&state.views, analysis.required).map(|view| {
                        // `needs_refresh` gates every policy (a failed
                        // maintenance pass demands repair too); the
                        // epoch-replay staleness check is lazy-only.
                        let stale = state.needs_refresh.contains(&view.0)
                            || (self.policy == StalenessPolicy::LazyOnHit
                                && state.stale_at(view, snapshot.epoch()));
                        (view, stale)
                    });
                    match planned {
                        Some(_) => state.view_hits += 1,
                        None => state.fallbacks += 1,
                    }
                    break (planned, snapshot, freshness);
                }
            }
            // Past the staleness budget: flush, then re-check (a racing
            // update may have buffered more batches in between).
            self.flush()?;
        };

        match planned {
            None => {
                let results = Evaluator::new(snapshot.dataset()).evaluate(query)?;
                Ok(SessionAnswer {
                    route: Route::BaseGraph,
                    results,
                    maintenance_us: 0,
                    freshness,
                })
            }
            Some((view, stale)) => {
                let rewritten = rewrite_query(&self.facet, &analysis, view);
                let (snapshot, maintenance_us, freshness) = if stale {
                    match self.repair_view(view)? {
                        Some((snapshot, us)) => {
                            let freshness = Self::freshness_of(&snapshot, freshness.lag);
                            (snapshot, us, freshness)
                        }
                        None => {
                            // The view was swapped out while we waited for
                            // the writer: it is no longer answerable.
                            // Re-route to the base graph on a fresh pin.
                            let snapshot = {
                                let mut state = self.lock_serving();
                                state.view_hits -= 1;
                                state.fallbacks += 1;
                                self.store.pin()
                            };
                            let freshness = Self::freshness_of(&snapshot, freshness.lag);
                            let results = Evaluator::new(snapshot.dataset()).evaluate(query)?;
                            return Ok(SessionAnswer {
                                route: Route::BaseGraph,
                                results,
                                maintenance_us: 0,
                                freshness,
                            });
                        }
                    }
                } else {
                    (snapshot, 0, freshness)
                };
                let results = Evaluator::new(snapshot.dataset()).evaluate(&rewritten)?;
                Ok(SessionAnswer {
                    route: Route::View(view),
                    results,
                    maintenance_us,
                    freshness,
                })
            }
        }
    }

    /// Does a read at `lag` buffered batches respect the policy's
    /// staleness budget? (Non-bounded policies serve the latest epoch and
    /// have no budget to respect.)
    fn within_lag_bound(&self, lag: u64) -> bool {
        match self.policy {
            StalenessPolicy::Bounded { max_epoch_lag, .. } => lag <= max_epoch_lag,
            _ => true,
        }
    }

    /// The freshness tag of one pinned snapshot: the buffered-batch lag
    /// plus the epoch and oldest per-shard stamp the epoch store tracks
    /// for free.
    fn freshness_of(snapshot: &PinnedSnapshot, lag: u64) -> Freshness {
        Freshness {
            lag,
            epoch: snapshot.epoch(),
            oldest_shard_epoch: snapshot
                .shard_epochs()
                .iter()
                .copied()
                .min()
                .unwrap_or_else(|| snapshot.epoch()),
        }
    }

    /// Pin a snapshot whose lag respects the staleness budget (flushing
    /// as needed), returning it with its freshness tag.
    fn pin_within_bound(&self) -> Result<(PinnedSnapshot, Freshness), SparqlError> {
        loop {
            {
                let state = self.lock_serving();
                let lag = state.buffered_batches as u64;
                if self.within_lag_bound(lag) {
                    let snapshot = self.store.pin();
                    let freshness = Self::freshness_of(&snapshot, lag);
                    return Ok((snapshot, freshness));
                }
            }
            self.flush()?;
        }
    }

    /// Bring one lazily-stale view up to date: replay the epochs it
    /// missed against the writer's master and publish the repair.
    ///
    /// Returns the snapshot the caller must evaluate against — pinned
    /// under the serving lock at an epoch where the view is provably
    /// fresh. Re-pinning *outside* that lock would race a concurrent
    /// lazy update publishing a newer epoch whose pending rows the view
    /// lacks. `None` means the view left the catalog while we waited for
    /// the writer lock and the caller must re-route.
    fn repair_view(&self, view: ViewMask) -> Result<Option<(PinnedSnapshot, u64)>, SparqlError> {
        let mut txn = self.store.begin();
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        // Re-check under the transaction: another hit may have repaired
        // the view (or a swap retired it) while we waited for the lock.
        let (refresh, backlog, mut entry) = {
            let state = self.lock_serving();
            let Some(entry) = state.views.iter().find(|(mask, _)| *mask == view) else {
                return Ok(None); // swapped out while we waited
            };
            let refresh = state.needs_refresh.contains(&view.0);
            if !refresh && !state.stale_at(view, u64::MAX) {
                // Repaired by a racing hit: serve from the epoch that
                // freshness was just decided against.
                return Ok(Some((self.store.pin(), 0)));
            }
            (refresh, state.backlog(view), *entry)
        };
        let rows = if refresh { None } else { Some(&backlog) };
        let result = writer
            .maintainer
            .maintain_view(txn.dataset(), rows, &mut entry);
        // The backlog is consumed either way. Planning is all-or-nothing
        // (an errored pass wrote nothing), but the view is still stale
        // and the error may be deterministic — demanding a full refresh
        // on the next hit keeps a poisoned backlog from wedging the view
        // in an error-retry loop while the pending log grows.
        // The serving lock is held across publish so no reader can route
        // to the view before its cursor reflects the repair epoch.
        let prepared = txn.prepare();
        let mut state = self.lock_serving();
        let epoch = prepared.publish();
        state.cursor.insert(view.0, epoch);
        match &result {
            Ok(_) => {
                state.needs_refresh.remove(&view.0);
                if let Some(slot) = state.views.iter_mut().find(|(mask, _)| *mask == view) {
                    *slot = entry;
                }
            }
            Err(_) => {
                state.needs_refresh.insert(view.0);
            }
        }
        state.compact();
        let snapshot = self.store.pin();
        drop(state);
        let cost = result?;
        let us = cost.wall_us;
        writer.log.per_view.push(cost);
        writer.log.total_us += us;
        Ok(Some((snapshot, us)))
    }

    /// Replace the materialized set with `target`, transactionally.
    ///
    /// Incoming views are materialized *first* on the writer's master; if
    /// any materialization fails, the half-written view graphs are
    /// dropped, **no epoch is published**, and the catalog is untouched —
    /// concurrent readers keep answering from the old selection and never
    /// observe the aborted swap. Only once every new view exists are the
    /// retired ones dropped, the catalog installed, and the whole swap
    /// published as one epoch.
    pub fn swap_views(&self, target: &[ViewMask]) -> Result<ViewChurn, SparqlError> {
        self.swap_views_with(target, materialize_view)
    }

    /// [`ConcurrentSession::swap_views`] with an injectable materializer —
    /// the test seam for forcing a mid-swap failure (the real evaluator
    /// is total over generated view queries, so materialization failures
    /// cannot be provoked from data alone).
    fn swap_views_with(
        &self,
        target: &[ViewMask],
        mut materialize: impl FnMut(
            &mut Dataset,
            &Facet,
            ViewMask,
        ) -> Result<MaterializedView, SparqlError>,
    ) -> Result<ViewChurn, SparqlError> {
        debug_assert!(
            target.iter().map(|m| m.0).collect::<FxHashSet<_>>().len() == target.len(),
            "swap_views target must not contain duplicates: {target:?}"
        );
        let mut txn = self.store.begin();
        let current: Vec<ViewMask> = {
            let state = self.lock_serving();
            state.views.iter().map(|(m, _)| *m).collect()
        };
        let current_set: FxHashSet<u64> = current.iter().map(|m| m.0).collect();
        let wanted: FxHashSet<u64> = target.iter().map(|m| m.0).collect();
        let added: Vec<ViewMask> = target
            .iter()
            .copied()
            .filter(|m| !current_set.contains(&m.0))
            .collect();
        let retired: Vec<ViewMask> = current
            .iter()
            .copied()
            .filter(|m| !wanted.contains(&m.0))
            .collect();
        let kept: Vec<ViewMask> = target
            .iter()
            .copied()
            .filter(|m| current_set.contains(&m.0))
            .collect();

        // Phase 1: materialize every incoming view on the master. On
        // failure, undo and abort without publishing.
        let mut materialized: Vec<(ViewMask, usize)> = Vec::with_capacity(added.len());
        let (materialize_us, result) = measure_once(|| {
            for &mask in &added {
                match materialize(txn.dataset(), &self.facet, mask) {
                    Ok(view) => materialized.push((mask, view.stats.rows)),
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        });
        if let Err(e) = result {
            for &(mask, _) in &materialized {
                drop_view(txn.dataset(), &self.facet, mask);
            }
            // Dropping the transaction without publish: readers never saw
            // any of this, and the master is back to the published state.
            return Err(e);
        }

        // Phase 2: retire outgoing views, install the catalog, publish —
        // all under the serving lock, so readers atomically move from
        // (old catalog, old epoch) to (new catalog, new epoch).
        let (drop_us, ()) = measure_once(|| {
            for &mask in &retired {
                drop_view(txn.dataset(), &self.facet, mask);
            }
        });
        {
            let prepared = txn.prepare();
            let mut state = self.lock_serving();
            let old_catalog: FxHashMap<u64, usize> =
                state.views.iter().map(|(m, rows)| (m.0, *rows)).collect();
            state.views = target
                .iter()
                .map(|&mask| {
                    let rows = old_catalog.get(&mask.0).copied().unwrap_or_else(|| {
                        materialized
                            .iter()
                            .find(|(m, _)| *m == mask)
                            .map_or(0, |(_, rows)| *rows)
                    });
                    (mask, rows)
                })
                .collect();
            for &mask in &retired {
                state.cursor.remove(&mask.0);
                state.needs_refresh.remove(&mask.0);
            }
            let epoch = prepared.publish();
            for &(mask, _) in &materialized {
                // Materialized from the current master: nothing pending.
                state.cursor.insert(mask.0, epoch);
            }
            state.compact();
        }

        Ok(ViewChurn {
            added,
            retired,
            kept,
            materialize_us,
            drop_us,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::offline::{run_offline, SizedLattice};
    use crate::validate::results_equivalent;
    use sofos_cost::CostModelKind;
    use sofos_cube::AggOp;
    use sofos_rdf::Term;
    use sofos_select::WorkloadProfile;
    use sofos_workload::{synthetic, GeneratedQuery};

    fn setup(
        policy: StalenessPolicy,
        shards: usize,
        threads: usize,
    ) -> (ConcurrentSession, Vec<GeneratedQuery>) {
        let g = synthetic::generate(&synthetic::Config {
            observations: 120,
            agg: AggOp::Avg,
            ..synthetic::Config::default()
        });
        let facet = g.facets[0].clone();
        let mut ds = g.dataset;
        let sized = SizedLattice::compute(&ds, &facet).unwrap();
        let profile = WorkloadProfile::uniform(&sized.lattice);
        let offline = run_offline(
            &mut ds,
            &sized,
            &profile,
            CostModelKind::AggValues,
            &EngineConfig::default(),
        )
        .unwrap();
        let workload = sofos_workload::generate_workload(
            &ds,
            &facet,
            &sofos_workload::WorkloadConfig {
                num_queries: 10,
                ..Default::default()
            },
        );
        (
            ConcurrentSession::new(ds, facet, offline.view_catalog(), policy, shards, threads),
            workload,
        )
    }

    fn session_delta(batch: usize) -> Delta {
        use sofos_workload::synthetic::NS;
        let mut delta = Delta::new();
        for i in 0..3usize {
            let node = Term::blank(format!("u{batch}_{i}"));
            for d in 0..3usize {
                delta.insert(
                    node.clone(),
                    Term::iri(format!("{NS}dim{d}")),
                    Term::iri(format!("{NS}v{d}_{}", (batch + i + d) % 3)),
                );
            }
            delta.insert(
                node,
                Term::iri(format!("{NS}measure")),
                Term::literal_int(100 + (batch * 7 + i) as i64),
            );
        }
        delta
    }

    fn assert_answers_match_base(session: &ConcurrentSession, workload: &[GeneratedQuery]) {
        for q in workload {
            let answer = session.query(&q.query).expect("session query runs");
            let snapshot = session.pin();
            let reference = Evaluator::new(snapshot.dataset())
                .evaluate(&q.query)
                .expect("base evaluation runs");
            assert!(
                results_equivalent(&answer.results, &reference),
                "concurrent answer diverged from base graph for {}",
                q.text
            );
        }
    }

    #[test]
    fn eager_epochs_stay_consistent_across_updates() {
        let (session, workload) = setup(StalenessPolicy::Eager, 4, 2);
        for batch in 0..3 {
            session.update(session_delta(batch)).unwrap();
            assert_eq!(session.stale_views(), 0, "eager epochs are never stale");
        }
        assert_eq!(session.store().epoch(), 3, "one epoch per batch");
        assert!(!session.maintenance().per_view.is_empty());
        assert!(
            !session.shard_scan_totals().is_empty(),
            "sharded scans produced telemetry"
        );
        assert_answers_match_base(&session, &workload);
        let (hits, _) = session.routing_counts();
        assert!(hits > 0, "rewriter still routes to views after updates");
    }

    #[test]
    fn lazy_replays_missed_epochs_on_hit() {
        let (session, workload) = setup(StalenessPolicy::LazyOnHit, 4, 2);
        let views_before = session.views().len();
        session.update(session_delta(0)).unwrap();
        session.update(session_delta(1)).unwrap();
        assert_eq!(session.stale_views(), views_before, "all views lag");
        assert!(session.maintenance().per_view.is_empty());
        assert_answers_match_base(&session, &workload);
        assert!(
            !session.maintenance().per_view.is_empty(),
            "hits repaired the routed views"
        );
        assert!(session.stale_views() < views_before);
        // Repairs published new epochs beyond the two update batches.
        assert!(session.store().epoch() > 2);
    }

    #[test]
    fn invalidate_drops_catalog_atomically() {
        let (session, workload) = setup(StalenessPolicy::Invalidate, 2, 1);
        assert!(!session.views().is_empty());
        let pinned = session.pin();
        session.update(session_delta(0)).unwrap();
        assert!(session.views().is_empty());
        assert!(
            !pinned.dataset().graph_names().is_empty(),
            "the pre-update pin still holds every view graph"
        );
        assert!(
            session.pin().dataset().graph_names().is_empty(),
            "new pins see no view graphs"
        );
        assert_answers_match_base(&session, &workload);
        let (hits, fallbacks) = session.routing_counts();
        assert_eq!(hits, 0);
        assert_eq!(fallbacks, workload.len());
    }

    #[test]
    fn bounded_coalesces_batches_into_one_epoch_and_tags_reads() {
        let (session, workload) = setup(StalenessPolicy::bounded(3, 10), 4, 2);
        // Two buffered batches: nothing published, reads lag and say so.
        session.update(session_delta(0)).unwrap();
        session.update(session_delta(1)).unwrap();
        assert_eq!(
            session.store().epoch(),
            0,
            "buffered batches publish nothing"
        );
        assert_eq!(session.buffered_updates(), 2);
        let answer = session.query(&workload[0].query).unwrap();
        assert_eq!(answer.freshness.lag, 2);
        assert!(!answer.freshness.is_fresh());
        assert_eq!(answer.freshness.epoch, 0);

        // The third batch crosses max_batches: one flush, ONE epoch.
        session.update(session_delta(2)).unwrap();
        assert_eq!(session.store().epoch(), 1, "three batches, one epoch");
        assert_eq!(session.buffered_updates(), 0);
        assert!(!session.maintenance().per_view.is_empty());
        assert_eq!(session.stale_views(), 0, "flush maintains every view");
        let answer = session.query(&workload[0].query).unwrap();
        assert!(answer.freshness.is_fresh());
        assert_eq!(answer.freshness.epoch, 1);
        assert_answers_match_base(&session, &workload);

        // The pipeline split was measured.
        let telemetry = session.pipeline_telemetry();
        assert!(telemetry.serial_us + telemetry.parallel_work_us > 0);
        assert!(telemetry.serial_fraction().is_some());
    }

    #[test]
    fn bounded_lag_budget_forces_a_flush_at_serve_time() {
        let (session, workload) = setup(StalenessPolicy::bounded(100, 1), 2, 2);
        session.update(session_delta(0)).unwrap();
        session.update(session_delta(1)).unwrap();
        assert_eq!(session.buffered_updates(), 2, "2 > budget 1, unserved");
        // The read trips the budget: flush first, then serve fresh.
        let answer = session.query(&workload[0].query).unwrap();
        assert!(
            answer.freshness.lag <= 1,
            "no read is served past max_epoch_lag"
        );
        assert_eq!(session.store().epoch(), 1, "the forced flush published");
        assert_eq!(session.buffered_updates(), 0);
        assert_answers_match_base(&session, &workload);
    }

    #[test]
    fn explicit_flush_drains_the_buffer() {
        let (session, workload) = setup(StalenessPolicy::bounded(100, 100), 2, 1);
        session.flush().expect("empty flush is a no-op");
        assert_eq!(session.store().epoch(), 0);
        session.update(session_delta(0)).unwrap();
        session.flush().unwrap();
        assert_eq!(session.store().epoch(), 1);
        assert_eq!(session.buffered_updates(), 0);
        assert_answers_match_base(&session, &workload);
    }

    #[test]
    fn readers_overlap_a_writing_session() {
        let (session, workload) = setup(StalenessPolicy::Eager, 4, 2);
        let session = std::sync::Arc::new(session);
        std::thread::scope(|scope| {
            let mut readers = Vec::new();
            for r in 0..3 {
                let session = std::sync::Arc::clone(&session);
                let workload = &workload;
                readers.push(scope.spawn(move || {
                    for i in 0..20 {
                        let q = &workload[(r + i) % workload.len()];
                        let answer = session.query(&q.query).expect("query runs");
                        // Validate against the same epoch the answer used:
                        // its own snapshot semantics guarantee agreement.
                        assert!(answer.results.len() < 10_000);
                    }
                }));
            }
            for batch in 0..5 {
                session.update(session_delta(batch)).expect("update runs");
            }
            for handle in readers {
                handle.join().expect("reader ran clean");
            }
        });
        // After the dust settles, answers are exact.
        assert_answers_match_base(&session, &workload);
    }

    #[test]
    fn swap_views_rolls_back_on_mid_swap_failure() {
        let (session, workload) = setup(StalenessPolicy::Eager, 2, 1);
        let before = session.views();
        let before_masks: Vec<ViewMask> = before.iter().map(|(m, _)| *m).collect();
        assert!(!before_masks.contains(&ViewMask::APEX));
        let epoch_before = session.store().epoch();
        let graphs_before = session.pin().dataset().graph_names().len();

        // Target keeps the existing catalog and adds two views; the
        // injected materializer succeeds on the first addition and fails
        // on the second — a genuine mid-swap abort.
        let dims = session.facet().dim_count();
        let mut target = before_masks.clone();
        let added_ok = (1..(1u64 << dims))
            .map(ViewMask)
            .find(|m| !before_masks.contains(m))
            .expect("the default budget leaves lattice views unmaterialized");
        target.push(added_ok);
        target.push(ViewMask::APEX);

        let mut calls = 0usize;
        let err = session
            .swap_views_with(&target, |dataset, facet, mask| {
                calls += 1;
                if calls == 2 {
                    return Err(SparqlError::Eval("injected mid-swap failure".into()));
                }
                materialize_view(dataset, facet, mask)
            })
            .expect_err("second materialization fails");
        assert!(matches!(err, SparqlError::Eval(_)));
        assert_eq!(calls, 2, "first view materialized, second aborted");

        // Rollback: catalog untouched, no epoch published, the
        // successfully-materialized view graph is gone again.
        assert_eq!(session.views(), before);
        assert_eq!(session.store().epoch(), epoch_before);
        assert_eq!(session.pin().dataset().graph_names().len(), graphs_before);
        assert_answers_match_base(&session, &workload);

        // The same swap with the real materializer succeeds and publishes.
        let churn = session.swap_views(&target).expect("real swap succeeds");
        assert_eq!(churn.added.len(), 2);
        assert_eq!(session.store().epoch(), epoch_before + 1);
        assert_answers_match_base(&session, &workload);
    }

    #[test]
    fn swap_views_churn_matches_serial_semantics() {
        let (session, workload) = setup(StalenessPolicy::LazyOnHit, 2, 1);
        session.update(session_delta(0)).unwrap();
        let before: Vec<ViewMask> = session.views().iter().map(|(m, _)| *m).collect();
        let kept = before[0];
        let churn = session.swap_views(&[kept, ViewMask::APEX]).unwrap();
        assert_eq!(churn.kept, vec![kept]);
        assert_eq!(churn.added, vec![ViewMask::APEX]);
        assert_eq!(churn.retired.len(), before.len() - 1);
        session.update(session_delta(1)).unwrap();
        assert_answers_match_base(&session, &workload);
    }
}
