//! Engine configuration.

use sofos_cost::TrainConfig;
use sofos_cube::ViewMask;
use sofos_select::Budget;
use sofos_workload::WorkloadConfig;

/// Configuration of a SOFOS run (offline + online phases).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Materialization budget (`k` views or bytes).
    pub budget: Budget,
    /// Workload generation parameters (shared across cost models so every
    /// model is measured on the *same* queries).
    pub workload: WorkloadConfig,
    /// Per-query timing repetitions (median is reported); one extra warmup
    /// run is always performed.
    pub timing_reps: usize,
    /// Seed for selection randomness (random model / random selector).
    pub seed: u64,
    /// Training setup for the learned cost model.
    pub train: TrainConfig,
    /// Explicit views for the user-defined model (empty = pick the finest
    /// `k` views, a plausible naive user).
    pub user_views: Vec<ViewMask>,
    /// Validate every view-answered query against the base graph.
    pub validate: bool,
    /// Cap for the exhaustive oracle (number of subsets).
    pub exhaustive_limit: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            budget: Budget::Views(4),
            workload: WorkloadConfig::default(),
            timing_reps: 3,
            seed: 42,
            train: TrainConfig::default(),
            user_views: Vec::new(),
            validate: true,
            exhaustive_limit: 2_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::default();
        assert_eq!(c.budget, Budget::Views(4));
        assert!(c.timing_reps >= 1);
        assert!(c.validate);
    }
}
