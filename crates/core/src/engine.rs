//! The one front door: [`Engine`] — a single serving surface over
//! pluggable backends.
//!
//! SOFOS's demo value is letting a user flip one knob (cost model, budget,
//! λ, staleness bound) and watch the trade-off move. Before this module
//! that required choosing between two divergent session APIs, each with
//! its own copy of the staleness machinery. The [`Engine`] collapses the
//! choice into a builder knob:
//!
//! ```
//! use sofos_core::{Backend, Engine, StalenessPolicy};
//! use sofos_workload::synthetic;
//!
//! let g = synthetic::generate(&synthetic::Config::default());
//! let engine = Engine::builder()
//!     .dataset(g.dataset.clone())
//!     .facet(g.default_facet().clone())
//!     .staleness(StalenessPolicy::bounded(4, 2))
//!     .backend(Backend::Epoch { shards: 4, threads: 2 })
//!     .build()
//!     .unwrap();
//! assert_eq!(engine.backend_name(), "epoch");
//! ```
//!
//! Both backends implement the sealed [`ServingBackend`] trait over the
//! *same* policy machinery ([`crate::policy`]) — eager / lazy-on-hit /
//! invalidate / bounded state machines, pending-log cursors, freshness
//! tagging, flush accounting, and the sliding demand/churn windows the
//! adaptive layer ([`crate::adaptive`]) reads. A policy written once works
//! on both; the conformance suite
//! (`crates/core/tests/engine_conformance.rs`) holds them bit-equal.
//!
//! * [`Backend::Serial`] — one mutable dataset behind a mutex. Queries
//!   and updates serialize; simple, and exactly the paper's single-node
//!   regime (the `e9_concurrency` baseline).
//! * [`Backend::Epoch`] — the sharded epoch store: readers pin immutable
//!   snapshots and never wait for the writer; maintenance runs two-phase
//!   and publishes whole batches as single epochs.
//!
//! Wall-clock staleness ([`StalenessPolicy::Bounded`]'s `max_lag_ms`) is
//! driven by an injected [`Clock`] ([`EngineBuilder::clock`]), so
//! bounded-staleness behaviour is property-testable with a
//! [`crate::policy::ManualClock`].

mod epoch;
mod serial;

pub(crate) use epoch::EpochBackend;
pub(crate) use serial::SerialBackend;

use crate::metrics::EngineInstruments;
use crate::policy::{system_clock, Clock, Freshness, StalenessPolicy};
use sofos_cost::UpdateRates;
use sofos_cube::{Facet, ViewMask};
use sofos_maintain::{MaintenanceReport, PipelineTelemetry};
use sofos_materialize::materialize_view;
use sofos_rdf::FxHashMap;
use sofos_select::WorkloadProfile;
use sofos_sparql::{Query, QueryResults, SparqlError};
use sofos_store::{Dataset, Delta, DurabilityConfig, EpochStore, Persister};
use sofos_telemetry::MetricsHandle;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Serving types
// ---------------------------------------------------------------------------

/// Where a query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Rewritten against a materialized view.
    View(ViewMask),
    /// Fell back to the base graph.
    BaseGraph,
}

/// One query's answer inside an engine (or legacy session).
#[derive(Debug, Clone)]
pub struct SessionAnswer {
    /// Where the query was answered.
    pub route: Route,
    /// The results.
    pub results: QueryResults,
    /// Maintenance time this query triggered (lazy repairs, forced
    /// bounded flushes), µs.
    pub maintenance_us: u64,
    /// How fresh the served state was (always fresh outside the bounded
    /// policy).
    pub freshness: Freshness,
}

/// What a [`Engine::swap_views`] actually changed.
#[derive(Debug, Clone)]
pub struct ViewChurn {
    /// Views materialized by the swap, in catalog order.
    pub added: Vec<ViewMask>,
    /// Views dropped by the swap.
    pub retired: Vec<ViewMask>,
    /// Views present before and after (maintenance state preserved).
    pub kept: Vec<ViewMask>,
    /// Wall time spent materializing the added views (µs).
    pub materialize_us: u64,
    /// Wall time spent dropping the retired views (µs).
    pub drop_us: u64,
}

impl ViewChurn {
    /// Views touched by the swap (`added + retired`) — 0 means the
    /// re-selection confirmed the standing set.
    pub fn churned(&self) -> usize {
        self.added.len() + self.retired.len()
    }
}

/// The set difference behind a transactional catalog swap — computed
/// once here so both backends share one definition of added/retired/kept
/// (the lock/transaction choreography around it is what genuinely
/// differs per backend).
pub(crate) struct SwapPlan {
    pub(crate) added: Vec<ViewMask>,
    pub(crate) retired: Vec<ViewMask>,
    pub(crate) kept: Vec<ViewMask>,
}

pub(crate) fn plan_swap(current: &[ViewMask], target: &[ViewMask]) -> SwapPlan {
    debug_assert!(
        target
            .iter()
            .map(|m| m.0)
            .collect::<sofos_rdf::FxHashSet<_>>()
            .len()
            == target.len(),
        "swap_views target must not contain duplicates: {target:?}"
    );
    let current_set: sofos_rdf::FxHashSet<u64> = current.iter().map(|m| m.0).collect();
    let wanted: sofos_rdf::FxHashSet<u64> = target.iter().map(|m| m.0).collect();
    SwapPlan {
        added: target
            .iter()
            .copied()
            .filter(|m| !current_set.contains(&m.0))
            .collect(),
        retired: current
            .iter()
            .copied()
            .filter(|m| !wanted.contains(&m.0))
            .collect(),
        kept: target
            .iter()
            .copied()
            .filter(|m| current_set.contains(&m.0))
            .collect(),
    }
}

/// Rebuild the catalog in `target` order: kept entries carry their live
/// row counts from `old`, added ones take their freshly-`materialized`
/// counts.
pub(crate) fn rebuild_catalog(
    target: &[ViewMask],
    old: &[(ViewMask, usize)],
    materialized: &[(ViewMask, usize)],
) -> Vec<(ViewMask, usize)> {
    let old_catalog: FxHashMap<u64, usize> = old.iter().map(|(m, rows)| (m.0, *rows)).collect();
    target
        .iter()
        .map(|&mask| {
            let rows = old_catalog.get(&mask.0).copied().unwrap_or_else(|| {
                materialized
                    .iter()
                    .find(|(m, _)| *m == mask)
                    .map_or(0, |(_, rows)| *rows)
            });
            (mask, rows)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The sealed backend trait
// ---------------------------------------------------------------------------

mod sealed {
    /// Seals [`super::ServingBackend`]: backends are an engine-internal
    /// contract, not an extension point — downstream crates pick one via
    /// [`super::Backend`], they don't implement their own.
    pub trait Sealed {}
    impl Sealed for super::SerialBackend {}
    impl Sealed for super::EpochBackend {}
}

/// The serving surface every backend provides — one vocabulary of
/// operations regardless of how state is stored. Sealed: the two
/// implementations are [`Backend::Serial`] and [`Backend::Epoch`].
///
/// All methods take `&self`; backends are internally synchronized, so an
/// [`Engine`] can be shared across threads (`Arc<Engine>`) with either
/// backend — the serial one simply serializes callers.
pub trait ServingBackend: sealed::Sealed + Send + Sync {
    /// Apply an update batch under the engine's staleness policy.
    fn update(&self, delta: Delta) -> Result<(), SparqlError>;

    /// Answer one query, routing through the rewriter; staleness policy
    /// decides whether stale views are repaired, served tagged, or
    /// flushed first.
    fn query(&self, query: &Query) -> Result<SessionAnswer, SparqlError>;

    /// Replace the materialized set with `target`, transactionally
    /// (materialize-first, rollback on failure).
    fn swap_views(&self, target: &[ViewMask]) -> Result<ViewChurn, SparqlError>;

    /// Drain deferred maintenance: flush buffered updates (bounded) and
    /// repair every stale view. Returns maintenance µs spent.
    fn flush(&self) -> Result<u64, SparqlError>;

    /// A consistent point-in-time copy of the served dataset (cheap:
    /// datasets clone by `Arc`-sharing index runs).
    fn snapshot(&self) -> Dataset;

    /// The live catalog (mask + row count, in selection order).
    fn views(&self) -> Vec<(ViewMask, usize)>;

    /// The staleness policy.
    fn policy(&self) -> StalenessPolicy;

    /// Accumulated maintenance log.
    fn maintenance(&self) -> MaintenanceReport;

    /// `(view hits, base-graph fallbacks)` so far.
    fn routing_counts(&self) -> (usize, usize);

    /// Update batches applied so far.
    fn update_batches(&self) -> usize;

    /// Views currently stale (deferred repairs pending).
    fn stale_views(&self) -> usize;

    /// Bounded policy: update batches buffered and not yet flushed.
    fn buffered_updates(&self) -> usize;

    /// The published state stamp: epoch number (epoch backend) or
    /// applied-update-batch count (serial backend).
    fn epoch(&self) -> u64;

    /// The sliding workload profile (recently demanded masks).
    fn window_profile(&self) -> WorkloadProfile;

    /// Observed update pressure over the sliding batch window.
    fn observed_rates(&self) -> UpdateRates;

    /// The sliding per-group churn distribution.
    fn churn_profile(&self) -> FxHashMap<u64, f64>;

    /// Two-phase pipeline telemetry, when the backend runs the pipeline
    /// (`None` on the serial backend).
    fn pipeline_telemetry(&self) -> Option<PipelineTelemetry>;

    /// The backend clock's current time (ms) — the time source behind
    /// wall-clock staleness and telemetry event timestamps.
    fn now_ms(&self) -> u64;

    /// Short backend name for reports (`"serial"` / `"epoch"`).
    fn backend_name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Which serving backend an [`Engine`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// One mutable dataset behind a mutex: queries and updates serialize.
    Serial,
    /// The sharded epoch store: readers pin immutable snapshots while the
    /// writer publishes epochs; maintenance scans split across `threads`
    /// workers over `shards` subject-hash shards.
    Epoch {
        /// Subject-hash shard count (min 1).
        shards: usize,
        /// Maintenance worker threads per batch (min 1).
        threads: usize,
    },
}

impl Backend {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Serial => "serial",
            Backend::Epoch { .. } => "epoch",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Serial => f.write_str("serial"),
            Backend::Epoch { shards, threads } => write!(f, "epoch({shards}x{threads})"),
        }
    }
}

/// What [`EngineBuilder::build`] can reject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineBuildError {
    /// No dataset was provided.
    MissingDataset,
    /// No facet was provided.
    MissingFacet,
    /// [`EngineBuilder::durability`] was set on a backend that cannot
    /// honor it (only [`Backend::Epoch`] has the publish protocol the
    /// epoch log hooks into).
    DurabilityUnsupported,
    /// Opening, recovering, or baselining the durable store failed.
    Persistence(String),
}

impl std::fmt::Display for EngineBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineBuildError::MissingDataset => {
                f.write_str("Engine::builder() needs a dataset (EngineBuilder::dataset)")
            }
            EngineBuildError::MissingFacet => {
                f.write_str("Engine::builder() needs a facet (EngineBuilder::facet)")
            }
            EngineBuildError::DurabilityUnsupported => f.write_str(
                "durability requires the epoch backend (EngineBuilder::backend(Backend::Epoch))",
            ),
            EngineBuildError::Persistence(detail) => {
                write!(f, "durable store failed to open: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineBuildError {}

/// What crash recovery did while building a durable engine — `None` on
/// [`Engine::recovery`] means the data directory was fresh (or the
/// engine is in-memory) and serving started from the builder's dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The epoch serving resumed at (the newest epoch the log covers).
    pub epoch: u64,
    /// The epoch of the snapshot recovery started from (0 = none).
    pub snapshot_epoch: u64,
    /// Log records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Bytes of torn log tail truncated (an interrupted final append).
    pub truncated_bytes: u64,
    /// Catalog views rebuilt from the recovered base graph (replaying a
    /// log tail only restores base mutations; view graphs are exact in
    /// snapshots, so a non-empty tail forces re-materialization).
    pub rematerialized_views: usize,
}

/// Builder for [`Engine`] — dataset and facet are required, everything
/// else has serving defaults (empty catalog, eager staleness, serial
/// backend, system clock).
pub struct EngineBuilder {
    dataset: Option<Dataset>,
    facet: Option<Facet>,
    catalog: Vec<(ViewMask, usize)>,
    policy: StalenessPolicy,
    backend: Backend,
    clock: Option<Arc<dyn Clock>>,
    metrics: Option<MetricsHandle>,
    durability: Option<DurabilityConfig>,
    plan_split: usize,
}

impl EngineBuilder {
    /// The (expanded) dataset to serve — `G+` when the catalog's views
    /// are already materialized into named graphs.
    pub fn dataset(mut self, dataset: Dataset) -> EngineBuilder {
        self.dataset = Some(dataset);
        self
    }

    /// The analytical facet.
    pub fn facet(mut self, facet: Facet) -> EngineBuilder {
        self.facet = Some(facet);
        self
    }

    /// The view catalog (mask + row count), as produced by
    /// [`crate::offline::OfflineOutcome::view_catalog`]. The views must
    /// already be materialized in the dataset. Defaults to empty (every
    /// query falls back to the base graph).
    pub fn catalog(mut self, catalog: Vec<(ViewMask, usize)>) -> EngineBuilder {
        self.catalog = catalog;
        self
    }

    /// The staleness policy (default: [`StalenessPolicy::Eager`]).
    pub fn staleness(mut self, policy: StalenessPolicy) -> EngineBuilder {
        self.policy = policy;
        self
    }

    /// The serving backend (default: [`Backend::Serial`]).
    pub fn backend(mut self, backend: Backend) -> EngineBuilder {
        self.backend = backend;
        self
    }

    /// The clock driving wall-clock staleness bounds (default:
    /// [`crate::policy::SystemClock`]). Inject a
    /// [`crate::policy::ManualClock`] to test `max_lag_ms` behaviour.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> EngineBuilder {
        self.clock = Some(clock);
        self
    }

    /// The metrics handle the engine records into (default: a fresh
    /// enabled [`MetricsHandle`]). Inject a shared handle to aggregate
    /// several engines into one registry, or
    /// [`MetricsHandle::disabled`] to skip recording entirely.
    pub fn metrics(mut self, metrics: MetricsHandle) -> EngineBuilder {
        self.metrics = Some(metrics);
        self
    }

    /// Persist every published epoch under `config.dir` and recover from
    /// it on the next build (default: in-memory only; see
    /// `sofos_store::persist` for the log/snapshot format). Epoch backend
    /// only — [`EngineBuilder::build`] rejects the combination with
    /// [`Backend::Serial`], which has no publish protocol to hook.
    ///
    /// When the directory already holds state, the *recovered* dataset
    /// and catalog replace whatever the builder was given, and
    /// [`Engine::recovery`] reports what replaying the log did.
    pub fn durability(mut self, config: DurabilityConfig) -> EngineBuilder {
        self.durability = Some(config);
        self
    }

    /// Within-view plan parallelism for the epoch backend's pipelined
    /// maintenance (default 1 = unsplit): each view's plan phase is
    /// split into this many group-key chunks so a catalog dominated by
    /// one hot view still fills the writer's thread pool (see
    /// [`sofos_maintain::Maintainer::maintain_pipelined_split`]).
    /// Ignored by [`Backend::Serial`].
    pub fn plan_split(mut self, split: usize) -> EngineBuilder {
        self.plan_split = split.max(1);
        self
    }

    /// Assemble the engine.
    pub fn build(self) -> Result<Engine, EngineBuildError> {
        let dataset = self.dataset.ok_or(EngineBuildError::MissingDataset)?;
        let facet = self.facet.ok_or(EngineBuildError::MissingFacet)?;
        if self.durability.is_some() && self.backend == Backend::Serial {
            return Err(EngineBuildError::DurabilityUnsupported);
        }
        let clock = self.clock.unwrap_or_else(system_clock);
        // The engine keeps its own handle on the clock (the backend gets a
        // clone) so deadline-driven work — anytime re-selection — can be
        // driven off the same injected time source.
        let engine_clock = clock.clone();
        let metrics = self.metrics.unwrap_or_default();
        let instruments = EngineInstruments::new(metrics.clone(), self.backend.name());
        let durable = self.durability.is_some();
        let mut recovery = None;
        let backend: Box<dyn ServingBackend> = match self.backend {
            Backend::Serial => Box::new(SerialBackend::new(
                dataset,
                facet.clone(),
                self.catalog,
                self.policy,
                clock,
                instruments,
            )),
            Backend::Epoch { shards, threads } => {
                let (store, catalog) = match self.durability {
                    None => (EpochStore::new(dataset, shards), self.catalog),
                    Some(config) => {
                        let (store, catalog, report) =
                            open_durable(config, dataset, self.catalog, &facet, shards)?;
                        recovery = report;
                        (store, catalog)
                    }
                };
                Box::new(EpochBackend::new(
                    store,
                    facet.clone(),
                    catalog,
                    self.policy,
                    threads,
                    self.plan_split,
                    clock,
                    instruments,
                ))
            }
        };
        Ok(Engine {
            facet,
            backend,
            metrics,
            clock: engine_clock,
            durable,
            recovery,
        })
    }
}

/// Open the durable epoch store: recover the directory's state (newest
/// snapshot + log-tail replay) or, on a fresh directory, anchor the log
/// at the builder's dataset with a baseline snapshot.
///
/// Returns the store plus the catalog serving must start from — the
/// recovered one when the directory held state, the builder's otherwise.
type DurableOpen = (EpochStore, Vec<(ViewMask, usize)>, Option<RecoveryReport>);

fn open_durable(
    config: DurabilityConfig,
    dataset: Dataset,
    catalog: Vec<(ViewMask, usize)>,
    facet: &Facet,
    shards: usize,
) -> Result<DurableOpen, EngineBuildError> {
    let persist_err = |e: sofos_store::PersistError| EngineBuildError::Persistence(e.to_string());
    let (persister, recovered) = Persister::open(config).map_err(persist_err)?;
    let persister = Arc::new(persister);
    match recovered {
        None => {
            // Fresh directory: the builder's dataset IS the initial
            // state, and its terms (offline materialization included)
            // were interned outside the logged path — a baseline
            // snapshot re-anchors the log's dictionary coverage so the
            // first record's dict tail starts where this dataset ends.
            let pairs: Vec<(u64, u64)> = catalog
                .iter()
                .map(|&(mask, rows)| (mask.0, rows as u64))
                .collect();
            persister
                .baseline(&dataset, 0, &pairs)
                .map_err(persist_err)?;
            Ok((
                EpochStore::recovered(dataset, shards, 0, persister),
                catalog,
                None,
            ))
        }
        Some(rec) => {
            // Existing state: the directory's history wins over whatever
            // the builder was given for a fresh boot.
            let mut dataset = rec.dataset;
            let mut catalog: Vec<(ViewMask, usize)> = rec
                .catalog
                .iter()
                .map(|&(mask, rows)| (ViewMask(mask), rows as usize))
                .collect();
            let mut rematerialized = 0usize;
            if rec.replayed_records > 0 {
                // The log tail only covers base-graph mutations (and
                // catalog identity); view graph *contents* are exact only
                // in full snapshots. Drop every named graph the snapshot
                // carried — including views the replayed tail retired —
                // and rebuild the recovered catalog from the recovered
                // base. Maintenance correctness makes this bit-equal to
                // the views the crashed process served.
                for name in dataset.graph_names() {
                    dataset.drop_graph(name);
                }
                for entry in catalog.iter_mut() {
                    let view = materialize_view(&mut dataset, facet, entry.0).map_err(|e| {
                        EngineBuildError::Persistence(format!(
                            "re-materializing view {:#x} after replay: {e}",
                            entry.0 .0
                        ))
                    })?;
                    entry.1 = view.stats.rows;
                    rematerialized += 1;
                }
                // Re-materialization interned outside the log: re-anchor
                // before the next publish or replay would hit dictionary
                // gaps on the *next* recovery.
                let pairs: Vec<(u64, u64)> = catalog
                    .iter()
                    .map(|&(mask, rows)| (mask.0, rows as u64))
                    .collect();
                persister
                    .baseline(&dataset, rec.epoch, &pairs)
                    .map_err(persist_err)?;
            }
            let report = RecoveryReport {
                epoch: rec.epoch,
                snapshot_epoch: rec.snapshot_epoch,
                replayed_records: rec.replayed_records,
                truncated_bytes: rec.truncated_bytes,
                rematerialized_views: rematerialized,
            };
            Ok((
                EpochStore::recovered(dataset, shards, rec.epoch, persister),
                catalog,
                Some(report),
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// The SOFOS serving engine: one type, one API, pluggable backends.
///
/// Construct with [`Engine::builder`]; every serving operation
/// ([`Engine::query`], [`Engine::update`], [`Engine::swap_views`], the
/// staleness knobs, the adaptive-layer observations) behaves identically
/// across [`Backend::Serial`] and [`Backend::Epoch`] — that equivalence
/// is property-tested by the backend conformance suite.
///
/// All methods take `&self`: an `Arc<Engine>` can be shared across reader
/// and writer threads with either backend.
pub struct Engine {
    facet: Facet,
    backend: Box<dyn ServingBackend>,
    metrics: MetricsHandle,
    clock: Arc<dyn Clock>,
    durable: bool,
    recovery: Option<RecoveryReport>,
}

impl Engine {
    /// Start building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder {
            dataset: None,
            facet: None,
            catalog: Vec::new(),
            policy: StalenessPolicy::Eager,
            backend: Backend::Serial,
            clock: None,
            metrics: None,
            durability: None,
            plan_split: 1,
        }
    }

    /// Whether this engine persists published epochs
    /// ([`EngineBuilder::durability`]).
    pub fn durability_enabled(&self) -> bool {
        self.durable
    }

    /// What crash recovery did at build time: `Some` iff the engine is
    /// durable *and* its data directory already held state.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The facet.
    pub fn facet(&self) -> &Facet {
        &self.facet
    }

    /// Apply an update batch under the engine's staleness policy.
    pub fn update(&self, delta: Delta) -> Result<(), SparqlError> {
        self.backend.update(delta)
    }

    /// Answer one query, routing through the rewriter.
    pub fn query(&self, query: &Query) -> Result<SessionAnswer, SparqlError> {
        self.backend.query(query)
    }

    /// Replace the materialized set with `target`, transactionally.
    pub fn swap_views(&self, target: &[ViewMask]) -> Result<ViewChurn, SparqlError> {
        self.backend.swap_views(target)
    }

    /// Drain deferred maintenance; returns maintenance µs spent.
    pub fn flush(&self) -> Result<u64, SparqlError> {
        self.backend.flush()
    }

    /// A consistent point-in-time copy of the served dataset.
    pub fn snapshot(&self) -> Dataset {
        self.backend.snapshot()
    }

    /// The live catalog (mask + row count).
    pub fn views(&self) -> Vec<(ViewMask, usize)> {
        self.backend.views()
    }

    /// The staleness policy.
    pub fn policy(&self) -> StalenessPolicy {
        self.backend.policy()
    }

    /// Accumulated maintenance log.
    pub fn maintenance(&self) -> MaintenanceReport {
        self.backend.maintenance()
    }

    /// `(view hits, base-graph fallbacks)` so far.
    pub fn routing_counts(&self) -> (usize, usize) {
        self.backend.routing_counts()
    }

    /// Update batches applied so far.
    pub fn update_batches(&self) -> usize {
        self.backend.update_batches()
    }

    /// Views currently stale.
    pub fn stale_views(&self) -> usize {
        self.backend.stale_views()
    }

    /// Bounded policy: update batches buffered and not yet flushed.
    pub fn buffered_updates(&self) -> usize {
        self.backend.buffered_updates()
    }

    /// The published state stamp (epoch number / applied batch count).
    pub fn epoch(&self) -> u64 {
        self.backend.epoch()
    }

    /// The sliding workload profile.
    pub fn window_profile(&self) -> WorkloadProfile {
        self.backend.window_profile()
    }

    /// Observed update pressure over the sliding batch window.
    pub fn observed_rates(&self) -> UpdateRates {
        self.backend.observed_rates()
    }

    /// The sliding per-group churn distribution.
    pub fn churn_profile(&self) -> FxHashMap<u64, f64> {
        self.backend.churn_profile()
    }

    /// Two-phase pipeline telemetry (`None` on the serial backend).
    pub fn pipeline_telemetry(&self) -> Option<PipelineTelemetry> {
        self.backend.pipeline_telemetry()
    }

    /// The engine's metrics handle: serve-latency and freshness-lag
    /// histograms, flush/epoch/maintenance counters, recent events —
    /// everything the backends record while serving. Snapshot it at any
    /// time ([`MetricsHandle::snapshot`]) and render to JSON or
    /// Prometheus text.
    pub fn metrics(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// The engine clock's current time (ms) — the injected
    /// [`Clock`]'s reading, also used to timestamp telemetry events.
    pub fn now_ms(&self) -> u64 {
        self.backend.now_ms()
    }

    /// A handle on the injected [`Clock`] — the time source deadline-
    /// driven work (e.g. anytime re-selection budgets) must run against
    /// so `ManualClock` tests stay deterministic.
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.clock.clone()
    }

    /// Short backend name (`"serial"` / `"epoch"`).
    pub fn backend_name(&self) -> &'static str {
        self.backend.backend_name()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("backend", &self.backend.backend_name())
            .field("policy", &self.backend.policy())
            .field("facet", &self.facet.id)
            .field("views", &self.backend.views().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::offline::{run_offline, SizedLattice};
    use crate::policy::ManualClock;
    use crate::validate::results_equivalent;
    use sofos_cost::CostModelKind;
    use sofos_cube::AggOp;
    use sofos_rdf::Term;
    use sofos_select::WorkloadProfile;
    use sofos_sparql::Evaluator;
    use sofos_workload::{synthetic, GeneratedQuery};

    fn built(
        policy: StalenessPolicy,
        backend: Backend,
        clock: Option<Arc<dyn Clock>>,
    ) -> (Engine, Vec<GeneratedQuery>) {
        let g = synthetic::generate(&synthetic::Config {
            observations: 120,
            agg: AggOp::Avg, // SUM+COUNT components: all aggs derivable except MIN/MAX
            ..synthetic::Config::default()
        });
        let facet = g.facets[0].clone();
        let mut ds = g.dataset;
        let sized = SizedLattice::compute(&ds, &facet).unwrap();
        let profile = WorkloadProfile::uniform(&sized.lattice);
        let offline = run_offline(
            &mut ds,
            &sized,
            &profile,
            CostModelKind::AggValues,
            &EngineConfig::default(),
        )
        .unwrap();
        let workload = sofos_workload::generate_workload(
            &ds,
            &facet,
            &sofos_workload::WorkloadConfig {
                num_queries: 10,
                ..Default::default()
            },
        );
        let mut builder = Engine::builder()
            .dataset(ds)
            .facet(facet)
            .catalog(offline.view_catalog())
            .staleness(policy)
            .backend(backend);
        if let Some(clock) = clock {
            builder = builder.clock(clock);
        }
        (builder.build().expect("engine builds"), workload)
    }

    fn setup(policy: StalenessPolicy, backend: Backend) -> (Engine, Vec<GeneratedQuery>) {
        built(policy, backend, None)
    }

    /// One update batch: fresh observations landing on rotating groups.
    fn session_delta(batch: usize) -> Delta {
        use sofos_workload::synthetic::NS;
        let mut delta = Delta::new();
        for i in 0..3usize {
            let node = Term::blank(format!("u{batch}_{i}"));
            for d in 0..3usize {
                delta.insert(
                    node.clone(),
                    Term::iri(format!("{NS}dim{d}")),
                    Term::iri(format!("{NS}v{d}_{}", (batch + i + d) % 3)),
                );
            }
            delta.insert(
                node,
                Term::iri(format!("{NS}measure")),
                Term::literal_int(100 + (batch * 7 + i) as i64),
            );
        }
        delta
    }

    fn assert_answers_match_base(engine: &Engine, workload: &[GeneratedQuery]) {
        for q in workload {
            let answer = engine.query(&q.query).expect("engine query runs");
            let snapshot = engine.snapshot();
            let reference = Evaluator::new(&snapshot)
                .evaluate(&q.query)
                .expect("base evaluation runs");
            assert!(
                results_equivalent(&answer.results, &reference),
                "engine answer diverged from base graph for {}",
                q.text
            );
        }
    }

    const BOTH: [Backend; 2] = [
        Backend::Serial,
        Backend::Epoch {
            shards: 4,
            threads: 2,
        },
    ];

    #[test]
    fn builder_requires_dataset_and_facet() {
        assert_eq!(
            Engine::builder().build().unwrap_err(),
            EngineBuildError::MissingDataset
        );
        let g = synthetic::generate(&synthetic::Config::default());
        assert_eq!(
            Engine::builder().dataset(g.dataset).build().unwrap_err(),
            EngineBuildError::MissingFacet
        );
        assert!(EngineBuildError::MissingDataset
            .to_string()
            .contains("dataset"));
    }

    #[test]
    fn backend_names_and_display() {
        assert_eq!(Backend::Serial.name(), "serial");
        let epoch = Backend::Epoch {
            shards: 4,
            threads: 2,
        };
        assert_eq!(epoch.name(), "epoch");
        assert_eq!(epoch.to_string(), "epoch(4x2)");
        let (engine, _) = setup(StalenessPolicy::Eager, Backend::Serial);
        assert_eq!(engine.backend_name(), "serial");
        assert!(format!("{engine:?}").contains("serial"));
    }

    #[test]
    fn eager_engine_maintains_views_on_update_on_both_backends() {
        for backend in BOTH {
            let (engine, workload) = setup(StalenessPolicy::Eager, backend);
            for batch in 0..3 {
                engine.update(session_delta(batch)).unwrap();
                assert_eq!(engine.stale_views(), 0, "{backend}: eager never goes stale");
            }
            assert_eq!(engine.update_batches(), 3);
            assert!(!engine.maintenance().per_view.is_empty(), "{backend}");
            assert_answers_match_base(&engine, &workload);
            let (hits, _) = engine.routing_counts();
            assert!(hits > 0, "{backend}: rewriter still routes to views");
        }
    }

    #[test]
    fn lazy_engine_repairs_views_on_first_hit_on_both_backends() {
        for backend in BOTH {
            let (engine, workload) = setup(StalenessPolicy::LazyOnHit, backend);
            let views_before = engine.views().len();
            engine.update(session_delta(0)).unwrap();
            assert_eq!(
                engine.stale_views(),
                views_before,
                "{backend}: updates leave every view stale under lazy"
            );
            assert!(
                engine.maintenance().per_view.is_empty(),
                "{backend}: no maintenance at update time"
            );
            assert_answers_match_base(&engine, &workload);
            assert!(
                !engine.maintenance().per_view.is_empty(),
                "{backend}: query hits triggered lazy repairs"
            );
            assert!(
                engine.stale_views() < views_before,
                "{backend}: hit views are repaired"
            );

            // A second pass over the same workload triggers no further
            // repairs.
            let repairs = engine.maintenance().per_view.len();
            assert_answers_match_base(&engine, &workload);
            assert_eq!(engine.maintenance().per_view.len(), repairs, "{backend}");
        }
    }

    #[test]
    fn invalidate_engine_drops_views_and_falls_back_on_both_backends() {
        for backend in BOTH {
            let (engine, workload) = setup(StalenessPolicy::Invalidate, backend);
            assert!(!engine.views().is_empty());
            engine.update(session_delta(0)).unwrap();
            assert!(engine.views().is_empty(), "{backend}: catalog dropped");
            assert!(
                engine.snapshot().graph_names().is_empty(),
                "{backend}: view graphs are gone"
            );
            assert_answers_match_base(&engine, &workload);
            let (hits, fallbacks) = engine.routing_counts();
            assert_eq!(hits, 0, "{backend}");
            assert_eq!(fallbacks, workload.len(), "{backend}");
        }
    }

    #[test]
    fn engine_tracks_window_profile_and_rates() {
        for backend in BOTH {
            let (engine, workload) = setup(StalenessPolicy::Eager, backend);
            assert_eq!(engine.window_profile().total_weight(), 0.0, "{backend}");
            assert_eq!(
                engine.observed_rates(),
                sofos_cost::UpdateRates::FROZEN,
                "{backend}"
            );

            for q in &workload {
                engine.query(&q.query).unwrap();
            }
            let profile = engine.window_profile();
            assert_eq!(profile.total_weight(), workload.len() as f64, "{backend}");

            engine.update(session_delta(0)).unwrap();
            let rates = engine.observed_rates();
            // session_delta inserts 3 complete 4-triple stars (3 dims +
            // measure).
            assert!(
                (rates.inserts_per_round - 3.0).abs() < 1e-9,
                "{backend}: {rates:?}"
            );
            assert_eq!(rates.deletes_per_round, 0.0, "{backend}");
        }
    }

    #[test]
    fn engine_tracks_per_group_churn() {
        for backend in BOTH {
            let (engine, _workload) = setup(StalenessPolicy::Eager, backend);
            assert!(engine.churn_profile().is_empty(), "{backend}");
            engine.update(session_delta(0)).unwrap();
            let profile = engine.churn_profile();
            assert!(!profile.is_empty(), "{backend}");
            assert!(profile.values().all(|&w| w > 0.0), "{backend}");
        }
    }

    #[test]
    fn swap_views_reports_churn_and_stays_consistent_on_both_backends() {
        for backend in BOTH {
            let (engine, workload) = setup(StalenessPolicy::Eager, backend);
            let before: Vec<ViewMask> = engine.views().iter().map(|(m, _)| *m).collect();
            assert!(!before.is_empty());

            // Swap to: keep the first standing view, add the apex (not
            // selected by the offline pass here), retire the rest.
            let kept = before[0];
            assert!(
                !before.contains(&ViewMask::APEX),
                "test needs the apex to be a genuine addition"
            );
            let target = [kept, ViewMask::APEX];
            let churn = engine.swap_views(&target).unwrap();
            assert_eq!(churn.added, vec![ViewMask::APEX], "{backend}");
            assert_eq!(churn.kept, vec![kept], "{backend}");
            assert_eq!(churn.retired.len(), before.len() - 1, "{backend}");
            assert_eq!(churn.churned(), 1 + before.len() - 1, "{backend}");
            assert_eq!(engine.views().len(), 2, "{backend}");
            assert_eq!(
                engine.snapshot().graph_names().len(),
                2,
                "{backend}: one named graph per catalog view after the swap"
            );
            // The swapped catalog still serves correct answers.
            assert_answers_match_base(&engine, &workload);
        }
    }

    #[test]
    fn swap_views_across_updates_keeps_answers_fresh() {
        for backend in BOTH {
            let (engine, workload) = setup(StalenessPolicy::LazyOnHit, backend);
            engine.update(session_delta(0)).unwrap();
            // Swap while every standing view is stale: new views
            // materialize from the *updated* base graph, kept ones repair
            // lazily.
            let kept = engine.views()[0].0;
            engine.swap_views(&[kept, ViewMask::APEX]).unwrap();
            engine.update(session_delta(1)).unwrap();
            assert_answers_match_base(&engine, &workload);
        }
    }

    #[test]
    fn bounded_serial_flushes_every_max_batches() {
        let (engine, workload) = setup(StalenessPolicy::bounded(2, 10), Backend::Serial);
        let views = engine.views().len();
        engine.update(session_delta(0)).unwrap();
        assert_eq!(engine.buffered_updates(), 1);
        assert_eq!(
            engine.stale_views(),
            views,
            "first batch leaves views stale"
        );
        assert!(engine.maintenance().per_view.is_empty());

        // The second batch crosses max_batches: one batched flush repairs
        // everything.
        engine.update(session_delta(1)).unwrap();
        assert_eq!(engine.buffered_updates(), 0);
        assert_eq!(engine.stale_views(), 0, "flush repaired every view");
        assert!(!engine.maintenance().per_view.is_empty());
        assert_answers_match_base(&engine, &workload);
    }

    #[test]
    fn bounded_serial_serves_stale_within_budget_and_repairs_past_it() {
        let (engine, workload) = setup(StalenessPolicy::bounded(100, 1), Backend::Serial);
        engine.update(session_delta(0)).unwrap();

        // Lag 1 <= budget 1: view answers are served stale, tagged.
        let mut tagged = 0;
        for q in &workload {
            let answer = engine.query(&q.query).unwrap();
            if matches!(answer.route, Route::View(_)) {
                assert_eq!(answer.freshness.lag, 1, "one buffered batch behind");
                assert_eq!(answer.maintenance_us, 0, "no repair within budget");
                assert!(!answer.freshness.is_fresh());
                tagged += 1;
            } else {
                assert!(answer.freshness.is_fresh(), "base graph is current");
            }
        }
        assert!(tagged > 0, "some answers were served stale");

        // Two more batches: lag 3 > budget 1 forces repair on hit.
        engine.update(session_delta(1)).unwrap();
        engine.update(session_delta(2)).unwrap();
        for q in &workload {
            let answer = engine.query(&q.query).unwrap();
            assert!(
                answer.freshness.lag <= 1,
                "the lag budget is enforced at serve time"
            );
        }
        // Repaired views now answer exactly.
        assert!(!engine.maintenance().per_view.is_empty());
        engine.flush().unwrap();
        assert_answers_match_base(&engine, &workload);
    }

    #[test]
    fn bounded_epoch_coalesces_batches_into_one_epoch_and_tags_reads() {
        let (engine, workload) = setup(
            StalenessPolicy::bounded(3, 10),
            Backend::Epoch {
                shards: 4,
                threads: 2,
            },
        );
        // Two buffered batches: nothing published, reads lag and say so.
        engine.update(session_delta(0)).unwrap();
        engine.update(session_delta(1)).unwrap();
        assert_eq!(engine.epoch(), 0, "buffered batches publish nothing");
        assert_eq!(engine.buffered_updates(), 2);
        let answer = engine.query(&workload[0].query).unwrap();
        assert_eq!(answer.freshness.lag, 2);
        assert!(!answer.freshness.is_fresh());
        assert_eq!(answer.freshness.epoch, 0);

        // The third batch crosses max_batches: one flush, ONE epoch.
        engine.update(session_delta(2)).unwrap();
        assert_eq!(engine.epoch(), 1, "three batches, one epoch");
        assert_eq!(engine.buffered_updates(), 0);
        assert!(!engine.maintenance().per_view.is_empty());
        assert_eq!(engine.stale_views(), 0, "flush maintains every view");
        let answer = engine.query(&workload[0].query).unwrap();
        assert!(answer.freshness.is_fresh());
        assert_eq!(answer.freshness.epoch, 1);
        assert_answers_match_base(&engine, &workload);

        // The pipeline split was measured.
        let telemetry = engine.pipeline_telemetry().expect("epoch backend");
        assert!(telemetry.serial_us + telemetry.parallel_work_us > 0);
        assert!(telemetry.serial_fraction().is_some());
    }

    #[test]
    fn bounded_epoch_lag_budget_forces_single_batch_flushes_at_serve_time() {
        let (engine, workload) = setup(
            StalenessPolicy::bounded(100, 1),
            Backend::Epoch {
                shards: 2,
                threads: 2,
            },
        );
        for batch in 0..3 {
            engine.update(session_delta(batch)).unwrap();
        }
        assert_eq!(engine.buffered_updates(), 3, "3 > budget 1, unserved");
        // The read trips the budget: serve-path flushes drain one batch
        // per check until the lag is within budget — two single-batch
        // epochs here, not one three-batch epoch.
        let answer = engine.query(&workload[0].query).unwrap();
        assert!(
            answer.freshness.lag <= 1,
            "no read is served past max_epoch_lag"
        );
        assert_eq!(
            engine.epoch(),
            2,
            "the forced flush published one epoch per drained batch"
        );
        assert_eq!(engine.buffered_updates(), 1, "within budget, one left");
        engine.flush().unwrap();
        assert_answers_match_base(&engine, &workload);
    }

    #[test]
    fn flush_repairs_lazy_stale_views_on_both_backends() {
        for backend in BOTH {
            let (engine, workload) = setup(StalenessPolicy::LazyOnHit, backend);
            engine.update(session_delta(0)).unwrap();
            assert!(
                engine.stale_views() > 0,
                "{backend}: update left views stale"
            );
            engine.flush().unwrap();
            assert_eq!(
                engine.stale_views(),
                0,
                "{backend}: flush drains ALL deferred maintenance, not just buffers"
            );
            // No repair happens at query time now: the flush did it all.
            let repairs = engine.maintenance().per_view.len();
            assert_answers_match_base(&engine, &workload);
            assert_eq!(engine.maintenance().per_view.len(), repairs, "{backend}");
        }
    }

    #[test]
    fn explicit_flush_drains_the_buffer() {
        let (engine, workload) = setup(
            StalenessPolicy::bounded(100, 100),
            Backend::Epoch {
                shards: 2,
                threads: 1,
            },
        );
        engine.flush().expect("empty flush is a no-op");
        assert_eq!(engine.epoch(), 0);
        engine.update(session_delta(0)).unwrap();
        engine.flush().unwrap();
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.buffered_updates(), 0);
        assert_answers_match_base(&engine, &workload);
    }

    #[test]
    fn wall_clock_bound_forces_service_before_serving_on_both_backends() {
        for backend in BOTH {
            let clock = ManualClock::shared(0);
            let (engine, workload) = built(
                // Generous batch/epoch budgets: only the clock can trip.
                StalenessPolicy::bounded_ms(100, 100, 50),
                backend,
                Some(clock.clone() as Arc<dyn Clock>),
            );
            engine.update(session_delta(0)).unwrap();
            engine.update(session_delta(1)).unwrap();

            // Within the wall-clock budget: served stale, tagged.
            clock.advance(50);
            let answer = engine.query(&workload[0].query).unwrap();
            assert!(
                answer.freshness.lag <= 2,
                "{backend}: tag carries the buffered lag"
            );

            // Past the budget: the serve path repairs/flushes first.
            clock.advance(1);
            let answer = engine.query(&workload[0].query).unwrap();
            match backend {
                Backend::Serial => {
                    // The routed view is repaired (or the read fell back
                    // to the always-current base graph).
                    assert!(
                        answer.freshness.is_fresh() || answer.freshness.lag == 0,
                        "{backend}: no read served past max_lag_ms"
                    );
                }
                Backend::Epoch { .. } => {
                    assert_eq!(
                        engine.buffered_updates(),
                        0,
                        "{backend}: the clock check drained the buffer"
                    );
                    assert!(answer.freshness.is_fresh(), "{backend}");
                }
            }
            assert_answers_match_base(&engine, &workload);
        }
    }

    #[test]
    fn readers_overlap_a_writing_engine() {
        let (engine, workload) = setup(
            StalenessPolicy::Eager,
            Backend::Epoch {
                shards: 4,
                threads: 2,
            },
        );
        let engine = std::sync::Arc::new(engine);
        std::thread::scope(|scope| {
            let mut readers = Vec::new();
            for r in 0..3 {
                let engine = std::sync::Arc::clone(&engine);
                let workload = &workload;
                readers.push(scope.spawn(move || {
                    for i in 0..20 {
                        let q = &workload[(r + i) % workload.len()];
                        let answer = engine.query(&q.query).expect("query runs");
                        assert!(answer.results.len() < 10_000);
                    }
                }));
            }
            for batch in 0..5 {
                engine.update(session_delta(batch)).expect("update runs");
            }
            for handle in readers {
                handle.join().expect("reader ran clean");
            }
        });
        // After the dust settles, answers are exact.
        assert_answers_match_base(&engine, &workload);
    }
}
