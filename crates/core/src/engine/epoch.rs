//! The epoch backend: queries against pinned epoch snapshots while
//! maintenance publishes new epochs.
//!
//! The same serving surface as the serial backend, rebuilt over the
//! store's epoch mechanism ([`EpochStore`]):
//!
//! * **queries** pin an immutable epoch [`sofos_store::Snapshot`] and
//!   evaluate against it — they never wait for a writer, only for the
//!   pointer swap of a publish and a short catalog-routing lock;
//! * **updates** run inside a write transaction: the delta's binding
//!   scans are split by subject shard and run on a scoped thread pool
//!   ([`sofos_maintain::Maintainer::apply_sharded`]), views are patched
//!   on the writer's master, and the whole batch becomes visible
//!   atomically at publish;
//! * the **staleness policies** are the shared [`crate::policy`] state
//!   machines expressed over epochs. *Eager* maintains inside the update
//!   transaction. *Lazy* publishes the base change immediately and
//!   buffers the row delta stamped with its epoch; a view is repaired on
//!   its next hit by replaying exactly the epochs it missed. *Invalidate*
//!   drops the catalog inside the update transaction. *Bounded* buffers
//!   whole deltas writer-side and flushes on cadence — and the serve path
//!   enforces both the epoch-lag and wall-clock budgets, flushing **one
//!   buffered batch at a time** when a read finds itself over budget, so
//!   the maintenance work a single read can absorb is bounded (the
//!   check–flush–recheck loop under the serving lock still guarantees the
//!   bound holds against racing updates).
//!
//! Lock discipline (in acquisition order): write transaction → writer
//! side (maintenance engine) → serving state (catalog routing). The
//! serving lock is held only for catalog reads/installs and the O(1)
//! publish swap — never across maintenance, materialization, snapshot
//! cloning, or query evaluation.

use super::{Route, ServingBackend, SessionAnswer, ViewChurn};
use crate::metrics::EngineInstruments;
use crate::policy::{Clock, FlushMeter, Freshness, PendingLog, ProfileWindows, StalenessPolicy};
use crate::timing::measure_once;
use sofos_cost::UpdateRates;
use sofos_cube::{Facet, ViewMask};
use sofos_maintain::{Maintainer, MaintenanceReport, PipelineTelemetry, RowDelta, ShardScanCost};
use sofos_materialize::{drop_view, materialize_view, MaterializedView};
use sofos_rdf::FxHashMap;
use sofos_rewrite::{analyze_query, best_view, rewrite_query};
use sofos_select::WorkloadProfile;
use sofos_sparql::{Evaluator, Query, SparqlError};
use sofos_store::{Dataset, Delta, EpochStore, PinnedSnapshot, WriteTxn};
use std::sync::{Arc, Mutex};

/// Routing and staleness state shared between readers and the writer.
/// Guarded by a mutex that is only ever held briefly (see module docs).
struct ServingState {
    /// The live catalog: mask + row count, in selection order.
    views: Vec<(ViewMask, usize)>,
    /// Buffered row deltas under the lazy policy, stamped with the epoch
    /// that published them.
    pending: PendingLog,
    /// Bounded policy: one entry (enqueue timestamp) per update batch
    /// buffered by the writer and not yet published — the lag every read
    /// serves under (and is tagged with) until the next flush.
    meter: FlushMeter,
    /// Sliding demand/rate/churn windows for the adaptive layer.
    windows: ProfileWindows,
    view_hits: usize,
    fallbacks: usize,
    update_batches: usize,
}

/// Writer-only state (the maintenance engine and its telemetry). Guarded
/// by its own mutex, always acquired while holding the store's write
/// transaction, so it never contends with readers.
struct WriterSide {
    maintainer: Maintainer,
    log: MaintenanceReport,
    /// Scan telemetry folded to per-shard totals at absorb time, so a
    /// long-lived backend stays O(shards) regardless of batch count.
    shard_scans: Vec<ShardScanCost>,
    /// Accumulated two-phase split (serial spine vs. pool work) across
    /// every sharded apply and pipelined maintenance pass.
    telemetry: PipelineTelemetry,
    /// Bounded policy only: deltas awaiting the next batched flush.
    buffered: Vec<Delta>,
}

impl WriterSide {
    fn absorb_scans(&mut self, costs: &[ShardScanCost]) {
        for cost in costs {
            match self.shard_scans.iter_mut().find(|t| t.shard == cost.shard) {
                Some(total) => total.merge(cost),
                None => self.shard_scans.push(*cost),
            }
        }
    }

    /// Fold one sharded apply's scan/serial split into the running
    /// telemetry and per-shard totals.
    fn absorb_sharded(&mut self, sharded: &sofos_maintain::ShardedApplyOutcome) {
        self.absorb_scans(&sharded.shard_costs);
        self.telemetry.merge(&PipelineTelemetry {
            serial_us: sharded.serial_us,
            parallel_work_us: sharded.scan_work_us(),
            parallel_wall_us: sharded.scan_wall_us,
        });
    }
}

/// A [`StalenessPolicy`]-driven serving backend over an [`EpochStore`]:
/// concurrent readers, one writer, epoch-snapshot isolation.
pub(crate) struct EpochBackend {
    store: EpochStore,
    facet: Facet,
    policy: StalenessPolicy,
    writer_threads: usize,
    /// Within-view plan parallelism: each view's planning is split into
    /// this many group-key chunks (see
    /// [`Maintainer::maintain_pipelined_split`]). 1 = unsplit.
    plan_split: usize,
    clock: Arc<dyn Clock>,
    writer: Mutex<WriterSide>,
    serving: Mutex<ServingState>,
    /// Pre-registered telemetry instruments (serve latency, freshness
    /// lag, epoch lifecycle, pipeline phase timings).
    metrics: EngineInstruments,
}

impl EpochBackend {
    /// Build over a ready [`EpochStore`] — plain in-memory
    /// ([`EpochStore::new`]) or durable/recovered
    /// ([`EpochStore::recovered`]); the backend is agnostic, every
    /// publish path already routes its change sets through
    /// `touch_changes`, which is all the durable store needs.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        store: EpochStore,
        facet: Facet,
        views: Vec<(ViewMask, usize)>,
        policy: StalenessPolicy,
        writer_threads: usize,
        plan_split: usize,
        clock: Arc<dyn Clock>,
        metrics: EngineInstruments,
    ) -> EpochBackend {
        EpochBackend {
            store,
            writer: Mutex::new(WriterSide {
                maintainer: Maintainer::new(&facet),
                log: MaintenanceReport::default(),
                shard_scans: Vec::new(),
                telemetry: PipelineTelemetry::default(),
                buffered: Vec::new(),
            }),
            serving: Mutex::new(ServingState {
                views,
                pending: PendingLog::default(),
                meter: FlushMeter::default(),
                windows: ProfileWindows::default(),
                view_hits: 0,
                fallbacks: 0,
                update_batches: 0,
            }),
            facet,
            policy,
            writer_threads: writer_threads.max(1),
            plan_split: plan_split.max(1),
            clock,
            metrics,
        }
    }

    /// Mirror one sharded apply's scan/pipeline split into the metric
    /// instruments (alongside [`WriterSide::absorb_sharded`]'s report
    /// totals).
    fn record_sharded(&self, sharded: &sofos_maintain::ShardedApplyOutcome) {
        self.metrics.record_shard_scans(&sharded.shard_costs);
        self.metrics.record_pipeline(&PipelineTelemetry {
            serial_us: sharded.serial_us,
            parallel_work_us: sharded.scan_work_us(),
            parallel_wall_us: sharded.scan_wall_us,
        });
    }

    /// Refresh the epoch-lifecycle gauges (and, on a durable store, the
    /// persistence gauges) from the store's accounting.
    fn note_store(&self) {
        self.metrics.record_epoch_lifecycle(
            self.store.published_snapshots(),
            self.store.retired_snapshots(),
            self.store.live_snapshots(),
        );
        if let Some(persister) = self.store.persister() {
            self.metrics.record_persist(&persister.stats());
        }
        if self.metrics.enabled() {
            // Pinning just to read footprint is fine here: the gauges are
            // only refreshed when telemetry is on, and a pin is an Arc
            // clone plus registry bookkeeping.
            let snapshot = self.store.pin();
            self.metrics
                .record_index(&snapshot.dataset().posting_stats());
        }
    }

    /// The catalog as `(mask bits, rows)` pairs for the epoch log.
    /// `None` on an in-memory store, so `Durability::None` publishes pay
    /// nothing — and log records only carry an explicit catalog when the
    /// view set actually changed (other records carry it forward).
    fn durable_catalog(&self, views: &[(ViewMask, usize)]) -> Option<Vec<(u64, u64)>> {
        self.store
            .persister()
            .map(|_| views.iter().map(|&(m, rows)| (m.0, rows as u64)).collect())
    }

    /// The underlying epoch store (epoch numbers, retire accounting).
    #[cfg(test)]
    pub(crate) fn store(&self) -> &EpochStore {
        &self.store
    }

    /// The facet.
    #[cfg(test)]
    pub(crate) fn facet(&self) -> &Facet {
        &self.facet
    }

    /// Pin the current epoch (for validation and ad-hoc reads).
    #[cfg(test)]
    pub(crate) fn pin(&self) -> PinnedSnapshot {
        self.store.pin()
    }

    /// Accumulated per-shard scan telemetry, folded across batches
    /// (sorted by shard).
    #[cfg(test)]
    pub(crate) fn shard_scan_totals(&self) -> Vec<ShardScanCost> {
        let writer = self.writer.lock().expect("writer lock poisoned");
        let mut totals = writer.shard_scans.clone();
        totals.sort_by_key(|t| t.shard);
        totals
    }

    fn lock_serving(&self) -> std::sync::MutexGuard<'_, ServingState> {
        self.serving.lock().expect("serving lock poisoned")
    }

    /// Apply an update batch under the backend's staleness policy. The
    /// batch becomes visible to readers atomically at publish; readers
    /// keep answering from the previous epoch until then.
    pub(crate) fn update(&self, delta: Delta) -> Result<(), SparqlError> {
        let result = self.update_inner(delta);
        self.note_store();
        result
    }

    fn update_inner(&self, delta: Delta) -> Result<(), SparqlError> {
        let mut txn = self.store.begin();
        let router = *self.store.router();
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        {
            let mut state = self.lock_serving();
            state.update_batches += 1;
            state.windows.observe_batch(&delta);
        }
        // Invariant for every branch below: the serving lock is held
        // *across* the catalog change and the publish, so a reader can
        // never pair the new catalog with the old epoch (or vice versa).
        match self.policy {
            StalenessPolicy::Invalidate => {
                let views: Vec<ViewMask> = {
                    let state = self.lock_serving();
                    state.views.iter().map(|(m, _)| *m).collect()
                };
                for mask in views {
                    drop_view(txn.dataset(), &self.facet, mask);
                }
                let changes = txn.dataset().apply(delta);
                txn.touch_changes(&changes);
                let catalog = self.durable_catalog(&[]);
                let prepared = txn.prepare();
                let mut state = self.lock_serving();
                state.views.clear();
                state.pending.clear();
                prepared.publish_with_catalog(catalog.as_deref());
                Ok(())
            }
            StalenessPolicy::Eager => {
                let sharded = writer.maintainer.apply_sharded(
                    txn.dataset(),
                    delta,
                    &router,
                    self.writer_threads,
                );
                writer.absorb_sharded(&sharded);
                self.record_sharded(&sharded);
                // The catalog's masks cannot change concurrently — every
                // view mutator holds the write transaction — so working on
                // a clone and installing it back is race-free.
                let mut views = self.lock_serving().views.clone();
                let result = writer.maintainer.maintain_pipelined_split(
                    txn.dataset(),
                    sharded.outcome.rows.as_ref(),
                    &mut views,
                    self.writer_threads,
                    self.plan_split,
                );
                txn.touch_changes(&sharded.outcome.changes);
                // Snapshot construction (the clone) happens before the
                // serving lock; readers only ever wait for the swap.
                match result {
                    Ok(outcome) => {
                        writer.telemetry.merge(&outcome.telemetry);
                        self.metrics.record_pipeline(&outcome.telemetry);
                        writer.log.absorb(outcome.report);
                        let catalog = self.durable_catalog(&views);
                        let prepared = txn.prepare();
                        let mut state = self.lock_serving();
                        if let Some(rows) = &sharded.outcome.rows {
                            state.windows.observe_churn(rows);
                        }
                        state.views = views;
                        prepared.publish_with_catalog(catalog.as_deref());
                        Ok(())
                    }
                    Err(e) => {
                        // The base delta is applied but no view was
                        // patched (pipelined planning is all-or-nothing);
                        // abandoning the transaction would leave the
                        // master diverged from the published epoch
                        // forever. Publish the batch instead and demand a
                        // full refresh of every (now stale) view —
                        // needs-refresh bars queries from routing to any
                        // of them before repair, under every policy.
                        let catalog = self.durable_catalog(&views);
                        let prepared = txn.prepare();
                        let mut guard = self.lock_serving();
                        let state = &mut *guard;
                        state.views = views;
                        let epoch = prepared.publish_with_catalog(catalog.as_deref());
                        state.pending.demand_refresh_all(&state.views, epoch);
                        drop(guard);
                        self.metrics.record_maintenance_error(
                            self.clock.now_ms(),
                            format!("eager maintenance failed at epoch {epoch}: {e}"),
                        );
                        Err(e)
                    }
                }
            }
            StalenessPolicy::Bounded { .. } => {
                writer.buffered.push(delta);
                // Publish the new lag to readers *before* deciding to
                // flush: a racing reader must either see the full buffer
                // count (and spin on the budget check until the flush
                // publishes) or serve a tag that includes this delta —
                // never an undercounted lag.
                let buffered = {
                    let mut state = self.lock_serving();
                    state.meter.enqueue(self.clock.now_ms());
                    state.meter.buffered()
                };
                self.metrics.record_buffered(buffered);
                if buffered >= self.policy.flush_cadence().unwrap_or(1) {
                    // Scheduled cadence flush: drain the whole buffer into
                    // one batched epoch (the update path can afford it —
                    // it IS the maintenance path).
                    self.flush_batch(txn, &mut writer, buffered)
                } else {
                    // Dropped without publish: nothing was mutated, the
                    // delta only joined the writer-side buffer.
                    drop(txn);
                    Ok(())
                }
            }
            StalenessPolicy::LazyOnHit => {
                let sharded = writer.maintainer.apply_sharded(
                    txn.dataset(),
                    delta,
                    &router,
                    self.writer_threads,
                );
                writer.absorb_sharded(&sharded);
                self.record_sharded(&sharded);
                txn.touch_changes(&sharded.outcome.changes);
                let prepared = txn.prepare();
                let mut guard = self.lock_serving();
                let state = &mut *guard;
                let epoch = prepared.publish();
                match sharded.outcome.rows {
                    Some(rows) if rows.is_empty() => {}
                    Some(rows) => {
                        state.windows.observe_churn(&rows);
                        state.pending.push(epoch, self.clock.now_ms(), rows);
                        let evicted = state.pending.enforce_cap(&state.views, epoch);
                        self.metrics.record_pending(state.pending.len(), evicted);
                    }
                    None => {
                        // Non-star facet: buffered deltas cannot repair
                        // anything; every view needs a full refresh.
                        state.pending.demand_refresh_all(&state.views, epoch);
                        self.metrics.record_pending(state.pending.len(), 0);
                    }
                }
                Ok(())
            }
        }
    }

    /// Flush the bounded policy's buffered updates now: apply them all
    /// inside one batched transaction, maintain every view in one
    /// pipelined pass over the *merged* row delta, and publish the whole
    /// batch as a single epoch. No-op when nothing is buffered.
    pub(crate) fn flush(&self) -> Result<(), SparqlError> {
        self.flush_upto(usize::MAX)
    }

    /// Flush at most `limit` of the oldest buffered updates (oldest
    /// first) as one batched epoch. The serve path uses `limit = 1` so a
    /// read that trips the staleness budget absorbs one batch of
    /// maintenance, not the whole backlog.
    fn flush_upto(&self, limit: usize) -> Result<(), SparqlError> {
        let txn = self.store.begin();
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        if writer.buffered.is_empty() {
            return Ok(());
        }
        let take = writer.buffered.len().min(limit.max(1));
        self.flush_batch(txn, &mut writer, take)
    }

    /// The batched-epoch flush of the `take` oldest buffered deltas
    /// (writer lock held, transaction open).
    fn flush_batch(
        &self,
        txn: WriteTxn<'_>,
        writer: &mut WriterSide,
        take: usize,
    ) -> Result<(), SparqlError> {
        let router = *self.store.router();
        let mut batch = txn.batch();
        let deltas: Vec<Delta> = writer.buffered.drain(..take).collect();
        // Merge the per-delta row deltas: N batches collapse into one
        // group-patching pass (intra-batch churn cancels for free).
        let mut merged: Option<RowDelta> = Some(RowDelta::default());
        for delta in deltas {
            let sharded = writer.maintainer.apply_sharded(
                batch.dataset(),
                delta,
                &router,
                self.writer_threads,
            );
            writer.absorb_sharded(&sharded);
            self.record_sharded(&sharded);
            batch.absorb(&sharded.outcome.changes);
            match sharded.outcome.rows {
                Some(rows) => {
                    if let Some(m) = merged.as_mut() {
                        m.merge(&rows);
                    }
                }
                // Non-star facet: merged deltas cannot repair anything.
                None => merged = None,
            }
        }
        let mut views = self.lock_serving().views.clone();
        let result = writer.maintainer.maintain_pipelined_split(
            batch.dataset(),
            merged.as_ref(),
            &mut views,
            self.writer_threads,
            self.plan_split,
        );
        match result {
            Ok(outcome) => {
                writer.telemetry.merge(&outcome.telemetry);
                self.metrics.record_pipeline(&outcome.telemetry);
                writer.log.absorb(outcome.report);
                let catalog = self.durable_catalog(&views);
                let prepared = batch.prepare();
                let mut state = self.lock_serving();
                if let Some(rows) = merged.as_ref().filter(|rows| !rows.is_empty()) {
                    state.windows.observe_churn(rows);
                }
                state.views = views;
                state.meter.drain(take);
                let buffered = state.meter.buffered();
                let epoch = prepared.publish_with_catalog(catalog.as_deref());
                drop(state);
                let now = self.clock.now_ms();
                self.metrics.record_flush(
                    take,
                    now,
                    format!("drained {take} batches -> epoch {epoch}"),
                );
                self.metrics.record_buffered(buffered);
                self.metrics.record_epoch_publish(epoch, now);
                Ok(())
            }
            Err(e) => {
                // Base deltas are applied, views were left unpatched
                // (all-or-nothing planning): publish the base batch and
                // demand a full refresh of every view.
                let prepared = batch.prepare();
                let mut guard = self.lock_serving();
                let state = &mut *guard;
                let epoch = prepared.publish();
                state.meter.drain(take);
                state.pending.demand_refresh_all(&state.views, epoch);
                let buffered = state.meter.buffered();
                drop(guard);
                let now = self.clock.now_ms();
                self.metrics.record_flush(
                    take,
                    now,
                    format!("drained {take} batches -> epoch {epoch}"),
                );
                self.metrics.record_buffered(buffered);
                self.metrics.record_maintenance_error(
                    now,
                    format!("batched flush maintenance failed at epoch {epoch}: {e}"),
                );
                Err(e)
            }
        }
    }

    /// Answer one query from a pinned snapshot. Under the lazy policy a
    /// stale routed-to view is repaired (and the next epoch published)
    /// first. Under the bounded policy the answer is served from the
    /// standing epoch and *tagged* with its lag — unless the lag exceeds
    /// the epoch or wall-clock budget, in which case buffered batches are
    /// flushed (one per check, so the work one read absorbs is bounded)
    /// before serving. The repair/flush cost is reported on the answer.
    pub(crate) fn query(&self, query: &Query) -> Result<SessionAnswer, SparqlError> {
        let start = std::time::Instant::now();
        let result = self.query_inner(query);
        if let Ok(answer) = &result {
            let route = match answer.route {
                Route::View(view) => Some(view),
                Route::BaseGraph => None,
            };
            self.metrics.record_serve(
                route,
                start.elapsed().as_micros() as u64,
                &answer.freshness,
                self.clock.now_ms(),
            );
        }
        self.note_store();
        result
    }

    fn query_inner(&self, query: &Query) -> Result<SessionAnswer, SparqlError> {
        let Ok(analysis) = analyze_query(&self.facet, query) else {
            let (snapshot, freshness, flush_us) = self.pin_within_bound()?;
            self.lock_serving().fallbacks += 1;
            let results = Evaluator::new(snapshot.dataset()).evaluate(query)?;
            return Ok(SessionAnswer {
                route: Route::BaseGraph,
                results,
                maintenance_us: flush_us,
                freshness,
            });
        };

        // Route against the catalog and pin an epoch under one short
        // lock, so the staleness decision, the freshness tag, and the
        // snapshot agree.
        let mut demand_recorded = false;
        let mut flush_us = 0u64;
        let (planned, snapshot, freshness) = loop {
            {
                let mut state = self.lock_serving();
                if !demand_recorded {
                    state.windows.observe_demand(analysis.required);
                    demand_recorded = true;
                }
                let lag = state.meter.buffered() as u64;
                let time_lag = state.meter.time_lag_ms(self.clock.now_ms());
                if self.policy.within_budget(lag, time_lag) {
                    let snapshot = self.store.pin();
                    let freshness = Self::freshness_of(&snapshot, lag);
                    let planned = best_view(&state.views, analysis.required).map(|view| {
                        // Needs-refresh gates every policy (a failed
                        // maintenance pass demands repair too); the
                        // epoch-replay staleness check is lazy-only.
                        let stale = state.pending.needs_refresh(view)
                            || (self.policy == StalenessPolicy::LazyOnHit
                                && state.pending.stale_at(view, snapshot.epoch()));
                        (view, stale)
                    });
                    match planned {
                        Some(_) => state.view_hits += 1,
                        None => state.fallbacks += 1,
                    }
                    break (planned, snapshot, freshness);
                }
            }
            // Past the staleness budget: flush ONE buffered batch, then
            // re-check (a racing update may have buffered more batches in
            // between — and another reader may already have flushed for
            // us). Capping the per-iteration work keeps a single read's
            // tail latency bounded by one batch of maintenance.
            let (us, result) = measure_once(|| self.flush_upto(1));
            result?;
            flush_us += us;
        };

        match planned {
            None => {
                let results = Evaluator::new(snapshot.dataset()).evaluate(query)?;
                Ok(SessionAnswer {
                    route: Route::BaseGraph,
                    results,
                    maintenance_us: flush_us,
                    freshness,
                })
            }
            Some((view, stale)) => {
                let rewritten = rewrite_query(&self.facet, &analysis, view);
                let (snapshot, maintenance_us, freshness) = if stale {
                    match self.repair_view(view)? {
                        Some((snapshot, us)) => {
                            let freshness = Self::freshness_of(&snapshot, freshness.lag);
                            (snapshot, flush_us + us, freshness)
                        }
                        None => {
                            // The view was swapped out while we waited for
                            // the writer: it is no longer answerable.
                            // Re-route to the base graph on a fresh pin.
                            let snapshot = {
                                let mut state = self.lock_serving();
                                state.view_hits -= 1;
                                state.fallbacks += 1;
                                self.store.pin()
                            };
                            let freshness = Self::freshness_of(&snapshot, freshness.lag);
                            let results = Evaluator::new(snapshot.dataset()).evaluate(query)?;
                            return Ok(SessionAnswer {
                                route: Route::BaseGraph,
                                results,
                                maintenance_us: flush_us,
                                freshness,
                            });
                        }
                    }
                } else {
                    (snapshot, flush_us, freshness)
                };
                let results = Evaluator::new(snapshot.dataset()).evaluate(&rewritten)?;
                Ok(SessionAnswer {
                    route: Route::View(view),
                    results,
                    maintenance_us,
                    freshness,
                })
            }
        }
    }

    /// The freshness tag of one pinned snapshot: the buffered-batch lag
    /// plus the epoch and oldest per-shard stamp the epoch store tracks
    /// for free.
    fn freshness_of(snapshot: &PinnedSnapshot, lag: u64) -> Freshness {
        Freshness {
            lag,
            epoch: snapshot.epoch(),
            oldest_shard_epoch: snapshot
                .shard_epochs()
                .iter()
                .copied()
                .min()
                .unwrap_or_else(|| snapshot.epoch()),
        }
    }

    /// Pin a snapshot whose lag respects the staleness budgets (flushing
    /// one batch per check as needed), returning it with its freshness
    /// tag and the flush time this read absorbed.
    fn pin_within_bound(&self) -> Result<(PinnedSnapshot, Freshness, u64), SparqlError> {
        let mut flush_us = 0u64;
        loop {
            {
                let state = self.lock_serving();
                let lag = state.meter.buffered() as u64;
                let time_lag = state.meter.time_lag_ms(self.clock.now_ms());
                if self.policy.within_budget(lag, time_lag) {
                    let snapshot = self.store.pin();
                    let freshness = Self::freshness_of(&snapshot, lag);
                    return Ok((snapshot, freshness, flush_us));
                }
            }
            let (us, result) = measure_once(|| self.flush_upto(1));
            result?;
            flush_us += us;
        }
    }

    /// Bring one lazily-stale view up to date: replay the epochs it
    /// missed against the writer's master and publish the repair.
    ///
    /// Returns the snapshot the caller must evaluate against — pinned
    /// under the serving lock at an epoch where the view is provably
    /// fresh. Re-pinning *outside* that lock would race a concurrent
    /// lazy update publishing a newer epoch whose pending rows the view
    /// lacks. `None` means the view left the catalog while we waited for
    /// the writer lock and the caller must re-route.
    fn repair_view(&self, view: ViewMask) -> Result<Option<(PinnedSnapshot, u64)>, SparqlError> {
        let mut txn = self.store.begin();
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        // Re-check under the transaction: another hit may have repaired
        // the view (or a swap retired it) while we waited for the lock.
        let (refresh, backlog, mut entry) = {
            let state = self.lock_serving();
            let Some(entry) = state.views.iter().find(|(mask, _)| *mask == view) else {
                return Ok(None); // swapped out while we waited
            };
            let refresh = state.pending.needs_refresh(view);
            if !refresh && !state.pending.stale_at(view, u64::MAX) {
                // Repaired by a racing hit: serve from the epoch that
                // freshness was just decided against.
                return Ok(Some((self.store.pin(), 0)));
            }
            let backlog = state.pending.backlog(view).unwrap_or_default();
            (refresh, backlog, *entry)
        };
        let rows = if refresh { None } else { Some(&backlog) };
        let result = writer
            .maintainer
            .maintain_view(txn.dataset(), rows, &mut entry);
        // The backlog is consumed either way (see PendingLog::consume's
        // poisoned-backlog rationale). The serving lock is held across
        // publish so no reader can route to the view before its cursor
        // reflects the repair epoch.
        let prepared = txn.prepare();
        let mut guard = self.lock_serving();
        let state = &mut *guard;
        let epoch = prepared.publish();
        if result.is_ok() {
            if let Some(slot) = state.views.iter_mut().find(|(mask, _)| *mask == view) {
                *slot = entry;
            }
        }
        state
            .pending
            .consume(view, epoch, result.is_ok(), &state.views);
        self.metrics.record_pending(state.pending.len(), 0);
        let snapshot = self.store.pin();
        drop(guard);
        if let Err(e) = &result {
            self.metrics.record_maintenance_error(
                self.clock.now_ms(),
                format!("view {:#x} repair failed: {e}", view.0),
            );
        }
        let cost = result?;
        let us = cost.wall_us;
        writer.log.per_view.push(cost);
        writer.log.total_us += us;
        Ok(Some((snapshot, us)))
    }

    /// Replace the materialized set with `target`, transactionally.
    ///
    /// Incoming views are materialized *first* on the writer's master; if
    /// any materialization fails, the half-written view graphs are
    /// dropped, **no epoch is published**, and the catalog is untouched —
    /// concurrent readers keep answering from the old selection and never
    /// observe the aborted swap. Only once every new view exists are the
    /// retired ones dropped, the catalog installed, and the whole swap
    /// published as one epoch.
    pub(crate) fn swap_views(&self, target: &[ViewMask]) -> Result<ViewChurn, SparqlError> {
        self.swap_views_with(target, materialize_view)
    }

    /// [`EpochBackend::swap_views`] with an injectable materializer —
    /// the test seam for forcing a mid-swap failure (the real evaluator
    /// is total over generated view queries, so materialization failures
    /// cannot be provoked from data alone).
    pub(crate) fn swap_views_with(
        &self,
        target: &[ViewMask],
        mut materialize: impl FnMut(
            &mut Dataset,
            &Facet,
            ViewMask,
        ) -> Result<MaterializedView, SparqlError>,
    ) -> Result<ViewChurn, SparqlError> {
        let mut txn = self.store.begin();
        let current: Vec<ViewMask> = {
            let state = self.lock_serving();
            state.views.iter().map(|(m, _)| *m).collect()
        };
        let plan = super::plan_swap(&current, target);

        // Phase 1: materialize every incoming view on the master. On
        // failure, undo and abort without publishing.
        let mut materialized: Vec<(ViewMask, usize)> = Vec::with_capacity(plan.added.len());
        let (materialize_us, result) = measure_once(|| {
            for &mask in &plan.added {
                match materialize(txn.dataset(), &self.facet, mask) {
                    Ok(view) => materialized.push((mask, view.stats.rows)),
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        });
        if let Err(e) = result {
            for &(mask, _) in &materialized {
                drop_view(txn.dataset(), &self.facet, mask);
            }
            // Dropping the transaction without publish: readers never saw
            // any of this, and the master is back to the published state.
            return Err(e);
        }

        // Phase 2: retire outgoing views, install the catalog, publish —
        // all under the serving lock, so readers atomically move from
        // (old catalog, old epoch) to (new catalog, new epoch).
        let (drop_us, ()) = measure_once(|| {
            for &mask in &plan.retired {
                drop_view(txn.dataset(), &self.facet, mask);
            }
        });
        {
            let prepared = txn.prepare();
            let mut guard = self.lock_serving();
            let state = &mut *guard;
            state.views = super::rebuild_catalog(target, &state.views, &materialized);
            for &mask in &plan.retired {
                state.pending.forget(mask);
            }
            let catalog = self.durable_catalog(&state.views);
            let epoch = prepared.publish_with_catalog(catalog.as_deref());
            for &(mask, _) in &materialized {
                // Materialized from the current master: nothing pending.
                state.pending.mark_fresh(mask, epoch);
            }
            state.pending.compact(&state.views);
        }

        Ok(ViewChurn {
            added: plan.added,
            retired: plan.retired,
            kept: plan.kept,
            materialize_us,
            drop_us,
        })
    }
}

impl ServingBackend for EpochBackend {
    fn update(&self, delta: Delta) -> Result<(), SparqlError> {
        EpochBackend::update(self, delta)
    }

    fn query(&self, query: &Query) -> Result<SessionAnswer, SparqlError> {
        EpochBackend::query(self, query)
    }

    fn swap_views(&self, target: &[ViewMask]) -> Result<ViewChurn, SparqlError> {
        let result = EpochBackend::swap_views(self, target);
        self.note_store();
        result
    }

    fn flush(&self) -> Result<u64, SparqlError> {
        let (us, result) = measure_once(|| {
            // Drain the bounded buffer first (publishes one batched
            // epoch), then repair every lazily-stale view — the trait
            // contract is "ALL deferred maintenance", matching the
            // serial backend's flush_views.
            EpochBackend::flush(self)?;
            let stale: Vec<ViewMask> = {
                let state = self.lock_serving();
                state
                    .views
                    .iter()
                    .map(|(mask, _)| *mask)
                    .filter(|&mask| state.pending.stale_at(mask, u64::MAX))
                    .collect()
            };
            for view in stale {
                self.repair_view(view)?;
            }
            Ok(())
        });
        self.note_store();
        result.map(|()| us)
    }

    fn snapshot(&self) -> Dataset {
        self.store.pin().dataset().clone()
    }

    fn views(&self) -> Vec<(ViewMask, usize)> {
        self.lock_serving().views.clone()
    }

    fn policy(&self) -> StalenessPolicy {
        self.policy
    }

    fn maintenance(&self) -> MaintenanceReport {
        self.writer
            .lock()
            .expect("writer lock poisoned")
            .log
            .clone()
    }

    fn routing_counts(&self) -> (usize, usize) {
        let state = self.lock_serving();
        (state.view_hits, state.fallbacks)
    }

    fn update_batches(&self) -> usize {
        self.lock_serving().update_batches
    }

    fn stale_views(&self) -> usize {
        let epoch = self.store.epoch();
        let state = self.lock_serving();
        state.pending.stale_count(&state.views, epoch)
    }

    fn buffered_updates(&self) -> usize {
        self.lock_serving().meter.buffered()
    }

    fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    fn window_profile(&self) -> WorkloadProfile {
        self.lock_serving().windows.window_profile()
    }

    fn observed_rates(&self) -> UpdateRates {
        self.lock_serving()
            .windows
            .observed_rates((self.facet.dim_count() + 1) as f64)
    }

    fn churn_profile(&self) -> FxHashMap<u64, f64> {
        self.lock_serving().windows.churn_profile()
    }

    fn pipeline_telemetry(&self) -> Option<PipelineTelemetry> {
        Some(self.writer.lock().expect("writer lock poisoned").telemetry)
    }

    fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    fn backend_name(&self) -> &'static str {
        "epoch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::offline::{run_offline, SizedLattice};
    use crate::policy::system_clock;
    use crate::validate::results_equivalent;
    use sofos_cost::CostModelKind;
    use sofos_cube::AggOp;
    use sofos_rdf::Term;
    use sofos_select::WorkloadProfile;
    use sofos_workload::{synthetic, GeneratedQuery};

    fn setup(
        policy: StalenessPolicy,
        shards: usize,
        threads: usize,
    ) -> (EpochBackend, Vec<GeneratedQuery>) {
        let g = synthetic::generate(&synthetic::Config {
            observations: 120,
            agg: AggOp::Avg,
            ..synthetic::Config::default()
        });
        let facet = g.facets[0].clone();
        let mut ds = g.dataset;
        let sized = SizedLattice::compute(&ds, &facet).unwrap();
        let profile = WorkloadProfile::uniform(&sized.lattice);
        let offline = run_offline(
            &mut ds,
            &sized,
            &profile,
            CostModelKind::AggValues,
            &EngineConfig::default(),
        )
        .unwrap();
        let workload = sofos_workload::generate_workload(
            &ds,
            &facet,
            &sofos_workload::WorkloadConfig {
                num_queries: 10,
                ..Default::default()
            },
        );
        (
            EpochBackend::new(
                EpochStore::new(ds, shards),
                facet,
                offline.view_catalog(),
                policy,
                threads,
                2, // exercise within-view split planning in backend tests
                system_clock(),
                EngineInstruments::new(sofos_telemetry::MetricsHandle::new(), "epoch"),
            ),
            workload,
        )
    }

    fn session_delta(batch: usize) -> Delta {
        use sofos_workload::synthetic::NS;
        let mut delta = Delta::new();
        for i in 0..3usize {
            let node = Term::blank(format!("u{batch}_{i}"));
            for d in 0..3usize {
                delta.insert(
                    node.clone(),
                    Term::iri(format!("{NS}dim{d}")),
                    Term::iri(format!("{NS}v{d}_{}", (batch + i + d) % 3)),
                );
            }
            delta.insert(
                node,
                Term::iri(format!("{NS}measure")),
                Term::literal_int(100 + (batch * 7 + i) as i64),
            );
        }
        delta
    }

    fn assert_answers_match_base(backend: &EpochBackend, workload: &[GeneratedQuery]) {
        for q in workload {
            let answer = backend.query(&q.query).expect("query runs");
            let snapshot = backend.pin();
            let reference = Evaluator::new(snapshot.dataset())
                .evaluate(&q.query)
                .expect("base evaluation runs");
            assert!(
                results_equivalent(&answer.results, &reference),
                "epoch answer diverged from base graph for {}",
                q.text
            );
        }
    }

    #[test]
    fn invalidate_drops_catalog_atomically() {
        let (backend, workload) = setup(StalenessPolicy::Invalidate, 2, 1);
        assert!(!ServingBackend::views(&backend).is_empty());
        let pinned = backend.pin();
        backend.update(session_delta(0)).unwrap();
        assert!(ServingBackend::views(&backend).is_empty());
        assert!(
            !pinned.dataset().graph_names().is_empty(),
            "the pre-update pin still holds every view graph"
        );
        assert!(
            backend.pin().dataset().graph_names().is_empty(),
            "new pins see no view graphs"
        );
        assert_answers_match_base(&backend, &workload);
        let (hits, fallbacks) = ServingBackend::routing_counts(&backend);
        assert_eq!(hits, 0);
        assert_eq!(fallbacks, workload.len());
    }

    #[test]
    fn lazy_repairs_publish_epochs_beyond_the_updates() {
        let (backend, workload) = setup(StalenessPolicy::LazyOnHit, 4, 2);
        backend.update(session_delta(0)).unwrap();
        backend.update(session_delta(1)).unwrap();
        assert_eq!(backend.store().epoch(), 2, "one epoch per lazy update");
        assert_answers_match_base(&backend, &workload);
        // Repairs published new epochs beyond the two update batches.
        assert!(backend.store().epoch() > 2);
        assert!(
            !backend.shard_scan_totals().is_empty(),
            "sharded scans produced telemetry"
        );
    }

    #[test]
    fn swap_views_rolls_back_on_mid_swap_failure() {
        let (backend, workload) = setup(StalenessPolicy::Eager, 2, 1);
        let before = ServingBackend::views(&backend);
        let before_masks: Vec<ViewMask> = before.iter().map(|(m, _)| *m).collect();
        assert!(!before_masks.contains(&ViewMask::APEX));
        let epoch_before = backend.store().epoch();
        let graphs_before = backend.pin().dataset().graph_names().len();

        // Target keeps the existing catalog and adds two views; the
        // injected materializer succeeds on the first addition and fails
        // on the second — a genuine mid-swap abort.
        let dims = backend.facet().dim_count();
        let mut target = before_masks.clone();
        let added_ok = (1..(1u64 << dims))
            .map(ViewMask)
            .find(|m| !before_masks.contains(m))
            .expect("the default budget leaves lattice views unmaterialized");
        target.push(added_ok);
        target.push(ViewMask::APEX);

        let mut calls = 0usize;
        let err = backend
            .swap_views_with(&target, |dataset, facet, mask| {
                calls += 1;
                if calls == 2 {
                    return Err(SparqlError::Eval("injected mid-swap failure".into()));
                }
                materialize_view(dataset, facet, mask)
            })
            .expect_err("second materialization fails");
        assert!(matches!(err, SparqlError::Eval(_)));
        assert_eq!(calls, 2, "first view materialized, second aborted");

        // Rollback: catalog untouched, no epoch published, the
        // successfully-materialized view graph is gone again.
        assert_eq!(ServingBackend::views(&backend), before);
        assert_eq!(backend.store().epoch(), epoch_before);
        assert_eq!(backend.pin().dataset().graph_names().len(), graphs_before);
        assert_answers_match_base(&backend, &workload);

        // The same swap with the real materializer succeeds and publishes.
        let churn = backend.swap_views(&target).expect("real swap succeeds");
        assert_eq!(churn.added.len(), 2);
        assert_eq!(backend.store().epoch(), epoch_before + 1);
        assert_answers_match_base(&backend, &workload);
    }

    #[test]
    fn swap_views_churn_matches_serial_semantics() {
        let (backend, workload) = setup(StalenessPolicy::LazyOnHit, 2, 1);
        backend.update(session_delta(0)).unwrap();
        let before: Vec<ViewMask> = ServingBackend::views(&backend)
            .iter()
            .map(|(m, _)| *m)
            .collect();
        let kept = before[0];
        let churn = backend.swap_views(&[kept, ViewMask::APEX]).unwrap();
        assert_eq!(churn.kept, vec![kept]);
        assert_eq!(churn.added, vec![ViewMask::APEX]);
        assert_eq!(churn.retired.len(), before.len() - 1);
        backend.update(session_delta(1)).unwrap();
        assert_answers_match_base(&backend, &workload);
    }
}
