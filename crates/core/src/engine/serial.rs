//! The serial backend: one mutable dataset, queries and updates
//! serialized.
//!
//! This is the paper's single-node regime (and the `e9_concurrency`
//! baseline): the backend owns the expanded dataset outright, so every
//! maintenance batch stalls every query for its full duration. All policy
//! behaviour comes from [`crate::policy`]; the state stamp the pending
//! log runs on is the applied-update-batch count.
//!
//! [`SerialState`] is the actual implementation; [`SerialBackend`] wraps
//! it in a mutex to provide the `&self` [`ServingBackend`] surface.

use super::{Route, ServingBackend, SessionAnswer, ViewChurn};
use crate::metrics::EngineInstruments;
use crate::policy::{Clock, FlushMeter, Freshness, PendingLog, ProfileWindows, StalenessPolicy};
use crate::timing::measure_once;
use sofos_cost::UpdateRates;
use sofos_cube::{Facet, ViewMask};
use sofos_maintain::{Maintainer, MaintenanceReport, PipelineTelemetry, RowDelta};
use sofos_materialize::{drop_view, materialize_view};
use sofos_rdf::FxHashMap;
use sofos_rewrite::{analyze_query, best_view, rewrite_query};
use sofos_select::WorkloadProfile;
use sofos_sparql::{Evaluator, Query, SparqlError};
use sofos_store::{ChangeSet, Dataset, Delta};
use std::sync::{Arc, Mutex};

/// The serial serving state machine (see module docs).
pub(crate) struct SerialState {
    dataset: Dataset,
    facet: Facet,
    maintainer: Maintainer,
    views: Vec<(ViewMask, usize)>,
    policy: StalenessPolicy,
    clock: Arc<dyn Clock>,
    /// Buffered row deltas under the lazy/bounded policies, stamped with
    /// the update-batch count that produced them.
    pending: PendingLog,
    /// Bounded policy: one entry per update batch since the last flush
    /// (drives the scheduled cadence and the wall-clock serve check).
    meter: FlushMeter,
    /// Accumulated maintenance log.
    log: MaintenanceReport,
    /// Sliding demand/rate/churn windows for the adaptive layer.
    windows: ProfileWindows,
    update_batches: usize,
    view_hits: usize,
    fallbacks: usize,
    /// Pre-registered telemetry instruments (serve latency, freshness
    /// lag, flush/pending accounting).
    metrics: EngineInstruments,
}

impl SerialState {
    pub(crate) fn new(
        dataset: Dataset,
        facet: Facet,
        views: Vec<(ViewMask, usize)>,
        policy: StalenessPolicy,
        clock: Arc<dyn Clock>,
        metrics: EngineInstruments,
    ) -> SerialState {
        SerialState {
            maintainer: Maintainer::new(&facet),
            dataset,
            facet,
            views,
            policy,
            clock,
            pending: PendingLog::default(),
            meter: FlushMeter::default(),
            log: MaintenanceReport::default(),
            windows: ProfileWindows::default(),
            update_batches: 0,
            view_hits: 0,
            fallbacks: 0,
            metrics,
        }
    }

    /// The current state stamp: applied update batches.
    fn stamp(&self) -> u64 {
        self.update_batches as u64
    }

    /// Apply an update batch under the staleness policy. Base changes
    /// always land immediately (the serial backend has no snapshot to
    /// serve stale base reads from); view upkeep follows the policy.
    pub(crate) fn update(&mut self, delta: Delta) -> Result<ChangeSet, SparqlError> {
        self.update_batches += 1;
        self.windows.observe_batch(&delta);
        match self.policy {
            StalenessPolicy::Invalidate => {
                for &(mask, _) in &self.views {
                    drop_view(&mut self.dataset, &self.facet, mask);
                }
                self.views.clear();
                self.pending.clear();
                Ok(self.dataset.apply(delta))
            }
            StalenessPolicy::Eager => {
                let outcome = self.maintainer.apply(&mut self.dataset, delta);
                if let Some(rows) = &outcome.rows {
                    self.windows.observe_churn(rows);
                }
                match self.maintainer.maintain(
                    &mut self.dataset,
                    outcome.rows.as_ref(),
                    &mut self.views,
                ) {
                    Ok(report) => {
                        self.log.absorb(report);
                        Ok(outcome.changes)
                    }
                    Err(e) => {
                        // The base delta is applied but no view was
                        // patched (planning is all-or-nothing): demand a
                        // full refresh of every view so no query serves
                        // stale state tagged fresh — mirroring the epoch
                        // backend's eager error path.
                        let stamp = self.stamp();
                        self.pending.demand_refresh_all(&self.views, stamp);
                        self.metrics.record_maintenance_error(
                            self.clock.now_ms(),
                            format!("eager maintenance failed: {e}"),
                        );
                        Err(e)
                    }
                }
            }
            StalenessPolicy::LazyOnHit => {
                let outcome = self.maintainer.apply(&mut self.dataset, delta);
                self.buffer_rows(outcome.rows);
                Ok(outcome.changes)
            }
            StalenessPolicy::Bounded { .. } => {
                // View upkeep is deferred and batched: every view consumes
                // its merged backlog in one pass per flush, so N buffered
                // batches cost one group-patching pass instead of N.
                let outcome = self.maintainer.apply(&mut self.dataset, delta);
                self.buffer_rows(outcome.rows);
                let buffered = self.meter.enqueue(self.clock.now_ms());
                self.metrics.record_buffered(buffered);
                if self.meter.cadence_due(self.policy) {
                    self.flush_views()?;
                }
                Ok(outcome.changes)
            }
        }
    }

    /// Buffer an update's row delta for deferred (lazy/bounded) repair.
    fn buffer_rows(&mut self, rows: Option<RowDelta>) {
        let stamp = self.stamp();
        match rows {
            Some(rows) if rows.is_empty() => {}
            Some(rows) => {
                self.windows.observe_churn(&rows);
                self.pending.push(stamp, self.clock.now_ms(), rows);
                let evicted = self.pending.enforce_cap(&self.views, stamp);
                self.metrics.record_pending(self.pending.len(), evicted);
            }
            None => {
                // Unusable delta: every view must fully refresh; buffered
                // rows are superseded.
                self.pending.demand_refresh_all(&self.views, stamp);
                self.metrics.record_pending(self.pending.len(), 0);
            }
        }
    }

    /// Bring every view up to date in one batched pass (the bounded
    /// policy's flush; also callable directly to drain the backend).
    /// Returns the total maintenance time (µs).
    pub(crate) fn flush_views(&mut self) -> Result<u64, SparqlError> {
        let batches = self.meter.buffered();
        let masks: Vec<ViewMask> = self.views.iter().map(|(m, _)| *m).collect();
        let mut total_us = 0;
        for mask in masks {
            total_us += self.sync_view(mask)?;
        }
        self.meter.clear();
        self.metrics.record_flush(
            batches,
            self.clock.now_ms(),
            format!("drained {batches} batches in {total_us} µs"),
        );
        self.metrics.record_pending(self.pending.len(), 0);
        Ok(total_us)
    }

    /// Update batches buffered since the last bounded flush.
    pub(crate) fn batches_since_flush(&self) -> usize {
        self.meter.buffered()
    }

    /// Answer one query, routing through the rewriter; under the lazy
    /// policy a stale routed-to view is repaired first (and the repair's
    /// cost reported on the answer); under the bounded policy an
    /// in-budget view is served as-is and *tagged*. Analyzable queries
    /// feed the sliding workload profile whether or not a view covers
    /// them.
    pub(crate) fn query(&mut self, query: &Query) -> Result<SessionAnswer, SparqlError> {
        let start = std::time::Instant::now();
        let result = self.query_inner(query);
        if let Ok(answer) = &result {
            let route = match answer.route {
                Route::View(view) => Some(view),
                Route::BaseGraph => None,
            };
            self.metrics.record_serve(
                route,
                start.elapsed().as_micros() as u64,
                &answer.freshness,
                self.clock.now_ms(),
            );
        }
        result
    }

    fn query_inner(&mut self, query: &Query) -> Result<SessionAnswer, SparqlError> {
        let planned = match analyze_query(&self.facet, query) {
            Ok(analysis) => {
                self.windows.observe_demand(analysis.required);
                best_view(&self.views, analysis.required)
                    .map(|view| (view, rewrite_query(&self.facet, &analysis, view)))
            }
            Err(_) => None,
        };
        let stamp = self.stamp();
        match planned {
            Some((view, rewritten)) => {
                // Bounded serving: a view within both the batch-lag and
                // wall-clock budgets is served as-is and *tagged*; past
                // either budget it is repaired first, exactly like a lazy
                // hit.
                let (maintenance_us, freshness) = match self.policy {
                    StalenessPolicy::Bounded { .. } => {
                        let lag = self.pending.lag_of(view);
                        let time_lag = self.pending.time_lag_of(view, self.clock.now_ms());
                        if !self.policy.within_budget(lag, time_lag) {
                            (self.sync_view(view)?, Freshness::fresh(stamp))
                        } else {
                            // No shards serially: `lag` (in buffered
                            // row-producing batches) is the staleness
                            // signal; the shard stamp mirrors `epoch`
                            // rather than faking a per-shard claim in
                            // mismatched units.
                            (
                                0,
                                Freshness {
                                    lag,
                                    epoch: stamp,
                                    oldest_shard_epoch: stamp,
                                },
                            )
                        }
                    }
                    _ => (self.sync_view(view)?, Freshness::fresh(stamp)),
                };
                self.view_hits += 1;
                let results = Evaluator::new(&self.dataset).evaluate(&rewritten)?;
                Ok(SessionAnswer {
                    route: Route::View(view),
                    results,
                    maintenance_us,
                    freshness,
                })
            }
            None => {
                self.fallbacks += 1;
                let results = Evaluator::new(&self.dataset).evaluate(query)?;
                // The serial backend's base graph is always current.
                Ok(SessionAnswer {
                    route: Route::BaseGraph,
                    results,
                    maintenance_us: 0,
                    freshness: Freshness::fresh(stamp),
                })
            }
        }
    }

    /// Bring one view up to date if deferred maintenance left it stale.
    fn sync_view(&mut self, view: ViewMask) -> Result<u64, SparqlError> {
        let refresh = self.pending.needs_refresh(view);
        let pending = self.pending.backlog(view);
        let stamp = self.stamp();
        if !refresh && pending.as_ref().is_none_or(RowDelta::is_empty) {
            // Net-zero backlog: consuming it needs no maintenance.
            self.pending.consume(view, stamp, true, &self.views);
            return Ok(0);
        }
        let entry = self
            .views
            .iter_mut()
            .find(|(mask, _)| *mask == view)
            .expect("routed view is in the catalog");
        let rows = if refresh { None } else { pending.as_ref() };
        let result = self
            .maintainer
            .maintain_view(&mut self.dataset, rows, entry);
        // The backlog is consumed either way. Planning is all-or-nothing
        // (an errored pass wrote nothing), but the view is still stale
        // and the error may be deterministic — demanding a full refresh
        // on the next hit keeps a poisoned backlog from wedging the view
        // in an error-retry loop while the pending log grows.
        self.pending
            .consume(view, stamp, result.is_ok(), &self.views);
        if let Err(e) = &result {
            self.metrics.record_maintenance_error(
                self.clock.now_ms(),
                format!("view {:#x} repair failed: {e}", view.0),
            );
        }
        let cost = result?;
        let us = cost.wall_us;
        self.log.per_view.push(cost);
        self.log.total_us += us;
        Ok(us)
    }

    /// Replace the materialized set with `target`, transactionally.
    ///
    /// Views in `target` not yet in the catalog are materialized *first*;
    /// if any materialization fails, the already-written new view graphs
    /// are dropped and the catalog is left exactly as it was. Only once
    /// every new view exists are the retired ones dropped and the catalog
    /// swapped. Kept views carry their maintenance state (cursors,
    /// pending backlog) across the swap; new views are fresh as of now.
    pub(crate) fn swap_views(&mut self, target: &[ViewMask]) -> Result<ViewChurn, SparqlError> {
        let current: Vec<ViewMask> = self.views.iter().map(|(m, _)| *m).collect();
        let plan = super::plan_swap(&current, target);

        // Phase 1: materialize every incoming view; roll back on failure.
        let mut materialized: Vec<(ViewMask, usize)> = Vec::with_capacity(plan.added.len());
        let (materialize_us, result) = measure_once(|| {
            for &mask in &plan.added {
                match materialize_view(&mut self.dataset, &self.facet, mask) {
                    Ok(view) => materialized.push((mask, view.stats.rows)),
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        });
        if let Err(e) = result {
            for &(mask, _) in &materialized {
                drop_view(&mut self.dataset, &self.facet, mask);
            }
            return Err(e);
        }

        // Phase 2: retire outgoing views and install the new catalog in
        // `target` order (kept entries keep their live row counts).
        let (drop_us, ()) = measure_once(|| {
            for &mask in &plan.retired {
                drop_view(&mut self.dataset, &self.facet, mask);
                self.pending.forget(mask);
            }
        });
        let stamp = self.stamp();
        self.views = super::rebuild_catalog(target, &self.views, &materialized);
        for &(mask, _) in &materialized {
            // Materialized from the current base graph: nothing pending.
            self.pending.mark_fresh(mask, stamp);
        }
        self.pending.compact(&self.views);

        Ok(ViewChurn {
            added: plan.added,
            retired: plan.retired,
            kept: plan.kept,
            materialize_us,
            drop_us,
        })
    }

    // -- accessors ---------------------------------------------------------

    pub(crate) fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    pub(crate) fn views(&self) -> &[(ViewMask, usize)] {
        &self.views
    }

    pub(crate) fn policy(&self) -> StalenessPolicy {
        self.policy
    }

    pub(crate) fn maintenance(&self) -> &MaintenanceReport {
        &self.log
    }

    pub(crate) fn routing_counts(&self) -> (usize, usize) {
        (self.view_hits, self.fallbacks)
    }

    pub(crate) fn update_batches(&self) -> usize {
        self.update_batches
    }

    pub(crate) fn stale_views(&self) -> usize {
        self.pending.stale_count(&self.views, u64::MAX)
    }

    pub(crate) fn window_profile(&self) -> WorkloadProfile {
        self.windows.window_profile()
    }

    pub(crate) fn observed_rates(&self) -> UpdateRates {
        self.windows
            .observed_rates((self.facet.dim_count() + 1) as f64)
    }

    pub(crate) fn churn_profile(&self) -> FxHashMap<u64, f64> {
        self.windows.churn_profile()
    }
}

/// The `&self` wrapper the [`crate::engine::Engine`] serves through: a
/// mutex around [`SerialState`], so callers serialize exactly like the
/// pre-epoch architecture.
pub(crate) struct SerialBackend {
    state: Mutex<SerialState>,
}

impl SerialBackend {
    pub(crate) fn new(
        dataset: Dataset,
        facet: Facet,
        views: Vec<(ViewMask, usize)>,
        policy: StalenessPolicy,
        clock: Arc<dyn Clock>,
        metrics: EngineInstruments,
    ) -> SerialBackend {
        SerialBackend {
            state: Mutex::new(SerialState::new(
                dataset, facet, views, policy, clock, metrics,
            )),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SerialState> {
        self.state.lock().expect("serial state lock poisoned")
    }
}

impl ServingBackend for SerialBackend {
    fn update(&self, delta: Delta) -> Result<(), SparqlError> {
        self.lock().update(delta).map(|_| ())
    }

    fn query(&self, query: &Query) -> Result<SessionAnswer, SparqlError> {
        self.lock().query(query)
    }

    fn swap_views(&self, target: &[ViewMask]) -> Result<ViewChurn, SparqlError> {
        self.lock().swap_views(target)
    }

    fn flush(&self) -> Result<u64, SparqlError> {
        self.lock().flush_views()
    }

    fn snapshot(&self) -> Dataset {
        self.lock().dataset().clone()
    }

    fn views(&self) -> Vec<(ViewMask, usize)> {
        self.lock().views().to_vec()
    }

    fn policy(&self) -> StalenessPolicy {
        self.lock().policy()
    }

    fn maintenance(&self) -> MaintenanceReport {
        self.lock().maintenance().clone()
    }

    fn routing_counts(&self) -> (usize, usize) {
        self.lock().routing_counts()
    }

    fn update_batches(&self) -> usize {
        self.lock().update_batches()
    }

    fn stale_views(&self) -> usize {
        self.lock().stale_views()
    }

    fn buffered_updates(&self) -> usize {
        self.lock().batches_since_flush()
    }

    fn epoch(&self) -> u64 {
        self.lock().update_batches() as u64
    }

    fn window_profile(&self) -> WorkloadProfile {
        self.lock().window_profile()
    }

    fn observed_rates(&self) -> UpdateRates {
        self.lock().observed_rates()
    }

    fn churn_profile(&self) -> FxHashMap<u64, f64> {
        self.lock().churn_profile()
    }

    fn pipeline_telemetry(&self) -> Option<PipelineTelemetry> {
        None
    }

    fn now_ms(&self) -> u64 {
        self.lock().clock.now_ms()
    }

    fn backend_name(&self) -> &'static str {
        "serial"
    }
}
