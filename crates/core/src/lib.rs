//! # sofos-core — the SOFOS engine
//!
//! Ties the workspace together into the system of the paper's Figure 2:
//!
//! * the **offline module** ([`offline`]) sizes the facet's view lattice,
//!   builds a cost model (training the learned one on measured view-query
//!   times), runs greedy view selection under a budget, and materializes
//!   the chosen views into the expanded graph `G+`;
//! * the **online module** ([`online`]) answers workload queries — through
//!   the rewriter when a materialized view covers them, from the base graph
//!   otherwise — measuring and optionally validating each answer;
//! * the **engine** ([`engine`]) is the one front door for *living*
//!   graphs: [`Engine`] serves interleaved updates and queries under a
//!   [`StalenessPolicy`], over a pluggable [`Backend`] — [`Backend::Serial`]
//!   (one mutable dataset) or [`Backend::Epoch`] (sharded epoch snapshots,
//!   concurrent readers). Both backends run the *same* policy machinery
//!   ([`policy`]), including wall-clock bounded staleness driven by an
//!   injectable [`Clock`];
//! * the **adaptive layer** ([`adaptive`]) watches the engine's sliding
//!   workload/update profile ([`DriftDetector`]) and re-selects + swaps
//!   the materialized set when it drifts ([`Reselector`]);
//! * the **comparison runner** ([`compare`]) repeats offline+online for
//!   each cost model on identical workloads and tabulates query time vs.
//!   space amplification ([`report`]).
//!
//! ```
//! use sofos_core::{EngineConfig, Sofos};
//! use sofos_cost::CostModelKind;
//! use sofos_workload::dbpedia;
//!
//! let generated = dbpedia::generate(&dbpedia::Config {
//!     countries: 6, years: 2, ..dbpedia::Config::default()
//! });
//! let sofos = Sofos::from_generated(&generated);
//! let mut config = EngineConfig::default();
//! config.workload.num_queries = 5;
//! config.timing_reps = 1;
//! let report = sofos
//!     .compare(&[CostModelKind::Triples, CostModelKind::Nodes], &config)
//!     .unwrap();
//! assert_eq!(report.models.len(), 2);
//! println!("{}", report.to_table());
//! ```
//!
//! ## Observability
//!
//! Every engine carries a [`MetricsHandle`] — a lock-free recording
//! surface for serve latency, freshness lag, maintenance pipeline
//! timings, and epoch lifecycle. Pass one through
//! [`EngineBuilder::metrics`] to share it with an exporter, or read the
//! engine's own via [`Engine::metrics`]:
//!
//! ```
//! use sofos_core::{Engine, MetricsHandle};
//! # use sofos_workload::dbpedia;
//! # let g = dbpedia::generate(&dbpedia::Config {
//! #     countries: 4, years: 2, ..dbpedia::Config::default()
//! # });
//! let engine = Engine::builder()
//!     .dataset(g.dataset)
//!     .facet(g.facets[0].clone())
//!     .metrics(MetricsHandle::new())
//!     .build()
//!     .unwrap();
//! engine.query(&sofos_sparql::parse_query(
//!     "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }").unwrap()).unwrap();
//! let snapshot = engine.metrics().snapshot();
//! println!("{}", snapshot.to_prometheus_text());
//! ```

pub mod adaptive;
pub mod compare;
pub mod config;
pub mod engine;
mod metrics;
pub mod offline;
pub mod online;
pub mod policy;
pub mod report;
pub mod timing;
pub mod validate;

pub use adaptive::{AnytimeBudget, DriftDetector, ReselectionReport, Reselector};
pub use compare::compare_cost_models;
pub use config::EngineConfig;
pub use engine::{
    Backend, Engine, EngineBuildError, EngineBuilder, RecoveryReport, Route, ServingBackend,
    SessionAnswer, ViewChurn,
};
pub use offline::{build_model, run_offline, OfflineOutcome, SizedLattice};
pub use online::{run_online, OnlineOutcome, QueryRecord};
pub use policy::{Clock, Freshness, ManualClock, StalenessPolicy, SystemClock};
pub use report::{render_table, ComparisonReport, ModelRow};
pub use sofos_store::DurabilityConfig;
pub use sofos_telemetry::{Event, EventKind, MetricsHandle, MetricsSnapshot};
pub use timing::{measure_median, measure_once, TimeSummary};
pub use validate::results_equivalent;

use sofos_cost::CostModelKind;
use sofos_cube::Facet;
use sofos_sparql::{Evaluator, QueryResults, SparqlError};
use sofos_store::Dataset;
use sofos_workload::{GeneratedDataset, GeneratedQuery};

/// The SOFOS system: a knowledge graph plus an analytical facet.
///
/// Owns the base graph `G`; [`Sofos::offline`] expands it to `G+` in place,
/// after which [`Sofos::online`] routes queries through the views.
/// [`Sofos::compare`] never mutates the held dataset (it clones per model).
/// [`Sofos::into_engine`] hands the expanded graph to the serving
/// [`Engine`].
#[derive(Debug, Clone)]
pub struct Sofos {
    dataset: Dataset,
    facet: Facet,
}

impl Sofos {
    /// Create a system over a dataset and facet.
    pub fn new(dataset: Dataset, facet: Facet) -> Sofos {
        Sofos { dataset, facet }
    }

    /// Create from a generated demo dataset (uses its default facet).
    pub fn from_generated(generated: &GeneratedDataset) -> Sofos {
        Sofos::new(generated.dataset.clone(), generated.default_facet().clone())
    }

    /// The (possibly expanded) dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The facet.
    pub fn facet(&self) -> &Facet {
        &self.facet
    }

    /// Size the facet's full lattice (demo step ②).
    pub fn size_lattice(&self) -> Result<SizedLattice, SparqlError> {
        SizedLattice::compute(&self.dataset, &self.facet)
    }

    /// Run the offline phase with one cost model, expanding the held
    /// dataset into `G+`. Returns the outcome; the selected views are then
    /// live for [`Sofos::online`].
    pub fn offline(
        &mut self,
        kind: CostModelKind,
        config: &EngineConfig,
    ) -> Result<OfflineOutcome, SparqlError> {
        let sized = SizedLattice::compute(&self.dataset, &self.facet)?;
        let workload =
            sofos_workload::generate_workload(&self.dataset, &self.facet, &config.workload);
        let profile =
            sofos_select::WorkloadProfile::from_masks(workload.iter().map(|q| q.required));
        run_offline(&mut self.dataset, &sized, &profile, kind, config)
    }

    /// Run a workload online against the current dataset with a view
    /// catalog (from [`OfflineOutcome::view_catalog`]).
    pub fn online(
        &self,
        views: &[(sofos_cube::ViewMask, usize)],
        workload: &[GeneratedQuery],
        config: &EngineConfig,
    ) -> Result<OnlineOutcome, SparqlError> {
        run_online(
            &self.dataset,
            &self.facet,
            views,
            workload,
            config.timing_reps,
            config.validate,
        )
    }

    /// Compare cost models on identical workloads (does not mutate the
    /// held dataset).
    pub fn compare(
        &self,
        kinds: &[CostModelKind],
        config: &EngineConfig,
    ) -> Result<ComparisonReport, SparqlError> {
        compare_cost_models("sofos", &self.dataset, &self.facet, kinds, config)
    }

    /// Evaluate an ad-hoc SPARQL query against the current dataset.
    pub fn query(&self, text: &str) -> Result<QueryResults, SparqlError> {
        Evaluator::new(&self.dataset).evaluate_str(text)
    }

    /// Hand the (expanded) graph to a serving [`Engine`] builder, with
    /// dataset and facet pre-filled — the bridge from the offline phase
    /// to live serving.
    pub fn into_engine(self) -> EngineBuilder {
        Engine::builder().dataset(self.dataset).facet(self.facet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_workload::{dbpedia, WorkloadConfig};

    fn small() -> Sofos {
        let g = dbpedia::generate(&dbpedia::Config {
            countries: 8,
            years: 2,
            ..dbpedia::Config::default()
        });
        Sofos::from_generated(&g)
    }

    #[test]
    fn offline_then_online_round_trip() {
        let mut sofos = small();
        let mut config = EngineConfig {
            workload: WorkloadConfig {
                num_queries: 8,
                ..WorkloadConfig::default()
            },
            ..EngineConfig::default()
        };
        config.timing_reps = 1;
        let offline = sofos.offline(CostModelKind::AggValues, &config).unwrap();
        assert_eq!(offline.materialized.len(), 4);

        let workload =
            sofos_workload::generate_workload(sofos.dataset(), sofos.facet(), &config.workload);
        let online = sofos
            .online(&offline.view_catalog(), &workload, &config)
            .unwrap();
        assert!(online.all_valid);
        assert!(online.view_hits > 0);
    }

    #[test]
    fn adhoc_queries_work() {
        let sofos = small();
        let r = sofos
            .query("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }")
            .unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn compare_does_not_mutate() {
        let sofos = small();
        let triples_before = sofos.dataset().total_triples();
        let mut config = EngineConfig::default();
        config.workload.num_queries = 5;
        config.timing_reps = 1;
        let _ = sofos.compare(&[CostModelKind::Triples], &config).unwrap();
        assert_eq!(sofos.dataset().total_triples(), triples_before);
        assert!(sofos.dataset().graph_names().is_empty());
    }

    #[test]
    fn sofos_into_engine_bridges_to_serving() {
        let mut sofos = small();
        let mut config = EngineConfig::default();
        config.workload.num_queries = 5;
        config.timing_reps = 1;
        let offline = sofos.offline(CostModelKind::AggValues, &config).unwrap();
        let catalog = offline.view_catalog();
        let engine = sofos
            .into_engine()
            .catalog(catalog)
            .build()
            .expect("dataset and facet pre-filled");
        assert_eq!(engine.backend_name(), "serial");
        assert_eq!(engine.views().len(), 4);
    }
}
