//! The engine's metric instruments — the bridge between the serving
//! backends and [`sofos_telemetry`].
//!
//! One [`EngineInstruments`] per backend, pre-registering every named
//! instrument with its `backend` label at construction so the hot serve
//! path records through cached `Arc`s (a few relaxed atomic ops) and
//! never touches the registry lock. Per-view route counters are the one
//! dynamic set: they are created on a view's first routing and cached in
//! a small map behind a short mutex.
//!
//! Every recording method early-outs on a disabled
//! [`MetricsHandle`] (see [`MetricsHandle::disabled`]), so an
//! uninstrumented engine pays one branch per call site.
//!
//! Metric names (all `backend`-labelled):
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `sofos_serve_latency_us{route}` | histogram | end-to-end query latency, split view-hit vs fallback |
//! | `sofos_freshness_lag` | histogram | the [`Freshness::lag`] tag of every served answer |
//! | `sofos_route_total{route,view}` | counter | per-view hits and base-graph fallbacks |
//! | `sofos_pending_depth` | gauge | buffered row-delta batches in the [`crate::policy::PendingLog`] |
//! | `sofos_pending_cap_evictions_total` | counter | pending-log entries dropped by cap enforcement |
//! | `sofos_buffered_updates` | gauge | bounded-policy update batches awaiting flush |
//! | `sofos_flushes_total` / `sofos_flushed_batches_total` | counter | flush passes / batches they drained |
//! | `sofos_epochs_published` / `_retired` / `_live` | gauge | the epoch store's snapshot lifecycle |
//! | `sofos_shard_scan_us{shard}` | histogram | per-shard delta-scan wall time |
//! | `sofos_pipeline_{serial,parallel_work,parallel_wall}_us_total` | counter | two-phase pipeline split |
//! | `sofos_maintenance_errors_total` | counter | failed maintenance / repair passes |
//! | `sofos_reselections_total` | counter | adaptive catalog swaps (see [`crate::adaptive`]) |
//! | `sofos_reselect_duration_us` | histogram | end-to-end re-selection pass overhead (sizing + selection + swap) |
//! | `sofos_select_moves_total` | counter | local-search moves tried by anytime re-selection passes |
//! | `sofos_select_restarts_total` | counter | local-search restarts performed by anytime re-selection passes |
//! | `sofos_index_bytes` | gauge | estimated bytes held by bitmap posting lists across all graphs |
//! | `sofos_index_posting_lists` | gauge | live posting lists (per-predicate + per-(predicate, value)) |
//! | `sofos_index_updates_total` | counter | incremental posting-list maintenance operations |
//! | `sofos_persisted_epoch` | gauge | newest epoch covered by the durable log |
//! | `sofos_persist_log_bytes` | gauge | bytes appended to the epoch log since boot |
//! | `sofos_persist_fsyncs` | gauge | fsync calls issued by the persistence layer |
//! | `sofos_persist_snapshots` | gauge | full snapshots written since boot |

use crate::policy::Freshness;
use sofos_cube::ViewMask;
use sofos_maintain::{PipelineTelemetry, ShardScanCost};
use sofos_rdf::FxHashMap;
use sofos_store::{PersistStats, PostingStats};
use sofos_telemetry::{Counter, EventKind, Gauge, Histogram, MetricsHandle};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Pre-registered instruments for one serving backend (see module docs).
pub(crate) struct EngineInstruments {
    handle: MetricsHandle,
    backend: &'static str,
    serve_view_us: Arc<Histogram>,
    serve_fallback_us: Arc<Histogram>,
    freshness_lag: Arc<Histogram>,
    route_fallback: Arc<Counter>,
    route_views: Mutex<FxHashMap<u64, Arc<Counter>>>,
    pending_depth: Arc<Gauge>,
    pending_cap_evictions: Arc<Counter>,
    buffered_updates: Arc<Gauge>,
    flushes: Arc<Counter>,
    flushed_batches: Arc<Counter>,
    epochs_published: Arc<Gauge>,
    epochs_retired: Arc<Gauge>,
    epochs_live: Arc<Gauge>,
    shard_scans: Mutex<FxHashMap<usize, Arc<Histogram>>>,
    pipeline_serial_us: Arc<Counter>,
    pipeline_parallel_work_us: Arc<Counter>,
    pipeline_parallel_wall_us: Arc<Counter>,
    maintenance_errors: Arc<Counter>,
    index_bytes: Arc<Gauge>,
    index_posting_lists: Arc<Gauge>,
    index_updates: Arc<Counter>,
    /// Last posting-list update total pushed to `index_updates` — the
    /// store-side totals sum per-graph counters that can shrink when a
    /// graph is dropped or replaced, so the counter advances by the
    /// saturating diff.
    index_updates_reported: AtomicU64,
    persisted_epoch: Arc<Gauge>,
    persist_log_bytes: Arc<Gauge>,
    persist_fsyncs: Arc<Gauge>,
    persist_snapshots: Arc<Gauge>,
}

impl EngineInstruments {
    /// Register the backend's instrument set on `handle`.
    pub(crate) fn new(handle: MetricsHandle, backend: &'static str) -> EngineInstruments {
        // The adaptive layer's instruments are unlabelled (the Reselector
        // works through the public Engine surface, not a backend), but
        // they are pre-registered here so a `/metrics` scrape exposes
        // them before the first re-selection ever runs.
        register_reselection_instruments(&handle);
        let b = [("backend", backend)];
        let serve_help = "End-to-end serve latency (µs)";
        EngineInstruments {
            serve_view_us: handle.histogram(
                "sofos_serve_latency_us",
                serve_help,
                &[("backend", backend), ("route", "view")],
            ),
            serve_fallback_us: handle.histogram(
                "sofos_serve_latency_us",
                serve_help,
                &[("backend", backend), ("route", "fallback")],
            ),
            freshness_lag: handle.histogram(
                "sofos_freshness_lag",
                "Freshness lag tag of served answers (buffered batches behind latest)",
                &b,
            ),
            route_fallback: handle.counter(
                "sofos_route_total",
                "Queries routed per destination",
                &[("backend", backend), ("route", "fallback")],
            ),
            route_views: Mutex::new(FxHashMap::default()),
            pending_depth: handle.gauge(
                "sofos_pending_depth",
                "Buffered row-delta batches awaiting deferred maintenance",
                &b,
            ),
            pending_cap_evictions: handle.counter(
                "sofos_pending_cap_evictions_total",
                "Pending-log entries dropped by cap enforcement",
                &b,
            ),
            buffered_updates: handle.gauge(
                "sofos_buffered_updates",
                "Bounded-policy update batches buffered and not yet flushed",
                &b,
            ),
            flushes: handle.counter("sofos_flushes_total", "Flush passes", &b),
            flushed_batches: handle.counter(
                "sofos_flushed_batches_total",
                "Buffered update batches drained by flushes",
                &b,
            ),
            epochs_published: handle.gauge(
                "sofos_epochs_published",
                "Epoch snapshots published since construction",
                &b,
            ),
            epochs_retired: handle.gauge(
                "sofos_epochs_retired",
                "Epoch snapshots fully retired (no pins, superseded)",
                &b,
            ),
            epochs_live: handle.gauge(
                "sofos_epochs_live",
                "Epoch snapshots currently retained (published - retired)",
                &b,
            ),
            shard_scans: Mutex::new(FxHashMap::default()),
            pipeline_serial_us: handle.counter(
                "sofos_pipeline_serial_us_total",
                "Two-phase pipeline: serial spine wall time (µs)",
                &b,
            ),
            pipeline_parallel_work_us: handle.counter(
                "sofos_pipeline_parallel_work_us_total",
                "Two-phase pipeline: summed parallel work (µs)",
                &b,
            ),
            pipeline_parallel_wall_us: handle.counter(
                "sofos_pipeline_parallel_wall_us_total",
                "Two-phase pipeline: parallel phase wall time (µs)",
                &b,
            ),
            maintenance_errors: handle.counter(
                "sofos_maintenance_errors_total",
                "Failed maintenance or repair passes",
                &b,
            ),
            index_bytes: handle.gauge(
                "sofos_index_bytes",
                "Estimated bytes held by bitmap posting lists across all graphs",
                &b,
            ),
            index_posting_lists: handle.gauge(
                "sofos_index_posting_lists",
                "Live posting lists (per-predicate plus per-(predicate, value))",
                &b,
            ),
            index_updates: handle.counter(
                "sofos_index_updates_total",
                "Incremental posting-list maintenance operations",
                &b,
            ),
            index_updates_reported: AtomicU64::new(0),
            persisted_epoch: handle.gauge(
                "sofos_persisted_epoch",
                "Newest epoch covered by the durable log",
                &b,
            ),
            persist_log_bytes: handle.gauge(
                "sofos_persist_log_bytes",
                "Bytes appended to the epoch log since boot",
                &b,
            ),
            persist_fsyncs: handle.gauge(
                "sofos_persist_fsyncs",
                "Fsync calls issued by the persistence layer",
                &b,
            ),
            persist_snapshots: handle.gauge(
                "sofos_persist_snapshots",
                "Full snapshots written since boot",
                &b,
            ),
            backend,
            handle,
        }
    }

    /// One served answer: latency split by route, the freshness-lag tag,
    /// per-view routing counts, and a slow-query event past the handle's
    /// threshold.
    pub(crate) fn record_serve(
        &self,
        route: Option<ViewMask>,
        latency_us: u64,
        freshness: &Freshness,
        now_ms: u64,
    ) {
        if !self.handle.is_enabled() {
            return;
        }
        match route {
            Some(view) => {
                self.serve_view_us.record(latency_us);
                self.route_counter(view).inc();
            }
            None => {
                self.serve_fallback_us.record(latency_us);
                self.route_fallback.inc();
            }
        }
        self.freshness_lag.record(freshness.lag);
        if latency_us > self.handle.slow_query_threshold_us() {
            let dest = match route {
                Some(view) => format!("view {:#x}", view.0),
                None => "base graph".to_string(),
            };
            self.handle.event(
                now_ms,
                EventKind::SlowQuery,
                format!("{} µs via {dest} (lag {})", latency_us, freshness.lag),
            );
        }
    }

    fn route_counter(&self, view: ViewMask) -> Arc<Counter> {
        let mut cached = self.route_views.lock().expect("route counters poisoned");
        Arc::clone(cached.entry(view.0).or_insert_with(|| {
            self.handle.counter(
                "sofos_route_total",
                "Queries routed per destination",
                &[
                    ("backend", self.backend),
                    ("route", "view"),
                    ("view", &format!("{:#x}", view.0)),
                ],
            )
        }))
    }

    /// Pending-log movement: current depth plus entries evicted by cap
    /// enforcement since the last call.
    pub(crate) fn record_pending(&self, depth: usize, evicted: usize) {
        if !self.handle.is_enabled() {
            return;
        }
        self.pending_depth.set(depth as u64);
        if evicted > 0 {
            self.pending_cap_evictions.add(evicted as u64);
        }
    }

    /// Bounded-policy buffer depth (batches awaiting the next flush).
    pub(crate) fn record_buffered(&self, buffered: usize) {
        if self.handle.is_enabled() {
            self.buffered_updates.set(buffered as u64);
        }
    }

    /// One flush pass that drained `batches` buffered batches.
    pub(crate) fn record_flush(&self, batches: usize, now_ms: u64, detail: impl Into<String>) {
        if !self.handle.is_enabled() {
            return;
        }
        self.flushes.inc();
        self.flushed_batches.add(batches as u64);
        self.buffered_updates.set(0);
        self.handle.event(now_ms, EventKind::Flush, detail);
    }

    /// The epoch store's snapshot lifecycle after a publish (or pin
    /// drop): published / retired / live counts.
    pub(crate) fn record_epoch_lifecycle(&self, published: u64, retired: u64, live: u64) {
        if !self.handle.is_enabled() {
            return;
        }
        self.epochs_published.set(published);
        self.epochs_retired.set(retired);
        self.epochs_live.set(live);
    }

    /// An epoch-publish event (the batched flush publishing `epoch`).
    pub(crate) fn record_epoch_publish(&self, epoch: u64, now_ms: u64) {
        self.handle.event(
            now_ms,
            EventKind::EpochPublish,
            format!("epoch {epoch} published"),
        );
    }

    /// Fold one pipeline split (sharded apply or pipelined maintenance)
    /// into the phase-timing counters.
    pub(crate) fn record_pipeline(&self, telemetry: &PipelineTelemetry) {
        if !self.handle.is_enabled() {
            return;
        }
        self.pipeline_serial_us.add(telemetry.serial_us);
        self.pipeline_parallel_work_us
            .add(telemetry.parallel_work_us);
        self.pipeline_parallel_wall_us
            .add(telemetry.parallel_wall_us);
    }

    /// Per-shard scan wall times from one sharded apply.
    pub(crate) fn record_shard_scans(&self, costs: &[ShardScanCost]) {
        if !self.handle.is_enabled() || costs.is_empty() {
            return;
        }
        let mut cached = self.shard_scans.lock().expect("shard scans poisoned");
        for cost in costs {
            let hist = cached.entry(cost.shard).or_insert_with(|| {
                self.handle.histogram(
                    "sofos_shard_scan_us",
                    "Per-shard delta-scan wall time (µs)",
                    &[
                        ("backend", self.backend),
                        ("shard", &cost.shard.to_string()),
                    ],
                )
            });
            hist.record(cost.wall_us);
        }
    }

    /// The persistence layer's cumulative counters (durable engines only).
    pub(crate) fn record_persist(&self, stats: &PersistStats) {
        if !self.handle.is_enabled() {
            return;
        }
        self.persisted_epoch.set(stats.persisted_epoch);
        self.persist_log_bytes.set(stats.log_bytes);
        self.persist_fsyncs.set(stats.fsyncs);
        self.persist_snapshots.set(stats.snapshots);
    }

    /// Whether the underlying handle records anything — callers gate
    /// stat *computation* (not just recording) on this when gathering
    /// the inputs has a cost of its own.
    pub(crate) fn enabled(&self) -> bool {
        self.handle.is_enabled()
    }

    /// The dataset's aggregated posting-list footprint. The update total
    /// is pushed as a monotone counter via a saturating diff against the
    /// last reported value (per-graph counters vanish with their graph,
    /// so the raw sum is not monotone).
    pub(crate) fn record_index(&self, stats: &PostingStats) {
        if !self.handle.is_enabled() {
            return;
        }
        self.index_bytes.set(stats.bytes as u64);
        self.index_posting_lists.set(stats.posting_lists as u64);
        let last = self
            .index_updates_reported
            .swap(stats.updates, Ordering::Relaxed);
        self.index_updates.add(stats.updates.saturating_sub(last));
    }

    /// A failed maintenance or repair pass.
    pub(crate) fn record_maintenance_error(&self, now_ms: u64, detail: impl Into<String>) {
        if !self.handle.is_enabled() {
            return;
        }
        self.maintenance_errors.inc();
        self.handle
            .event(now_ms, EventKind::MaintenanceError, detail);
    }
}

/// The adaptive layer's instrument set: `(reselections, duration
/// histogram, moves, restarts)`. Get-or-create by (name, labels), so the
/// pre-registration in [`EngineInstruments::new`] and the record path in
/// [`record_reselection`] resolve to the same instruments.
type ReselectionInstruments = (Arc<Counter>, Arc<Histogram>, Arc<Counter>, Arc<Counter>);

fn register_reselection_instruments(handle: &MetricsHandle) -> ReselectionInstruments {
    (
        handle.counter(
            "sofos_reselections_total",
            "Adaptive catalog re-selections applied",
            &[],
        ),
        handle.histogram(
            "sofos_reselect_duration_us",
            "Re-selection pass overhead (sizing + selection + swap, µs)",
            &[],
        ),
        handle.counter(
            "sofos_select_moves_total",
            "Local-search moves tried by anytime re-selection passes",
            &[],
        ),
        handle.counter(
            "sofos_select_restarts_total",
            "Local-search restarts performed by anytime re-selection passes",
            &[],
        ),
    )
}

/// Record one adaptive re-selection on `handle` (called by
/// [`crate::adaptive::Reselector`], which works through the public
/// [`crate::engine::Engine`] surface rather than a backend's
/// instruments). `moves` / `restarts` are zero for greedy passes and the
/// [`sofos_select::SearchReport`] counts for anytime passes.
pub(crate) fn record_reselection(
    handle: &MetricsHandle,
    now_ms: u64,
    duration_us: u64,
    moves: u64,
    restarts: u64,
    detail: impl Into<String>,
) {
    if !handle.is_enabled() {
        return;
    }
    let (reselections, duration, select_moves, select_restarts) =
        register_reselection_instruments(handle);
    reselections.inc();
    duration.record(duration_us);
    select_moves.add(moves);
    select_restarts.add(restarts);
    handle.event(now_ms, EventKind::Reselection, detail);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_register_and_record() {
        let handle = MetricsHandle::new();
        let m = EngineInstruments::new(handle.clone(), "serial");
        m.record_serve(Some(ViewMask(3)), 120, &Freshness::fresh(1), 5);
        m.record_serve(None, 40, &Freshness::fresh(1), 6);
        m.record_pending(4, 2);
        m.record_flush(3, 7, "drained 3");
        let snap = handle.snapshot();
        assert_eq!(
            snap.counter_value(
                "sofos_route_total",
                &[("backend", "serial"), ("route", "fallback")]
            ),
            Some(1)
        );
        assert_eq!(
            snap.counter_value(
                "sofos_route_total",
                &[("backend", "serial"), ("route", "view"), ("view", "0x3")]
            ),
            Some(1)
        );
        assert_eq!(
            snap.gauge_value("sofos_pending_depth", &[("backend", "serial")]),
            Some(4)
        );
        assert_eq!(
            snap.counter_value(
                "sofos_pending_cap_evictions_total",
                &[("backend", "serial")]
            ),
            Some(2)
        );
        assert_eq!(snap.events.len(), 1, "flush event recorded");
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let handle = MetricsHandle::disabled();
        let m = EngineInstruments::new(handle.clone(), "epoch");
        m.record_serve(Some(ViewMask(1)), 1_000_000, &Freshness::fresh(0), 1);
        m.record_flush(5, 2, "ignored");
        let snap = handle.snapshot();
        assert_eq!(
            snap.counter_value("sofos_flushes_total", &[("backend", "epoch")]),
            Some(0)
        );
        assert!(snap.events.is_empty());
    }
}
