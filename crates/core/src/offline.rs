//! The offline module: lattice sizing, cost-model construction, view
//! selection, and materialization (Figure 2 ①).

use crate::config::EngineConfig;
use crate::timing::{measure_median, measure_once};
use sofos_cost::{
    build_static_model, CostContext, CostModel, CostModelKind, LearnedCostModel, UserDefinedCost,
};
use sofos_cube::{Facet, Lattice, ViewMask};
use sofos_materialize::{materialize_views, MaterializedView, ViewStats};
use sofos_rdf::FxHashMap;
use sofos_select::{greedy_select, Budget, SelectionOutcome, WorkloadProfile};
use sofos_sparql::SparqlError;
use sofos_store::{Dataset, GraphStats};

/// The sized lattice: per-view stats plus the measured view-query times
/// (free training data for the learned model) and base-graph statistics.
#[derive(Debug, Clone)]
pub struct SizedLattice {
    /// The lattice itself.
    pub lattice: Lattice,
    /// Per-view sizing (rows/triples/nodes/bytes).
    pub stats: FxHashMap<ViewMask, ViewStats>,
    /// Measured evaluation time of each view query (µs).
    pub timings_us: FxHashMap<ViewMask, u64>,
    /// Base-graph statistics.
    pub base_stats: GraphStats,
    /// Wall time of the whole sizing pass (µs).
    pub sizing_us: u64,
}

impl SizedLattice {
    /// Evaluate and size every view of the facet's lattice, timing each
    /// view query (demo step "Exploration of the Full Lattice").
    pub fn compute(dataset: &Dataset, facet: &Facet) -> Result<SizedLattice, SparqlError> {
        let lattice = Lattice::new(facet.clone());
        let (sizing_us, result) = measure_once(|| {
            let mut stats = FxHashMap::default();
            let mut timings = FxHashMap::default();
            for mask in lattice.views() {
                let (us, view_stats) = measure_once(|| {
                    sofos_materialize::virtual_view_stats(dataset, lattice.facet(), mask)
                });
                stats.insert(mask, view_stats?);
                timings.insert(mask, us);
            }
            Ok::<_, SparqlError>((stats, timings))
        });
        let (stats, timings_us) = result?;
        // The dataset keeps base-graph statistics incrementally maintained
        // through every mutation path — no recomputation pass needed.
        let base_stats = dataset.base_stats();
        Ok(SizedLattice {
            lattice,
            stats,
            timings_us,
            base_stats,
            sizing_us,
        })
    }

    /// A cost context over this sizing.
    pub fn context(&self) -> CostContext<'_> {
        CostContext {
            facet: self.lattice.facet(),
            view_stats: &self.stats,
            base: &self.base_stats,
        }
    }

    /// Incremental re-sizing: a copy of this sizing with every per-view
    /// estimate (rows, triples, nodes, bytes — and the measured timings
    /// the learned model trains on) scaled by the base graph's growth
    /// since this sizing was computed, anchored on `live` statistics.
    ///
    /// Costs O(2^d) multiplications instead of O(2^d) query evaluations —
    /// the overhead that made frequent re-selection uneconomical. The
    /// scaling is uniform: it tracks the graph's *size*, and relies on
    /// roughly shape-preserving growth for the per-view ratios (which is
    /// what selection ranks by). Recompute from scratch when the value
    /// distribution itself shifts.
    pub fn refreshed(&self, live: &GraphStats) -> SizedLattice {
        let growth = if self.base_stats.triples > 0 {
            live.triples as f64 / self.base_stats.triples as f64
        } else if live.triples > 0 {
            live.triples as f64
        } else {
            1.0
        };
        let scale = |n: usize| -> usize { (n as f64 * growth).round() as usize };
        let stats = self
            .stats
            .iter()
            .map(|(&mask, s)| {
                (
                    mask,
                    ViewStats {
                        facet_id: s.facet_id.clone(),
                        mask: s.mask,
                        rows: scale(s.rows),
                        triples: scale(s.triples),
                        nodes: scale(s.nodes),
                        bytes: scale(s.bytes),
                    },
                )
            })
            .collect();
        let timings_us = self
            .timings_us
            .iter()
            .map(|(&mask, &us)| (mask, (us as f64 * growth).round() as u64))
            .collect();
        SizedLattice {
            lattice: self.lattice.clone(),
            stats,
            timings_us,
            base_stats: live.clone(),
            sizing_us: self.sizing_us,
        }
    }
}

/// Result of the offline phase for one cost model.
#[derive(Debug)]
pub struct OfflineOutcome {
    /// Cost model name.
    pub model: String,
    /// Selection result (views + estimated costs).
    pub selection: SelectionOutcome,
    /// Learned-model training history (per-epoch MSE), if applicable.
    pub training_history: Option<Vec<f64>>,
    /// Wall time of model preparation/training (µs).
    pub training_us: u64,
    /// Wall time of the selection algorithm (µs).
    pub selection_us: u64,
    /// Wall time of materialization (µs).
    pub materialization_us: u64,
    /// The materialized views (stats + graph IRIs).
    pub materialized: Vec<MaterializedView>,
    /// Dataset bytes before materialization.
    pub base_bytes: usize,
    /// Dataset bytes after materialization.
    pub expanded_bytes: usize,
}

impl OfflineOutcome {
    /// `expanded / base` — the demo's "space amplification".
    pub fn storage_amplification(&self) -> f64 {
        if self.base_bytes == 0 {
            return 1.0;
        }
        self.expanded_bytes as f64 / self.base_bytes as f64
    }

    /// Selected masks paired with their materialized row counts, the shape
    /// the rewriter's `best_view` expects.
    pub fn view_catalog(&self) -> Vec<(ViewMask, usize)> {
        self.materialized
            .iter()
            .map(|v| (v.stats.mask, v.stats.rows))
            .collect()
    }
}

/// Build the cost model for a kind; `Learned` is trained on the sizing
/// pass's measured view-query times, `UserDefined` prefers the configured
/// views (or the finest `k` as a default naive user).
pub fn build_model(
    kind: CostModelKind,
    sized: &SizedLattice,
    config: &EngineConfig,
) -> (Box<dyn CostModel>, Option<Vec<f64>>, u64) {
    match kind {
        CostModelKind::Learned => {
            let ctx = sized.context();
            let samples: Vec<(ViewMask, f64)> = sized
                .timings_us
                .iter()
                .map(|(&mask, &us)| (mask, us as f64))
                .collect();
            let mut model = LearnedCostModel::new(sized.lattice.facet(), config.seed);
            let (training_us, history) = measure_once(|| model.fit(&ctx, &samples, config.train));
            (Box::new(model), Some(history), training_us)
        }
        CostModelKind::UserDefined => {
            let views = if config.user_views.is_empty() {
                default_user_views(&sized.lattice, config.budget)
            } else {
                config.user_views.clone()
            };
            (Box::new(UserDefinedCost::preferring(views)), None, 0)
        }
        other => {
            let model = build_static_model(other, config.seed)
                .expect("static kinds are Random/Triples/AggValues/Nodes");
            (model, None, 0)
        }
    }
}

/// The "naive user" default: pick the finest views first (highest level,
/// then larger mask) up to the view budget.
fn default_user_views(lattice: &Lattice, budget: Budget) -> Vec<ViewMask> {
    let k = match budget {
        Budget::Views(k) => k,
        Budget::Bytes(_) => lattice.num_views() as usize,
    };
    let mut views: Vec<ViewMask> = lattice.views().collect();
    views.sort_by_key(|v| (std::cmp::Reverse(v.dim_count()), std::cmp::Reverse(v.0)));
    views.truncate(k);
    views
}

/// Run the full offline phase for one cost model: build → select →
/// materialize into `dataset` (which becomes `G+`).
pub fn run_offline(
    dataset: &mut Dataset,
    sized: &SizedLattice,
    profile: &WorkloadProfile,
    kind: CostModelKind,
    config: &EngineConfig,
) -> Result<OfflineOutcome, SparqlError> {
    let (model, training_history, training_us) = build_model(kind, sized, config);
    let ctx = sized.context();

    let (selection_us, selection) = measure_median(1, || {
        greedy_select(&ctx, &sized.lattice, model.as_ref(), profile, config.budget)
    });

    let base_bytes = dataset.estimated_bytes();
    let facet = sized.lattice.facet().clone();
    let (materialization_us, materialized) =
        measure_once(|| materialize_views(dataset, &facet, &selection.selected));
    let materialized = materialized?;
    let expanded_bytes = dataset.estimated_bytes();

    Ok(OfflineOutcome {
        model: kind.name().to_string(),
        selection,
        training_history,
        training_us,
        selection_us,
        materialization_us,
        materialized,
        base_bytes,
        expanded_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_workload::dbpedia;

    fn setup() -> (Dataset, Facet) {
        let g = dbpedia::generate(&dbpedia::Config {
            countries: 10,
            years: 3,
            ..dbpedia::Config::default()
        });
        (g.dataset, g.facets[0].clone())
    }

    #[test]
    fn sizing_covers_lattice_and_times_views() {
        let (ds, facet) = setup();
        let sized = SizedLattice::compute(&ds, &facet).unwrap();
        assert_eq!(sized.stats.len() as u64, sized.lattice.num_views());
        assert_eq!(sized.timings_us.len(), sized.stats.len());
        assert!(sized.sizing_us > 0);
        assert!(sized.base_stats.triples > 0);
    }

    #[test]
    fn sizing_refresh_scales_with_live_growth() {
        let (ds, facet) = setup();
        let sized = SizedLattice::compute(&ds, &facet).unwrap();

        // Simulate the base graph doubling since the sizing was cached.
        let mut live = sized.base_stats.clone();
        live.triples *= 2;
        let refreshed = sized.refreshed(&live);
        assert_eq!(refreshed.base_stats.triples, live.triples);
        for (mask, stats) in &sized.stats {
            let scaled = &refreshed.stats[mask];
            assert_eq!(scaled.rows, stats.rows * 2, "{mask}");
            assert_eq!(scaled.triples, stats.triples * 2, "{mask}");
            assert_eq!(scaled.bytes, stats.bytes * 2, "{mask}");
        }
        for (mask, us) in &sized.timings_us {
            assert_eq!(refreshed.timings_us[mask], us * 2);
        }

        // No growth = identical estimates; shrinkage scales down.
        let same = sized.refreshed(&sized.base_stats);
        assert_eq!(same.stats, sized.stats);
        let mut shrunk = sized.base_stats.clone();
        shrunk.triples /= 2;
        let smaller = sized.refreshed(&shrunk);
        let base = sized.lattice.base();
        assert!(smaller.stats[&base].rows < sized.stats[&base].rows);
    }

    #[test]
    fn offline_with_each_static_model() {
        let (ds, facet) = setup();
        let sized = SizedLattice::compute(&ds, &facet).unwrap();
        let profile = WorkloadProfile::uniform(&sized.lattice);
        let config = EngineConfig::default();
        for kind in [
            CostModelKind::Random,
            CostModelKind::Triples,
            CostModelKind::AggValues,
            CostModelKind::Nodes,
            CostModelKind::UserDefined,
        ] {
            let mut expanded = ds.clone();
            let outcome = run_offline(&mut expanded, &sized, &profile, kind, &config).unwrap();
            assert_eq!(outcome.selection.selected.len(), 4, "{kind}");
            assert_eq!(outcome.materialized.len(), 4);
            assert!(outcome.expanded_bytes > outcome.base_bytes);
            assert!(outcome.storage_amplification() > 1.0);
            assert_eq!(expanded.graph_names().len(), 4, "one graph per view");
        }
    }

    #[test]
    fn learned_model_trains_during_offline() {
        let (ds, facet) = setup();
        let sized = SizedLattice::compute(&ds, &facet).unwrap();
        let profile = WorkloadProfile::uniform(&sized.lattice);
        let mut config = EngineConfig::default();
        config.train.epochs = 30; // keep the test fast
        let mut expanded = ds.clone();
        let outcome = run_offline(
            &mut expanded,
            &sized,
            &profile,
            CostModelKind::Learned,
            &config,
        )
        .unwrap();
        let history = outcome.training_history.expect("learned model trains");
        assert_eq!(history.len(), 30);
        assert!(outcome.training_us > 0);
    }

    #[test]
    fn user_defined_defaults_to_finest_views() {
        let (ds, facet) = setup();
        let sized = SizedLattice::compute(&ds, &facet).unwrap();
        let views = default_user_views(&sized.lattice, Budget::Views(3));
        assert_eq!(views.len(), 3);
        assert_eq!(views[0], sized.lattice.base(), "finest first");
        assert!(views[1].dim_count() >= views[2].dim_count());
    }

    #[test]
    fn view_catalog_matches_materialization() {
        let (ds, facet) = setup();
        let sized = SizedLattice::compute(&ds, &facet).unwrap();
        let profile = WorkloadProfile::uniform(&sized.lattice);
        let config = EngineConfig::default();
        let mut expanded = ds.clone();
        let outcome = run_offline(
            &mut expanded,
            &sized,
            &profile,
            CostModelKind::Triples,
            &config,
        )
        .unwrap();
        let catalog = outcome.view_catalog();
        assert_eq!(catalog.len(), outcome.selection.selected.len());
        for ((mask, rows), view) in catalog.iter().zip(&outcome.materialized) {
            assert_eq!(*mask, view.stats.mask);
            assert_eq!(*rows, view.stats.rows);
        }
    }
}
