//! The online module: query routing, measurement, and validation
//! (Figure 2 ②) — plus the interleaved update/query [`Session`].
//!
//! Each workload query is analyzed by the rewriter; if a materialized view
//! covers it, the rewritten query runs against `G+`, otherwise the original
//! query runs against the base graph ("or accesses the graph G if none of
//! the views can be used", §3). Every execution is timed (median of reps)
//! and optionally validated against the base-graph answer.
//!
//! [`run_online`] serves the frozen-graph experiments. [`Session`] is the
//! living-graph mode: update batches ([`sofos_store::Delta`]) interleave
//! with queries, and a configurable [`StalenessPolicy`] decides *when* the
//! `sofos-maintain` engine brings materialized views back in sync.

use crate::timing::{measure_median, TimeSummary};
use crate::validate::results_equivalent;
use sofos_cube::{Facet, ViewMask};
use sofos_maintain::{Maintainer, MaintenanceReport, RowDelta};
use sofos_materialize::drop_view;
use sofos_rdf::{FxHashMap, FxHashSet};
use sofos_rewrite::plan_rewrite;
use sofos_sparql::{Evaluator, Query, QueryResults, SparqlError};
use sofos_store::{ChangeSet, Dataset, Delta};
use sofos_workload::GeneratedQuery;

/// Where a query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Rewritten against a materialized view.
    View(ViewMask),
    /// Fell back to the base graph.
    BaseGraph,
}

/// Measurement record for one workload query.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Index in the workload.
    pub index: usize,
    /// SPARQL text of the original query.
    pub text: String,
    /// Aggregate keyword.
    pub agg: String,
    /// Grouping mask.
    pub group_mask: ViewMask,
    /// Required mask (grouping ∪ filters).
    pub required: ViewMask,
    /// Routing decision.
    pub route: Route,
    /// Median execution time (µs).
    pub time_us: u64,
    /// Result rows returned.
    pub rows: usize,
    /// `Some(true/false)` when validated against the base graph.
    pub valid: Option<bool>,
}

/// The online phase's aggregate outcome.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// Per-query records, in workload order.
    pub records: Vec<QueryRecord>,
    /// Latency summary over all queries.
    pub summary: TimeSummary,
    /// Queries answered from views.
    pub view_hits: usize,
    /// Queries that fell back to the base graph.
    pub fallbacks: usize,
    /// All validated queries matched the base answer (vacuously true when
    /// validation is off).
    pub all_valid: bool,
}

/// Execute a workload against an expanded dataset with a view catalog.
///
/// `views` pairs each materialized mask with its row count (see
/// [`sofos_rewrite::best_view`]); pass an empty slice to force every query
/// to the base graph (the no-views baseline).
pub fn run_online(
    dataset: &Dataset,
    facet: &Facet,
    views: &[(ViewMask, usize)],
    workload: &[GeneratedQuery],
    timing_reps: usize,
    validate: bool,
) -> Result<OnlineOutcome, SparqlError> {
    let evaluator = Evaluator::new(dataset);
    let mut records = Vec::with_capacity(workload.len());
    let mut samples = Vec::with_capacity(workload.len());
    let mut view_hits = 0usize;
    let mut fallbacks = 0usize;
    let mut all_valid = true;

    for (index, generated) in workload.iter().enumerate() {
        let (route, time_us, results) = match plan_rewrite(facet, views, &generated.query) {
            Ok((view, rewritten)) => {
                let (us, results) = measure_median(timing_reps, || evaluator.evaluate(&rewritten));
                (Route::View(view), us, results?)
            }
            Err(_) => {
                let (us, results) =
                    measure_median(timing_reps, || evaluator.evaluate(&generated.query));
                (Route::BaseGraph, us, results?)
            }
        };
        match route {
            Route::View(_) => view_hits += 1,
            Route::BaseGraph => fallbacks += 1,
        }

        let valid = if validate && matches!(route, Route::View(_)) {
            let reference = evaluator.evaluate(&generated.query)?;
            let ok = results_equivalent(&results, &reference);
            all_valid &= ok;
            Some(ok)
        } else {
            None
        };

        samples.push(time_us);
        records.push(QueryRecord {
            index,
            text: generated.text.clone(),
            agg: generated.agg.keyword().to_string(),
            group_mask: generated.group_mask,
            required: generated.required,
            route,
            time_us,
            rows: results.len(),
            valid,
        });
    }

    Ok(OnlineOutcome {
        summary: TimeSummary::from_samples(&samples),
        records,
        view_hits,
        fallbacks,
        all_valid,
    })
}

/// When a [`Session`] repairs materialized views after updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StalenessPolicy {
    /// Maintain every view inside the update call: queries always see
    /// fresh views; updates pay the full maintenance bill.
    Eager,
    /// Buffer row deltas per view; a view is repaired only when the
    /// rewriter routes a query to it. Updates are cheap, the first hit on
    /// a stale view pays its backlog.
    LazyOnHit,
    /// Drop every materialized view on the first update: all subsequent
    /// queries fall back to the base graph (zero maintenance, full
    /// benefit loss) — the paper's implicit baseline.
    Invalidate,
}

impl StalenessPolicy {
    /// All policies (for sweeps).
    pub const ALL: [StalenessPolicy; 3] = [
        StalenessPolicy::Eager,
        StalenessPolicy::LazyOnHit,
        StalenessPolicy::Invalidate,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            StalenessPolicy::Eager => "eager",
            StalenessPolicy::LazyOnHit => "lazy-on-hit",
            StalenessPolicy::Invalidate => "invalidate",
        }
    }
}

impl std::fmt::Display for StalenessPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One query's answer inside a session.
#[derive(Debug, Clone)]
pub struct SessionAnswer {
    /// Where the query was answered.
    pub route: Route,
    /// The results.
    pub results: QueryResults,
    /// Maintenance time this query triggered (lazy repairs), µs.
    pub maintenance_us: u64,
}

/// The interleaved update/query mode over a living `G+`.
///
/// Owns the expanded dataset and the view catalog produced by the offline
/// phase. [`Session::update`] applies a [`Delta`] through the store's
/// transactional write path; [`Session::query`] routes through the
/// rewriter exactly like [`run_online`]. Between them, the configured
/// [`StalenessPolicy`] decides when `sofos-maintain` runs, and every
/// maintenance pass is appended to an accumulated [`MaintenanceReport`]
/// so experiments can price update handling against query speedups.
pub struct Session {
    dataset: Dataset,
    facet: Facet,
    maintainer: Maintainer,
    views: Vec<(ViewMask, usize)>,
    policy: StalenessPolicy,
    /// Buffered row deltas under the lazy policy: one entry per update
    /// batch, shared by every view (a single copy, not one per view).
    pending_log: std::collections::VecDeque<RowDelta>,
    /// Log entries dropped by compaction; `pending_offset + pending_log
    /// .len()` is the absolute index of the next batch.
    pending_offset: usize,
    /// Per-view absolute index into the log: everything before it has
    /// been applied to that view.
    cursor: FxHashMap<u64, usize>,
    /// Views whose buffered delta is unusable (non-star facet): they need
    /// a full refresh on their next hit.
    needs_refresh: FxHashSet<u64>,
    /// Accumulated maintenance log.
    log: MaintenanceReport,
    update_batches: usize,
    view_hits: usize,
    fallbacks: usize,
}

impl Session {
    /// Open a session over an expanded dataset and its view catalog
    /// (pairs of mask and row count, as produced by
    /// [`crate::offline::OfflineOutcome::view_catalog`]).
    pub fn new(
        dataset: Dataset,
        facet: Facet,
        views: Vec<(ViewMask, usize)>,
        policy: StalenessPolicy,
    ) -> Session {
        Session {
            maintainer: Maintainer::new(&facet),
            dataset,
            facet,
            views,
            policy,
            pending_log: std::collections::VecDeque::new(),
            pending_offset: 0,
            cursor: FxHashMap::default(),
            needs_refresh: FxHashSet::default(),
            log: MaintenanceReport::default(),
            update_batches: 0,
            view_hits: 0,
            fallbacks: 0,
        }
    }

    /// Apply an update batch under the session's staleness policy.
    pub fn update(&mut self, delta: Delta) -> Result<ChangeSet, SparqlError> {
        self.update_batches += 1;
        match self.policy {
            StalenessPolicy::Invalidate => {
                for &(mask, _) in &self.views {
                    drop_view(&mut self.dataset, &self.facet, mask);
                }
                self.views.clear();
                Ok(self.dataset.apply(delta))
            }
            StalenessPolicy::Eager => {
                let (changes, report) = self.maintainer.apply_and_maintain(
                    &mut self.dataset,
                    delta,
                    &mut self.views,
                )?;
                self.log.absorb(report);
                Ok(changes)
            }
            StalenessPolicy::LazyOnHit => {
                let outcome = self.maintainer.apply(&mut self.dataset, delta);
                match outcome.rows {
                    Some(rows) if rows.is_empty() => {}
                    Some(rows) => {
                        self.pending_log.push_back(rows);
                        self.enforce_log_cap();
                    }
                    None => {
                        // Unusable delta: every view must fully refresh;
                        // buffered rows are superseded.
                        for &(mask, _) in &self.views {
                            self.needs_refresh.insert(mask.0);
                            self.cursor.insert(mask.0, self.log_end());
                        }
                        self.compact_pending();
                    }
                }
                Ok(outcome.changes)
            }
        }
    }

    /// Answer one query, routing through the rewriter; under the lazy
    /// policy a stale routed-to view is repaired first (and the repair's
    /// cost reported on the answer).
    pub fn query(&mut self, query: &Query) -> Result<SessionAnswer, SparqlError> {
        match plan_rewrite(&self.facet, &self.views, query) {
            Ok((view, rewritten)) => {
                let maintenance_us = self.sync_view(view)?;
                self.view_hits += 1;
                let results = Evaluator::new(&self.dataset).evaluate(&rewritten)?;
                Ok(SessionAnswer {
                    route: Route::View(view),
                    results,
                    maintenance_us,
                })
            }
            Err(_) => {
                self.fallbacks += 1;
                let results = Evaluator::new(&self.dataset).evaluate(query)?;
                Ok(SessionAnswer {
                    route: Route::BaseGraph,
                    results,
                    maintenance_us: 0,
                })
            }
        }
    }

    /// Bring one view up to date if the lazy policy left it stale.
    fn sync_view(&mut self, view: ViewMask) -> Result<u64, SparqlError> {
        let refresh = self.needs_refresh.contains(&view.0);
        let cursor = self
            .cursor
            .get(&view.0)
            .copied()
            .unwrap_or(self.pending_offset);
        let pending = if refresh {
            None
        } else {
            // Merge only this view's unseen suffix of the shared log.
            let mut merged = RowDelta::default();
            for rows in self.pending_log.iter().skip(cursor - self.pending_offset) {
                merged.merge(rows);
            }
            Some(merged)
        };
        if !refresh && pending.as_ref().is_none_or(RowDelta::is_empty) {
            // Net-zero backlog: consuming it needs no maintenance.
            self.cursor.insert(view.0, self.log_end());
            self.compact_pending();
            return Ok(0);
        }
        let entry = self
            .views
            .iter_mut()
            .find(|(mask, _)| *mask == view)
            .expect("routed view is in the catalog");
        let rows = if refresh { None } else { pending.as_ref() };
        let result = self
            .maintainer
            .maintain_view(&mut self.dataset, rows, entry);
        // The backlog is consumed either way: a pass that errored may have
        // half-patched the view, so retrying the same delta would corrupt
        // it — demand a full refresh on the next hit instead.
        self.cursor.insert(view.0, self.log_end());
        match &result {
            Ok(_) => {
                self.needs_refresh.remove(&view.0);
            }
            Err(_) => {
                self.needs_refresh.insert(view.0);
            }
        }
        self.compact_pending();
        let cost = result?;
        let us = cost.wall_us;
        self.log.per_view.push(cost);
        self.log.total_us += us;
        Ok(us)
    }

    /// Absolute index one past the last buffered batch.
    fn log_end(&self) -> usize {
        self.pending_offset + self.pending_log.len()
    }

    /// Ceiling on buffered batches. A view that is never routed to would
    /// otherwise pin the log forever; past the cap, the laggiest views are
    /// downgraded to a full refresh on their next hit (which a view that
    /// stale would effectively need anyway) so the log can compact.
    const LAZY_LOG_CAP: usize = 64;

    /// Keep the pending log bounded (see [`Session::LAZY_LOG_CAP`]).
    fn enforce_log_cap(&mut self) {
        while self.pending_log.len() > Self::LAZY_LOG_CAP {
            let Some(min) = self
                .views
                .iter()
                .map(|(mask, _)| {
                    self.cursor
                        .get(&mask.0)
                        .copied()
                        .unwrap_or(self.pending_offset)
                })
                .min()
            else {
                self.pending_log.clear();
                return;
            };
            let end = self.log_end();
            for &(mask, _) in &self.views {
                let cursor = self
                    .cursor
                    .get(&mask.0)
                    .copied()
                    .unwrap_or(self.pending_offset);
                if cursor == min {
                    self.needs_refresh.insert(mask.0);
                    self.cursor.insert(mask.0, end);
                }
            }
            self.compact_pending();
        }
    }

    /// Drop log entries every catalog view has consumed.
    fn compact_pending(&mut self) {
        let consumed = self
            .views
            .iter()
            .map(|(mask, _)| {
                self.cursor
                    .get(&mask.0)
                    .copied()
                    .unwrap_or(self.pending_offset)
            })
            .min()
            .unwrap_or_else(|| self.log_end());
        while self.pending_offset < consumed && !self.pending_log.is_empty() {
            self.pending_log.pop_front();
            self.pending_offset += 1;
        }
    }

    /// The (possibly expanded) dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The facet.
    pub fn facet(&self) -> &Facet {
        &self.facet
    }

    /// The live view catalog (empty after invalidation).
    pub fn views(&self) -> &[(ViewMask, usize)] {
        &self.views
    }

    /// The session's staleness policy.
    pub fn policy(&self) -> StalenessPolicy {
        self.policy
    }

    /// Accumulated maintenance log across updates and lazy repairs.
    pub fn maintenance(&self) -> &MaintenanceReport {
        &self.log
    }

    /// `(view hits, base-graph fallbacks)` so far.
    pub fn routing_counts(&self) -> (usize, usize) {
        (self.view_hits, self.fallbacks)
    }

    /// Update batches applied so far.
    pub fn update_batches(&self) -> usize {
        self.update_batches
    }

    /// Views currently stale under the lazy policy.
    pub fn stale_views(&self) -> usize {
        self.views
            .iter()
            .filter(|(mask, _)| {
                self.needs_refresh.contains(&mask.0)
                    || self
                        .cursor
                        .get(&mask.0)
                        .copied()
                        .unwrap_or(self.pending_offset)
                        < self.log_end()
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::offline::{run_offline, SizedLattice};
    use sofos_cost::CostModelKind;
    use sofos_select::WorkloadProfile;
    use sofos_workload::{dbpedia, generate_workload, WorkloadConfig};

    fn setup() -> (sofos_store::Dataset, Facet, Vec<GeneratedQuery>) {
        let g = dbpedia::generate(&dbpedia::Config {
            countries: 10,
            years: 3,
            ..dbpedia::Config::default()
        });
        let facet = g.facets[0].clone();
        let workload = generate_workload(
            &g.dataset,
            &facet,
            &WorkloadConfig {
                num_queries: 12,
                ..WorkloadConfig::default()
            },
        );
        (g.dataset, facet, workload)
    }

    #[test]
    fn baseline_run_uses_base_graph_only() {
        let (ds, facet, workload) = setup();
        let outcome = run_online(&ds, &facet, &[], &workload, 1, false).unwrap();
        assert_eq!(outcome.records.len(), 12);
        assert_eq!(outcome.view_hits, 0);
        assert_eq!(outcome.fallbacks, 12);
        assert!(outcome.all_valid);
        assert!(outcome.summary.total_us > 0);
    }

    #[test]
    fn views_answer_and_validate() {
        let (ds, facet, workload) = setup();
        let sized = SizedLattice::compute(&ds, &facet).unwrap();
        let profile = WorkloadProfile::from_masks(workload.iter().map(|q| q.required));
        let config = EngineConfig::default();
        let mut expanded = ds.clone();
        let offline = run_offline(
            &mut expanded,
            &sized,
            &profile,
            CostModelKind::AggValues,
            &config,
        )
        .unwrap();
        let outcome = run_online(
            &expanded,
            &facet,
            &offline.view_catalog(),
            &workload,
            1,
            true,
        )
        .unwrap();
        assert!(outcome.view_hits > 0, "some queries answered from views");
        assert!(
            outcome.all_valid,
            "view answers must equal base-graph answers: {:?}",
            outcome
                .records
                .iter()
                .filter(|r| r.valid == Some(false))
                .map(|r| &r.text)
                .collect::<Vec<_>>()
        );
        // Every view-answered record carries a view mask that covers it.
        for record in &outcome.records {
            if let Route::View(mask) = record.route {
                assert!(mask.covers(record.required));
                assert_eq!(record.valid, Some(true));
            }
        }
    }

    fn session_setup(policy: StalenessPolicy) -> (Session, Vec<GeneratedQuery>) {
        use sofos_workload::synthetic;
        let g = synthetic::generate(&synthetic::Config {
            observations: 120,
            agg: sofos_cube::AggOp::Avg, // SUM+COUNT components: all aggs derivable except MIN/MAX
            ..synthetic::Config::default()
        });
        let facet = g.facets[0].clone();
        let mut ds = g.dataset;
        let sized = SizedLattice::compute(&ds, &facet).unwrap();
        let profile = WorkloadProfile::uniform(&sized.lattice);
        let offline = run_offline(
            &mut ds,
            &sized,
            &profile,
            CostModelKind::AggValues,
            &EngineConfig::default(),
        )
        .unwrap();
        let workload = sofos_workload::generate_workload(
            &ds,
            &facet,
            &sofos_workload::WorkloadConfig {
                num_queries: 10,
                ..Default::default()
            },
        );
        (
            Session::new(ds, facet, offline.view_catalog(), policy),
            workload,
        )
    }

    /// One update batch: fresh observations plus one deletion target.
    fn session_delta(batch: usize) -> sofos_store::Delta {
        use sofos_workload::synthetic::NS;
        let mut delta = sofos_store::Delta::new();
        for i in 0..3usize {
            let node = sofos_rdf::Term::blank(format!("u{batch}_{i}"));
            for d in 0..3usize {
                delta.insert(
                    node.clone(),
                    sofos_rdf::Term::iri(format!("{NS}dim{d}")),
                    sofos_rdf::Term::iri(format!("{NS}v{d}_{}", (batch + i + d) % 3)),
                );
            }
            delta.insert(
                node,
                sofos_rdf::Term::iri(format!("{NS}measure")),
                sofos_rdf::Term::literal_int(100 + (batch * 7 + i) as i64),
            );
        }
        delta
    }

    fn assert_session_answers_match_base(session: &mut Session, workload: &[GeneratedQuery]) {
        for q in workload {
            let answer = session.query(&q.query).expect("session query runs");
            let reference = Evaluator::new(session.dataset())
                .evaluate(&q.query)
                .expect("base evaluation runs");
            assert!(
                results_equivalent(&answer.results, &reference),
                "session answer diverged from base graph for {}",
                q.text
            );
        }
    }

    #[test]
    fn eager_session_maintains_views_on_update() {
        let (mut session, workload) = session_setup(StalenessPolicy::Eager);
        for batch in 0..3 {
            session.update(session_delta(batch)).unwrap();
            assert_eq!(session.stale_views(), 0, "eager sessions never go stale");
        }
        assert!(
            !session.maintenance().per_view.is_empty(),
            "maintenance ran"
        );
        assert_session_answers_match_base(&mut session, &workload);
        let (hits, _) = session.routing_counts();
        assert!(hits > 0, "rewriter still routes to views after updates");
    }

    #[test]
    fn lazy_session_repairs_views_on_first_hit() {
        let (mut session, workload) = session_setup(StalenessPolicy::LazyOnHit);
        let views_before = session.views().len();
        session.update(session_delta(0)).unwrap();
        assert_eq!(
            session.stale_views(),
            views_before,
            "updates leave every view stale under lazy"
        );
        assert!(
            session.maintenance().per_view.is_empty(),
            "no maintenance at update time"
        );
        assert_session_answers_match_base(&mut session, &workload);
        assert!(
            !session.maintenance().per_view.is_empty(),
            "query hits triggered lazy repairs"
        );
        assert!(
            session.stale_views() < views_before,
            "hit views are repaired"
        );

        // A second pass over the same workload triggers no further repairs.
        let repairs = session.maintenance().per_view.len();
        assert_session_answers_match_base(&mut session, &workload);
        assert_eq!(session.maintenance().per_view.len(), repairs);
    }

    #[test]
    fn invalidate_session_drops_views_and_falls_back() {
        let (mut session, workload) = session_setup(StalenessPolicy::Invalidate);
        assert!(!session.views().is_empty());
        session.update(session_delta(0)).unwrap();
        assert!(session.views().is_empty(), "invalidation drops the catalog");
        assert!(
            session.dataset().graph_names().is_empty(),
            "view graphs are gone"
        );
        assert_session_answers_match_base(&mut session, &workload);
        let (hits, fallbacks) = session.routing_counts();
        assert_eq!(hits, 0);
        assert_eq!(fallbacks, workload.len());
    }

    #[test]
    fn full_base_view_answers_everything() {
        let (ds, facet, workload) = setup();
        let sized = SizedLattice::compute(&ds, &facet).unwrap();
        let profile = WorkloadProfile::uniform(&sized.lattice);
        // Budget 16 = the whole 4-dim lattice: every query must hit a view.
        let config = EngineConfig {
            budget: sofos_select::Budget::Views(16),
            ..EngineConfig::default()
        };
        let mut expanded = ds.clone();
        let offline = run_offline(
            &mut expanded,
            &sized,
            &profile,
            CostModelKind::Triples,
            &config,
        )
        .unwrap();
        let outcome = run_online(
            &expanded,
            &facet,
            &offline.view_catalog(),
            &workload,
            1,
            true,
        )
        .unwrap();
        assert_eq!(outcome.fallbacks, 0, "full lattice covers every query");
        assert!(outcome.all_valid);
    }
}
