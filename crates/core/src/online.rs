//! The online module: query routing, measurement, and validation
//! (Figure 2 ②).
//!
//! Each workload query is analyzed by the rewriter; if a materialized view
//! covers it, the rewritten query runs against `G+`, otherwise the original
//! query runs against the base graph ("or accesses the graph G if none of
//! the views can be used", §3). Every execution is timed (median of reps)
//! and optionally validated against the base-graph answer.
//!
//! [`run_online`] serves the frozen-graph experiments. The living-graph
//! mode — update batches interleaving with queries under a
//! [`StalenessPolicy`] — lives behind the one front door:
//! [`crate::engine::Engine`].

use crate::timing::{measure_median, TimeSummary};
use crate::validate::results_equivalent;
use sofos_cube::{Facet, ViewMask};
use sofos_rewrite::plan_rewrite;
use sofos_sparql::{Evaluator, SparqlError};
use sofos_store::Dataset;
use sofos_workload::GeneratedQuery;

pub use crate::engine::{Route, SessionAnswer, ViewChurn};
pub use crate::policy::{Freshness, StalenessPolicy};

/// Measurement record for one workload query.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Index in the workload.
    pub index: usize,
    /// SPARQL text of the original query.
    pub text: String,
    /// Aggregate keyword.
    pub agg: String,
    /// Grouping mask.
    pub group_mask: ViewMask,
    /// Required mask (grouping ∪ filters).
    pub required: ViewMask,
    /// Routing decision.
    pub route: Route,
    /// Median execution time (µs).
    pub time_us: u64,
    /// Result rows returned.
    pub rows: usize,
    /// `Some(true/false)` when validated against the base graph.
    pub valid: Option<bool>,
}

/// The online phase's aggregate outcome.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// Per-query records, in workload order.
    pub records: Vec<QueryRecord>,
    /// Latency summary over all queries.
    pub summary: TimeSummary,
    /// Queries answered from views.
    pub view_hits: usize,
    /// Queries that fell back to the base graph.
    pub fallbacks: usize,
    /// All validated queries matched the base answer (vacuously true when
    /// validation is off).
    pub all_valid: bool,
}

/// Execute a workload against an expanded dataset with a view catalog.
///
/// `views` pairs each materialized mask with its row count (see
/// [`sofos_rewrite::best_view`]); pass an empty slice to force every query
/// to the base graph (the no-views baseline).
pub fn run_online(
    dataset: &Dataset,
    facet: &Facet,
    views: &[(ViewMask, usize)],
    workload: &[GeneratedQuery],
    timing_reps: usize,
    validate: bool,
) -> Result<OnlineOutcome, SparqlError> {
    let evaluator = Evaluator::new(dataset);
    let mut records = Vec::with_capacity(workload.len());
    let mut samples = Vec::with_capacity(workload.len());
    let mut view_hits = 0usize;
    let mut fallbacks = 0usize;
    let mut all_valid = true;

    for (index, generated) in workload.iter().enumerate() {
        let (route, time_us, results) = match plan_rewrite(facet, views, &generated.query) {
            Ok((view, rewritten)) => {
                let (us, results) = measure_median(timing_reps, || evaluator.evaluate(&rewritten));
                (Route::View(view), us, results?)
            }
            Err(_) => {
                let (us, results) =
                    measure_median(timing_reps, || evaluator.evaluate(&generated.query));
                (Route::BaseGraph, us, results?)
            }
        };
        match route {
            Route::View(_) => view_hits += 1,
            Route::BaseGraph => fallbacks += 1,
        }

        let valid = if validate && matches!(route, Route::View(_)) {
            let reference = evaluator.evaluate(&generated.query)?;
            let ok = results_equivalent(&results, &reference);
            all_valid &= ok;
            Some(ok)
        } else {
            None
        };

        samples.push(time_us);
        records.push(QueryRecord {
            index,
            text: generated.text.clone(),
            agg: generated.agg.keyword().to_string(),
            group_mask: generated.group_mask,
            required: generated.required,
            route,
            time_us,
            rows: results.len(),
            valid,
        });
    }

    Ok(OnlineOutcome {
        summary: TimeSummary::from_samples(&samples),
        records,
        view_hits,
        fallbacks,
        all_valid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::offline::{run_offline, SizedLattice};
    use sofos_cost::CostModelKind;
    use sofos_select::WorkloadProfile;
    use sofos_workload::{dbpedia, generate_workload, WorkloadConfig};

    fn setup() -> (sofos_store::Dataset, Facet, Vec<GeneratedQuery>) {
        let g = dbpedia::generate(&dbpedia::Config {
            countries: 10,
            years: 3,
            ..dbpedia::Config::default()
        });
        let facet = g.facets[0].clone();
        let workload = generate_workload(
            &g.dataset,
            &facet,
            &WorkloadConfig {
                num_queries: 12,
                ..WorkloadConfig::default()
            },
        );
        (g.dataset, facet, workload)
    }

    #[test]
    fn baseline_run_uses_base_graph_only() {
        let (ds, facet, workload) = setup();
        let outcome = run_online(&ds, &facet, &[], &workload, 1, false).unwrap();
        assert_eq!(outcome.records.len(), 12);
        assert_eq!(outcome.view_hits, 0);
        assert_eq!(outcome.fallbacks, 12);
        assert!(outcome.all_valid);
        assert!(outcome.summary.total_us > 0);
    }

    #[test]
    fn views_answer_and_validate() {
        let (ds, facet, workload) = setup();
        let sized = SizedLattice::compute(&ds, &facet).unwrap();
        let profile = WorkloadProfile::from_masks(workload.iter().map(|q| q.required));
        let config = EngineConfig::default();
        let mut expanded = ds.clone();
        let offline = run_offline(
            &mut expanded,
            &sized,
            &profile,
            CostModelKind::AggValues,
            &config,
        )
        .unwrap();
        let outcome = run_online(
            &expanded,
            &facet,
            &offline.view_catalog(),
            &workload,
            1,
            true,
        )
        .unwrap();
        assert!(outcome.view_hits > 0, "some queries answered from views");
        assert!(
            outcome.all_valid,
            "view answers must equal base-graph answers: {:?}",
            outcome
                .records
                .iter()
                .filter(|r| r.valid == Some(false))
                .map(|r| &r.text)
                .collect::<Vec<_>>()
        );
        // Every view-answered record carries a view mask that covers it.
        for record in &outcome.records {
            if let Route::View(mask) = record.route {
                assert!(mask.covers(record.required));
                assert_eq!(record.valid, Some(true));
            }
        }
    }

    #[test]
    fn full_base_view_answers_everything() {
        let (ds, facet, workload) = setup();
        let sized = SizedLattice::compute(&ds, &facet).unwrap();
        let profile = WorkloadProfile::uniform(&sized.lattice);
        // Budget 16 = the whole 4-dim lattice: every query must hit a view.
        let config = EngineConfig {
            budget: sofos_select::Budget::Views(16),
            ..EngineConfig::default()
        };
        let mut expanded = ds.clone();
        let offline = run_offline(
            &mut expanded,
            &sized,
            &profile,
            CostModelKind::Triples,
            &config,
        )
        .unwrap();
        let outcome = run_online(
            &expanded,
            &facet,
            &offline.view_catalog(),
            &workload,
            1,
            true,
        )
        .unwrap();
        assert_eq!(outcome.fallbacks, 0, "full lattice covers every query");
        assert!(outcome.all_valid);
    }
}
