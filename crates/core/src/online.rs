//! The online module: query routing, measurement, and validation
//! (Figure 2 ②) — plus the interleaved update/query [`Session`].
//!
//! Each workload query is analyzed by the rewriter; if a materialized view
//! covers it, the rewritten query runs against `G+`, otherwise the original
//! query runs against the base graph ("or accesses the graph G if none of
//! the views can be used", §3). Every execution is timed (median of reps)
//! and optionally validated against the base-graph answer.
//!
//! [`run_online`] serves the frozen-graph experiments. [`Session`] is the
//! living-graph mode: update batches ([`sofos_store::Delta`]) interleave
//! with queries, and a configurable [`StalenessPolicy`] decides *when* the
//! `sofos-maintain` engine brings materialized views back in sync.
//!
//! On top of the session sit the adaptive pieces: the session tracks a
//! *sliding* workload/update profile (recent demanded masks, recent
//! insert/delete pressure); a [`DriftDetector`] measures how far that
//! window has moved from the profile the current selection was optimized
//! for; and a [`Reselector`] re-runs maintenance-aware selection when the
//! drift crosses a threshold, swapping the materialized set
//! transactionally ([`Session::swap_views`]) and reporting the churn.

use crate::config::EngineConfig;
use crate::timing::{measure_median, measure_once, TimeSummary};
use crate::validate::results_equivalent;
use sofos_cost::{CalibratedMaintenance, CostModelKind, UpdateRates};
use sofos_cube::{Facet, ViewMask};
use sofos_maintain::{Maintainer, MaintenanceReport, RowDelta};
use sofos_materialize::{drop_view, materialize_view};
use sofos_rdf::{FxHashMap, FxHashSet};
use sofos_rewrite::{analyze_query, best_view, plan_rewrite, rewrite_query};
use sofos_select::{greedy_select_with, Objective, SelectionOutcome, WorkloadProfile};
use sofos_sparql::{Evaluator, Query, QueryResults, SparqlError};
use sofos_store::{ChangeSet, Dataset, Delta, OpKind};
use sofos_workload::GeneratedQuery;
use std::collections::VecDeque;

/// Where a query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Rewritten against a materialized view.
    View(ViewMask),
    /// Fell back to the base graph.
    BaseGraph,
}

/// Measurement record for one workload query.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Index in the workload.
    pub index: usize,
    /// SPARQL text of the original query.
    pub text: String,
    /// Aggregate keyword.
    pub agg: String,
    /// Grouping mask.
    pub group_mask: ViewMask,
    /// Required mask (grouping ∪ filters).
    pub required: ViewMask,
    /// Routing decision.
    pub route: Route,
    /// Median execution time (µs).
    pub time_us: u64,
    /// Result rows returned.
    pub rows: usize,
    /// `Some(true/false)` when validated against the base graph.
    pub valid: Option<bool>,
}

/// The online phase's aggregate outcome.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// Per-query records, in workload order.
    pub records: Vec<QueryRecord>,
    /// Latency summary over all queries.
    pub summary: TimeSummary,
    /// Queries answered from views.
    pub view_hits: usize,
    /// Queries that fell back to the base graph.
    pub fallbacks: usize,
    /// All validated queries matched the base answer (vacuously true when
    /// validation is off).
    pub all_valid: bool,
}

/// Execute a workload against an expanded dataset with a view catalog.
///
/// `views` pairs each materialized mask with its row count (see
/// [`sofos_rewrite::best_view`]); pass an empty slice to force every query
/// to the base graph (the no-views baseline).
pub fn run_online(
    dataset: &Dataset,
    facet: &Facet,
    views: &[(ViewMask, usize)],
    workload: &[GeneratedQuery],
    timing_reps: usize,
    validate: bool,
) -> Result<OnlineOutcome, SparqlError> {
    let evaluator = Evaluator::new(dataset);
    let mut records = Vec::with_capacity(workload.len());
    let mut samples = Vec::with_capacity(workload.len());
    let mut view_hits = 0usize;
    let mut fallbacks = 0usize;
    let mut all_valid = true;

    for (index, generated) in workload.iter().enumerate() {
        let (route, time_us, results) = match plan_rewrite(facet, views, &generated.query) {
            Ok((view, rewritten)) => {
                let (us, results) = measure_median(timing_reps, || evaluator.evaluate(&rewritten));
                (Route::View(view), us, results?)
            }
            Err(_) => {
                let (us, results) =
                    measure_median(timing_reps, || evaluator.evaluate(&generated.query));
                (Route::BaseGraph, us, results?)
            }
        };
        match route {
            Route::View(_) => view_hits += 1,
            Route::BaseGraph => fallbacks += 1,
        }

        let valid = if validate && matches!(route, Route::View(_)) {
            let reference = evaluator.evaluate(&generated.query)?;
            let ok = results_equivalent(&results, &reference);
            all_valid &= ok;
            Some(ok)
        } else {
            None
        };

        samples.push(time_us);
        records.push(QueryRecord {
            index,
            text: generated.text.clone(),
            agg: generated.agg.keyword().to_string(),
            group_mask: generated.group_mask,
            required: generated.required,
            route,
            time_us,
            rows: results.len(),
            valid,
        });
    }

    Ok(OnlineOutcome {
        summary: TimeSummary::from_samples(&samples),
        records,
        view_hits,
        fallbacks,
        all_valid,
    })
}

/// When a [`Session`] repairs materialized views after updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StalenessPolicy {
    /// Maintain every view inside the update call: queries always see
    /// fresh views; updates pay the full maintenance bill.
    Eager,
    /// Buffer row deltas per view; a view is repaired only when the
    /// rewriter routes a query to it. Updates are cheap, the first hit on
    /// a stale view pays its backlog.
    LazyOnHit,
    /// Drop every materialized view on the first update: all subsequent
    /// queries fall back to the base graph (zero maintenance, full
    /// benefit loss) — the paper's implicit baseline.
    Invalidate,
    /// The middle ground between eager and lazy: updates are coalesced
    /// and views maintained in *batched* flushes — every `max_batches`
    /// update batches — while reads are served from the standing state
    /// with a [`Freshness`] tag instead of waiting for repair. A read is
    /// never allowed to lag more than `max_epoch_lag` epochs (batches, in
    /// the serial session): past the bound, the serve path flushes or
    /// repairs first. `Bounded { max_batches: 1, max_epoch_lag: 0 }`
    /// degenerates to eager.
    Bounded {
        /// Flush cadence: maintain (and, over an epoch store, publish)
        /// after this many buffered update batches. Minimum 1.
        max_batches: usize,
        /// Serve-side staleness ceiling, in epochs behind the latest
        /// state. 0 = always fresh at serve time.
        max_epoch_lag: u64,
    },
}

impl StalenessPolicy {
    /// The three classic policies (for sweeps; `Bounded` is a family, so
    /// sweeps pick their own parameter grid).
    pub const ALL: [StalenessPolicy; 3] = [
        StalenessPolicy::Eager,
        StalenessPolicy::LazyOnHit,
        StalenessPolicy::Invalidate,
    ];

    /// A bounded-staleness policy (see [`StalenessPolicy::Bounded`]);
    /// `max_batches` is clamped to at least 1.
    pub fn bounded(max_batches: usize, max_epoch_lag: u64) -> StalenessPolicy {
        StalenessPolicy::Bounded {
            max_batches: max_batches.max(1),
            max_epoch_lag,
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            StalenessPolicy::Eager => "eager",
            StalenessPolicy::LazyOnHit => "lazy-on-hit",
            StalenessPolicy::Invalidate => "invalidate",
            StalenessPolicy::Bounded { .. } => "bounded",
        }
    }
}

impl std::fmt::Display for StalenessPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StalenessPolicy::Bounded {
                max_batches,
                max_epoch_lag,
            } => write!(f, "bounded({max_batches},{max_epoch_lag})"),
            other => f.write_str(other.name()),
        }
    }
}

/// How fresh the state behind one answer was — the tag bounded-staleness
/// serving attaches instead of repairing before every read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Freshness {
    /// How far behind the latest known state the served state was:
    /// unpublished/unmaintained epochs for a
    /// [`ConcurrentSession`](crate::concurrent::ConcurrentSession)
    /// (buffered batches awaiting a flush), buffered update batches for
    /// the serial [`Session`]. 0 = fresh as of the serve instant.
    pub lag: u64,
    /// The epoch the answer was served at (concurrent sessions; the
    /// serial session reports its applied update-batch count).
    pub epoch: u64,
    /// The oldest per-shard epoch stamp of the served snapshot — the
    /// conservative "every shard at least this fresh" tag the epoch
    /// store's per-shard bookkeeping provides for free. The serial
    /// session has no shards: it mirrors `epoch` there, and `lag` is the
    /// staleness signal.
    pub oldest_shard_epoch: u64,
}

impl Freshness {
    /// A fully-fresh tag as of `epoch`.
    pub fn fresh(epoch: u64) -> Freshness {
        Freshness {
            lag: 0,
            epoch,
            oldest_shard_epoch: epoch,
        }
    }

    /// True when the answer reflected the latest state.
    pub fn is_fresh(&self) -> bool {
        self.lag == 0
    }
}

/// One query's answer inside a session.
#[derive(Debug, Clone)]
pub struct SessionAnswer {
    /// Where the query was answered.
    pub route: Route,
    /// The results.
    pub results: QueryResults,
    /// Maintenance time this query triggered (lazy repairs), µs.
    pub maintenance_us: u64,
    /// How fresh the served state was (always fresh outside the bounded
    /// policy).
    pub freshness: Freshness,
}

/// The interleaved update/query mode over a living `G+`.
///
/// Owns the expanded dataset and the view catalog produced by the offline
/// phase. [`Session::update`] applies a [`Delta`] through the store's
/// transactional write path; [`Session::query`] routes through the
/// rewriter exactly like [`run_online`]. Between them, the configured
/// [`StalenessPolicy`] decides when `sofos-maintain` runs, and every
/// maintenance pass is appended to an accumulated [`MaintenanceReport`]
/// so experiments can price update handling against query speedups.
pub struct Session {
    dataset: Dataset,
    facet: Facet,
    maintainer: Maintainer,
    views: Vec<(ViewMask, usize)>,
    policy: StalenessPolicy,
    /// Buffered row deltas under the lazy policy: one entry per update
    /// batch, shared by every view (a single copy, not one per view).
    pending_log: std::collections::VecDeque<RowDelta>,
    /// Log entries dropped by compaction; `pending_offset + pending_log
    /// .len()` is the absolute index of the next batch.
    pending_offset: usize,
    /// Per-view absolute index into the log: everything before it has
    /// been applied to that view.
    cursor: FxHashMap<u64, usize>,
    /// Views whose buffered delta is unusable (non-star facet): they need
    /// a full refresh on their next hit.
    needs_refresh: FxHashSet<u64>,
    /// Accumulated maintenance log.
    log: MaintenanceReport,
    update_batches: usize,
    view_hits: usize,
    fallbacks: usize,
    /// Sliding window of recently demanded masks (grouping ∪ filters of
    /// analyzable queries), newest at the back.
    recent_demands: VecDeque<ViewMask>,
    /// Sliding window of per-batch `(inserted, deleted)` default-graph
    /// triple counts.
    recent_batches: VecDeque<(usize, usize)>,
    /// Sliding window of per-batch group-churn maps: finest-grouping key
    /// hash → absolute row churn (see [`Session::churn_profile`]).
    recent_churn: VecDeque<FxHashMap<u64, f64>>,
    /// Update batches since the last bounded-policy flush.
    batches_since_flush: usize,
}

impl Session {
    /// Open a session over an expanded dataset and its view catalog
    /// (pairs of mask and row count, as produced by
    /// [`crate::offline::OfflineOutcome::view_catalog`]).
    pub fn new(
        dataset: Dataset,
        facet: Facet,
        views: Vec<(ViewMask, usize)>,
        policy: StalenessPolicy,
    ) -> Session {
        Session {
            maintainer: Maintainer::new(&facet),
            dataset,
            facet,
            views,
            policy,
            pending_log: std::collections::VecDeque::new(),
            pending_offset: 0,
            cursor: FxHashMap::default(),
            needs_refresh: FxHashSet::default(),
            log: MaintenanceReport::default(),
            update_batches: 0,
            view_hits: 0,
            fallbacks: 0,
            recent_demands: VecDeque::new(),
            recent_batches: VecDeque::new(),
            recent_churn: VecDeque::new(),
            batches_since_flush: 0,
        }
    }

    /// How many recent query demands the sliding workload profile keeps.
    pub const DEMAND_WINDOW: usize = 64;

    /// How many recent update batches the rate estimate averages over.
    pub const RATE_WINDOW: usize = 16;

    /// Record one demanded mask into the sliding window.
    fn observe_demand(&mut self, required: ViewMask) {
        self.recent_demands.push_back(required);
        while self.recent_demands.len() > Self::DEMAND_WINDOW {
            self.recent_demands.pop_front();
        }
    }

    /// Record one update batch's default-graph insert/delete op counts.
    fn observe_batch(&mut self, delta: &Delta) {
        let (mut inserted, mut deleted) = (0usize, 0usize);
        for op in delta.ops() {
            if op.graph.is_some() {
                continue; // view graphs are ours, not workload pressure
            }
            match op.kind {
                OpKind::Insert => inserted += 1,
                OpKind::Delete => deleted += 1,
            }
        }
        self.recent_batches.push_back((inserted, deleted));
        while self.recent_batches.len() > Self::RATE_WINDOW {
            self.recent_batches.pop_front();
        }
    }

    /// Record one batch's per-group churn from its row delta: which
    /// finest-granularity groups the batch touched, weighted by absolute
    /// row multiplicity. This is the *locality* half of drift detection —
    /// demand can be perfectly steady while updates migrate onto the
    /// groups of an expensive-to-maintain view.
    fn observe_churn(&mut self, rows: &RowDelta) {
        let mut churn: FxHashMap<u64, f64> = FxHashMap::default();
        for (dims, _measure, net) in rows.iter() {
            *churn.entry(group_bucket(dims)).or_insert(0.0) += net.unsigned_abs() as f64;
        }
        if churn.is_empty() {
            return;
        }
        self.recent_churn.push_back(churn);
        while self.recent_churn.len() > Self::RATE_WINDOW {
            self.recent_churn.pop_front();
        }
    }

    /// The sliding per-group churn distribution: group-key hash →
    /// accumulated absolute row churn, over the last
    /// [`Session::RATE_WINDOW`] batches that produced a row delta.
    /// Un-normalized ([`DriftDetector::churn_drift`] normalizes). Empty
    /// until an update produced a row delta (the invalidate policy and
    /// non-star facets never feed it).
    pub fn churn_profile(&self) -> FxHashMap<u64, f64> {
        let mut merged: FxHashMap<u64, f64> = FxHashMap::default();
        for batch in &self.recent_churn {
            for (&bucket, &weight) in batch {
                *merged.entry(bucket).or_insert(0.0) += weight;
            }
        }
        merged
    }

    /// The sliding workload profile: demand frequencies over the last
    /// [`Session::DEMAND_WINDOW`] analyzable queries.
    pub fn window_profile(&self) -> WorkloadProfile {
        WorkloadProfile::from_masks(self.recent_demands.iter().copied())
    }

    /// Observed update pressure, as *observation-level* operations per
    /// batch (triple-level counts divided by the facet's star width, one
    /// triple per dimension plus the measure), averaged over the last
    /// [`Session::RATE_WINDOW`] batches. Frozen when no batch arrived yet.
    pub fn observed_rates(&self) -> UpdateRates {
        if self.recent_batches.is_empty() {
            return UpdateRates::FROZEN;
        }
        let star_width = (self.facet.dim_count() + 1) as f64;
        let batches = self.recent_batches.len() as f64;
        let (ins, del) = self
            .recent_batches
            .iter()
            .fold((0usize, 0usize), |(i, d), &(bi, bd)| (i + bi, d + bd));
        UpdateRates::new(
            ins as f64 / star_width / batches,
            del as f64 / star_width / batches,
        )
    }

    /// Apply an update batch under the session's staleness policy.
    pub fn update(&mut self, delta: Delta) -> Result<ChangeSet, SparqlError> {
        self.update_batches += 1;
        self.observe_batch(&delta);
        match self.policy {
            StalenessPolicy::Invalidate => {
                for &(mask, _) in &self.views {
                    drop_view(&mut self.dataset, &self.facet, mask);
                }
                self.views.clear();
                Ok(self.dataset.apply(delta))
            }
            StalenessPolicy::Eager => {
                let outcome = self.maintainer.apply(&mut self.dataset, delta);
                if let Some(rows) = &outcome.rows {
                    self.observe_churn(rows);
                }
                let report = self.maintainer.maintain(
                    &mut self.dataset,
                    outcome.rows.as_ref(),
                    &mut self.views,
                )?;
                self.log.absorb(report);
                Ok(outcome.changes)
            }
            StalenessPolicy::LazyOnHit => {
                let outcome = self.maintainer.apply(&mut self.dataset, delta);
                self.buffer_rows(outcome.rows);
                Ok(outcome.changes)
            }
            StalenessPolicy::Bounded { max_batches, .. } => {
                // Base changes land immediately (the serial session has no
                // snapshot to serve stale base reads from); view upkeep is
                // deferred and batched: every view consumes its merged
                // backlog in one pass per flush, so N buffered batches
                // cost one group-patching pass instead of N.
                let outcome = self.maintainer.apply(&mut self.dataset, delta);
                self.buffer_rows(outcome.rows);
                self.batches_since_flush += 1;
                if self.batches_since_flush >= max_batches.max(1) {
                    self.flush_views()?;
                }
                Ok(outcome.changes)
            }
        }
    }

    /// Buffer an update's row delta for deferred (lazy/bounded) repair.
    fn buffer_rows(&mut self, rows: Option<RowDelta>) {
        match rows {
            Some(rows) if rows.is_empty() => {}
            Some(rows) => {
                self.observe_churn(&rows);
                self.pending_log.push_back(rows);
                self.enforce_log_cap();
            }
            None => {
                // Unusable delta: every view must fully refresh; buffered
                // rows are superseded.
                for &(mask, _) in &self.views {
                    self.needs_refresh.insert(mask.0);
                    self.cursor.insert(mask.0, self.log_end());
                }
                self.compact_pending();
            }
        }
    }

    /// Bring every view up to date in one batched pass (the bounded
    /// policy's flush; also callable directly to drain a session).
    /// Returns the total maintenance time (µs).
    pub fn flush_views(&mut self) -> Result<u64, SparqlError> {
        let masks: Vec<ViewMask> = self.views.iter().map(|(m, _)| *m).collect();
        let mut total_us = 0;
        for mask in masks {
            total_us += self.sync_view(mask)?;
        }
        self.batches_since_flush = 0;
        Ok(total_us)
    }

    /// Update batches buffered since the last bounded flush.
    pub fn batches_since_flush(&self) -> usize {
        self.batches_since_flush
    }

    /// How many buffered batches a view lags behind (its serve-time
    /// [`Freshness::lag`] under the bounded policy).
    fn view_lag(&self, view: ViewMask) -> u64 {
        if self.needs_refresh.contains(&view.0) {
            return u64::MAX;
        }
        (self.log_end()
            - self
                .cursor
                .get(&view.0)
                .copied()
                .unwrap_or(self.pending_offset)) as u64
    }

    /// Answer one query, routing through the rewriter; under the lazy
    /// policy a stale routed-to view is repaired first (and the repair's
    /// cost reported on the answer). Analyzable queries feed the sliding
    /// workload profile whether or not a view covers them.
    pub fn query(&mut self, query: &Query) -> Result<SessionAnswer, SparqlError> {
        let planned = match analyze_query(&self.facet, query) {
            Ok(analysis) => {
                self.observe_demand(analysis.required);
                best_view(&self.views, analysis.required)
                    .map(|view| (view, rewrite_query(&self.facet, &analysis, view)))
            }
            Err(_) => None,
        };
        let batches = self.update_batches as u64;
        match planned {
            Some((view, rewritten)) => {
                // Bounded serving: a view within the lag budget is served
                // as-is and *tagged*; past the budget it is repaired
                // first, exactly like a lazy hit.
                let (maintenance_us, freshness) = match self.policy {
                    StalenessPolicy::Bounded { max_epoch_lag, .. } => {
                        let lag = self.view_lag(view);
                        if lag > max_epoch_lag {
                            (self.sync_view(view)?, Freshness::fresh(batches))
                        } else {
                            // No shards serially: `lag` (in buffered
                            // row-producing batches) is the staleness
                            // signal; the shard stamp mirrors `epoch`
                            // rather than faking a per-shard claim in
                            // mismatched units.
                            (
                                0,
                                Freshness {
                                    lag,
                                    epoch: batches,
                                    oldest_shard_epoch: batches,
                                },
                            )
                        }
                    }
                    _ => (self.sync_view(view)?, Freshness::fresh(batches)),
                };
                self.view_hits += 1;
                let results = Evaluator::new(&self.dataset).evaluate(&rewritten)?;
                Ok(SessionAnswer {
                    route: Route::View(view),
                    results,
                    maintenance_us,
                    freshness,
                })
            }
            None => {
                self.fallbacks += 1;
                let results = Evaluator::new(&self.dataset).evaluate(query)?;
                // The serial session's base graph is always current.
                Ok(SessionAnswer {
                    route: Route::BaseGraph,
                    results,
                    maintenance_us: 0,
                    freshness: Freshness::fresh(batches),
                })
            }
        }
    }

    /// Bring one view up to date if the lazy policy left it stale.
    fn sync_view(&mut self, view: ViewMask) -> Result<u64, SparqlError> {
        let refresh = self.needs_refresh.contains(&view.0);
        let cursor = self
            .cursor
            .get(&view.0)
            .copied()
            .unwrap_or(self.pending_offset);
        let pending = if refresh {
            None
        } else {
            // Merge only this view's unseen suffix of the shared log.
            let mut merged = RowDelta::default();
            for rows in self.pending_log.iter().skip(cursor - self.pending_offset) {
                merged.merge(rows);
            }
            Some(merged)
        };
        if !refresh && pending.as_ref().is_none_or(RowDelta::is_empty) {
            // Net-zero backlog: consuming it needs no maintenance.
            self.cursor.insert(view.0, self.log_end());
            self.compact_pending();
            return Ok(0);
        }
        let entry = self
            .views
            .iter_mut()
            .find(|(mask, _)| *mask == view)
            .expect("routed view is in the catalog");
        let rows = if refresh { None } else { pending.as_ref() };
        let result = self
            .maintainer
            .maintain_view(&mut self.dataset, rows, entry);
        // The backlog is consumed either way. Planning is all-or-nothing
        // (an errored pass wrote nothing), but the view is still stale
        // and the error may be deterministic — demanding a full refresh
        // on the next hit keeps a poisoned backlog from wedging the view
        // in an error-retry loop while the pending log grows.
        self.cursor.insert(view.0, self.log_end());
        match &result {
            Ok(_) => {
                self.needs_refresh.remove(&view.0);
            }
            Err(_) => {
                self.needs_refresh.insert(view.0);
            }
        }
        self.compact_pending();
        let cost = result?;
        let us = cost.wall_us;
        self.log.per_view.push(cost);
        self.log.total_us += us;
        Ok(us)
    }

    /// Absolute index one past the last buffered batch.
    fn log_end(&self) -> usize {
        self.pending_offset + self.pending_log.len()
    }

    /// Ceiling on buffered batches. A view that is never routed to would
    /// otherwise pin the log forever; past the cap, the laggiest views are
    /// downgraded to a full refresh on their next hit (which a view that
    /// stale would effectively need anyway) so the log can compact.
    const LAZY_LOG_CAP: usize = 64;

    /// Keep the pending log bounded (see [`Session::LAZY_LOG_CAP`]).
    fn enforce_log_cap(&mut self) {
        while self.pending_log.len() > Self::LAZY_LOG_CAP {
            let Some(min) = self
                .views
                .iter()
                .map(|(mask, _)| {
                    self.cursor
                        .get(&mask.0)
                        .copied()
                        .unwrap_or(self.pending_offset)
                })
                .min()
            else {
                self.pending_log.clear();
                return;
            };
            let end = self.log_end();
            for &(mask, _) in &self.views {
                let cursor = self
                    .cursor
                    .get(&mask.0)
                    .copied()
                    .unwrap_or(self.pending_offset);
                if cursor == min {
                    self.needs_refresh.insert(mask.0);
                    self.cursor.insert(mask.0, end);
                }
            }
            self.compact_pending();
        }
    }

    /// Drop log entries every catalog view has consumed.
    fn compact_pending(&mut self) {
        let consumed = self
            .views
            .iter()
            .map(|(mask, _)| {
                self.cursor
                    .get(&mask.0)
                    .copied()
                    .unwrap_or(self.pending_offset)
            })
            .min()
            .unwrap_or_else(|| self.log_end());
        while self.pending_offset < consumed && !self.pending_log.is_empty() {
            self.pending_log.pop_front();
            self.pending_offset += 1;
        }
    }

    /// Replace the materialized set with `target`, transactionally.
    ///
    /// Views in `target` not yet in the catalog are materialized *first*;
    /// if any materialization fails, the already-written new view graphs
    /// are dropped and the catalog is left exactly as it was (the session
    /// keeps serving from the old selection). Only once every new view
    /// exists are the retired ones dropped and the catalog swapped.
    /// Kept views carry their maintenance state (cursors, pending
    /// backlog) across the swap; new views are fresh as of now.
    pub fn swap_views(&mut self, target: &[ViewMask]) -> Result<ViewChurn, SparqlError> {
        debug_assert!(
            target.iter().map(|m| m.0).collect::<FxHashSet<_>>().len() == target.len(),
            "swap_views target must not contain duplicates: {target:?}"
        );
        let current: FxHashSet<u64> = self.views.iter().map(|(m, _)| m.0).collect();
        let wanted: FxHashSet<u64> = target.iter().map(|m| m.0).collect();
        let added: Vec<ViewMask> = target
            .iter()
            .copied()
            .filter(|m| !current.contains(&m.0))
            .collect();
        let retired: Vec<ViewMask> = self
            .views
            .iter()
            .map(|(m, _)| *m)
            .filter(|m| !wanted.contains(&m.0))
            .collect();
        let kept: Vec<ViewMask> = target
            .iter()
            .copied()
            .filter(|m| current.contains(&m.0))
            .collect();

        // Phase 1: materialize every incoming view; roll back on failure.
        let mut materialized: Vec<(ViewMask, usize)> = Vec::with_capacity(added.len());
        let (materialize_us, result) = measure_once(|| {
            for &mask in &added {
                match materialize_view(&mut self.dataset, &self.facet, mask) {
                    Ok(view) => materialized.push((mask, view.stats.rows)),
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        });
        if let Err(e) = result {
            for &(mask, _) in &materialized {
                drop_view(&mut self.dataset, &self.facet, mask);
            }
            return Err(e);
        }

        // Phase 2: retire outgoing views and install the new catalog in
        // `target` order (kept entries keep their live row counts).
        let (drop_us, ()) = measure_once(|| {
            for &mask in &retired {
                drop_view(&mut self.dataset, &self.facet, mask);
                self.cursor.remove(&mask.0);
                self.needs_refresh.remove(&mask.0);
            }
        });
        let old_catalog: FxHashMap<u64, usize> =
            self.views.iter().map(|(m, rows)| (m.0, *rows)).collect();
        let fresh_cursor = self.log_end();
        self.views = target
            .iter()
            .map(|&mask| {
                let rows = old_catalog.get(&mask.0).copied().unwrap_or_else(|| {
                    materialized
                        .iter()
                        .find(|(m, _)| *m == mask)
                        .map_or(0, |(_, rows)| *rows)
                });
                (mask, rows)
            })
            .collect();
        for &(mask, _) in &materialized {
            // Materialized from the current base graph: nothing pending.
            self.cursor.insert(mask.0, fresh_cursor);
        }
        self.compact_pending();

        Ok(ViewChurn {
            added,
            retired,
            kept,
            materialize_us,
            drop_us,
        })
    }

    /// The (possibly expanded) dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The facet.
    pub fn facet(&self) -> &Facet {
        &self.facet
    }

    /// The live view catalog (empty after invalidation).
    pub fn views(&self) -> &[(ViewMask, usize)] {
        &self.views
    }

    /// The session's staleness policy.
    pub fn policy(&self) -> StalenessPolicy {
        self.policy
    }

    /// Accumulated maintenance log across updates and lazy repairs.
    pub fn maintenance(&self) -> &MaintenanceReport {
        &self.log
    }

    /// `(view hits, base-graph fallbacks)` so far.
    pub fn routing_counts(&self) -> (usize, usize) {
        (self.view_hits, self.fallbacks)
    }

    /// Update batches applied so far.
    pub fn update_batches(&self) -> usize {
        self.update_batches
    }

    /// Views currently stale under the lazy policy.
    pub fn stale_views(&self) -> usize {
        self.views
            .iter()
            .filter(|(mask, _)| {
                self.needs_refresh.contains(&mask.0)
                    || self
                        .cursor
                        .get(&mask.0)
                        .copied()
                        .unwrap_or(self.pending_offset)
                        < self.log_end()
            })
            .count()
    }
}

/// What a [`Session::swap_views`] actually changed.
#[derive(Debug, Clone)]
pub struct ViewChurn {
    /// Views materialized by the swap, in catalog order.
    pub added: Vec<ViewMask>,
    /// Views dropped by the swap.
    pub retired: Vec<ViewMask>,
    /// Views present before and after (maintenance state preserved).
    pub kept: Vec<ViewMask>,
    /// Wall time spent materializing the added views (µs).
    pub materialize_us: u64,
    /// Wall time spent dropping the retired views (µs).
    pub drop_us: u64,
}

impl ViewChurn {
    /// Views touched by the swap (`added + retired`) — 0 means the
    /// re-selection confirmed the standing set.
    pub fn churned(&self) -> usize {
        self.added.len() + self.retired.len()
    }
}

/// Hash a finest-grouping key into a stable churn bucket.
fn group_bucket(dims: &[sofos_rdf::TermId]) -> u64 {
    use std::hash::Hasher;
    let mut hasher = sofos_rdf::hash::FxHasher::default();
    for dim in dims {
        hasher.write_u32(dim.0);
    }
    hasher.finish()
}

/// Total-variation distance between two weighted distributions (both
/// normalized first). Both empty → 0; exactly one empty → 1.
fn total_variation(p: &FxHashMap<u64, f64>, q: &FxHashMap<u64, f64>) -> f64 {
    let p_total: f64 = p.values().sum();
    let q_total: f64 = q.values().sum();
    match (p_total > 0.0, q_total > 0.0) {
        (false, false) => return 0.0,
        (true, false) | (false, true) => return 1.0,
        (true, true) => {}
    }
    let mut masses: FxHashMap<u64, (f64, f64)> = FxHashMap::default();
    for (&key, &w) in p {
        masses.entry(key).or_default().0 += w / p_total;
    }
    for (&key, &w) in q {
        masses.entry(key).or_default().1 += w / q_total;
    }
    0.5 * masses.values().map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Measures how far the live workload has drifted from the profile the
/// current selection was optimized for.
///
/// Distance is total variation between the two *normalized* demand
/// distributions: `½ Σ_m |p(m) − q(m)| ∈ [0, 1]`. 0 means the window
/// replays the reference mix exactly; 1 means disjoint demand. The weight
/// scale of either profile cancels, so windows and references of
/// different lengths compare directly.
///
/// Alongside demand, the detector can track update *locality*: a
/// per-group churn distribution ([`Session::churn_profile`]) anchored by
/// [`DriftDetector::with_churn_reference`]. Maintenance hotspots then
/// register as drift even when query demand is perfectly steady — the
/// trigger maintenance-aware selection needs, since upkeep cost depends
/// on *which* groups churn, not only on how much.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    reference: Vec<(ViewMask, f64)>,
    /// Normalized churn reference; `None` disables the locality trigger.
    churn_reference: Option<FxHashMap<u64, f64>>,
    threshold: f64,
    min_weight: f64,
}

impl DriftDetector {
    /// A detector anchored at `reference`, firing past `threshold`.
    pub fn new(reference: &WorkloadProfile, threshold: f64) -> DriftDetector {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "drift threshold must be in [0, 1], got {threshold}"
        );
        DriftDetector {
            reference: Self::normalize(reference),
            churn_reference: None,
            threshold,
            min_weight: 1.0,
        }
    }

    /// Require at least this much window weight before `drifted` can fire
    /// (defaults to 1 observation; raise to debounce cold windows).
    pub fn with_min_weight(mut self, min_weight: f64) -> DriftDetector {
        self.min_weight = min_weight.max(1.0);
        self
    }

    /// Anchor the locality trigger at a reference per-group churn
    /// distribution (typically [`Session::churn_profile`] at selection
    /// time). Until set, churn never registers as drift.
    pub fn with_churn_reference(mut self, churn: &FxHashMap<u64, f64>) -> DriftDetector {
        self.set_churn_reference(churn);
        self
    }

    /// Re-anchor the churn reference (after a re-selection).
    pub fn set_churn_reference(&mut self, churn: &FxHashMap<u64, f64>) {
        self.churn_reference = Some(churn.clone());
    }

    fn normalize(profile: &WorkloadProfile) -> Vec<(ViewMask, f64)> {
        let total = profile.total_weight();
        if total <= 0.0 {
            return Vec::new();
        }
        profile
            .demands
            .iter()
            .map(|&(mask, w)| (mask, w / total))
            .collect()
    }

    /// The configured firing threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Total-variation distance between the reference and `current`.
    /// Both empty → 0 (nothing moved); exactly one empty → 1.
    pub fn drift(&self, current: &WorkloadProfile) -> f64 {
        let current = Self::normalize(current);
        match (self.reference.is_empty(), current.is_empty()) {
            (true, true) => return 0.0,
            (true, false) | (false, true) => return 1.0,
            (false, false) => {}
        }
        let mut masses: FxHashMap<u64, (f64, f64)> = FxHashMap::default();
        for &(mask, p) in &self.reference {
            masses.entry(mask.0).or_default().0 += p;
        }
        for &(mask, q) in &current {
            masses.entry(mask.0).or_default().1 += q;
        }
        0.5 * masses.values().map(|(p, q)| (p - q).abs()).sum::<f64>()
    }

    /// True when `current` carries enough weight and its drift exceeds
    /// the threshold.
    pub fn drifted(&self, current: &WorkloadProfile) -> bool {
        current.total_weight() >= self.min_weight && self.drift(current) > self.threshold
    }

    /// Total-variation distance between the anchored churn reference and
    /// the current per-group churn distribution. 0 when no churn
    /// reference was set, or when neither side carries any churn —
    /// *locality* drift is undefined without churn, and an empty window
    /// must not read as "everything moved".
    pub fn churn_drift(&self, current: &FxHashMap<u64, f64>) -> f64 {
        let Some(reference) = &self.churn_reference else {
            return 0.0;
        };
        if current.values().all(|&w| w <= 0.0) {
            return 0.0;
        }
        total_variation(reference, current)
    }

    /// True when update locality moved past the threshold under a set
    /// churn reference — the maintenance-hotspot trigger, independent of
    /// demand.
    pub fn churn_drifted(&self, current: &FxHashMap<u64, f64>) -> bool {
        self.churn_drift(current) > self.threshold
    }

    /// Re-anchor at a new reference (after a re-selection).
    pub fn rebase(&mut self, reference: &WorkloadProfile) {
        self.reference = Self::normalize(reference);
    }
}

/// One re-selection pass: what drove it, what was selected, what churned.
#[derive(Debug, Clone)]
pub struct ReselectionReport {
    /// Demand drift at the moment of re-selection.
    pub drift: f64,
    /// Update-locality (per-group churn) drift at the moment of
    /// re-selection; 0 when the locality trigger is off.
    pub locality_drift: f64,
    /// The new selection (combined-objective costs included).
    pub selection: SelectionOutcome,
    /// Catalog churn from the transactional swap.
    pub churn: ViewChurn,
    /// Wall time of the lattice re-sizing pass (µs) — the growth-scaling
    /// refresh when the sizing cache is on, the full per-view evaluation
    /// otherwise.
    pub sizing_us: u64,
    /// True when sizing came from the cache, refreshed by live
    /// [`sofos_store::GraphStats`] growth instead of re-evaluated.
    pub sizing_refreshed: bool,
    /// Wall time of the selection algorithm (µs).
    pub selection_us: u64,
}

impl ReselectionReport {
    /// Total re-selection overhead (µs): sizing + selection +
    /// materialization + drops.
    pub fn overhead_us(&self) -> u64 {
        self.sizing_us + self.selection_us + self.churn.materialize_us + self.churn.drop_us
    }
}

/// Adaptive re-selection: watches a session's sliding workload/update
/// profile through a [`DriftDetector`] and, when the workload has moved,
/// re-runs maintenance-aware selection over a freshly re-sized lattice
/// and swaps the materialized set transactionally.
///
/// The maintenance term defaults to the analytic
/// [`sofos_cost::TouchedGroupsMaintenance`] estimator, so λ keeps the
/// same (abstract, triples-scale) meaning across the whole run. Opting in
/// to [`Reselector::with_calibrated_maintenance`] instead fits
/// [`CalibratedMaintenance`] to the maintenance telemetry the session has
/// accumulated so far — predictions move to real microseconds, and λ must
/// be chosen against that scale. Update pressure is read from
/// [`Session::observed_rates`] either way.
pub struct Reselector {
    kind: CostModelKind,
    config: EngineConfig,
    lambda: f64,
    detector: DriftDetector,
    calibrated: bool,
    locality: bool,
    sizing_cache: Option<crate::offline::SizedLattice>,
    reselections: usize,
}

impl Reselector {
    /// A re-selector optimizing `kind` + λ·maintenance under `config`'s
    /// budget, anchored at the profile the current selection served.
    pub fn new(
        kind: CostModelKind,
        config: EngineConfig,
        lambda: f64,
        reference: &WorkloadProfile,
        threshold: f64,
    ) -> Reselector {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "lambda must be finite and non-negative, got {lambda}"
        );
        Reselector {
            kind,
            config,
            lambda,
            detector: DriftDetector::new(reference, threshold),
            calibrated: false,
            locality: false,
            sizing_cache: None,
            reselections: 0,
        }
    }

    /// Also fire on update-*locality* drift: when the per-group churn
    /// distribution (which groups the update stream hits) moves past the
    /// detector's threshold, re-select even under perfectly steady
    /// demand — maintenance hotspots shift which views are worth keeping.
    /// The churn reference is anchored lazily at the first checked
    /// window and re-anchored on every re-selection.
    pub fn with_locality_trigger(mut self) -> Reselector {
        self.locality = true;
        self
    }

    /// Price upkeep in real microseconds, re-fit from the session's
    /// accumulated maintenance telemetry on every pass (λ must then be
    /// chosen against the µs scale rather than the analytic one).
    pub fn with_calibrated_maintenance(mut self) -> Reselector {
        self.calibrated = true;
        self
    }

    /// Reuse an offline sizing pass instead of re-evaluating the whole
    /// lattice on every re-selection.
    ///
    /// Re-sizing costs as much as answering one query per lattice view —
    /// on a 2^d lattice that dwarfs everything else a re-selection does,
    /// and is exactly the overhead that makes frequent re-selection
    /// uneconomical. Cached estimates are **not** frozen: every pass
    /// rescales the cached per-view rows/triples/bytes by the live
    /// [`sofos_store::GraphStats`] growth since the cache was taken
    /// ([`crate::offline::SizedLattice::refreshed`]), so byte budgets
    /// keep pricing against the graph that actually exists. The scaling
    /// is uniform — it tracks size, not shape; drop the cache (a fresh
    /// `Reselector`) when the graph's *distribution* has changed.
    pub fn with_sizing_cache(mut self, sized: crate::offline::SizedLattice) -> Reselector {
        self.sizing_cache = Some(sized);
        self
    }

    /// The drift detector (for inspection / reporting).
    pub fn detector(&self) -> &DriftDetector {
        &self.detector
    }

    /// Re-selections performed so far.
    pub fn reselections(&self) -> usize {
        self.reselections
    }

    /// Check the session's sliding window against the reference profile;
    /// re-select only if demand — or, with the locality trigger, the
    /// per-group churn distribution — drifted past the threshold.
    /// `Ok(None)` means the standing selection still fits.
    pub fn check(
        &mut self,
        session: &mut Session,
    ) -> Result<Option<ReselectionReport>, SparqlError> {
        let window = session.window_profile();
        let churn = self.session_churn(session);
        let demand_drifted = self.detector.drifted(&window);
        let locality_drifted = self.locality
            && if self.detector.churn_reference.is_none() {
                // First sighting of churn anchors the reference; nothing
                // to compare against yet.
                if !churn.is_empty() {
                    self.detector.set_churn_reference(&churn);
                }
                false
            } else {
                self.detector.churn_drifted(&churn)
            };
        if !demand_drifted && !locality_drifted {
            return Ok(None);
        }
        self.reselect_for(session, window, churn).map(Some)
    }

    /// The session's churn profile when the locality trigger is on
    /// (empty — and never consulted — otherwise).
    fn session_churn(&self, session: &Session) -> FxHashMap<u64, f64> {
        if self.locality {
            session.churn_profile()
        } else {
            FxHashMap::default()
        }
    }

    /// Unconditional re-selection against the current window (the
    /// always-reselect policy; also useful to force an initial swap).
    pub fn reselect(&mut self, session: &mut Session) -> Result<ReselectionReport, SparqlError> {
        let window = session.window_profile();
        let churn = self.session_churn(session);
        self.reselect_for(session, window, churn)
    }

    fn reselect_for(
        &mut self,
        session: &mut Session,
        window: WorkloadProfile,
        session_churn: FxHashMap<u64, f64>,
    ) -> Result<ReselectionReport, SparqlError> {
        let drift = self.detector.drift(&window);
        let locality_drift = if self.locality {
            self.detector.churn_drift(&session_churn)
        } else {
            0.0
        };
        // A cold window (no queries yet) has nothing to optimize for;
        // fall back to uniform demand rather than selecting nothing.
        let profile = if window.total_weight() > 0.0 {
            window.clone()
        } else {
            let lattice = sofos_cube::Lattice::new(session.facet().clone());
            WorkloadProfile::uniform(&lattice)
        };

        let computed;
        let refreshed;
        let sizing_refreshed = self.sizing_cache.is_some();
        let (sized, sizing_us) = match &self.sizing_cache {
            Some(cached) => {
                // Incremental re-sizing: scale the cached estimates by
                // live base-graph growth instead of freezing them (or
                // paying a full lattice re-evaluation).
                let live = session.dataset().base_stats();
                let (us, r) = measure_once(|| cached.refreshed(&live));
                refreshed = r;
                (&refreshed, us)
            }
            None => {
                computed =
                    crate::offline::SizedLattice::compute(session.dataset(), session.facet())?;
                (&computed, computed.sizing_us)
            }
        };
        let (query_model, _history, _train_us) =
            crate::offline::build_model(self.kind, sized, &self.config);
        let analytic = sofos_cost::TouchedGroupsMaintenance;
        let calibrated;
        let maintenance: &dyn sofos_cost::MaintenanceCostModel = if self.calibrated {
            calibrated = CalibratedMaintenance::calibrate(&session.maintenance().per_view);
            &calibrated
        } else {
            &analytic
        };
        let rates = session.observed_rates();
        let ctx = sized.context();
        let objective = if self.lambda > 0.0 {
            Objective::maintenance_aware(query_model.as_ref(), maintenance, rates, self.lambda)
        } else {
            Objective::query_only(query_model.as_ref())
        };
        let (selection_us, selection) = measure_once(|| {
            greedy_select_with(
                &ctx,
                &sized.lattice,
                &objective,
                &profile,
                self.config.budget,
            )
        });

        let churn = session.swap_views(&selection.selected)?;
        // Anchor at the profile the new selection was *optimized for* —
        // not the raw window, which on a cold forced reselect is empty
        // and would make every subsequent query read as drift 1.0. The
        // churn reference re-anchors at the window's distribution for the
        // same reason.
        self.detector.rebase(&profile);
        if self.locality && !session_churn.is_empty() {
            self.detector.set_churn_reference(&session_churn);
        }
        self.reselections += 1;
        Ok(ReselectionReport {
            drift,
            locality_drift,
            selection,
            churn,
            sizing_us,
            sizing_refreshed,
            selection_us,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::offline::{run_offline, SizedLattice};
    use sofos_cost::CostModelKind;
    use sofos_select::WorkloadProfile;
    use sofos_workload::{dbpedia, generate_workload, WorkloadConfig};

    fn setup() -> (sofos_store::Dataset, Facet, Vec<GeneratedQuery>) {
        let g = dbpedia::generate(&dbpedia::Config {
            countries: 10,
            years: 3,
            ..dbpedia::Config::default()
        });
        let facet = g.facets[0].clone();
        let workload = generate_workload(
            &g.dataset,
            &facet,
            &WorkloadConfig {
                num_queries: 12,
                ..WorkloadConfig::default()
            },
        );
        (g.dataset, facet, workload)
    }

    #[test]
    fn baseline_run_uses_base_graph_only() {
        let (ds, facet, workload) = setup();
        let outcome = run_online(&ds, &facet, &[], &workload, 1, false).unwrap();
        assert_eq!(outcome.records.len(), 12);
        assert_eq!(outcome.view_hits, 0);
        assert_eq!(outcome.fallbacks, 12);
        assert!(outcome.all_valid);
        assert!(outcome.summary.total_us > 0);
    }

    #[test]
    fn views_answer_and_validate() {
        let (ds, facet, workload) = setup();
        let sized = SizedLattice::compute(&ds, &facet).unwrap();
        let profile = WorkloadProfile::from_masks(workload.iter().map(|q| q.required));
        let config = EngineConfig::default();
        let mut expanded = ds.clone();
        let offline = run_offline(
            &mut expanded,
            &sized,
            &profile,
            CostModelKind::AggValues,
            &config,
        )
        .unwrap();
        let outcome = run_online(
            &expanded,
            &facet,
            &offline.view_catalog(),
            &workload,
            1,
            true,
        )
        .unwrap();
        assert!(outcome.view_hits > 0, "some queries answered from views");
        assert!(
            outcome.all_valid,
            "view answers must equal base-graph answers: {:?}",
            outcome
                .records
                .iter()
                .filter(|r| r.valid == Some(false))
                .map(|r| &r.text)
                .collect::<Vec<_>>()
        );
        // Every view-answered record carries a view mask that covers it.
        for record in &outcome.records {
            if let Route::View(mask) = record.route {
                assert!(mask.covers(record.required));
                assert_eq!(record.valid, Some(true));
            }
        }
    }

    fn session_setup(policy: StalenessPolicy) -> (Session, Vec<GeneratedQuery>) {
        use sofos_workload::synthetic;
        let g = synthetic::generate(&synthetic::Config {
            observations: 120,
            agg: sofos_cube::AggOp::Avg, // SUM+COUNT components: all aggs derivable except MIN/MAX
            ..synthetic::Config::default()
        });
        let facet = g.facets[0].clone();
        let mut ds = g.dataset;
        let sized = SizedLattice::compute(&ds, &facet).unwrap();
        let profile = WorkloadProfile::uniform(&sized.lattice);
        let offline = run_offline(
            &mut ds,
            &sized,
            &profile,
            CostModelKind::AggValues,
            &EngineConfig::default(),
        )
        .unwrap();
        let workload = sofos_workload::generate_workload(
            &ds,
            &facet,
            &sofos_workload::WorkloadConfig {
                num_queries: 10,
                ..Default::default()
            },
        );
        (
            Session::new(ds, facet, offline.view_catalog(), policy),
            workload,
        )
    }

    /// One update batch: fresh observations plus one deletion target.
    fn session_delta(batch: usize) -> sofos_store::Delta {
        use sofos_workload::synthetic::NS;
        let mut delta = sofos_store::Delta::new();
        for i in 0..3usize {
            let node = sofos_rdf::Term::blank(format!("u{batch}_{i}"));
            for d in 0..3usize {
                delta.insert(
                    node.clone(),
                    sofos_rdf::Term::iri(format!("{NS}dim{d}")),
                    sofos_rdf::Term::iri(format!("{NS}v{d}_{}", (batch + i + d) % 3)),
                );
            }
            delta.insert(
                node,
                sofos_rdf::Term::iri(format!("{NS}measure")),
                sofos_rdf::Term::literal_int(100 + (batch * 7 + i) as i64),
            );
        }
        delta
    }

    fn assert_session_answers_match_base(session: &mut Session, workload: &[GeneratedQuery]) {
        for q in workload {
            let answer = session.query(&q.query).expect("session query runs");
            let reference = Evaluator::new(session.dataset())
                .evaluate(&q.query)
                .expect("base evaluation runs");
            assert!(
                results_equivalent(&answer.results, &reference),
                "session answer diverged from base graph for {}",
                q.text
            );
        }
    }

    #[test]
    fn eager_session_maintains_views_on_update() {
        let (mut session, workload) = session_setup(StalenessPolicy::Eager);
        for batch in 0..3 {
            session.update(session_delta(batch)).unwrap();
            assert_eq!(session.stale_views(), 0, "eager sessions never go stale");
        }
        assert!(
            !session.maintenance().per_view.is_empty(),
            "maintenance ran"
        );
        assert_session_answers_match_base(&mut session, &workload);
        let (hits, _) = session.routing_counts();
        assert!(hits > 0, "rewriter still routes to views after updates");
    }

    #[test]
    fn lazy_session_repairs_views_on_first_hit() {
        let (mut session, workload) = session_setup(StalenessPolicy::LazyOnHit);
        let views_before = session.views().len();
        session.update(session_delta(0)).unwrap();
        assert_eq!(
            session.stale_views(),
            views_before,
            "updates leave every view stale under lazy"
        );
        assert!(
            session.maintenance().per_view.is_empty(),
            "no maintenance at update time"
        );
        assert_session_answers_match_base(&mut session, &workload);
        assert!(
            !session.maintenance().per_view.is_empty(),
            "query hits triggered lazy repairs"
        );
        assert!(
            session.stale_views() < views_before,
            "hit views are repaired"
        );

        // A second pass over the same workload triggers no further repairs.
        let repairs = session.maintenance().per_view.len();
        assert_session_answers_match_base(&mut session, &workload);
        assert_eq!(session.maintenance().per_view.len(), repairs);
    }

    #[test]
    fn invalidate_session_drops_views_and_falls_back() {
        let (mut session, workload) = session_setup(StalenessPolicy::Invalidate);
        assert!(!session.views().is_empty());
        session.update(session_delta(0)).unwrap();
        assert!(session.views().is_empty(), "invalidation drops the catalog");
        assert!(
            session.dataset().graph_names().is_empty(),
            "view graphs are gone"
        );
        assert_session_answers_match_base(&mut session, &workload);
        let (hits, fallbacks) = session.routing_counts();
        assert_eq!(hits, 0);
        assert_eq!(fallbacks, workload.len());
    }

    #[test]
    fn session_tracks_window_profile_and_rates() {
        let (mut session, workload) = session_setup(StalenessPolicy::Eager);
        assert_eq!(session.window_profile().total_weight(), 0.0);
        assert_eq!(session.observed_rates(), sofos_cost::UpdateRates::FROZEN);

        for q in &workload {
            session.query(&q.query).unwrap();
        }
        let profile = session.window_profile();
        assert_eq!(profile.total_weight(), workload.len() as f64);

        session.update(session_delta(0)).unwrap();
        let rates = session.observed_rates();
        // session_delta inserts 3 complete 4-triple stars (3 dims + measure).
        assert!((rates.inserts_per_round - 3.0).abs() < 1e-9, "{rates:?}");
        assert_eq!(rates.deletes_per_round, 0.0);
    }

    #[test]
    fn swap_views_reports_churn_and_stays_consistent() {
        let (mut session, workload) = session_setup(StalenessPolicy::Eager);
        let before: Vec<ViewMask> = session.views().iter().map(|(m, _)| *m).collect();
        assert!(!before.is_empty());

        // Swap to: keep the first standing view, add the apex (not
        // selected by the offline pass here), retire the rest.
        let kept = before[0];
        assert!(
            !before.contains(&ViewMask::APEX),
            "test needs the apex to be a genuine addition"
        );
        let target = [kept, ViewMask::APEX];
        let churn = session.swap_views(&target).unwrap();
        assert_eq!(churn.added, vec![ViewMask::APEX]);
        assert_eq!(churn.kept, vec![kept]);
        assert_eq!(churn.retired.len(), before.len() - 1);
        assert_eq!(churn.churned(), 1 + before.len() - 1);
        assert_eq!(session.views().len(), 2);
        assert_eq!(
            session.dataset().graph_names().len(),
            2,
            "one named graph per catalog view after the swap"
        );
        // The swapped catalog still serves correct answers.
        assert_session_answers_match_base(&mut session, &workload);
    }

    #[test]
    fn swap_views_across_updates_keeps_answers_fresh() {
        let (mut session, workload) = session_setup(StalenessPolicy::LazyOnHit);
        session.update(session_delta(0)).unwrap();
        // Swap while every standing view is stale: new views materialize
        // from the *updated* base graph, kept ones repair lazily.
        let kept = session.views()[0].0;
        session.swap_views(&[kept, ViewMask::APEX]).unwrap();
        session.update(session_delta(1)).unwrap();
        assert_session_answers_match_base(&mut session, &workload);
    }

    /// A delta whose observations all land on one fixed dimension-value
    /// combination — the lever for steering per-group churn.
    fn hotspot_delta(batch: usize, dims: [usize; 3]) -> sofos_store::Delta {
        use sofos_workload::synthetic::NS;
        let mut delta = sofos_store::Delta::new();
        for i in 0..3usize {
            let node = sofos_rdf::Term::blank(format!("h{batch}_{i}"));
            for (d, v) in dims.iter().enumerate() {
                delta.insert(
                    node.clone(),
                    sofos_rdf::Term::iri(format!("{NS}dim{d}")),
                    sofos_rdf::Term::iri(format!("{NS}v{d}_{v}")),
                );
            }
            delta.insert(
                node,
                sofos_rdf::Term::iri(format!("{NS}measure")),
                sofos_rdf::Term::literal_int(10 + (batch * 3 + i) as i64),
            );
        }
        delta
    }

    #[test]
    fn bounded_session_flushes_every_max_batches() {
        let (mut session, workload) = session_setup(StalenessPolicy::bounded(2, 10));
        let views = session.views().len();
        session.update(session_delta(0)).unwrap();
        assert_eq!(session.batches_since_flush(), 1);
        assert_eq!(
            session.stale_views(),
            views,
            "first batch leaves views stale"
        );
        assert!(session.maintenance().per_view.is_empty());

        // The second batch crosses max_batches: one batched flush repairs
        // everything.
        session.update(session_delta(1)).unwrap();
        assert_eq!(session.batches_since_flush(), 0);
        assert_eq!(session.stale_views(), 0, "flush repaired every view");
        assert!(!session.maintenance().per_view.is_empty());
        assert_session_answers_match_base(&mut session, &workload);
    }

    #[test]
    fn bounded_session_serves_stale_within_budget_and_repairs_past_it() {
        let (mut session, workload) = session_setup(StalenessPolicy::bounded(100, 1));
        session.update(session_delta(0)).unwrap();

        // Lag 1 <= budget 1: view answers are served stale, tagged.
        let mut tagged = 0;
        for q in &workload {
            let answer = session.query(&q.query).unwrap();
            if matches!(answer.route, Route::View(_)) {
                assert_eq!(answer.freshness.lag, 1, "one buffered batch behind");
                assert_eq!(answer.maintenance_us, 0, "no repair within budget");
                assert!(!answer.freshness.is_fresh());
                tagged += 1;
            } else {
                assert!(answer.freshness.is_fresh(), "base graph is current");
            }
        }
        assert!(tagged > 0, "some answers were served stale");

        // Two more batches: lag 3 > budget 1 forces repair on hit.
        session.update(session_delta(1)).unwrap();
        session.update(session_delta(2)).unwrap();
        for q in &workload {
            let answer = session.query(&q.query).unwrap();
            assert!(
                answer.freshness.lag <= 1,
                "the lag budget is enforced at serve time"
            );
        }
        // Repaired views now answer exactly.
        assert!(!session.maintenance().per_view.is_empty());
        session.flush_views().unwrap();
        assert_session_answers_match_base(&mut session, &workload);
    }

    #[test]
    fn session_tracks_per_group_churn() {
        let (mut session, _workload) = session_setup(StalenessPolicy::Eager);
        assert!(session.churn_profile().is_empty());
        session.update(hotspot_delta(0, [0, 0, 0])).unwrap();
        let profile = session.churn_profile();
        assert!(!profile.is_empty());
        assert!(profile.values().all(|&w| w > 0.0));

        // A disjoint hotspot adds new buckets.
        session.update(hotspot_delta(1, [2, 2, 2])).unwrap();
        assert!(session.churn_profile().len() > profile.len());
    }

    #[test]
    fn drift_detector_tracks_churn_locality() {
        let reference: FxHashMap<u64, f64> = [(1u64, 2.0), (2u64, 2.0)].into_iter().collect();
        let profile = WorkloadProfile::from_masks([ViewMask(1)]);
        let detector = DriftDetector::new(&profile, 0.25).with_churn_reference(&reference);

        // Same mix, different scale: no locality drift.
        let same: FxHashMap<u64, f64> = [(1u64, 1.0), (2u64, 1.0)].into_iter().collect();
        assert!(detector.churn_drift(&same).abs() < 1e-12);
        assert!(!detector.churn_drifted(&same));

        // Half the churn moved to a new group: TV = 0.5.
        let shifted: FxHashMap<u64, f64> = [(1u64, 2.0), (9u64, 2.0)].into_iter().collect();
        assert!((detector.churn_drift(&shifted) - 0.5).abs() < 1e-12);
        assert!(detector.churn_drifted(&shifted));

        // An empty window is "no churn", not "everything moved".
        assert_eq!(detector.churn_drift(&FxHashMap::default()), 0.0);

        // Without a reference the locality trigger is inert.
        let unanchored = DriftDetector::new(&profile, 0.25);
        assert_eq!(unanchored.churn_drift(&shifted), 0.0);
    }

    #[test]
    fn reselector_fires_on_locality_drift_under_steady_demand() {
        let (mut session, _workload) = session_setup(StalenessPolicy::Eager);
        // Steady demand: the same query before and after the hotspot
        // moves, so demand drift stays ~0 throughout.
        let demand_mask = ViewMask::full(session.facet().dim_count());
        let q =
            sofos_cube::facet_query(session.facet(), demand_mask, sofos_cube::AggOp::Sum, vec![]);
        let reference = WorkloadProfile::from_masks([demand_mask]);
        let mut reselector = Reselector::new(
            CostModelKind::AggValues,
            EngineConfig::default(),
            1.0,
            &reference,
            0.5,
        )
        .with_locality_trigger();

        for _ in 0..4 {
            session.query(&q).unwrap();
        }
        for batch in 0..3 {
            session.update(hotspot_delta(batch, [0, 0, 0])).unwrap();
        }
        // First check anchors the churn reference; steady demand, no fire.
        assert!(reselector.check(&mut session).unwrap().is_none());

        // The update stream migrates to a disjoint hotspot; demand is
        // unchanged (same query keeps arriving).
        for batch in 3..3 + Session::RATE_WINDOW {
            session.update(hotspot_delta(batch, [2, 2, 2])).unwrap();
            session.query(&q).unwrap();
        }
        let report = reselector
            .check(&mut session)
            .unwrap()
            .expect("locality drift alone triggers re-selection");
        assert!(
            report.drift <= 0.5,
            "demand stayed steady: {}",
            report.drift
        );
        assert!(
            report.locality_drift > 0.5,
            "churn moved: {}",
            report.locality_drift
        );
        assert_eq!(reselector.reselections(), 1);
        // Re-anchored: the same hotspot no longer reads as drift.
        assert!(reselector.check(&mut session).unwrap().is_none());
    }

    #[test]
    fn drift_detector_measures_total_variation() {
        let a = WorkloadProfile::from_masks([ViewMask(1), ViewMask(1), ViewMask(2), ViewMask(2)]);
        let detector = DriftDetector::new(&a, 0.25);
        // Same mix, different scale: no drift.
        let same = WorkloadProfile::from_masks([ViewMask(1), ViewMask(2)]);
        assert!(detector.drift(&same).abs() < 1e-12);
        assert!(!detector.drifted(&same));
        // Half the mass moved from mask 2 to mask 3: TV = 0.25.
        let shifted =
            WorkloadProfile::from_masks([ViewMask(1), ViewMask(1), ViewMask(2), ViewMask(3)]);
        assert!((detector.drift(&shifted) - 0.25).abs() < 1e-12);
        // Disjoint demand: TV = 1.
        let disjoint = WorkloadProfile::from_masks([ViewMask(5)]);
        assert_eq!(detector.drift(&disjoint), 1.0);
        assert!(detector.drifted(&disjoint));
        // Empty windows never fire.
        let empty = WorkloadProfile { demands: vec![] };
        assert_eq!(detector.drift(&empty), 1.0);
        assert!(!detector.drifted(&empty));
    }

    #[test]
    fn reselector_fires_on_drift_and_recovers_view_hits() {
        use sofos_cube::facet_query;
        let (mut session, _workload) = session_setup(StalenessPolicy::Eager);
        // Force a catalog that only answers apex queries.
        session.swap_views(&[ViewMask::APEX]).unwrap();
        let apex_profile = WorkloadProfile::from_masks([ViewMask::APEX]);
        let mut reselector = Reselector::new(
            CostModelKind::AggValues,
            EngineConfig::default(),
            0.0,
            &apex_profile,
            0.5,
        );

        // The workload moves to the finest grouping, which the apex
        // cannot answer: every query falls back.
        let base_mask = ViewMask::full(session.facet().dim_count());
        let q = facet_query(session.facet(), base_mask, sofos_cube::AggOp::Sum, vec![]);
        for _ in 0..6 {
            session.query(&q).unwrap();
        }
        let (hits_before, fallbacks_before) = session.routing_counts();
        assert_eq!(hits_before, 0);
        assert_eq!(fallbacks_before, 6);

        let report = reselector
            .check(&mut session)
            .unwrap()
            .expect("profile moved entirely: drift 1.0 > threshold 0.5");
        assert_eq!(report.drift, 1.0);
        assert!(
            report
                .selection
                .selected
                .iter()
                .any(|v| v.covers(base_mask)),
            "re-selection must cover the new hot demand: {:?}",
            report.selection.selected
        );
        assert!(!report.churn.added.is_empty());
        assert_eq!(reselector.reselections(), 1);

        // After the swap the same query routes to a view again.
        let answer = session.query(&q).unwrap();
        assert!(matches!(answer.route, Route::View(_)));

        // And the detector is re-anchored: the same workload no longer
        // triggers another pass.
        assert!(reselector.check(&mut session).unwrap().is_none());
    }

    #[test]
    fn reselector_options_calibrated_and_cached() {
        use sofos_cube::facet_query;
        let (mut session, _workload) = session_setup(StalenessPolicy::Eager);
        // Accumulate maintenance telemetry for calibration.
        for batch in 0..3 {
            session.update(session_delta(batch)).unwrap();
        }
        assert!(!session.maintenance().per_view.is_empty());
        let sized = SizedLattice::compute(session.dataset(), session.facet()).unwrap();
        session.swap_views(&[ViewMask::APEX]).unwrap();
        let apex_profile = WorkloadProfile::from_masks([ViewMask::APEX]);
        let mut reselector = Reselector::new(
            CostModelKind::Triples,
            EngineConfig::default(),
            1.0,
            &apex_profile,
            0.5,
        )
        .with_calibrated_maintenance()
        .with_sizing_cache(sized);

        let base_mask = ViewMask::full(session.facet().dim_count());
        let q = facet_query(session.facet(), base_mask, sofos_cube::AggOp::Sum, vec![]);
        for _ in 0..4 {
            session.query(&q).unwrap();
        }
        let report = reselector
            .check(&mut session)
            .unwrap()
            .expect("disjoint demand triggers re-selection");
        assert!(
            report.sizing_refreshed,
            "cached sizing is refreshed, not re-evaluated"
        );
        assert!(report
            .selection
            .selected
            .iter()
            .any(|v| v.covers(base_mask)));
        let answer = session.query(&q).unwrap();
        assert!(matches!(answer.route, Route::View(_)));
    }

    #[test]
    fn reselector_stays_quiet_without_drift() {
        let (mut session, workload) = session_setup(StalenessPolicy::Eager);
        let reference = WorkloadProfile::from_masks(workload.iter().map(|q| q.required));
        let mut reselector = Reselector::new(
            CostModelKind::AggValues,
            EngineConfig::default(),
            1.0,
            &reference,
            0.5,
        );
        for q in &workload {
            session.query(&q.query).unwrap();
        }
        assert!(
            reselector.check(&mut session).unwrap().is_none(),
            "replaying the reference workload is not drift"
        );
        assert_eq!(reselector.reselections(), 0);
    }

    #[test]
    fn full_base_view_answers_everything() {
        let (ds, facet, workload) = setup();
        let sized = SizedLattice::compute(&ds, &facet).unwrap();
        let profile = WorkloadProfile::uniform(&sized.lattice);
        // Budget 16 = the whole 4-dim lattice: every query must hit a view.
        let config = EngineConfig {
            budget: sofos_select::Budget::Views(16),
            ..EngineConfig::default()
        };
        let mut expanded = ds.clone();
        let offline = run_offline(
            &mut expanded,
            &sized,
            &profile,
            CostModelKind::Triples,
            &config,
        )
        .unwrap();
        let outcome = run_online(
            &expanded,
            &facet,
            &offline.view_catalog(),
            &workload,
            1,
            true,
        )
        .unwrap();
        assert_eq!(outcome.fallbacks, 0, "full lattice covers every query");
        assert!(outcome.all_valid);
    }
}
