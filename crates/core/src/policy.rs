//! The shared staleness-policy machinery — one implementation, every
//! serving backend.
//!
//! Before the [`Engine`](crate::engine::Engine) redesign, the serial and
//! epoch-based session types each carried
//! their own copy of the policy state machines: the buffered-delta log with
//! per-view cursors, the needs-refresh bookkeeping, compaction and cap
//! enforcement, bounded-flush accounting, freshness computation, and the
//! sliding demand/churn windows the adaptive layer reads. Every policy
//! change had to be written twice. This module is the extraction: the
//! backends keep only their genuinely different parts (one owns a mutable
//! [`sofos_store::Dataset`], the other an epoch store), and everything a
//! [`StalenessPolicy`] *means* lives here.
//!
//! It also hosts the [`Clock`] abstraction behind wall-clock bounded
//! staleness (`StalenessPolicy::Bounded { max_lag_ms, .. }`): serving
//! paths ask an injected clock for the age of the oldest unflushed update
//! and repair/flush before serving anything older than the budget.
//! [`SystemClock`] is the production clock; [`ManualClock`] lets tests
//! drive time by hand.

use sofos_cost::UpdateRates;
use sofos_cube::ViewMask;
use sofos_maintain::RowDelta;
use sofos_rdf::{FxHashMap, FxHashSet};
use sofos_select::WorkloadProfile;
use sofos_store::{Delta, OpKind};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

/// A monotonic millisecond clock, injectable so wall-clock staleness
/// bounds are testable without sleeping.
///
/// Implementations must be monotonic (never go backwards); the origin is
/// arbitrary — only differences are ever computed.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Milliseconds since this clock's (arbitrary) origin.
    fn now_ms(&self) -> u64;
}

/// The production clock: monotonic milliseconds since construction.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock anchored at "now".
    pub fn new() -> SystemClock {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }
}

/// A hand-driven clock for tests: time moves only when told to.
#[derive(Debug, Default)]
pub struct ManualClock {
    ms: AtomicU64,
}

impl ManualClock {
    /// A clock starting at `start_ms`.
    pub fn new(start_ms: u64) -> ManualClock {
        ManualClock {
            ms: AtomicU64::new(start_ms),
        }
    }

    /// Advance time by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.ms.fetch_add(ms, Ordering::SeqCst);
    }

    /// Shared handle (clocks are injected as `Arc<dyn Clock>`).
    pub fn shared(start_ms: u64) -> Arc<ManualClock> {
        Arc::new(ManualClock::new(start_ms))
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::SeqCst)
    }
}

/// The default clock every backend uses unless one is injected.
pub fn system_clock() -> Arc<dyn Clock> {
    Arc::new(SystemClock::new())
}

// ---------------------------------------------------------------------------
// StalenessPolicy
// ---------------------------------------------------------------------------

/// When a serving backend repairs materialized views after updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StalenessPolicy {
    /// Maintain every view inside the update call: queries always see
    /// fresh views; updates pay the full maintenance bill.
    Eager,
    /// Buffer row deltas per view; a view is repaired only when the
    /// rewriter routes a query to it. Updates are cheap, the first hit on
    /// a stale view pays its backlog.
    LazyOnHit,
    /// Drop every materialized view on the first update: all subsequent
    /// queries fall back to the base graph (zero maintenance, full
    /// benefit loss) — the paper's implicit baseline.
    Invalidate,
    /// The middle ground between eager and lazy: updates are coalesced
    /// and views maintained in *batched* flushes — every `max_batches`
    /// update batches — while reads are served from the standing state
    /// with a [`Freshness`] tag instead of waiting for repair. A read is
    /// never allowed to lag more than `max_epoch_lag` epochs (batches, in
    /// the serial backend) — nor, when `max_lag_ms` is set, to serve
    /// state whose oldest unflushed update is older than that wall-clock
    /// budget (per the injected [`Clock`]): past either bound, the serve
    /// path flushes or repairs first. `Bounded { max_batches: 1,
    /// max_epoch_lag: 0, .. }` degenerates to eager.
    Bounded {
        /// Flush cadence: maintain (and, over an epoch store, publish)
        /// after this many buffered update batches. Minimum 1.
        max_batches: usize,
        /// Serve-side staleness ceiling, in epochs behind the latest
        /// state. 0 = always fresh at serve time.
        max_epoch_lag: u64,
        /// Serve-side wall-clock ceiling: no read is served from state
        /// whose oldest unflushed update is older than this many
        /// milliseconds. `None` disables the clock check (the batch and
        /// epoch bounds still apply).
        max_lag_ms: Option<u64>,
    },
}

impl StalenessPolicy {
    /// The three classic policies (for sweeps; `Bounded` is a family, so
    /// sweeps pick their own parameter grid).
    pub const ALL: [StalenessPolicy; 3] = [
        StalenessPolicy::Eager,
        StalenessPolicy::LazyOnHit,
        StalenessPolicy::Invalidate,
    ];

    /// A bounded-staleness policy (see [`StalenessPolicy::Bounded`])
    /// without a wall-clock budget; `max_batches` is clamped to at
    /// least 1.
    pub fn bounded(max_batches: usize, max_epoch_lag: u64) -> StalenessPolicy {
        StalenessPolicy::Bounded {
            max_batches: max_batches.max(1),
            max_epoch_lag,
            max_lag_ms: None,
        }
    }

    /// A bounded-staleness policy with a wall-clock budget: reads are
    /// additionally never served from state older than `max_lag_ms`
    /// milliseconds (measured by the backend's [`Clock`]).
    pub fn bounded_ms(max_batches: usize, max_epoch_lag: u64, max_lag_ms: u64) -> StalenessPolicy {
        StalenessPolicy::Bounded {
            max_batches: max_batches.max(1),
            max_epoch_lag,
            max_lag_ms: Some(max_lag_ms),
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            StalenessPolicy::Eager => "eager",
            StalenessPolicy::LazyOnHit => "lazy-on-hit",
            StalenessPolicy::Invalidate => "invalidate",
            StalenessPolicy::Bounded { .. } => "bounded",
        }
    }

    /// The bounded flush cadence (`None` outside the bounded policy).
    pub fn flush_cadence(self) -> Option<usize> {
        match self {
            StalenessPolicy::Bounded { max_batches, .. } => Some(max_batches.max(1)),
            _ => None,
        }
    }

    /// The bounded serve-side epoch-lag budget (`None` outside bounded).
    pub fn lag_budget(self) -> Option<u64> {
        match self {
            StalenessPolicy::Bounded { max_epoch_lag, .. } => Some(max_epoch_lag),
            _ => None,
        }
    }

    /// The bounded serve-side wall-clock budget, when set.
    pub fn lag_budget_ms(self) -> Option<u64> {
        match self {
            StalenessPolicy::Bounded { max_lag_ms, .. } => max_lag_ms,
            _ => None,
        }
    }

    /// Does serving at `lag` buffered batches, with the oldest of them
    /// `time_lag_ms` old, respect this policy's staleness budgets?
    /// Non-bounded policies serve the latest state and have no budget to
    /// respect.
    pub fn within_budget(self, lag: u64, time_lag_ms: u64) -> bool {
        match self {
            StalenessPolicy::Bounded {
                max_epoch_lag,
                max_lag_ms,
                ..
            } => lag <= max_epoch_lag && max_lag_ms.is_none_or(|budget| time_lag_ms <= budget),
            _ => true,
        }
    }
}

impl std::fmt::Display for StalenessPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StalenessPolicy::Bounded {
                max_batches,
                max_epoch_lag,
                max_lag_ms,
            } => match max_lag_ms {
                Some(ms) => write!(f, "bounded({max_batches},{max_epoch_lag},{ms}ms)"),
                None => write!(f, "bounded({max_batches},{max_epoch_lag})"),
            },
            other => f.write_str(other.name()),
        }
    }
}

// ---------------------------------------------------------------------------
// Freshness
// ---------------------------------------------------------------------------

/// How fresh the state behind one answer was — the tag bounded-staleness
/// serving attaches instead of repairing before every read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Freshness {
    /// How far behind the latest known state the served state was:
    /// unpublished/unmaintained epochs for the epoch backend (buffered
    /// batches awaiting a flush), buffered update batches for the serial
    /// backend. 0 = fresh as of the serve instant.
    pub lag: u64,
    /// The epoch the answer was served at (epoch backend; the serial
    /// backend reports its applied update-batch count).
    pub epoch: u64,
    /// The oldest per-shard epoch stamp of the served snapshot — the
    /// conservative "every shard at least this fresh" tag the epoch
    /// store's per-shard bookkeeping provides for free. The serial
    /// backend has no shards: it mirrors `epoch` there, and `lag` is the
    /// staleness signal.
    pub oldest_shard_epoch: u64,
}

impl Freshness {
    /// A fully-fresh tag as of `epoch`.
    pub fn fresh(epoch: u64) -> Freshness {
        Freshness {
            lag: 0,
            epoch,
            oldest_shard_epoch: epoch,
        }
    }

    /// True when the answer reflected the latest state.
    pub fn is_fresh(&self) -> bool {
        self.lag == 0
    }

    /// JSON object (`{"lag":..,"epoch":..,"oldest_shard_epoch":..}`) —
    /// the shape bench reports embed.
    pub fn to_json_string(&self) -> String {
        format!(
            "{{\"lag\":{},\"epoch\":{},\"oldest_shard_epoch\":{}}}",
            self.lag, self.epoch, self.oldest_shard_epoch
        )
    }
}

impl std::fmt::Display for Freshness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_fresh() {
            write!(f, "fresh@{}", self.epoch)
        } else {
            write!(
                f,
                "lag {} @epoch {} (shards ≥ {})",
                self.lag, self.epoch, self.oldest_shard_epoch
            )
        }
    }
}

// ---------------------------------------------------------------------------
// PendingLog — the deferred-maintenance state machine
// ---------------------------------------------------------------------------

/// The shared buffered-delta log behind the lazy and bounded policies:
/// one stamped [`RowDelta`] per update batch (a single copy, shared by
/// every view), per-view cursors marking how far each view has consumed
/// it, and the needs-refresh set for views whose backlog is unusable.
///
/// *Stamps* are whatever monotonic counter the backend publishes state
/// under — epoch numbers for the epoch backend, applied-update-batch
/// counts for the serial one. The log never interprets them beyond
/// ordering.
#[derive(Debug, Default)]
pub struct PendingLog {
    /// `(stamp, enqueued_at_ms, rows)`, stamps ascending.
    entries: VecDeque<(u64, u64, RowDelta)>,
    /// Per-view stamp: entries with `stamp <= cursor` are already applied
    /// to that view.
    cursor: FxHashMap<u64, u64>,
    /// Views whose buffered backlog is unusable (non-star facet or a
    /// failed maintenance pass): they need a full refresh on their next
    /// hit.
    needs_refresh: FxHashSet<u64>,
    /// The stamp a view with no cursor entry is assumed to have consumed
    /// (advances as compaction drops entries).
    floor: u64,
}

impl PendingLog {
    /// Ceiling on buffered batches. A view that is never routed to would
    /// otherwise pin the log forever; past the cap, views behind the
    /// dropped entries are downgraded to a full refresh on their next hit
    /// (which a view that stale would effectively need anyway).
    pub const CAP: usize = 64;

    /// Buffer one batch's row delta under `stamp`, taken at `now_ms`.
    /// Empty deltas are dropped. Callers must enforce the cap afterwards
    /// (via [`PendingLog::enforce_cap`]) once the current stamp is known.
    pub fn push(&mut self, stamp: u64, now_ms: u64, rows: RowDelta) {
        if rows.is_empty() {
            return;
        }
        debug_assert!(
            self.entries.back().is_none_or(|&(s, _, _)| s <= stamp),
            "pending-log stamps must be monotonic"
        );
        self.entries.push_back((stamp, now_ms, rows));
    }

    /// Buffered entries not yet consumed by every view.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn cursor_of(&self, view: ViewMask) -> u64 {
        self.cursor.get(&view.0).copied().unwrap_or(self.floor)
    }

    /// Does `view` demand a full refresh?
    pub fn needs_refresh(&self, view: ViewMask) -> bool {
        self.needs_refresh.contains(&view.0)
    }

    /// Is `view` stale as of `stamp` (exclusive of later entries)?
    pub fn stale_at(&self, view: ViewMask, stamp: u64) -> bool {
        if self.needs_refresh(view) {
            return true;
        }
        let cursor = self.cursor_of(view);
        self.entries
            .iter()
            .any(|&(s, _, _)| s > cursor && s <= stamp)
    }

    /// How many buffered batches `view` lags behind ([`Freshness::lag`]
    /// under the bounded policy); `u64::MAX` when it needs a refresh.
    pub fn lag_of(&self, view: ViewMask) -> u64 {
        if self.needs_refresh(view) {
            return u64::MAX;
        }
        let cursor = self.cursor_of(view);
        self.entries.iter().filter(|&&(s, _, _)| s > cursor).count() as u64
    }

    /// Wall-clock age (ms, per `now_ms`) of the oldest entry `view` has
    /// not consumed; 0 when it is caught up. A view needing refresh is
    /// infinitely stale.
    pub fn time_lag_of(&self, view: ViewMask, now_ms: u64) -> u64 {
        if self.needs_refresh(view) {
            return u64::MAX;
        }
        let cursor = self.cursor_of(view);
        self.entries
            .iter()
            .find(|&&(s, _, _)| s > cursor)
            .map_or(0, |&(_, at, _)| now_ms.saturating_sub(at))
    }

    /// Merge the entries `view` has not applied yet; `None` when the view
    /// needs a full refresh instead.
    pub fn backlog(&self, view: ViewMask) -> Option<RowDelta> {
        if self.needs_refresh(view) {
            return None;
        }
        let cursor = self.cursor_of(view);
        let mut merged = RowDelta::default();
        for (stamp, _, rows) in &self.entries {
            if *stamp > cursor {
                merged.merge(rows);
            }
        }
        Some(merged)
    }

    /// Record that `view` consumed everything up to `stamp`. `ok = false`
    /// (a failed maintenance pass) downgrades the view to a full refresh
    /// on its next hit — the backlog is consumed either way, so a
    /// poisoned backlog cannot wedge the view in an error-retry loop
    /// while the log grows. Compacts afterwards against `views`.
    pub fn consume(&mut self, view: ViewMask, stamp: u64, ok: bool, views: &[(ViewMask, usize)]) {
        self.cursor.insert(view.0, stamp);
        if ok {
            self.needs_refresh.remove(&view.0);
        } else {
            self.needs_refresh.insert(view.0);
        }
        self.compact(views);
    }

    /// An unusable delta arrived (non-star facet): every view must fully
    /// refresh as of `stamp`; buffered rows are superseded.
    pub fn demand_refresh_all(&mut self, views: &[(ViewMask, usize)], stamp: u64) {
        for &(mask, _) in views {
            self.needs_refresh.insert(mask.0);
            self.cursor.insert(mask.0, stamp);
        }
        self.floor = self.floor.max(stamp);
        self.entries.clear();
    }

    /// Forget a view's maintenance state (it left the catalog).
    pub fn forget(&mut self, view: ViewMask) {
        self.cursor.remove(&view.0);
        self.needs_refresh.remove(&view.0);
    }

    /// Mark a freshly-materialized view as caught up as of `stamp`.
    pub fn mark_fresh(&mut self, view: ViewMask, stamp: u64) {
        self.cursor.insert(view.0, stamp);
        self.needs_refresh.remove(&view.0);
    }

    /// Drop entries every catalog view has consumed.
    pub fn compact(&mut self, views: &[(ViewMask, usize)]) {
        let consumed = views
            .iter()
            .map(|&(mask, _)| self.cursor_of(mask))
            .min()
            .unwrap_or(u64::MAX);
        while self
            .entries
            .front()
            .is_some_and(|&(stamp, _, _)| stamp <= consumed)
        {
            let (stamp, _, _) = self.entries.pop_front().expect("front checked");
            self.floor = self.floor.max(stamp);
        }
    }

    /// Keep the log bounded (see [`PendingLog::CAP`]): past the cap, the
    /// laggiest views are downgraded to a full refresh as of
    /// `current_stamp` so the oldest entries can drop. Returns how many
    /// entries the cap evicted (for telemetry; compaction of
    /// fully-consumed entries is not counted).
    pub fn enforce_cap(&mut self, views: &[(ViewMask, usize)], current_stamp: u64) -> usize {
        let mut evicted = 0;
        while self.entries.len() > Self::CAP {
            let dropped = self
                .entries
                .front()
                .map(|&(stamp, _, _)| stamp)
                .expect("len > CAP");
            // Downgrade laggards *before* the floor advances past the
            // dropped stamp — a view with no explicit cursor defaults to
            // the floor, and must still read as "behind the drop".
            for &(mask, _) in views {
                if self.cursor_of(mask) < dropped {
                    self.needs_refresh.insert(mask.0);
                    self.cursor.insert(mask.0, current_stamp);
                }
            }
            self.entries.pop_front();
            self.floor = self.floor.max(dropped);
            evicted += 1;
        }
        self.compact(views);
        evicted
    }

    /// Views currently stale as of `stamp` (routing-time staleness count).
    pub fn stale_count(&self, views: &[(ViewMask, usize)], stamp: u64) -> usize {
        views
            .iter()
            .filter(|&&(mask, _)| self.stale_at(mask, stamp))
            .count()
    }

    /// Drop everything (the invalidate policy's catalog wipe).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.cursor.clear();
        self.needs_refresh.clear();
    }
}

// ---------------------------------------------------------------------------
// FlushMeter — bounded-policy flush accounting
// ---------------------------------------------------------------------------

/// Buffered-update accounting for the bounded policy's *whole-state* lag:
/// one enqueue timestamp per buffered (not yet flushed/published) update
/// batch. The epoch backend buffers whole deltas writer-side and this
/// meter is the readers' view of how far behind the published epoch is;
/// the serial backend counts batches between scheduled flushes.
#[derive(Debug, Default)]
pub struct FlushMeter {
    enqueued_at_ms: VecDeque<u64>,
}

impl FlushMeter {
    /// Record one buffered batch, enqueued at `now_ms`; returns the new
    /// buffered count.
    pub fn enqueue(&mut self, now_ms: u64) -> usize {
        self.enqueued_at_ms.push_back(now_ms);
        self.enqueued_at_ms.len()
    }

    /// Batches currently buffered.
    pub fn buffered(&self) -> usize {
        self.enqueued_at_ms.len()
    }

    /// Wall-clock age (ms) of the oldest buffered batch; 0 when empty.
    pub fn time_lag_ms(&self, now_ms: u64) -> u64 {
        self.enqueued_at_ms
            .front()
            .map_or(0, |&at| now_ms.saturating_sub(at))
    }

    /// The scheduled flush is due: the buffer reached the policy's
    /// cadence (never true outside the bounded policy).
    pub fn cadence_due(&self, policy: StalenessPolicy) -> bool {
        policy
            .flush_cadence()
            .is_some_and(|cadence| self.buffered() >= cadence)
    }

    /// Drop the `n` oldest buffered entries (they were flushed).
    pub fn drain(&mut self, n: usize) {
        for _ in 0..n {
            self.enqueued_at_ms.pop_front();
        }
    }

    /// Drop everything (a full flush).
    pub fn clear(&mut self) {
        self.enqueued_at_ms.clear();
    }
}

// ---------------------------------------------------------------------------
// ProfileWindows — the adaptive layer's sliding observations
// ---------------------------------------------------------------------------

/// The sliding workload/update profile every backend feeds and the
/// adaptive layer ([`crate::adaptive::Reselector`]) reads: recently
/// demanded masks, per-batch insert/delete pressure, and per-group churn.
#[derive(Debug, Default)]
pub struct ProfileWindows {
    /// Recently demanded masks (grouping ∪ filters of analyzable
    /// queries), newest at the back.
    recent_demands: VecDeque<ViewMask>,
    /// Per-batch `(inserted, deleted)` default-graph triple counts.
    recent_batches: VecDeque<(usize, usize)>,
    /// Per-batch group-churn maps: finest-grouping key hash → absolute
    /// row churn.
    recent_churn: VecDeque<FxHashMap<u64, f64>>,
}

impl ProfileWindows {
    /// How many recent query demands the sliding workload profile keeps.
    pub const DEMAND_WINDOW: usize = 64;

    /// How many recent update batches the rate estimate averages over.
    pub const RATE_WINDOW: usize = 16;

    /// Record one demanded mask into the sliding window.
    pub fn observe_demand(&mut self, required: ViewMask) {
        self.recent_demands.push_back(required);
        while self.recent_demands.len() > Self::DEMAND_WINDOW {
            self.recent_demands.pop_front();
        }
    }

    /// Record one update batch's default-graph insert/delete op counts.
    pub fn observe_batch(&mut self, delta: &Delta) {
        let (mut inserted, mut deleted) = (0usize, 0usize);
        for op in delta.ops() {
            if op.graph.is_some() {
                continue; // view graphs are ours, not workload pressure
            }
            match op.kind {
                OpKind::Insert => inserted += 1,
                OpKind::Delete => deleted += 1,
            }
        }
        self.recent_batches.push_back((inserted, deleted));
        while self.recent_batches.len() > Self::RATE_WINDOW {
            self.recent_batches.pop_front();
        }
    }

    /// Record one batch's per-group churn from its row delta: which
    /// finest-granularity groups the batch touched, weighted by absolute
    /// row multiplicity. This is the *locality* half of drift detection —
    /// demand can be perfectly steady while updates migrate onto the
    /// groups of an expensive-to-maintain view.
    pub fn observe_churn(&mut self, rows: &RowDelta) {
        let mut churn: FxHashMap<u64, f64> = FxHashMap::default();
        for (dims, _measure, net) in rows.iter() {
            *churn.entry(group_bucket(dims)).or_insert(0.0) += net.unsigned_abs() as f64;
        }
        if churn.is_empty() {
            return;
        }
        self.recent_churn.push_back(churn);
        while self.recent_churn.len() > Self::RATE_WINDOW {
            self.recent_churn.pop_front();
        }
    }

    /// The sliding workload profile: demand frequencies over the last
    /// [`ProfileWindows::DEMAND_WINDOW`] analyzable queries.
    pub fn window_profile(&self) -> WorkloadProfile {
        WorkloadProfile::from_masks(self.recent_demands.iter().copied())
    }

    /// Observed update pressure, as *observation-level* operations per
    /// batch (triple-level counts divided by `star_width`, one triple per
    /// dimension plus the measure), averaged over the last
    /// [`ProfileWindows::RATE_WINDOW`] batches. Frozen when no batch
    /// arrived yet.
    pub fn observed_rates(&self, star_width: f64) -> UpdateRates {
        if self.recent_batches.is_empty() {
            return UpdateRates::FROZEN;
        }
        let batches = self.recent_batches.len() as f64;
        let (ins, del) = self
            .recent_batches
            .iter()
            .fold((0usize, 0usize), |(i, d), &(bi, bd)| (i + bi, d + bd));
        UpdateRates::new(
            ins as f64 / star_width / batches,
            del as f64 / star_width / batches,
        )
    }

    /// The sliding per-group churn distribution: group-key hash →
    /// accumulated absolute row churn, over the last
    /// [`ProfileWindows::RATE_WINDOW`] batches that produced a row delta.
    /// Un-normalized ([`crate::adaptive::DriftDetector::churn_drift`]
    /// normalizes). Empty until an update produced a row delta (the
    /// invalidate policy and non-star facets never feed it).
    pub fn churn_profile(&self) -> FxHashMap<u64, f64> {
        let mut merged: FxHashMap<u64, f64> = FxHashMap::default();
        for batch in &self.recent_churn {
            for (&bucket, &weight) in batch {
                *merged.entry(bucket).or_insert(0.0) += weight;
            }
        }
        merged
    }
}

/// Hash a finest-grouping key into a stable churn bucket.
pub(crate) fn group_bucket(dims: &[sofos_rdf::TermId]) -> u64 {
    use std::hash::Hasher;
    let mut hasher = sofos_rdf::hash::FxHasher::default();
    for dim in dims {
        hasher.write_u32(dim.0);
    }
    hasher.finish()
}

/// Total-variation distance between two weighted distributions (both
/// normalized first). Both empty → 0; exactly one empty → 1.
pub(crate) fn total_variation(p: &FxHashMap<u64, f64>, q: &FxHashMap<u64, f64>) -> f64 {
    let p_total: f64 = p.values().sum();
    let q_total: f64 = q.values().sum();
    match (p_total > 0.0, q_total > 0.0) {
        (false, false) => return 0.0,
        (true, false) | (false, true) => return 1.0,
        (true, true) => {}
    }
    let mut masses: FxHashMap<u64, (f64, f64)> = FxHashMap::default();
    for (&key, &w) in p {
        masses.entry(key).or_default().0 += w / p_total;
    }
    for (&key, &w) in q {
        masses.entry(key).or_default().1 += w / q_total;
    }
    0.5 * masses.values().map(|(a, b)| (a - b).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: i64) -> RowDelta {
        let mut delta = RowDelta::default();
        delta.record(vec![sofos_rdf::TermId(n as u32)], sofos_rdf::TermId(0), n);
        delta
    }

    #[test]
    fn manual_clock_advances_by_hand() {
        let clock = ManualClock::new(10);
        assert_eq!(clock.now_ms(), 10);
        clock.advance(5);
        assert_eq!(clock.now_ms(), 15);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now_ms();
        let b = clock.now_ms();
        assert!(b >= a);
    }

    #[test]
    fn bounded_policy_budgets() {
        let p = StalenessPolicy::bounded_ms(4, 2, 100);
        assert_eq!(p.flush_cadence(), Some(4));
        assert_eq!(p.lag_budget(), Some(2));
        assert_eq!(p.lag_budget_ms(), Some(100));
        assert!(p.within_budget(2, 100));
        assert!(!p.within_budget(3, 0), "epoch budget exceeded");
        assert!(!p.within_budget(0, 101), "clock budget exceeded");
        assert!(StalenessPolicy::Eager.within_budget(u64::MAX, u64::MAX));
        assert_eq!(p.to_string(), "bounded(4,2,100ms)");
        assert_eq!(StalenessPolicy::bounded(2, 1).to_string(), "bounded(2,1)");
    }

    #[test]
    fn freshness_display_and_json() {
        let fresh = Freshness::fresh(5);
        assert_eq!(fresh.to_string(), "fresh@5");
        let stale = Freshness {
            lag: 2,
            epoch: 7,
            oldest_shard_epoch: 6,
        };
        assert_eq!(stale.to_string(), "lag 2 @epoch 7 (shards ≥ 6)");
        assert_eq!(
            stale.to_json_string(),
            "{\"lag\":2,\"epoch\":7,\"oldest_shard_epoch\":6}"
        );
    }

    #[test]
    fn pending_log_cursors_and_compaction() {
        let a = ViewMask(1);
        let b = ViewMask(2);
        let views = vec![(a, 0usize), (b, 0usize)];
        let mut log = PendingLog::default();
        log.push(1, 0, rows(1));
        log.push(2, 10, rows(2));
        assert_eq!(log.lag_of(a), 2);
        assert!(log.stale_at(a, 2));
        assert!(!log.stale_at(a, 0), "nothing newer than stamp 0");
        assert_eq!(log.time_lag_of(a, 25), 25);

        // A consumes everything; B still pins the log.
        log.consume(a, 2, true, &views);
        assert_eq!(log.lag_of(a), 0);
        assert_eq!(log.len(), 2, "B has not consumed");
        log.consume(b, 2, true, &views);
        assert!(log.is_empty(), "fully-consumed entries compact away");

        // New entries after compaction: the floor keeps lag exact.
        log.push(3, 20, rows(3));
        assert_eq!(log.lag_of(a), 1);
        assert_eq!(log.time_lag_of(a, 50), 30);
    }

    #[test]
    fn pending_log_refresh_paths() {
        let a = ViewMask(1);
        let views = vec![(a, 0usize)];
        let mut log = PendingLog::default();
        log.push(1, 0, rows(1));
        log.demand_refresh_all(&views, 1);
        assert!(log.needs_refresh(a));
        assert_eq!(log.lag_of(a), u64::MAX);
        assert!(log.backlog(a).is_none());
        assert!(log.is_empty(), "superseded entries dropped");

        // A failed pass keeps the refresh demand; a good one clears it.
        log.consume(a, 2, false, &views);
        assert!(log.needs_refresh(a));
        log.consume(a, 2, true, &views);
        assert!(!log.needs_refresh(a));
    }

    #[test]
    fn pending_log_cap_downgrades_laggards() {
        let a = ViewMask(1);
        let b = ViewMask(2);
        let views = vec![(a, 0usize), (b, 0usize)];
        let mut log = PendingLog::default();
        for stamp in 1..=(PendingLog::CAP as u64 + 4) {
            log.push(stamp, stamp, rows(stamp as i64));
            // A keeps up; B never consumes.
            log.consume(a, stamp, true, &views);
            log.enforce_cap(&views, stamp);
        }
        assert!(log.len() <= PendingLog::CAP);
        assert!(log.needs_refresh(b), "the laggard was downgraded");
        assert!(!log.needs_refresh(a));
    }

    #[test]
    fn flush_meter_tracks_age_and_cadence() {
        let mut meter = FlushMeter::default();
        assert_eq!(meter.time_lag_ms(100), 0);
        meter.enqueue(10);
        meter.enqueue(30);
        assert_eq!(meter.buffered(), 2);
        assert_eq!(meter.time_lag_ms(100), 90);
        assert!(meter.cadence_due(StalenessPolicy::bounded(2, 0)));
        assert!(!meter.cadence_due(StalenessPolicy::Eager));
        meter.drain(1);
        assert_eq!(meter.time_lag_ms(100), 70, "next-oldest takes over");
        meter.clear();
        assert_eq!(meter.buffered(), 0);
    }

    #[test]
    fn profile_windows_track_demand_rates_and_churn() {
        let mut windows = ProfileWindows::default();
        assert_eq!(windows.window_profile().total_weight(), 0.0);
        assert_eq!(windows.observed_rates(4.0), UpdateRates::FROZEN);
        windows.observe_demand(ViewMask(3));
        assert_eq!(windows.window_profile().total_weight(), 1.0);

        let mut delta = Delta::new();
        for i in 0..8 {
            delta.insert(
                sofos_rdf::Term::blank(format!("o{i}")),
                sofos_rdf::Term::iri("http://e/p"),
                sofos_rdf::Term::literal_int(i),
            );
        }
        windows.observe_batch(&delta);
        let rates = windows.observed_rates(4.0);
        assert!((rates.inserts_per_round - 2.0).abs() < 1e-9);

        windows.observe_churn(&rows(5));
        assert_eq!(windows.churn_profile().len(), 1);
    }

    #[test]
    fn total_variation_edges() {
        let empty = FxHashMap::default();
        let one: FxHashMap<u64, f64> = [(1u64, 1.0)].into_iter().collect();
        assert_eq!(total_variation(&empty, &empty), 0.0);
        assert_eq!(total_variation(&one, &empty), 1.0);
        assert!(total_variation(&one, &one).abs() < 1e-12);
    }
}
