//! Report structures and rendering (text tables + CSV).
//!
//! These are the programmatic equivalents of the demo GUI's panels
//! (Figure 3): the lattice view, the selection outcome, and the query
//! performance analyzer. Structures derive `serde::Serialize` so downstream
//! users can plug any serializer; SOFOS itself ships text and CSV renderers
//! (no JSON dependency).

use crate::offline::OfflineOutcome;
use crate::online::OnlineOutcome;
use crate::timing::TimeSummary;
use serde::Serialize;

/// One cost model's end-to-end measurements.
#[derive(Debug, Clone, Serialize)]
pub struct ModelRow {
    /// Cost model name.
    pub model: String,
    /// Human-readable names of the selected views.
    pub selected_views: Vec<String>,
    /// Model preparation/training time (µs).
    pub training_us: u64,
    /// Selection algorithm time (µs).
    pub selection_us: u64,
    /// Materialization time (µs).
    pub materialization_us: u64,
    /// Total triples across materialized view graphs.
    pub materialized_triples: usize,
    /// Total rows across materialized views.
    pub materialized_rows: usize,
    /// Bytes added by materialization.
    pub added_bytes: usize,
    /// `expanded / base` storage ratio.
    pub storage_amplification: f64,
    /// Queries answered from views.
    pub view_hits: usize,
    /// Queries that fell back to the base graph.
    pub fallbacks: usize,
    /// Online latency summary.
    pub latency: TimeSummary,
    /// `baseline_total / total` — wall-clock speedup on the workload.
    pub speedup: f64,
    /// Did every validated query match the base-graph answer?
    pub all_valid: bool,
}

/// The cross-model comparison for one dataset + facet (demo step
/// "Exploring Cost Models"; experiment E1).
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonReport {
    /// Dataset name.
    pub dataset: String,
    /// Facet id.
    pub facet: String,
    /// Facet dimension count.
    pub dims: usize,
    /// Budget description (e.g. `4 views`).
    pub budget: String,
    /// Number of workload queries.
    pub queries: usize,
    /// Lattice sizing time (µs), shared across models.
    pub sizing_us: u64,
    /// No-views baseline latency.
    pub baseline: TimeSummary,
    /// Per-model rows.
    pub models: Vec<ModelRow>,
}

impl ModelRow {
    /// Assemble a row from the offline and online outcomes.
    pub fn new(
        offline: &OfflineOutcome,
        online: &OnlineOutcome,
        baseline: &TimeSummary,
        view_names: Vec<String>,
    ) -> ModelRow {
        ModelRow {
            model: offline.model.clone(),
            selected_views: view_names,
            training_us: offline.training_us,
            selection_us: offline.selection_us,
            materialization_us: offline.materialization_us,
            materialized_triples: offline.materialized.iter().map(|v| v.stats.triples).sum(),
            materialized_rows: offline.materialized.iter().map(|v| v.stats.rows).sum(),
            added_bytes: offline.expanded_bytes.saturating_sub(offline.base_bytes),
            storage_amplification: offline.storage_amplification(),
            view_hits: online.view_hits,
            fallbacks: online.fallbacks,
            latency: online.summary,
            speedup: if online.summary.total_us > 0 {
                baseline.total_us as f64 / online.summary.total_us as f64
            } else {
                f64::INFINITY
            },
            all_valid: online.all_valid,
        }
    }
}

impl ComparisonReport {
    /// Render the comparison as an aligned text table (the paper's panel ④).
    pub fn to_table(&self) -> String {
        let headers = [
            "model",
            "views",
            "hit/q",
            "select ms",
            "mat. ms",
            "space amp",
            "total ms",
            "mean µs",
            "p95 µs",
            "speedup",
            "valid",
        ];
        let mut rows: Vec<Vec<String>> = Vec::new();
        rows.push(vec![
            "(no views)".into(),
            "0".into(),
            format!("0/{}", self.queries),
            "-".into(),
            "-".into(),
            "1.00".into(),
            format!("{:.2}", self.baseline.total_us as f64 / 1000.0),
            format!("{:.0}", self.baseline.mean_us),
            self.baseline.p95_us.to_string(),
            "1.00".into(),
            "-".into(),
        ]);
        for m in &self.models {
            rows.push(vec![
                m.model.clone(),
                m.selected_views.len().to_string(),
                format!("{}/{}", m.view_hits, self.queries),
                format!("{:.2}", m.selection_us as f64 / 1000.0),
                format!("{:.2}", m.materialization_us as f64 / 1000.0),
                format!("{:.2}", m.storage_amplification),
                format!("{:.2}", m.latency.total_us as f64 / 1000.0),
                format!("{:.0}", m.latency.mean_us),
                m.latency.p95_us.to_string(),
                format!("{:.2}", m.speedup),
                if m.all_valid {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
        let mut out = format!(
            "dataset={} facet={} dims={} budget={} queries={} (lattice sizing {:.1} ms)\n",
            self.dataset,
            self.facet,
            self.dims,
            self.budget,
            self.queries,
            self.sizing_us as f64 / 1000.0
        );
        out.push_str(&render_table(&headers, &rows));
        out
    }

    /// Render as CSV (one row per model, baseline first).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "dataset,facet,model,views,view_hits,queries,training_us,selection_us,\
             materialization_us,storage_amplification,total_us,mean_us,median_us,p95_us,\
             speedup,all_valid\n",
        );
        out.push_str(&format!(
            "{},{},no-views,0,0,{},0,0,0,1.0,{},{:.1},{},{},1.0,true\n",
            self.dataset,
            self.facet,
            self.queries,
            self.baseline.total_us,
            self.baseline.mean_us,
            self.baseline.median_us,
            self.baseline.p95_us,
        ));
        for m in &self.models {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{:.4},{},{:.1},{},{},{:.4},{}\n",
                self.dataset,
                self.facet,
                m.model,
                m.selected_views.len(),
                m.view_hits,
                self.queries,
                m.training_us,
                m.selection_us,
                m.materialization_us,
                m.storage_amplification,
                m.latency.total_us,
                m.latency.mean_us,
                m.latency.median_us,
                m.latency.p95_us,
                m.speedup,
                m.all_valid,
            ));
        }
        out
    }
}

/// Render an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("{:<w$}  ", h, w = widths[i]));
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        out.push_str(&"-".repeat(widths[i]));
        out.push_str("  ");
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "long-header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyyyy".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with("------"));
        // Columns align: the second column starts at the same offset.
        let pos0 = lines[2].find('1').unwrap();
        let pos1 = lines[3].find('2').unwrap();
        assert_eq!(pos0, pos1);
    }

    #[test]
    fn csv_has_header_and_baseline() {
        let report = ComparisonReport {
            dataset: "d".into(),
            facet: "f".into(),
            dims: 3,
            budget: "4 views".into(),
            queries: 10,
            sizing_us: 1000,
            baseline: TimeSummary::from_samples(&[10, 20]),
            models: vec![],
        };
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("dataset,facet,model"));
        assert!(csv.contains("no-views"));
        let table = report.to_table();
        assert!(table.contains("(no views)"));
    }
}
