//! Timing helpers: warmup + median-of-N measurement.
//!
//! Per the perf-book guidance, single wall-clock samples of sub-millisecond
//! queries are noisy; every reported query time in SOFOS is the median of
//! `reps` runs after one warmup run.
//!
//! Summary statistics ([`TimeSummary`]) are computed through the same
//! [`sofos_telemetry::Histogram`] the engine's metrics layer records into,
//! so a bench summary and a metrics-snapshot quantile agree on the same
//! bucketing (exact below 32 µs, < 1/32 relative error above). Count, sum,
//! mean, and max stay exact. Note the telemetry `noop` feature disables
//! histogram recording entirely — benches must not enable it.

use sofos_telemetry::Histogram;
use std::time::Instant;

/// Run `f` once for warmup, then `reps` timed runs; returns the median
/// duration in microseconds and the last result.
pub fn measure_median<T>(reps: usize, mut f: impl FnMut() -> T) -> (u64, T) {
    let reps = reps.max(1);
    let mut result = f(); // warmup
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        result = f();
        samples.push(start.elapsed().as_micros() as u64);
    }
    samples.sort_unstable();
    (samples[samples.len() / 2], result)
}

/// Time a single execution in microseconds.
pub fn measure_once<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let start = Instant::now();
    let result = f();
    (start.elapsed().as_micros() as u64, result)
}

/// Summary statistics over a set of per-query times.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct TimeSummary {
    /// Total of all samples (µs).
    pub total_us: u64,
    /// Mean (µs).
    pub mean_us: f64,
    /// Median (µs).
    pub median_us: u64,
    /// 95th percentile (µs).
    pub p95_us: u64,
    /// Maximum (µs).
    pub max_us: u64,
}

impl TimeSummary {
    /// Summarize a sample vector (empty ⇒ all zeros).
    ///
    /// Quantiles are nearest-rank over the telemetry histogram's buckets,
    /// so they match what a [`sofos_telemetry::MetricsSnapshot`] reports
    /// for the same samples.
    pub fn from_samples(samples: &[u64]) -> TimeSummary {
        let hist = Histogram::new();
        hist.record_all(samples);
        TimeSummary::from_histogram(&hist.snapshot())
    }

    /// Summarize an already-recorded histogram snapshot (e.g. the serve
    /// latency histogram out of an engine's metrics snapshot).
    pub fn from_histogram(snapshot: &sofos_telemetry::HistogramSnapshot) -> TimeSummary {
        TimeSummary {
            total_us: snapshot.sum,
            mean_us: snapshot.mean(),
            median_us: snapshot.p50(),
            p95_us: snapshot.p95(),
            max_us: snapshot.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_measure_returns_result() {
        let (us, value) = measure_median(3, || 21 * 2);
        assert_eq!(value, 42);
        // Trivial closures run in far under a second.
        assert!(us < 1_000_000);
    }

    #[test]
    fn measure_once_times() {
        let (us, v) = measure_once(|| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            7
        });
        assert_eq!(v, 7);
        assert!(us >= 1_500, "slept 2ms, measured {us}µs");
    }

    #[test]
    fn summary_statistics() {
        let s = TimeSummary::from_samples(&[10, 20, 30, 40, 100]);
        assert_eq!(s.total_us, 200);
        assert_eq!(s.mean_us, 40.0);
        assert_eq!(s.median_us, 30);
        assert_eq!(s.max_us, 100);
        assert_eq!(s.p95_us, 100);
    }

    #[test]
    fn summary_of_empty() {
        let s = TimeSummary::from_samples(&[]);
        assert_eq!(s.total_us, 0);
        assert_eq!(s.median_us, 0);
    }

    #[test]
    fn reps_zero_is_clamped() {
        let (_, v) = measure_median(0, || 1);
        assert_eq!(v, 1);
    }
}
