//! Result-set equivalence: the correctness oracle for view answering.
//!
//! A query answered from a materialized view must return exactly the same
//! bag of rows as the same query answered from the base graph. Cells are
//! compared by SPARQL *value* (so `"75"^^xsd:integer` equals
//! `"75"^^xsd:decimal` when numerically equal) because re-aggregation may
//! legally change the numeric datatype (e.g. SUM of stored sums).

use sofos_sparql::{QueryResults, Value};
use std::cmp::Ordering;

/// Are two result sets equivalent as bags of rows (column order must
/// match; row order is ignored)?
pub fn results_equivalent(a: &QueryResults, b: &QueryResults) -> bool {
    if a.vars.len() != b.vars.len() || a.rows.len() != b.rows.len() {
        return false;
    }
    let mut rows_a = decode(a);
    let mut rows_b = decode(b);
    sort_rows(&mut rows_a);
    sort_rows(&mut rows_b);
    rows_a.iter().zip(&rows_b).all(|(ra, rb)| {
        ra.iter().zip(rb).all(|(ca, cb)| match (ca, cb) {
            (None, None) => true,
            (Some(x), Some(y)) => x.sparql_eq(y),
            _ => false,
        })
    })
}

fn decode(results: &QueryResults) -> Vec<Vec<Option<Value>>> {
    results
        .rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|cell| cell.as_ref().map(Value::from_term))
                .collect()
        })
        .collect()
}

fn sort_rows(rows: &mut [Vec<Option<Value>>]) {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b) {
            let ord = match (x, y) {
                (None, None) => Ordering::Equal,
                (None, Some(_)) => Ordering::Less,
                (Some(_), None) => Ordering::Greater,
                (Some(vx), Some(vy)) => vx.total_cmp(vy),
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_rdf::{Literal, Term};

    fn results(rows: Vec<Vec<Option<Term>>>) -> QueryResults {
        QueryResults {
            vars: vec!["a".into(), "b".into()],
            rows,
        }
    }

    #[test]
    fn equal_up_to_row_order() {
        let a = results(vec![
            vec![Some(Term::iri("x")), Some(Term::literal_int(1))],
            vec![Some(Term::iri("y")), Some(Term::literal_int(2))],
        ]);
        let b = results(vec![
            vec![Some(Term::iri("y")), Some(Term::literal_int(2))],
            vec![Some(Term::iri("x")), Some(Term::literal_int(1))],
        ]);
        assert!(results_equivalent(&a, &b));
    }

    #[test]
    fn numeric_datatype_differences_are_tolerated() {
        let a = results(vec![vec![
            Some(Term::iri("x")),
            Some(Term::literal_int(75)),
        ]]);
        let b = results(vec![vec![
            Some(Term::iri("x")),
            Some(Term::Literal(Literal::decimal("75".parse().unwrap()))),
        ]]);
        assert!(results_equivalent(&a, &b));
    }

    #[test]
    fn detects_differences() {
        let a = results(vec![vec![Some(Term::iri("x")), Some(Term::literal_int(1))]]);
        let b = results(vec![vec![Some(Term::iri("x")), Some(Term::literal_int(2))]]);
        assert!(!results_equivalent(&a, &b));
        let c = results(vec![]);
        assert!(!results_equivalent(&a, &c), "row-count mismatch");
    }

    #[test]
    fn unbound_cells_must_match() {
        let a = results(vec![vec![Some(Term::iri("x")), None]]);
        let b = results(vec![vec![Some(Term::iri("x")), None]]);
        let c = results(vec![vec![Some(Term::iri("x")), Some(Term::literal_int(0))]]);
        assert!(results_equivalent(&a, &b));
        assert!(!results_equivalent(&a, &c));
    }

    #[test]
    fn duplicate_rows_respect_multiplicity() {
        let twice = results(vec![
            vec![Some(Term::iri("x")), Some(Term::literal_int(1))],
            vec![Some(Term::iri("x")), Some(Term::literal_int(1))],
        ]);
        let once = results(vec![vec![Some(Term::iri("x")), Some(Term::literal_int(1))]]);
        assert!(!results_equivalent(&twice, &once), "bags, not sets");
    }
}
