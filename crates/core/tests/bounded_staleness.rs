//! The bounded-staleness guarantee, as a property: across random
//! update/query interleavings and policy parameters, a `Bounded` session
//! never serves a read older than `max_epoch_lag` epochs — and once
//! drained (flushed), answers are exactly the base-graph answers.

use proptest::prelude::*;
use sofos_core::{
    results_equivalent, run_offline, ConcurrentSession, EngineConfig, Session, SizedLattice,
    StalenessPolicy,
};
use sofos_cost::CostModelKind;
use sofos_cube::{AggOp, Facet, ViewMask};
use sofos_rdf::Term;
use sofos_select::WorkloadProfile;
use sofos_sparql::Evaluator;
use sofos_store::{Dataset, Delta};
use sofos_workload::{generate_workload, synthetic, GeneratedQuery, WorkloadConfig};
use std::sync::OnceLock;

struct Setup {
    expanded: Dataset,
    facet: Facet,
    catalog: Vec<(ViewMask, usize)>,
    workload: Vec<GeneratedQuery>,
}

/// The offline phase is by far the most expensive part of a case; build
/// it once and clone per case.
fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let g = synthetic::generate(&synthetic::Config {
            observations: 90,
            agg: AggOp::Avg,
            ..synthetic::Config::default()
        });
        let facet = g.facets[0].clone();
        let mut ds = g.dataset;
        let sized = SizedLattice::compute(&ds, &facet).expect("lattice sizes");
        let profile = WorkloadProfile::uniform(&sized.lattice);
        let offline = run_offline(
            &mut ds,
            &sized,
            &profile,
            CostModelKind::AggValues,
            &EngineConfig::default(),
        )
        .expect("offline phase runs");
        let workload = generate_workload(
            &ds,
            &facet,
            &WorkloadConfig {
                num_queries: 8,
                ..WorkloadConfig::default()
            },
        );
        Setup {
            catalog: offline.view_catalog(),
            expanded: ds,
            facet,
            workload,
        }
    })
}

/// One update batch: three fresh observations plus one deletion.
fn update_delta(batch: usize) -> Delta {
    use sofos_workload::synthetic::NS;
    let mut delta = Delta::new();
    for i in 0..3usize {
        let node = Term::blank(format!("b{batch}_{i}"));
        for d in 0..3usize {
            delta.insert(
                node.clone(),
                Term::iri(format!("{NS}dim{d}")),
                Term::iri(format!("{NS}v{d}_{}", (batch + i + d) % 3)),
            );
        }
        delta.insert(
            node,
            Term::iri(format!("{NS}measure")),
            Term::literal_int(50 + (batch * 11 + i) as i64),
        );
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Concurrent sessions: every answered read carries a freshness tag
    /// within the configured lag budget, no matter how updates and
    /// queries interleave; a drained session answers exactly.
    #[test]
    fn concurrent_bounded_never_serves_past_the_lag_budget(
        ops in proptest::collection::vec(proptest::bool::weighted(0.6), 4..20),
        max_batches in 1usize..5,
        max_epoch_lag in 0u64..4,
    ) {
        let s = setup();
        let session = ConcurrentSession::new(
            s.expanded.clone(),
            s.facet.clone(),
            s.catalog.clone(),
            StalenessPolicy::bounded(max_batches, max_epoch_lag),
            4,
            2,
        );
        let (mut batch, mut next_query) = (0usize, 0usize);
        for is_update in ops {
            if is_update {
                session.update(update_delta(batch)).expect("update runs");
                batch += 1;
                prop_assert!(
                    session.buffered_updates() < max_batches.max(1),
                    "the flush cadence caps the buffer"
                );
            } else {
                let q = &s.workload[next_query % s.workload.len()];
                next_query += 1;
                let answer = session.query(&q.query).expect("query runs");
                prop_assert!(
                    answer.freshness.lag <= max_epoch_lag,
                    "served lag {} > budget {}",
                    answer.freshness.lag,
                    max_epoch_lag
                );
                prop_assert!(
                    answer.freshness.oldest_shard_epoch <= answer.freshness.epoch,
                    "shard stamps never lead the epoch"
                );
            }
        }
        // Drain and verify exactness against the published snapshot.
        session.flush().expect("flush runs");
        prop_assert_eq!(session.buffered_updates(), 0);
        for q in &s.workload {
            let answer = session.query(&q.query).expect("query runs");
            prop_assert!(answer.freshness.is_fresh());
            let snapshot = session.pin();
            let reference = Evaluator::new(snapshot.dataset())
                .evaluate(&q.query)
                .expect("base evaluation runs");
            prop_assert!(
                results_equivalent(&answer.results, &reference),
                "drained bounded session diverged for {}",
                q.text
            );
        }
    }

    /// Serial sessions: same budget property over the batch-counted lag,
    /// and exactness after an explicit flush.
    #[test]
    fn serial_bounded_never_serves_past_the_lag_budget(
        ops in proptest::collection::vec(proptest::bool::weighted(0.6), 4..20),
        max_batches in 1usize..5,
        max_epoch_lag in 0u64..4,
    ) {
        let s = setup();
        let mut session = Session::new(
            s.expanded.clone(),
            s.facet.clone(),
            s.catalog.clone(),
            StalenessPolicy::bounded(max_batches, max_epoch_lag),
        );
        let (mut batch, mut next_query) = (0usize, 0usize);
        for is_update in ops {
            if is_update {
                session.update(update_delta(batch)).expect("update runs");
                batch += 1;
                prop_assert!(session.batches_since_flush() < max_batches.max(1));
            } else {
                let q = &s.workload[next_query % s.workload.len()];
                next_query += 1;
                let answer = session.query(&q.query).expect("query runs");
                prop_assert!(
                    answer.freshness.lag <= max_epoch_lag,
                    "served lag {} > budget {}",
                    answer.freshness.lag,
                    max_epoch_lag
                );
            }
        }
        session.flush_views().expect("flush runs");
        for q in &s.workload {
            let answer = session.query(&q.query).expect("query runs");
            prop_assert!(answer.freshness.is_fresh());
            let reference = Evaluator::new(session.dataset())
                .evaluate(&q.query)
                .expect("base evaluation runs");
            prop_assert!(
                results_equivalent(&answer.results, &reference),
                "drained bounded session diverged for {}",
                q.text
            );
        }
    }
}
