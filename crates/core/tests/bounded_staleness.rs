//! The bounded-staleness guarantee, as a property: across random
//! update/query interleavings and policy parameters, a `Bounded` engine
//! never serves a read older than `max_epoch_lag` epochs — nor, when a
//! wall-clock budget is set, older than `max_lag_ms` milliseconds under a
//! hand-driven clock — and once drained (flushed), answers are exactly
//! the base-graph answers. Both backends, one front door.

use proptest::prelude::*;
use sofos_core::{
    results_equivalent, run_offline, Backend, Clock, Engine, EngineConfig, ManualClock, Route,
    SizedLattice, StalenessPolicy,
};
use sofos_cost::CostModelKind;
use sofos_cube::{AggOp, Facet, ViewMask};
use sofos_rdf::Term;
use sofos_select::WorkloadProfile;
use sofos_sparql::Evaluator;
use sofos_store::{Dataset, Delta};
use sofos_workload::{generate_workload, synthetic, GeneratedQuery, WorkloadConfig};
use std::sync::Arc;
use std::sync::OnceLock;

struct Setup {
    expanded: Dataset,
    facet: Facet,
    catalog: Vec<(ViewMask, usize)>,
    workload: Vec<GeneratedQuery>,
}

/// The offline phase is by far the most expensive part of a case; build
/// it once and clone per case.
fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let g = synthetic::generate(&synthetic::Config {
            observations: 90,
            agg: AggOp::Avg,
            ..synthetic::Config::default()
        });
        let facet = g.facets[0].clone();
        let mut ds = g.dataset;
        let sized = SizedLattice::compute(&ds, &facet).expect("lattice sizes");
        let profile = WorkloadProfile::uniform(&sized.lattice);
        let offline = run_offline(
            &mut ds,
            &sized,
            &profile,
            CostModelKind::AggValues,
            &EngineConfig::default(),
        )
        .expect("offline phase runs");
        let workload = generate_workload(
            &ds,
            &facet,
            &WorkloadConfig {
                num_queries: 8,
                ..WorkloadConfig::default()
            },
        );
        Setup {
            catalog: offline.view_catalog(),
            expanded: ds,
            facet,
            workload,
        }
    })
}

/// One update batch: three fresh observations.
fn update_delta(batch: usize) -> Delta {
    use sofos_workload::synthetic::NS;
    let mut delta = Delta::new();
    for i in 0..3usize {
        let node = Term::blank(format!("b{batch}_{i}"));
        for d in 0..3usize {
            delta.insert(
                node.clone(),
                Term::iri(format!("{NS}dim{d}")),
                Term::iri(format!("{NS}v{d}_{}", (batch + i + d) % 3)),
            );
        }
        delta.insert(
            node,
            Term::iri(format!("{NS}measure")),
            Term::literal_int(50 + (batch * 11 + i) as i64),
        );
    }
    delta
}

fn bounded_engine(backend: Backend, policy: StalenessPolicy, clock: Arc<ManualClock>) -> Engine {
    let s = setup();
    Engine::builder()
        .dataset(s.expanded.clone())
        .facet(s.facet.clone())
        .catalog(s.catalog.clone())
        .staleness(policy)
        .backend(backend)
        .clock(clock as Arc<dyn Clock>)
        .build()
        .expect("engine builds")
}

fn drain_and_verify(engine: &Engine) -> Result<(), TestCaseError> {
    let s = setup();
    engine.flush().expect("flush runs");
    prop_assert_eq!(engine.buffered_updates(), 0);
    let snapshot = engine.snapshot();
    let reference = Evaluator::new(&snapshot);
    for q in &s.workload {
        let answer = engine.query(&q.query).expect("query runs");
        prop_assert!(answer.freshness.is_fresh());
        let base = reference.evaluate(&q.query).expect("base evaluation runs");
        prop_assert!(
            results_equivalent(&answer.results, &base),
            "drained bounded engine diverged for {}",
            q.text
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Epoch backend: every answered read carries a freshness tag within
    /// the configured lag budget, no matter how updates and queries
    /// interleave; a drained engine answers exactly.
    #[test]
    fn epoch_bounded_never_serves_past_the_lag_budget(
        ops in proptest::collection::vec(proptest::bool::weighted(0.6), 4..20),
        max_batches in 1usize..5,
        max_epoch_lag in 0u64..4,
    ) {
        let s = setup();
        let engine = bounded_engine(
            Backend::Epoch { shards: 4, threads: 2 },
            StalenessPolicy::bounded(max_batches, max_epoch_lag),
            ManualClock::shared(0),
        );
        let (mut batch, mut next_query) = (0usize, 0usize);
        for is_update in ops {
            if is_update {
                engine.update(update_delta(batch)).expect("update runs");
                batch += 1;
                prop_assert!(
                    engine.buffered_updates() < max_batches.max(1),
                    "the flush cadence caps the buffer"
                );
            } else {
                let q = &s.workload[next_query % s.workload.len()];
                next_query += 1;
                let answer = engine.query(&q.query).expect("query runs");
                prop_assert!(
                    answer.freshness.lag <= max_epoch_lag,
                    "served lag {} > budget {}",
                    answer.freshness.lag,
                    max_epoch_lag
                );
                prop_assert!(
                    answer.freshness.oldest_shard_epoch <= answer.freshness.epoch,
                    "shard stamps never lead the epoch"
                );
            }
        }
        drain_and_verify(&engine)?;
    }

    /// Serial backend: same budget property over the batch-counted lag,
    /// and exactness after an explicit flush.
    #[test]
    fn serial_bounded_never_serves_past_the_lag_budget(
        ops in proptest::collection::vec(proptest::bool::weighted(0.6), 4..20),
        max_batches in 1usize..5,
        max_epoch_lag in 0u64..4,
    ) {
        let s = setup();
        let engine = bounded_engine(
            Backend::Serial,
            StalenessPolicy::bounded(max_batches, max_epoch_lag),
            ManualClock::shared(0),
        );
        let (mut batch, mut next_query) = (0usize, 0usize);
        for is_update in ops {
            if is_update {
                engine.update(update_delta(batch)).expect("update runs");
                batch += 1;
                prop_assert!(engine.buffered_updates() < max_batches.max(1));
            } else {
                let q = &s.workload[next_query % s.workload.len()];
                next_query += 1;
                let answer = engine.query(&q.query).expect("query runs");
                prop_assert!(
                    answer.freshness.lag <= max_epoch_lag,
                    "served lag {} > budget {}",
                    answer.freshness.lag,
                    max_epoch_lag
                );
            }
        }
        drain_and_verify(&engine)?;
    }

    /// Wall-clock budget (`max_lag_ms`), under a hand-driven clock: once
    /// the clock has moved past the budget since the last update, no
    /// view-routed read may serve buffered state — on either backend.
    /// (Generous batch/epoch budgets ensure only the clock can trip.)
    #[test]
    fn bounded_wall_clock_budget_is_enforced_on_both_backends(
        ops in proptest::collection::vec(
            (proptest::bool::weighted(0.5), 0u64..120), 4..16),
        max_lag_ms in 20u64..200,
    ) {
        let s = setup();
        for backend in [Backend::Serial, Backend::Epoch { shards: 2, threads: 2 }] {
            let clock = ManualClock::shared(0);
            let engine = bounded_engine(
                backend,
                StalenessPolicy::bounded_ms(100, 100, max_lag_ms),
                clock.clone(),
            );
            let mut last_update_at: Option<u64> = None;
            let (mut batch, mut next_query) = (0usize, 0usize);
            for (is_update, advance_ms) in &ops {
                clock.advance(*advance_ms);
                if *is_update {
                    engine.update(update_delta(batch)).expect("update runs");
                    batch += 1;
                    last_update_at = Some(clock.now_ms());
                } else {
                    let q = &s.workload[next_query % s.workload.len()];
                    next_query += 1;
                    let answer = engine.query(&q.query).expect("query runs");
                    // If even the *newest* buffered update is older than
                    // the budget, every buffered entry is, so a
                    // view-routed answer must have been repaired/flushed
                    // to lag 0 before serving.
                    let all_stale = last_update_at
                        .is_some_and(|at| clock.now_ms().saturating_sub(at) > max_lag_ms);
                    if all_stale && matches!(answer.route, Route::View(_)) {
                        prop_assert_eq!(
                            answer.freshness.lag,
                            0,
                            "a read past max_lag_ms={} served buffered state on {}",
                            max_lag_ms,
                            engine.backend_name()
                        );
                    }
                }
            }
            drain_and_verify(&engine)?;
        }
    }
}
