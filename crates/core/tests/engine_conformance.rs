//! Backend conformance: the serial and epoch backends are the SAME
//! engine, as a property.
//!
//! One scenario grid — staleness policy × delta mix × shard/thread
//! configuration × update/query interleaving — drives a [`Backend::Serial`]
//! and a [`Backend::Epoch`] engine through identical operation sequences
//! (sharing one [`ManualClock`], so even wall-clock bounded staleness is
//! deterministic) and asserts:
//!
//! * **in-budget freshness** on every answered read, on both backends
//!   (batch-lag budget always; the wall-clock budget is additionally
//!   model-checked against the test's own enqueue-time mirror on the
//!   epoch backend);
//! * **bit-equal answers** between the backends at every read under the
//!   always-current policies (eager / lazy-on-hit / invalidate), and at
//!   every drained point under bounded staleness (where the backends
//!   legitimately serve different prefixes mid-stream: the serial backend
//!   applies base deltas immediately, the epoch backend buffers whole
//!   batches);
//! * **identical catalogs and exact answers** after a final drain, both
//!   backends agreeing with a from-scratch base evaluation.

use proptest::prelude::*;
use sofos_core::{
    results_equivalent, run_offline, Backend, Clock, Engine, EngineConfig, ManualClock, Route,
    SizedLattice, StalenessPolicy,
};
use sofos_cost::CostModelKind;
use sofos_cube::{AggOp, Facet, ViewMask};
use sofos_rdf::Term;
use sofos_select::WorkloadProfile;
use sofos_sparql::Evaluator;
use sofos_store::{Dataset, Delta};
use sofos_workload::{generate_workload, synthetic, GeneratedQuery, WorkloadConfig};
use std::collections::VecDeque;
use std::sync::Arc;
use std::sync::OnceLock;

struct Setup {
    expanded: Dataset,
    facet: Facet,
    catalog: Vec<(ViewMask, usize)>,
    workload: Vec<GeneratedQuery>,
}

/// The offline phase is by far the most expensive part of a case; build
/// it once and clone per case.
fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let g = synthetic::generate(&synthetic::Config {
            observations: 90,
            agg: AggOp::Avg,
            ..synthetic::Config::default()
        });
        let facet = g.facets[0].clone();
        let mut ds = g.dataset;
        let sized = SizedLattice::compute(&ds, &facet).expect("lattice sizes");
        let profile = WorkloadProfile::uniform(&sized.lattice);
        let offline = run_offline(
            &mut ds,
            &sized,
            &profile,
            CostModelKind::AggValues,
            &EngineConfig::default(),
        )
        .expect("offline phase runs");
        let workload = generate_workload(
            &ds,
            &facet,
            &WorkloadConfig {
                num_queries: 8,
                ..WorkloadConfig::default()
            },
        );
        Setup {
            catalog: offline.view_catalog(),
            expanded: ds,
            facet,
            workload,
        }
    })
}

/// The triples of one synthetic observation star, reproducible from its
/// batch/slot indices — so a later delta can delete exactly what an
/// earlier one inserted (the delete half of the delta mix).
fn star_triples(batch: usize, slot: usize) -> Vec<(Term, Term, Term)> {
    use sofos_workload::synthetic::NS;
    let node = Term::blank(format!("c{batch}_{slot}"));
    let mut triples = Vec::with_capacity(4);
    for d in 0..3usize {
        triples.push((
            node.clone(),
            Term::iri(format!("{NS}dim{d}")),
            Term::iri(format!("{NS}v{d}_{}", (batch + slot + d) % 3)),
        ));
    }
    triples.push((
        node,
        Term::iri(format!("{NS}measure")),
        Term::literal_int(60 + (batch * 13 + slot) as i64),
    ));
    triples
}

/// One update batch of the scenario's delta mix: insert two fresh stars;
/// in the "churny" mix, also delete a star inserted two batches earlier.
fn conformance_delta(batch: usize, churny: bool) -> Delta {
    let mut delta = Delta::new();
    for slot in 0..2usize {
        for (s, p, o) in star_triples(batch, slot) {
            delta.insert(s, p, o);
        }
    }
    if churny && batch >= 2 {
        for (s, p, o) in star_triples(batch - 2, 0) {
            delta.delete(s, p, o);
        }
    }
    delta
}

fn policy_grid(idx: usize) -> StalenessPolicy {
    match idx {
        0 => StalenessPolicy::Eager,
        1 => StalenessPolicy::LazyOnHit,
        2 => StalenessPolicy::Invalidate,
        3 => StalenessPolicy::bounded(2, 1),
        _ => StalenessPolicy::bounded_ms(3, 2, 100),
    }
}

fn build_pair(
    policy: StalenessPolicy,
    shards: usize,
    threads: usize,
) -> (Engine, Engine, Arc<ManualClock>) {
    let s = setup();
    let clock = ManualClock::shared(0);
    let serial = Engine::builder()
        .dataset(s.expanded.clone())
        .facet(s.facet.clone())
        .catalog(s.catalog.clone())
        .staleness(policy)
        .backend(Backend::Serial)
        .clock(clock.clone() as Arc<dyn Clock>)
        .build()
        .expect("serial engine builds");
    let epoch = Engine::builder()
        .dataset(s.expanded.clone())
        .facet(s.facet.clone())
        .catalog(s.catalog.clone())
        .staleness(policy)
        .backend(Backend::Epoch { shards, threads })
        .clock(clock.clone() as Arc<dyn Clock>)
        .build()
        .expect("epoch engine builds");
    (serial, epoch, clock)
}

fn mask_set(engine: &Engine) -> Vec<u64> {
    let mut masks: Vec<u64> = engine.views().iter().map(|(m, _)| m.0).collect();
    masks.sort_unstable();
    masks
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// The conformance property (see module docs).
    #[test]
    fn serial_and_epoch_backends_conform(
        ops in proptest::collection::vec((proptest::bool::weighted(0.55), 0u64..80), 4..20),
        policy_idx in 0usize..5,
        churny in proptest::bool::ANY,
        shards in 1usize..5,
        threads in 1usize..3,
    ) {
        let s = setup();
        let policy = policy_grid(policy_idx);
        let always_current = !matches!(policy, StalenessPolicy::Bounded { .. });
        let (serial, epoch, clock) = build_pair(policy, shards, threads);

        // The test's own mirror of the epoch backend's buffered-batch
        // enqueue times, for model-checking the wall-clock budget.
        let mut enqueued: VecDeque<u64> = VecDeque::new();
        let (mut batch, mut next_query) = (0usize, 0usize);
        for (is_update, advance_ms) in ops {
            clock.advance(advance_ms);
            if is_update {
                let delta = conformance_delta(batch, churny);
                batch += 1;
                serial.update(delta.clone()).expect("serial update runs");
                epoch.update(delta).expect("epoch update runs");
                enqueued.push_back(clock.now_ms());
            } else {
                let q = &s.workload[next_query % s.workload.len()];
                next_query += 1;
                let a = serial.query(&q.query).expect("serial query runs");
                let b = epoch.query(&q.query).expect("epoch query runs");

                // In-budget freshness, on both backends.
                if let Some(budget) = policy.lag_budget() {
                    prop_assert!(a.freshness.lag <= budget, "serial lag {} > {budget}", a.freshness.lag);
                    prop_assert!(b.freshness.lag <= budget, "epoch lag {} > {budget}", b.freshness.lag);
                }
                // Wall-clock budget, model-checked against our enqueue
                // mirror (single-threaded: no racing updates).
                while enqueued.len() > epoch.buffered_updates() {
                    enqueued.pop_front();
                }
                if let Some(budget_ms) = policy.lag_budget_ms() {
                    if let Some(&oldest) = enqueued.front() {
                        prop_assert!(
                            clock.now_ms() - oldest <= budget_ms,
                            "epoch backend served with wall-clock lag {} > {budget_ms}ms",
                            clock.now_ms() - oldest
                        );
                    }
                }

                // Bit-equal answers whenever both backends serve the
                // latest state by construction.
                if always_current {
                    prop_assert!(
                        results_equivalent(&a.results, &b.results),
                        "backends diverged on {} under {policy}",
                        q.text
                    );
                    let same_route = matches!(
                        (a.route, b.route),
                        (Route::View(_), Route::View(_)) | (Route::BaseGraph, Route::BaseGraph)
                    );
                    prop_assert!(same_route, "routes diverged: {:?} vs {:?}", a.route, b.route);
                }
            }
        }

        // Drain both; the catalogs and every answer must now agree
        // bit-for-bit — and with a from-scratch base evaluation.
        serial.flush().expect("serial flush runs");
        epoch.flush().expect("epoch flush runs");
        prop_assert_eq!(mask_set(&serial), mask_set(&epoch), "catalogs diverged");
        prop_assert_eq!(serial.update_batches(), epoch.update_batches());
        let serial_snapshot = serial.snapshot();
        let reference = Evaluator::new(&serial_snapshot);
        for q in &s.workload {
            let a = serial.query(&q.query).expect("serial query runs");
            let b = epoch.query(&q.query).expect("epoch query runs");
            prop_assert!(a.freshness.is_fresh());
            prop_assert!(b.freshness.is_fresh());
            prop_assert!(
                results_equivalent(&a.results, &b.results),
                "drained backends diverged for {}",
                q.text
            );
            let base = reference.evaluate(&q.query).expect("base evaluation runs");
            prop_assert!(
                results_equivalent(&a.results, &base),
                "drained answers diverged from base for {}",
                q.text
            );
        }
    }
}
