//! Engine-level durability: a durable engine is bit-identical to an
//! in-memory twin while running, and a rebuild from its data dir
//! recovers exactly the published state — base graph, views, and
//! catalog — regardless of what dataset the new builder was handed.

use sofos_core::{run_offline, SizedLattice};
use sofos_core::{
    Backend, DurabilityConfig, Engine, EngineBuildError, EngineConfig, RecoveryReport,
    StalenessPolicy,
};
use sofos_cost::CostModelKind;
use sofos_cube::{AggOp, Facet, ViewMask};
use sofos_rdf::Term;
use sofos_select::WorkloadProfile;
use sofos_store::{Dataset, Delta, EncodedTriple};
use sofos_workload::synthetic;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

struct Setup {
    expanded: Dataset,
    facet: Facet,
    catalog: Vec<(ViewMask, usize)>,
}

fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let g = synthetic::generate(&synthetic::Config {
            observations: 60,
            agg: AggOp::Avg,
            ..synthetic::Config::default()
        });
        let facet = g.facets[0].clone();
        let mut ds = g.dataset;
        let sized = SizedLattice::compute(&ds, &facet).expect("lattice sizes");
        let profile = WorkloadProfile::uniform(&sized.lattice);
        let offline = run_offline(
            &mut ds,
            &sized,
            &profile,
            CostModelKind::AggValues,
            &EngineConfig::default(),
        )
        .expect("offline phase runs");
        Setup {
            catalog: offline.view_catalog(),
            expanded: ds,
            facet,
        }
    })
}

fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sofos-engine-durable-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).expect("scratch dir creates");
    dir
}

/// One synthetic observation star, reproducible from its batch index.
fn star_delta(batch: usize) -> Delta {
    use sofos_workload::synthetic::NS;
    let mut delta = Delta::new();
    for slot in 0..2usize {
        let node = Term::blank(format!("d{batch}_{slot}"));
        for d in 0..3usize {
            delta.insert(
                node.clone(),
                Term::iri(format!("{NS}dim{d}")),
                Term::iri(format!("{NS}v{d}_{}", (batch + slot + d) % 3)),
            );
        }
        delta.insert(
            node,
            Term::iri(format!("{NS}measure")),
            Term::literal_int(60 + (batch * 13 + slot) as i64),
        );
    }
    delta
}

/// Every graph's triples, id-encoded and sorted — the bit-equality
/// fingerprint across base graph AND materialized views.
fn fingerprint(dataset: &Dataset) -> Vec<(Option<u32>, Vec<EncodedTriple>)> {
    let mut graphs = vec![(None, dataset.default_graph().iter().collect::<Vec<_>>())];
    let mut names = dataset.graph_names();
    names.sort_by_key(|id| id.0);
    for name in names {
        let triples = dataset
            .graph(Some(name))
            .expect("named graph")
            .iter()
            .collect();
        graphs.push((Some(name.0), triples));
    }
    graphs
}

fn durable_builder(dir: &PathBuf) -> sofos_core::EngineBuilder {
    let s = setup();
    Engine::builder()
        .dataset(s.expanded.clone())
        .facet(s.facet.clone())
        .catalog(s.catalog.clone())
        .staleness(StalenessPolicy::Eager)
        .backend(Backend::Epoch {
            shards: 2,
            threads: 2,
        })
        .durability(DurabilityConfig::new(dir).fsync(false))
}

#[test]
fn durable_engine_matches_twin_and_recovers_bit_equal() {
    let s = setup();
    let dir = scratch_dir("twin");

    // Fresh dir: durability on, nothing to recover.
    let durable = durable_builder(&dir)
        .build()
        .expect("durable engine builds");
    assert!(durable.durability_enabled());
    assert!(durable.recovery().is_none(), "fresh dir recovers nothing");

    let memory = Engine::builder()
        .dataset(s.expanded.clone())
        .facet(s.facet.clone())
        .catalog(s.catalog.clone())
        .staleness(StalenessPolicy::Eager)
        .backend(Backend::Epoch {
            shards: 2,
            threads: 2,
        })
        .build()
        .expect("in-memory twin builds");
    assert!(!memory.durability_enabled());

    // Identical update streams; eager maintenance publishes each batch.
    for batch in 0..6 {
        durable.update(star_delta(batch)).expect("durable update");
        memory.update(star_delta(batch)).expect("memory update");
    }
    durable.flush().expect("durable flush");
    memory.flush().expect("memory flush");

    // Durability::None is behavior-preserving: live state is bit-equal.
    assert_eq!(durable.epoch(), memory.epoch());
    assert_eq!(durable.views(), memory.views());
    assert_eq!(
        fingerprint(&durable.snapshot()),
        fingerprint(&memory.snapshot())
    );

    let published_epoch = durable.epoch();
    drop(durable);

    // Rebuild from the data dir, handing the builder an EMPTY boot
    // dataset: the recovered state must win wholesale.
    let recovered = {
        let mut builder = durable_builder(&dir);
        builder = builder.dataset(Dataset::new()).catalog(Vec::new());
        builder.build().expect("recovery builds")
    };
    let report: &RecoveryReport = recovered.recovery().expect("recovery reported");
    assert_eq!(report.epoch, published_epoch);
    assert!(
        report.replayed_records > 0,
        "no snapshot cadence: log replays"
    );
    assert_eq!(report.truncated_bytes, 0);
    assert_eq!(
        report.rematerialized_views,
        s.catalog.len(),
        "replay rebuilds every cataloged view"
    );
    assert_eq!(recovered.epoch(), published_epoch);
    assert_eq!(recovered.views(), memory.views());
    assert_eq!(
        fingerprint(&recovered.snapshot()),
        fingerprint(&memory.snapshot()),
        "recovered state is bit-equal to the in-memory twin"
    );

    // The recovery baseline wrote a snapshot: a second rebuild replays
    // nothing and serves the views straight from the snapshot file.
    drop(recovered);
    let again = durable_builder(&dir)
        .build()
        .expect("second recovery builds");
    let report = again.recovery().expect("recovery reported");
    assert_eq!(report.epoch, published_epoch);
    assert_eq!(report.snapshot_epoch, published_epoch);
    assert_eq!(report.replayed_records, 0);
    assert_eq!(report.rematerialized_views, 0, "snapshot views are exact");
    assert_eq!(
        fingerprint(&again.snapshot()),
        fingerprint(&memory.snapshot())
    );

    // And the recovered engine keeps serving writes durably.
    again.update(star_delta(99)).expect("post-recovery update");
    again.flush().expect("post-recovery flush");
    assert_eq!(again.epoch(), published_epoch + 1);

    drop(again);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn serial_backend_rejects_durability() {
    let s = setup();
    let dir = scratch_dir("serial");
    let err = Engine::builder()
        .dataset(s.expanded.clone())
        .facet(s.facet.clone())
        .backend(Backend::Serial)
        .durability(DurabilityConfig::new(&dir))
        .build()
        .expect_err("serial + durability must not build");
    assert_eq!(err, EngineBuildError::DurabilityUnsupported);
    fs::remove_dir_all(&dir).ok();
}
