//! Engine robustness: degenerate datasets, tiny facets, determinism.

use sofos_core::{run_offline, run_online, EngineConfig, SizedLattice, Sofos};
use sofos_cost::CostModelKind;
use sofos_cube::{AggOp, Dimension, Facet, ViewMask};
use sofos_rdf::Term;
use sofos_select::{Budget, WorkloadProfile};
use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};
use sofos_store::Dataset;
use sofos_workload::{dbpedia, generate_workload, WorkloadConfig};

fn one_dim_facet() -> Facet {
    let pattern = GroupPattern::triples(vec![
        TriplePattern::new(
            PatternTerm::var("o"),
            PatternTerm::iri("http://e/d"),
            PatternTerm::var("d"),
        ),
        TriplePattern::new(
            PatternTerm::var("o"),
            PatternTerm::iri("http://e/m"),
            PatternTerm::var("m"),
        ),
    ]);
    Facet::new("tiny", vec![Dimension::new("d")], pattern, "m", AggOp::Sum).unwrap()
}

#[test]
fn empty_dataset_full_pipeline() {
    // A facet over an empty graph: lattice sizes to zero-row views, the
    // engine still selects, materializes (empty graphs) and answers.
    let ds = Dataset::new();
    let facet = one_dim_facet();
    let sized = SizedLattice::compute(&ds, &facet).unwrap();
    assert_eq!(
        sized.stats[&ViewMask::APEX].rows,
        1,
        "apex aggregates zero rows"
    );
    assert_eq!(sized.stats[&ViewMask::full(1)].rows, 0);

    let profile = WorkloadProfile::uniform(&sized.lattice);
    let config = EngineConfig {
        budget: Budget::Views(2),
        ..EngineConfig::default()
    };
    let mut expanded = ds.clone();
    let offline = run_offline(
        &mut expanded,
        &sized,
        &profile,
        CostModelKind::Triples,
        &config,
    )
    .unwrap();
    assert_eq!(offline.materialized.len(), 2);

    // Run a minimal workload: the apex query.
    let query = sofos_cube::facet_query(&facet, ViewMask::APEX, AggOp::Sum, vec![]);
    let workload = vec![sofos_workload::GeneratedQuery {
        text: sofos_sparql::query_to_sparql(&query),
        query,
        group_mask: ViewMask::APEX,
        required: ViewMask::APEX,
        agg: AggOp::Sum,
    }];
    let online = run_online(
        &expanded,
        &facet,
        &offline.view_catalog(),
        &workload,
        1,
        true,
    )
    .unwrap();
    assert!(online.all_valid);
    assert_eq!(online.records[0].rows, 1, "SUM over empty = one 0 row");
}

#[test]
fn single_observation_dataset() {
    let mut ds = Dataset::new();
    ds.insert(
        None,
        &Term::blank("o"),
        &Term::iri("http://e/d"),
        &Term::iri("http://e/v1"),
    );
    ds.insert(
        None,
        &Term::blank("o"),
        &Term::iri("http://e/m"),
        &Term::literal_int(5),
    );
    let facet = one_dim_facet();
    let mut sofos = Sofos::new(ds, facet);
    let mut config = EngineConfig {
        budget: Budget::Views(2),
        ..EngineConfig::default()
    };
    config.workload.num_queries = 4;
    config.timing_reps = 1;
    let offline = sofos.offline(CostModelKind::AggValues, &config).unwrap();
    let workload = generate_workload(sofos.dataset(), sofos.facet(), &config.workload);
    let online = sofos
        .online(&offline.view_catalog(), &workload, &config)
        .unwrap();
    assert!(online.all_valid);
}

#[test]
fn selections_are_deterministic_across_runs() {
    let g = dbpedia::generate(&dbpedia::Config {
        countries: 8,
        years: 2,
        ..dbpedia::Config::default()
    });
    let facet = g.facets[0].clone();
    let config = EngineConfig::default();
    let workload = generate_workload(
        &g.dataset,
        &facet,
        &WorkloadConfig {
            num_queries: 10,
            ..WorkloadConfig::default()
        },
    );
    let profile = WorkloadProfile::from_masks(workload.iter().map(|q| q.required));

    for kind in [
        CostModelKind::Random,
        CostModelKind::Triples,
        CostModelKind::Nodes,
    ] {
        let sized = SizedLattice::compute(&g.dataset, &facet).unwrap();
        let mut ds1 = g.dataset.clone();
        let a = run_offline(&mut ds1, &sized, &profile, kind, &config).unwrap();
        let mut ds2 = g.dataset.clone();
        let b = run_offline(&mut ds2, &sized, &profile, kind, &config).unwrap();
        assert_eq!(
            a.selection.selected, b.selection.selected,
            "{kind}: selection must be deterministic"
        );
    }
}

#[test]
fn zero_budget_means_base_graph_only() {
    let g = dbpedia::generate(&dbpedia::Config {
        countries: 6,
        years: 2,
        ..dbpedia::Config::default()
    });
    let mut sofos = Sofos::from_generated(&g);
    let mut config = EngineConfig {
        budget: Budget::Views(0),
        ..EngineConfig::default()
    };
    config.workload.num_queries = 5;
    config.timing_reps = 1;
    let offline = sofos.offline(CostModelKind::Triples, &config).unwrap();
    assert!(offline.materialized.is_empty());
    assert_eq!(offline.storage_amplification(), 1.0);

    let workload = generate_workload(sofos.dataset(), sofos.facet(), &config.workload);
    let online = sofos
        .online(&offline.view_catalog(), &workload, &config)
        .unwrap();
    assert_eq!(online.view_hits, 0);
    assert_eq!(online.fallbacks, workload.len());
}

#[test]
fn report_rendering_is_stable_under_rerun() {
    let g = dbpedia::generate(&dbpedia::Config {
        countries: 6,
        years: 2,
        ..dbpedia::Config::default()
    });
    let sofos = Sofos::from_generated(&g);
    let mut config = EngineConfig::default();
    config.workload.num_queries = 5;
    config.timing_reps = 1;
    let a = sofos.compare(&[CostModelKind::Triples], &config).unwrap();
    let b = sofos.compare(&[CostModelKind::Triples], &config).unwrap();
    // Timings differ; structure and selections must not.
    assert_eq!(a.models[0].selected_views, b.models[0].selected_views);
    assert_eq!(a.models[0].view_hits, b.models[0].view_hits);
    assert_eq!(
        a.models[0].storage_amplification,
        b.models[0].storage_amplification
    );
}
