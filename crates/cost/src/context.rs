//! The information cost models draw on.

use sofos_cube::{Facet, Lattice, ViewMask};
use sofos_materialize::{virtual_view_stats, ViewStats};
use sofos_rdf::FxHashMap;
use sofos_sparql::SparqlError;
use sofos_store::{Dataset, GraphStats};

/// Everything a cost model may consult when pricing a view: the facet, the
/// sized lattice (one [`ViewStats`] per candidate view, computed virtually
/// — no materialization), and statistics of the base graph.
#[derive(Debug)]
pub struct CostContext<'a> {
    /// The facet whose lattice is being priced.
    pub facet: &'a Facet,
    /// Per-view sizing (rows / triples / nodes / bytes).
    pub view_stats: &'a FxHashMap<ViewMask, ViewStats>,
    /// Base-graph statistics (predicate frequencies etc.).
    pub base: &'a GraphStats,
}

impl<'a> CostContext<'a> {
    /// Stats of one view; views absent from the map (not sized) return
    /// `None` and models fall back to pessimistic defaults.
    pub fn stats(&self, view: ViewMask) -> Option<&ViewStats> {
        self.view_stats.get(&view)
    }

    /// Distinct values of dimension `d` ≈ rows of the singleton view `{d}`.
    pub fn dim_cardinality(&self, d: usize) -> Option<usize> {
        self.view_stats
            .get(&ViewMask::from_dims(&[d]))
            .map(|s| s.rows)
    }
}

/// Size every view of the lattice virtually (evaluate + encode, no insert).
/// This is the offline "Exploration of the Full Lattice" step of the demo
/// (§4) and the input to all static cost models.
pub fn size_lattice(
    dataset: &Dataset,
    lattice: &Lattice,
) -> Result<FxHashMap<ViewMask, ViewStats>, SparqlError> {
    let mut out = FxHashMap::default();
    for mask in lattice.views() {
        let stats = virtual_view_stats(dataset, lattice.facet(), mask)?;
        out.insert(mask, stats);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_cube::{AggOp, Dimension};
    use sofos_rdf::Term;
    use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};

    fn dataset_and_facet() -> (Dataset, Facet) {
        let mut ds = Dataset::new();
        let a = Term::iri("http://e/a");
        let b = Term::iri("http://e/b");
        let m = Term::iri("http://e/m");
        for i in 0..12 {
            let obs = Term::blank(format!("o{i}"));
            ds.insert(None, &obs, &a, &Term::iri(format!("http://e/A{}", i % 3)));
            ds.insert(None, &obs, &b, &Term::iri(format!("http://e/B{}", i % 4)));
            ds.insert(None, &obs, &m, &Term::literal_int(i));
        }
        let pattern = GroupPattern::triples(vec![
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/a"),
                PatternTerm::var("a"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/b"),
                PatternTerm::var("b"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/m"),
                PatternTerm::var("m"),
            ),
        ]);
        let facet = Facet::new(
            "t",
            vec![Dimension::new("a"), Dimension::new("b")],
            pattern,
            "m",
            AggOp::Sum,
        )
        .unwrap();
        (ds, facet)
    }

    #[test]
    fn sizes_every_lattice_view() {
        let (ds, facet) = dataset_and_facet();
        let lattice = Lattice::new(facet);
        let sized = size_lattice(&ds, &lattice).unwrap();
        assert_eq!(sized.len() as u64, lattice.num_views());
        // Apex has one row; base has all 12 combos (i%3, i%4 over 12 = 12).
        assert_eq!(sized[&ViewMask::APEX].rows, 1);
        assert_eq!(sized[&lattice.base()].rows, 12);
    }

    #[test]
    fn dim_cardinalities_from_singletons() {
        let (ds, facet) = dataset_and_facet();
        let lattice = Lattice::new(facet.clone());
        let sized = size_lattice(&ds, &lattice).unwrap();
        let base = sofos_store::GraphStats::compute(ds.default_graph());
        let ctx = CostContext {
            facet: &facet,
            view_stats: &sized,
            base: &base,
        };
        assert_eq!(ctx.dim_cardinality(0), Some(3));
        assert_eq!(ctx.dim_cardinality(1), Some(4));
        assert!(ctx.stats(ViewMask::APEX).is_some());
        assert!(ctx.stats(ViewMask(0b1000000)).is_none());
    }
}
