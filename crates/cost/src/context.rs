//! The information cost models draw on.

use sofos_cube::{Facet, Lattice, ViewMask};
use sofos_materialize::{virtual_view_stats, ViewStats};
use sofos_rdf::FxHashMap;
use sofos_sparql::SparqlError;
use sofos_store::{Dataset, GraphStats};

/// Everything a cost model may consult when pricing a view: the facet, the
/// sized lattice (one [`ViewStats`] per candidate view, computed virtually
/// — no materialization), and statistics of the base graph.
#[derive(Debug)]
pub struct CostContext<'a> {
    /// The facet whose lattice is being priced.
    pub facet: &'a Facet,
    /// Per-view sizing (rows / triples / nodes / bytes).
    pub view_stats: &'a FxHashMap<ViewMask, ViewStats>,
    /// Base-graph statistics (predicate frequencies etc.).
    pub base: &'a GraphStats,
}

impl<'a> CostContext<'a> {
    /// Stats of one view; views absent from the map (not sized) return
    /// `None` and models fall back to pessimistic defaults.
    pub fn stats(&self, view: ViewMask) -> Option<&ViewStats> {
        self.view_stats.get(&view)
    }

    /// Distinct values of dimension `d` ≈ rows of the singleton view `{d}`.
    pub fn dim_cardinality(&self, d: usize) -> Option<usize> {
        self.view_stats
            .get(&ViewMask::from_dims(&[d]))
            .map(|s| s.rows)
    }
}

/// Size every view of the lattice virtually (evaluate + encode, no insert).
/// This is the offline "Exploration of the Full Lattice" step of the demo
/// (§4) and the input to all static cost models.
pub fn size_lattice(
    dataset: &Dataset,
    lattice: &Lattice,
) -> Result<FxHashMap<ViewMask, ViewStats>, SparqlError> {
    let mut out = FxHashMap::default();
    for mask in lattice.views() {
        let stats = virtual_view_stats(dataset, lattice.facet(), mask)?;
        out.insert(mask, stats);
    }
    Ok(out)
}

/// Size every view of the lattice *analytically* from generator-level
/// knowledge — per-dimension cardinalities and the observation count —
/// instead of evaluating `2^d` view queries like [`size_lattice`].
///
/// A view's row count is bounded both by the product of its retained
/// dimensions' cardinalities and by the observation count; triples, nodes
/// and bytes follow the encoded-view shape (each row binds one value per
/// retained dimension plus the aggregate). Skewed generators produce
/// fewer distinct groups than the bound, so these are uniform *upper*
/// estimates — consistent across views, which is what relative
/// selection-quality and wall-time comparisons need. O(2^d) arithmetic
/// with no dataset access: the piece that lets selection-at-scale
/// experiments price 10–100× larger lattices without paying a sizing
/// pass per view.
pub fn estimate_lattice(
    lattice: &Lattice,
    cardinalities: &[usize],
    observations: usize,
) -> FxHashMap<ViewMask, ViewStats> {
    // Encoded terms are IRIs/literals of modest length; one shared
    // estimate keeps byte budgets proportional to triple counts.
    const BYTES_PER_TRIPLE: usize = 48;
    let facet_id = lattice.facet().id.clone();
    let mut out = FxHashMap::default();
    for mask in lattice.views() {
        let mut groups: u128 = 1;
        let mut value_pool: usize = 0;
        for d in mask.dims() {
            let card = cardinalities.get(d).copied().unwrap_or(1).max(1);
            groups = groups.saturating_mul(card as u128);
            value_pool += card;
        }
        let rows = groups.min(observations.max(1) as u128) as usize;
        let dims = mask.dim_count() as usize;
        let triples = rows * (dims + 1);
        // Group nodes + aggregate literals (≈ one distinct per row) +
        // the dimension-value pool.
        let nodes = rows * 2 + value_pool;
        out.insert(
            mask,
            ViewStats {
                facet_id: facet_id.clone(),
                mask,
                rows,
                triples,
                nodes,
                bytes: triples * BYTES_PER_TRIPLE,
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_cube::{AggOp, Dimension};
    use sofos_rdf::Term;
    use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};

    fn dataset_and_facet() -> (Dataset, Facet) {
        let mut ds = Dataset::new();
        let a = Term::iri("http://e/a");
        let b = Term::iri("http://e/b");
        let m = Term::iri("http://e/m");
        for i in 0..12 {
            let obs = Term::blank(format!("o{i}"));
            ds.insert(None, &obs, &a, &Term::iri(format!("http://e/A{}", i % 3)));
            ds.insert(None, &obs, &b, &Term::iri(format!("http://e/B{}", i % 4)));
            ds.insert(None, &obs, &m, &Term::literal_int(i));
        }
        let pattern = GroupPattern::triples(vec![
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/a"),
                PatternTerm::var("a"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/b"),
                PatternTerm::var("b"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/m"),
                PatternTerm::var("m"),
            ),
        ]);
        let facet = Facet::new(
            "t",
            vec![Dimension::new("a"), Dimension::new("b")],
            pattern,
            "m",
            AggOp::Sum,
        )
        .unwrap();
        (ds, facet)
    }

    #[test]
    fn sizes_every_lattice_view() {
        let (ds, facet) = dataset_and_facet();
        let lattice = Lattice::new(facet);
        let sized = size_lattice(&ds, &lattice).unwrap();
        assert_eq!(sized.len() as u64, lattice.num_views());
        // Apex has one row; base has all 12 combos (i%3, i%4 over 12 = 12).
        assert_eq!(sized[&ViewMask::APEX].rows, 1);
        assert_eq!(sized[&lattice.base()].rows, 12);
    }

    #[test]
    fn dim_cardinalities_from_singletons() {
        let (ds, facet) = dataset_and_facet();
        let lattice = Lattice::new(facet.clone());
        let sized = size_lattice(&ds, &lattice).unwrap();
        let base = sofos_store::GraphStats::compute(ds.default_graph());
        let ctx = CostContext {
            facet: &facet,
            view_stats: &sized,
            base: &base,
        };
        assert_eq!(ctx.dim_cardinality(0), Some(3));
        assert_eq!(ctx.dim_cardinality(1), Some(4));
        assert!(ctx.stats(ViewMask::APEX).is_some());
        assert!(ctx.stats(ViewMask(0b1000000)).is_none());
    }

    #[test]
    fn analytic_estimates_cover_the_lattice_and_respect_bounds() {
        let (_, facet) = dataset_and_facet();
        let lattice = Lattice::new(facet);
        let estimated = estimate_lattice(&lattice, &[3, 4], 12);
        assert_eq!(estimated.len() as u64, lattice.num_views());
        // Apex groups everything into one row.
        assert_eq!(estimated[&ViewMask::APEX].rows, 1);
        // The base view is capped by min(3 × 4, 12 observations).
        assert_eq!(estimated[&lattice.base()].rows, 12);
        // Singleton views are capped by their cardinality.
        assert_eq!(estimated[&ViewMask::from_dims(&[0])].rows, 3);
        assert_eq!(estimated[&ViewMask::from_dims(&[1])].rows, 4);
        // Coarser views never estimate more rows than finer ones, and
        // sizing fields scale together.
        for (&mask, stats) in &estimated {
            assert!(stats.rows <= 12);
            assert_eq!(stats.triples, stats.rows * (mask.dim_count() as usize + 1));
            assert!(stats.bytes >= stats.triples);
        }
    }
}
