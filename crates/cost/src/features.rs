//! Feature encoding for the learned cost model.
//!
//! Per the paper (§3.1): "We encode a query into a vector representing the
//! relationships, the attributes, and the type of aggregates in the query,
//! along with statistics about the relationship frequency and the attribute
//! frequency."
//!
//! For a view `V(X̄′)` of facet `F` the encoding is, in order:
//!
//! 1. one indicator per facet dimension (is it retained?)          — `d`
//! 2. per dimension: `log1p(cardinality)` if retained, else 0      — `d`
//! 3. retained-dimension count                                      — 1
//! 4. `log1p` of the estimated group count (capped product of
//!    retained cardinalities)                                       — 1
//! 5. aggregate one-hot (SUM/AVG/COUNT/MIN/MAX)                     — 5
//! 6. `log1p(base graph triples)`                                   — 1
//! 7. number of triple patterns in `P` (the "relationships")        — 1
//! 8. mean `log1p(frequency)` of the pattern predicates in the
//!    base graph (the "relationship frequency" statistics)          — 1
//!
//! Total dimensionality: `2d + 10`.

use crate::context::CostContext;
use sofos_cube::{AggOp, Facet, ViewMask};
use sofos_rdf::Term;
use sofos_sparql::{PatternElement, PatternTerm};

/// Feature-vector length for a facet.
pub fn feature_dim(facet: &Facet) -> usize {
    2 * facet.dim_count() + 10
}

/// Encode one candidate view.
pub fn view_features(ctx: &CostContext<'_>, view: ViewMask) -> Vec<f64> {
    let facet = ctx.facet;
    let d = facet.dim_count();
    let mut out = Vec::with_capacity(feature_dim(facet));

    // 1. Dimension indicators.
    for i in 0..d {
        out.push(if view.contains(i) { 1.0 } else { 0.0 });
    }
    // 2. Per-dimension cardinalities.
    let mut est_groups: f64 = 1.0;
    for i in 0..d {
        if view.contains(i) {
            let card = ctx.dim_cardinality(i).unwrap_or(1) as f64;
            est_groups = (est_groups * card).min(1e15);
            out.push(card.ln_1p());
        } else {
            out.push(0.0);
        }
    }
    // 3. Level.
    out.push(view.dim_count() as f64);
    // 4. Estimated group count.
    out.push(est_groups.ln_1p());
    // 5. Aggregate one-hot.
    for op in AggOp::ALL {
        out.push(if facet.agg == op { 1.0 } else { 0.0 });
    }
    // 6. Base size.
    out.push((ctx.base.triples as f64).ln_1p());
    // 7./8. Pattern shape and predicate frequencies.
    let mut pattern_count = 0.0;
    let mut freq_sum = 0.0;
    for element in &facet.pattern.elements {
        if let PatternElement::Triples { patterns, .. } = element {
            for p in patterns {
                pattern_count += 1.0;
                if let PatternTerm::Const(Term::Iri(iri)) = &p.predicate {
                    let freq = predicate_frequency(ctx, iri.as_str());
                    freq_sum += (freq as f64).ln_1p();
                }
            }
        }
    }
    out.push(pattern_count);
    out.push(if pattern_count > 0.0 {
        freq_sum / pattern_count
    } else {
        0.0
    });

    debug_assert_eq!(out.len(), feature_dim(facet));
    out
}

/// Frequency of a predicate IRI in the base graph (0 when absent). The
/// context's `GraphStats` is keyed by `TermId`, which we cannot resolve
/// without the dictionary; instead the caller passes predicate counts
/// through [`CostContext::base`] and we match by scanning — predicate sets
/// are tiny (schema-sized), so a linear probe with the id→term map built
/// once per context would be overkill.
fn predicate_frequency(ctx: &CostContext<'_>, _iri: &str) -> usize {
    // Without the dictionary we cannot map IRIs to ids here; expose the
    // mean predicate frequency instead, which preserves the feature's
    // intent (dense vs. sparse relationships).
    ctx.base
        .triples
        .checked_div(ctx.base.distinct_predicates)
        .unwrap_or(0)
}

/// Z-score normalizer fitted on a training matrix.
#[derive(Debug, Clone)]
pub struct Normalizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Normalizer {
    /// Fit per-column mean/std (std 0 → 1 to keep constants harmless).
    pub fn fit(rows: &[Vec<f64>]) -> Normalizer {
        let dim = rows.first().map_or(0, Vec::len);
        let n = rows.len().max(1) as f64;
        let mut means = vec![0.0; dim];
        for row in rows {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dim];
        for row in rows {
            for ((s, v), m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Normalizer { means, stds }
    }

    /// Apply the fitted transform.
    pub fn apply(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::size_lattice;
    use sofos_cube::{Dimension, Lattice};
    use sofos_sparql::{GroupPattern, TriplePattern};
    use sofos_store::{Dataset, GraphStats};

    fn setup() -> (Dataset, Facet) {
        let mut ds = Dataset::new();
        let a = Term::iri("http://e/a");
        let m = Term::iri("http://e/m");
        for i in 0..10 {
            let obs = Term::blank(format!("o{i}"));
            ds.insert(None, &obs, &a, &Term::iri(format!("http://e/A{}", i % 3)));
            ds.insert(None, &obs, &m, &Term::literal_int(i));
        }
        let pattern = GroupPattern::triples(vec![
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/a"),
                PatternTerm::var("a"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/m"),
                PatternTerm::var("m"),
            ),
        ]);
        let facet = Facet::new("t", vec![Dimension::new("a")], pattern, "m", AggOp::Sum).unwrap();
        (ds, facet)
    }

    #[test]
    fn feature_dim_formula() {
        let (_, facet) = setup();
        assert_eq!(
            feature_dim(&facet),
            2 + 10,
            "2 per dim x 1 dim, plus 10 globals"
        );
    }

    #[test]
    fn features_have_declared_dim_and_vary_by_view() {
        let (ds, facet) = setup();
        let lattice = Lattice::new(facet.clone());
        let sized = size_lattice(&ds, &lattice).unwrap();
        let base = GraphStats::compute(ds.default_graph());
        let ctx = CostContext {
            facet: &facet,
            view_stats: &sized,
            base: &base,
        };
        let apex = view_features(&ctx, ViewMask::APEX);
        let full = view_features(&ctx, ViewMask::full(1));
        assert_eq!(apex.len(), feature_dim(&facet));
        assert_eq!(full.len(), feature_dim(&facet));
        assert_ne!(apex, full);
        assert_eq!(full[0], 1.0, "dimension indicator set");
        assert_eq!(apex[0], 0.0);
    }

    #[test]
    fn normalizer_zero_means_unit_stds() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        let norm = Normalizer::fit(&rows);
        let transformed: Vec<Vec<f64>> = rows.iter().map(|r| norm.apply(r)).collect();
        let mean0: f64 = transformed.iter().map(|r| r[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-12);
        // Constant column: untouched scale (std forced to 1), zero centered.
        assert!(transformed.iter().all(|r| r[1].abs() < 1e-12));
    }

    #[test]
    fn normalizer_handles_empty() {
        let norm = Normalizer::fit(&[]);
        assert!(norm.apply(&[]).is_empty());
    }
}
