//! Cost model #5: the learned deep-regression estimate.
//!
//! §3.1: "In the offline training phase, the model takes the encoding of
//! either a given workload or randomly generated queries and their running
//! time. In the online phase, the model receives the encoding of a query
//! (i.e., view) Vi and outputs the estimated running time, such that
//! C(Vi) = f(Vi)."
//!
//! Targets are trained in `log1p(time)` space (query times span orders of
//! magnitude) and predictions are mapped back with `expm1`, clamped to be
//! positive so the greedy selector can treat them as running times.

use crate::context::CostContext;
use crate::features::{feature_dim, view_features, Normalizer};
use crate::models::CostModel;
use crate::nn::{Mlp, TrainConfig};
use sofos_cube::{Facet, ViewMask};

/// The learned cost model: feature encoder + MLP + target transform.
#[derive(Debug, Clone)]
pub struct LearnedCostModel {
    net: Mlp,
    normalizer: Option<Normalizer>,
    trained: bool,
}

/// A training example: a view and its measured evaluation time (µs).
pub type TrainingSample = (ViewMask, f64);

impl LearnedCostModel {
    /// An untrained model for a facet (predictions are pessimistic until
    /// [`LearnedCostModel::fit`] is called).
    pub fn new(facet: &Facet, seed: u64) -> LearnedCostModel {
        let dim = feature_dim(facet);
        LearnedCostModel {
            net: Mlp::new(&[dim, 32, 16, 1], seed),
            normalizer: None,
            trained: false,
        }
    }

    /// Has the model been fitted?
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Fit on `(view, measured_time_us)` samples; returns per-epoch MSE in
    /// the transformed target space.
    pub fn fit(
        &mut self,
        ctx: &CostContext<'_>,
        samples: &[TrainingSample],
        config: TrainConfig,
    ) -> Vec<f64> {
        if samples.is_empty() {
            return Vec::new();
        }
        let raw: Vec<Vec<f64>> = samples
            .iter()
            .map(|(v, _)| view_features(ctx, *v))
            .collect();
        let normalizer = Normalizer::fit(&raw);
        let features: Vec<Vec<f64>> = raw.iter().map(|r| normalizer.apply(r)).collect();
        let targets: Vec<f64> = samples.iter().map(|(_, t)| t.max(0.0).ln_1p()).collect();
        let history = self.net.train(&features, &targets, config);
        self.normalizer = Some(normalizer);
        self.trained = true;
        history
    }

    /// Predict the running time (µs) for a view.
    pub fn predict(&self, ctx: &CostContext<'_>, view: ViewMask) -> f64 {
        let raw = view_features(ctx, view);
        let features = match &self.normalizer {
            Some(n) => n.apply(&raw),
            None => raw,
        };
        self.net.predict(&features).exp_m1().max(0.0) + 1.0
    }
}

impl CostModel for LearnedCostModel {
    fn name(&self) -> &'static str {
        "learned"
    }

    fn cost(&self, ctx: &CostContext<'_>, view: ViewMask) -> f64 {
        if !self.trained {
            return f64::INFINITY;
        }
        self.predict(ctx, view)
    }
}

/// Prediction-quality metrics for E4 (learned-model evaluation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionMetrics {
    /// Mean absolute error in the original (µs) space.
    pub mae: f64,
    /// Spearman rank correlation between predictions and truths.
    pub spearman: f64,
    /// Number of evaluation points.
    pub n: usize,
}

/// Evaluate predictions against ground truth.
pub fn regression_metrics(predictions: &[f64], truths: &[f64]) -> RegressionMetrics {
    assert_eq!(predictions.len(), truths.len());
    let n = predictions.len();
    if n == 0 {
        return RegressionMetrics {
            mae: 0.0,
            spearman: 0.0,
            n,
        };
    }
    let mae = predictions
        .iter()
        .zip(truths)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / n as f64;
    RegressionMetrics {
        mae,
        spearman: spearman(predictions, truths),
        n,
    }
}

/// Spearman rank correlation (ties get average ranks).
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.len() < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

fn ranks(values: &[f64]) -> Vec<f64> {
    let mut indexed: Vec<(usize, f64)> = values.iter().copied().enumerate().collect();
    indexed.sort_by(|x, y| x.1.partial_cmp(&y.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < indexed.len() {
        let mut j = i;
        while j + 1 < indexed.len() && indexed[j + 1].1 == indexed[i].1 {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for item in &indexed[i..=j] {
            out[item.0] = rank;
        }
        i = j + 1;
    }
    out
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::size_lattice;
    use sofos_cube::{AggOp, Dimension, Lattice};
    use sofos_rdf::Term;
    use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};
    use sofos_store::{Dataset, GraphStats};

    fn setup() -> (Dataset, Facet) {
        let mut ds = Dataset::new();
        let preds: Vec<Term> = (0..3)
            .map(|i| Term::iri(format!("http://e/p{i}")))
            .collect();
        let m = Term::iri("http://e/m");
        for i in 0..60 {
            let obs = Term::blank(format!("o{i}"));
            ds.insert(
                None,
                &obs,
                &preds[0],
                &Term::iri(format!("http://e/A{}", i % 10)),
            );
            ds.insert(
                None,
                &obs,
                &preds[1],
                &Term::iri(format!("http://e/B{}", i % 4)),
            );
            ds.insert(
                None,
                &obs,
                &preds[2],
                &Term::iri(format!("http://e/C{}", i % 2)),
            );
            ds.insert(None, &obs, &m, &Term::literal_int(i));
        }
        let pattern = GroupPattern::triples(vec![
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/p0"),
                PatternTerm::var("a"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/p1"),
                PatternTerm::var("b"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/p2"),
                PatternTerm::var("c"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/m"),
                PatternTerm::var("m"),
            ),
        ]);
        let facet = Facet::new(
            "t",
            vec![
                Dimension::new("a"),
                Dimension::new("b"),
                Dimension::new("c"),
            ],
            pattern,
            "m",
            AggOp::Sum,
        )
        .unwrap();
        (ds, facet)
    }

    #[test]
    fn untrained_model_is_pessimistic() {
        let (ds, facet) = setup();
        let lattice = Lattice::new(facet.clone());
        let sized = size_lattice(&ds, &lattice).unwrap();
        let base = GraphStats::compute(ds.default_graph());
        let ctx = CostContext {
            facet: &facet,
            view_stats: &sized,
            base: &base,
        };
        let model = LearnedCostModel::new(&facet, 1);
        assert!(!model.is_trained());
        assert!(model.cost(&ctx, ViewMask::APEX).is_infinite());
    }

    #[test]
    fn learns_row_count_as_a_time_proxy() {
        // Synthetic "running times" proportional to view rows: the model
        // must learn to rank views by size.
        let (ds, facet) = setup();
        let lattice = Lattice::new(facet.clone());
        let sized = size_lattice(&ds, &lattice).unwrap();
        let base = GraphStats::compute(ds.default_graph());
        let ctx = CostContext {
            facet: &facet,
            view_stats: &sized,
            base: &base,
        };

        let samples: Vec<TrainingSample> = lattice
            .views()
            .map(|v| (v, 10.0 + 5.0 * sized[&v].rows as f64))
            .collect();
        let mut model = LearnedCostModel::new(&facet, 1);
        let config = TrainConfig {
            epochs: 600,
            learning_rate: 5e-3,
            batch_size: 8,
            seed: 1,
        };
        let history = model.fit(&ctx, &samples, config);
        assert!(history.last().unwrap() < &history[0], "loss must drop");

        let predictions: Vec<f64> = lattice.views().map(|v| model.cost(&ctx, v)).collect();
        let truths: Vec<f64> = samples.iter().map(|(_, t)| *t).collect();
        let metrics = regression_metrics(&predictions, &truths);
        assert!(
            metrics.spearman > 0.8,
            "rank correlation too weak: {}",
            metrics.spearman
        );
    }

    #[test]
    fn spearman_corner_cases() {
        assert!((spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-9);
        assert!((spearman(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]) + 1.0).abs() < 1e-9);
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0, "degenerate input");
        assert_eq!(
            spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            0.0,
            "constant input"
        );
    }

    #[test]
    fn ranks_handle_ties_with_average() {
        assert_eq!(ranks(&[10.0, 20.0, 10.0]), vec![1.5, 3.0, 1.5]);
        assert_eq!(ranks(&[5.0]), vec![1.0]);
    }

    #[test]
    fn metrics_on_empty_input() {
        let m = regression_metrics(&[], &[]);
        assert_eq!(m.n, 0);
        assert_eq!(m.mae, 0.0);
    }

    #[test]
    fn fit_with_no_samples_is_noop() {
        let (ds, facet) = setup();
        let lattice = Lattice::new(facet.clone());
        let sized = size_lattice(&ds, &lattice).unwrap();
        let base = GraphStats::compute(ds.default_graph());
        let ctx = CostContext {
            facet: &facet,
            view_stats: &sized,
            base: &base,
        };
        let mut model = LearnedCostModel::new(&facet, 1);
        assert!(model.fit(&ctx, &[], TrainConfig::default()).is_empty());
        assert!(!model.is_trained());
    }
}
