//! # sofos-cost — the six cost models for view selection
//!
//! "A cost model is the main building block for selecting the views to
//! materialize, as it provides an estimate of the time for querying a
//! database with and without the materialized views" (§1). SOFOS's point is
//! that the relational proxy — rows ≈ time — "does not trivially hold in
//! the case of knowledge graphs" (§3), so it implements six alternatives
//! side by side (§3.1):
//!
//! 1. [`RandomCost`] — constant cost (random `k`-subset baseline);
//! 2. [`TriplesCost`] — `|G_Vi|`, the relational tuple count transplanted;
//! 3. [`AggValuesCost`] — `|Vi(G)|`, result-row count;
//! 4. [`NodesCost`] — `|Ii ∪ Bi ∪ Li|`, node count;
//! 5. [`LearnedCostModel`] — a deep regression over query encodings;
//! 6. [`UserDefinedCost`] — the user as a cost function.
//!
//! All implement [`CostModel`] over a [`CostContext`] holding the virtually
//! sized lattice ([`size_lattice`]) and base-graph statistics. The MLP
//! behind the learned model lives in [`nn`] (from scratch; no ML deps).
//!
//! Query cost is only half the trade-off on a living graph: the
//! [`maintenance`] module prices view *upkeep* ([`MaintenanceCostModel`]
//! over [`UpdateRates`]) so `sofos-select` can optimize the combined
//! objective `query_cost + λ · maintenance_cost`.

pub mod context;
pub mod features;
pub mod learned;
pub mod maintenance;
pub mod models;
pub mod nn;

pub use context::{estimate_lattice, size_lattice, CostContext};
pub use features::{feature_dim, view_features, Normalizer};
pub use learned::{
    regression_metrics, spearman, LearnedCostModel, RegressionMetrics, TrainingSample,
};
pub use maintenance::{
    expected_touched_groups, maintenance_features, CalibratedMaintenance, FixedMaintenance,
    MaintenanceCoefficients, MaintenanceCostModel, MaintenanceFeatures, ShardedMaintenance,
    TouchedGroupsMaintenance, UpdateRates,
};
pub use models::{
    AggValuesCost, CostModel, CostModelKind, NodesCost, RandomCost, TriplesCost, UserDefinedCost,
};
pub use nn::{Mlp, TrainConfig};

/// Build one of the stat-based models by kind. `Learned` and `UserDefined`
/// need extra inputs (training / explicit costs) and are constructed
/// directly; asking for them here returns `None`.
pub fn build_static_model(kind: CostModelKind, seed: u64) -> Option<Box<dyn CostModel>> {
    match kind {
        CostModelKind::Random => Some(Box::new(RandomCost::new(seed))),
        CostModelKind::Triples => Some(Box::new(TriplesCost)),
        CostModelKind::AggValues => Some(Box::new(AggValuesCost)),
        CostModelKind::Nodes => Some(Box::new(NodesCost)),
        CostModelKind::Learned | CostModelKind::UserDefined => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_factory_covers_stat_models() {
        for kind in [
            CostModelKind::Random,
            CostModelKind::Triples,
            CostModelKind::AggValues,
            CostModelKind::Nodes,
        ] {
            let model = build_static_model(kind, 42).expect("static model");
            assert_eq!(model.name(), kind.name());
        }
        assert!(build_static_model(CostModelKind::Learned, 0).is_none());
        assert!(build_static_model(CostModelKind::UserDefined, 0).is_none());
    }
}
