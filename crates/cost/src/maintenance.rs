//! Maintenance cost models: pricing view *upkeep* alongside query benefit.
//!
//! The six [`crate::CostModel`]s price what a view saves at query time; on a
//! living graph every materialized view also *costs* — each update batch
//! either patches its groups in place (the counting algorithm) or forces a
//! full refresh. A [`MaintenanceCostModel`] predicts that per-round upkeep
//! from the sized lattice ([`crate::CostContext`]) plus the observed
//! update-stream pressure ([`UpdateRates`]), so the selector can optimize
//! the Goasdoué-style combined objective
//! `query_cost + λ · maintenance_cost` instead of the frozen-graph one.
//!
//! Three estimators are provided:
//!
//! * [`TouchedGroupsMaintenance`] — analytic: expected distinct groups a
//!   batch touches (a balls-into-bins bound over the view's rows), patch
//!   width from the facet's encoding, per-group re-evaluation for
//!   non-invertible aggregates (MIN/MAX deletes), and a full-refresh
//!   regime for facets the counting algorithm cannot maintain;
//! * [`CalibratedMaintenance`] — the analytic feature estimates rescaled
//!   by unit costs fit (least squares) against *observed*
//!   [`sofos_maintain::MaintenanceCost`] records, so predictions are in
//!   real microseconds once a session has produced maintenance telemetry;
//! * [`FixedMaintenance`] — explicit per-view costs (the maintenance
//!   analogue of [`crate::UserDefinedCost`]; also the test harness's lever
//!   for forcing churn onto a specific view).

use crate::context::CostContext;
use sofos_cube::{AggOp, ViewMask};
use sofos_maintain::{MaintenanceCost, StarPattern};
use sofos_rdf::FxHashMap;

/// Observed (or anticipated) update pressure, per round of the workload.
///
/// A "round" is whatever unit the caller amortizes over — one update batch
/// in the adaptive experiments. Rates are observation-level operations
/// (whole stars inserted/deleted), matching the update-stream generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateRates {
    /// Observations inserted per round.
    pub inserts_per_round: f64,
    /// Observations deleted per round.
    pub deletes_per_round: f64,
}

impl UpdateRates {
    /// A frozen graph: no updates, all maintenance costs vanish.
    pub const FROZEN: UpdateRates = UpdateRates {
        inserts_per_round: 0.0,
        deletes_per_round: 0.0,
    };

    /// Rates from per-round insert/delete counts.
    pub fn new(inserts_per_round: f64, deletes_per_round: f64) -> UpdateRates {
        UpdateRates {
            inserts_per_round: inserts_per_round.max(0.0),
            deletes_per_round: deletes_per_round.max(0.0),
        }
    }

    /// Total operations per round.
    pub fn ops_per_round(&self) -> f64 {
        self.inserts_per_round + self.deletes_per_round
    }

    /// Fraction of operations that are deletes (0 on a frozen graph).
    pub fn delete_fraction(&self) -> f64 {
        let ops = self.ops_per_round();
        if ops > 0.0 {
            self.deletes_per_round / ops
        } else {
            0.0
        }
    }

    /// True when no updates are expected.
    pub fn is_frozen(&self) -> bool {
        self.ops_per_round() == 0.0
    }
}

/// A model `M : V(F) × rates → R+` predicting the per-round cost of keeping
/// one view fresh. Units are the model's own (abstract work for the
/// analytic model, microseconds for the calibrated one); the selector's λ
/// bridges them to the query-cost scale.
pub trait MaintenanceCostModel: Send + Sync {
    /// Short stable name, used in reports.
    fn name(&self) -> &'static str;

    /// Predicted per-round upkeep of `view` under `rates`. Must return
    /// `0.0` when `rates` is frozen (no updates ⇒ no upkeep).
    fn maintenance_cost(&self, ctx: &CostContext<'_>, view: ViewMask, rates: &UpdateRates) -> f64;
}

/// Expected number of *distinct* groups of a `rows`-group view touched by
/// `ops` group-mapped operations: `rows · (1 − (1 − 1/rows)^ops)`, the
/// standard balls-into-bins occupancy bound. Tends to `ops` for huge views
/// (every op hits its own group) and saturates at `rows` for tiny ones
/// (the apex is touched once per batch, not once per op).
pub fn expected_touched_groups(rows: usize, ops: f64) -> f64 {
    if ops <= 0.0 {
        return 0.0;
    }
    if rows == 0 {
        // Every op lands in a fresh group.
        return ops;
    }
    let r = rows as f64;
    r * (1.0 - (1.0 - 1.0 / r).powf(ops))
}

/// Per-round analytic feature estimates for one view — the quantities the
/// maintenance engine reports after the fact ([`MaintenanceCost`]),
/// predicted before it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintenanceFeatures {
    /// Expected view-graph triples written or removed per round.
    pub triples_touched: f64,
    /// Expected per-group re-evaluations per round (MIN/MAX deletes, or
    /// every group under the full-refresh regime).
    pub groups_reevaluated: f64,
    /// True when the facet degrades to drop + re-materialize.
    pub full_refresh: bool,
}

/// Analytic per-view maintenance features from the sized lattice.
///
/// Views the context cannot size are priced pessimistically (`INFINITY`
/// triples), matching how the query-cost models treat them.
pub fn maintenance_features(
    ctx: &CostContext<'_>,
    view: ViewMask,
    rates: &UpdateRates,
) -> MaintenanceFeatures {
    let ops = rates.ops_per_round();
    if ops <= 0.0 {
        return MaintenanceFeatures {
            triples_touched: 0.0,
            groups_reevaluated: 0.0,
            full_refresh: false,
        };
    }
    let Some(stats) = ctx.stats(view) else {
        return MaintenanceFeatures {
            triples_touched: f64::INFINITY,
            groups_reevaluated: f64::INFINITY,
            full_refresh: true,
        };
    };
    // Triples one encoded observation (group row) carries: rdf:type + one
    // triple per grouped dimension + one per aggregate component.
    let row_width = (1 + view.dim_count() as usize + ctx.facet.agg.components().len()) as f64;

    if StarPattern::detect(ctx.facet).is_none() {
        // The counting algorithm cannot maintain this facet: every round
        // drops and re-materializes the whole view graph.
        return MaintenanceFeatures {
            triples_touched: 2.0 * stats.triples as f64,
            groups_reevaluated: stats.rows as f64,
            full_refresh: true,
        };
    }

    let touched = expected_touched_groups(stats.rows, ops);
    // Deletes against MIN/MAX groups are not invertible: each touched
    // group re-evaluates from the base graph, scanning roughly its share
    // of the facet's bindings (finest-view rows / this view's rows).
    let reevals = match ctx.facet.agg {
        AggOp::Min | AggOp::Max => touched * rates.delete_fraction(),
        _ => 0.0,
    };
    MaintenanceFeatures {
        triples_touched: touched * row_width,
        groups_reevaluated: reevals,
        full_refresh: false,
    }
}

/// Analytic maintenance model: expected touched groups × patch width, plus
/// re-evaluation work for non-invertible aggregates, in abstract
/// triple-write units (comparable to [`crate::TriplesCost`]'s scale).
#[derive(Debug, Clone, Copy, Default)]
pub struct TouchedGroupsMaintenance;

impl TouchedGroupsMaintenance {
    /// What one per-group re-evaluation costs relative to one triple
    /// write: the group's expected share of the facet's base bindings.
    fn reeval_unit(ctx: &CostContext<'_>, view: ViewMask) -> f64 {
        let base_rows = ctx
            .stats(ViewMask::full(ctx.facet.dim_count()))
            .map_or(0, |s| s.rows)
            .max(1) as f64;
        let rows = ctx.stats(view).map_or(1, |s| s.rows).max(1) as f64;
        (base_rows / rows).max(1.0)
    }
}

impl MaintenanceCostModel for TouchedGroupsMaintenance {
    fn name(&self) -> &'static str {
        "touched-groups"
    }

    fn maintenance_cost(&self, ctx: &CostContext<'_>, view: ViewMask, rates: &UpdateRates) -> f64 {
        let features = maintenance_features(ctx, view, rates);
        if !features.triples_touched.is_finite() {
            return f64::INFINITY;
        }
        features.triples_touched + features.groups_reevaluated * Self::reeval_unit(ctx, view)
    }
}

/// Unit costs mapping maintenance features to wall microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintenanceCoefficients {
    /// µs per view-graph triple touched.
    pub us_per_triple: f64,
    /// µs per per-group re-evaluation.
    pub us_per_reeval: f64,
    /// Fixed per-round overhead (µs).
    pub us_fixed: f64,
}

impl Default for MaintenanceCoefficients {
    fn default() -> Self {
        // Uncalibrated priors: a triple write is cheap, a re-evaluation
        // runs a filtered query. Real sessions replace these via
        // [`CalibratedMaintenance::calibrate`].
        MaintenanceCoefficients {
            us_per_triple: 1.0,
            us_per_reeval: 20.0,
            us_fixed: 0.0,
        }
    }
}

/// Analytic features × calibrated unit costs: predicts per-round upkeep in
/// microseconds once fit against observed [`MaintenanceCost`] telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct CalibratedMaintenance {
    coefficients: MaintenanceCoefficients,
}

impl CalibratedMaintenance {
    /// A model with explicit unit costs.
    pub fn with_coefficients(coefficients: MaintenanceCoefficients) -> CalibratedMaintenance {
        CalibratedMaintenance { coefficients }
    }

    /// Fit unit costs from observed maintenance records by least squares
    /// over `wall_us ≈ a·triples_touched + b·groups_reevaluated + c`,
    /// with a small ridge term for conditioning. Falls back to the default
    /// priors when there is nothing (or nothing informative) to fit, so
    /// calibration never *loses* a usable model.
    pub fn calibrate(samples: &[MaintenanceCost]) -> CalibratedMaintenance {
        let informative: Vec<&MaintenanceCost> = samples
            .iter()
            .filter(|s| s.triples_touched > 0 || s.groups_reevaluated > 0)
            .collect();
        if informative.is_empty() {
            return CalibratedMaintenance::default();
        }
        // Normal equations for [t, r, 1] → us, ridge-damped.
        let mut ata = [[0.0f64; 3]; 3];
        let mut aty = [0.0f64; 3];
        for s in &informative {
            let x = [s.triples_touched as f64, s.groups_reevaluated as f64, 1.0];
            let y = s.wall_us as f64;
            for i in 0..3 {
                for j in 0..3 {
                    ata[i][j] += x[i] * x[j];
                }
                aty[i] += x[i] * y;
            }
        }
        let ridge = 1e-6 * (1.0 + ata[0][0].max(ata[1][1]));
        for (i, row) in ata.iter_mut().enumerate() {
            row[i] += ridge;
        }
        let Some(solution) = solve3(ata, aty) else {
            return CalibratedMaintenance::default();
        };
        let defaults = MaintenanceCoefficients::default();
        // Negative unit costs are fitting artifacts (collinear features);
        // clamp to the priors rather than predict negative upkeep.
        let coefficients = MaintenanceCoefficients {
            us_per_triple: if solution[0].is_finite() && solution[0] > 0.0 {
                solution[0]
            } else {
                defaults.us_per_triple
            },
            us_per_reeval: if solution[1].is_finite() && solution[1] > 0.0 {
                solution[1]
            } else {
                defaults.us_per_reeval
            },
            us_fixed: if solution[2].is_finite() && solution[2] > 0.0 {
                solution[2]
            } else {
                0.0
            },
        };
        CalibratedMaintenance { coefficients }
    }

    /// The fitted (or default) unit costs.
    pub fn coefficients(&self) -> MaintenanceCoefficients {
        self.coefficients
    }
}

impl MaintenanceCostModel for CalibratedMaintenance {
    fn name(&self) -> &'static str {
        "calibrated"
    }

    fn maintenance_cost(&self, ctx: &CostContext<'_>, view: ViewMask, rates: &UpdateRates) -> f64 {
        if rates.is_frozen() {
            return 0.0;
        }
        let features = maintenance_features(ctx, view, rates);
        if !features.triples_touched.is_finite() {
            return f64::INFINITY;
        }
        self.coefficients.us_per_triple * features.triples_touched
            + self.coefficients.us_per_reeval * features.groups_reevaluated
            + self.coefficients.us_fixed
    }
}

/// Gaussian elimination for the 3×3 normal equations; `None` when singular.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..3 {
            let factor = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (k, pivot_value) in pivot_row.iter().enumerate().skip(col) {
                a[row][k] -= factor * pivot_value;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0f64; 3];
    for row in (0..3).rev() {
        let mut sum = b[row];
        for k in row + 1..3 {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

/// Explicit per-view maintenance costs (per operation): the maintenance
/// analogue of [`crate::UserDefinedCost`]. The per-round cost scales with
/// the update rate, so a frozen graph still costs nothing.
#[derive(Debug, Clone, Default)]
pub struct FixedMaintenance {
    costs: FxHashMap<ViewMask, f64>,
    default: f64,
}

impl FixedMaintenance {
    /// Build from explicit `(view, per-op cost)` pairs; unlisted views get
    /// `default`.
    pub fn new(pairs: impl IntoIterator<Item = (ViewMask, f64)>, default: f64) -> FixedMaintenance {
        FixedMaintenance {
            costs: pairs.into_iter().collect(),
            default,
        }
    }
}

impl MaintenanceCostModel for FixedMaintenance {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn maintenance_cost(&self, _ctx: &CostContext<'_>, view: ViewMask, rates: &UpdateRates) -> f64 {
        self.costs.get(&view).copied().unwrap_or(self.default) * rates.ops_per_round()
    }
}

/// Shard-aware wrapper: Amdahl-scales any inner maintenance estimate to a
/// store whose binding scans run on a per-shard thread pool
/// (`sofos_maintain::Maintainer::apply_sharded`).
///
/// Only the *scannable* fraction of upkeep parallelizes — the pre/post
/// binding enumeration, split by subject hash across
/// `min(shards, writer_threads)` workers. Interning the batch, pushing it
/// through the index deltas, patching view groups, and publishing the
/// epoch stay serial, so the predicted cost is
///
/// ```text
/// inner · (serial_fraction + (1 − serial_fraction) / p),
///     p = max(1, min(shards, writer_threads))
/// ```
///
/// The default serial fraction (0.4) is an uncalibrated *prior*; a live
/// system should replace it with the split the two-phase maintenance
/// pipeline actually measures
/// ([`ShardedMaintenance::from_telemetry`] /
/// [`sofos_maintain::PipelineTelemetry::serial_fraction`]) — since the
/// pipeline moved per-view patch planning off the serial spine, the
/// measured fraction sits well below the old prior, and pricing upkeep
/// with the prior would overestimate the Amdahl floor.
#[derive(Debug, Clone, Copy)]
pub struct ShardedMaintenance<M> {
    inner: M,
    shards: usize,
    writer_threads: usize,
    serial_fraction: f64,
}

impl<M: MaintenanceCostModel> ShardedMaintenance<M> {
    /// Wrap `inner` for a store with `shards` shards maintained by
    /// `writer_threads` workers per batch.
    pub fn new(inner: M, shards: usize, writer_threads: usize) -> ShardedMaintenance<M> {
        ShardedMaintenance {
            inner,
            shards: shards.max(1),
            writer_threads: writer_threads.max(1),
            serial_fraction: 0.4,
        }
    }

    /// Wrap `inner` with the serial fraction *measured* from the
    /// two-phase pipeline's phase telemetry. Falls back to the prior when
    /// the telemetry has recorded no work yet, so a cold session never
    /// prices against a 0/0.
    pub fn from_telemetry(
        inner: M,
        shards: usize,
        writer_threads: usize,
        telemetry: &sofos_maintain::PipelineTelemetry,
    ) -> ShardedMaintenance<M> {
        let model = ShardedMaintenance::new(inner, shards, writer_threads);
        match telemetry.serial_fraction() {
            Some(fraction) => model.with_serial_fraction(fraction),
            None => model,
        }
    }

    /// Override the serial (non-parallelizable) fraction of upkeep,
    /// clamped to `[0, 1]`.
    pub fn with_serial_fraction(mut self, fraction: f64) -> ShardedMaintenance<M> {
        self.serial_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// The serial fraction currently in effect (prior or measured).
    pub fn serial_fraction(&self) -> f64 {
        self.serial_fraction
    }

    /// Effective parallelism: workers cannot exceed shards (a shard is
    /// the unit of work), nor the configured pool size.
    pub fn effective_parallelism(&self) -> usize {
        self.shards.min(self.writer_threads)
    }

    /// The Amdahl scaling factor applied to the inner estimate.
    pub fn scale(&self) -> f64 {
        let p = self.effective_parallelism().max(1) as f64;
        self.serial_fraction + (1.0 - self.serial_fraction) / p
    }
}

impl<M: MaintenanceCostModel> MaintenanceCostModel for ShardedMaintenance<M> {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn maintenance_cost(&self, ctx: &CostContext<'_>, view: ViewMask, rates: &UpdateRates) -> f64 {
        self.inner.maintenance_cost(ctx, view, rates) * self.scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::size_lattice;
    use sofos_cube::{Dimension, Facet, Lattice};
    use sofos_maintain::MaintenanceStrategy;
    use sofos_rdf::Term;
    use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};
    use sofos_store::{Dataset, GraphStats};

    fn setup(agg: AggOp) -> (Dataset, Facet) {
        let mut ds = Dataset::new();
        let a = Term::iri("http://e/a");
        let b = Term::iri("http://e/b");
        let m = Term::iri("http://e/m");
        for i in 0..24 {
            let obs = Term::blank(format!("o{i}"));
            ds.insert(None, &obs, &a, &Term::iri(format!("http://e/A{}", i % 4)));
            ds.insert(None, &obs, &b, &Term::iri(format!("http://e/B{}", i % 3)));
            ds.insert(None, &obs, &m, &Term::literal_int(i));
        }
        let pattern = GroupPattern::triples(vec![
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/a"),
                PatternTerm::var("a"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/b"),
                PatternTerm::var("b"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/m"),
                PatternTerm::var("m"),
            ),
        ]);
        let facet = Facet::new(
            "t",
            vec![Dimension::new("a"), Dimension::new("b")],
            pattern,
            "m",
            agg,
        )
        .unwrap();
        (ds, facet)
    }

    fn with_ctx<R>(agg: AggOp, f: impl FnOnce(&CostContext<'_>) -> R) -> R {
        let (ds, facet) = setup(agg);
        let lattice = Lattice::new(facet.clone());
        let sized = size_lattice(&ds, &lattice).unwrap();
        let base = GraphStats::compute(ds.default_graph());
        let ctx = CostContext {
            facet: &facet,
            view_stats: &sized,
            base: &base,
        };
        f(&ctx)
    }

    #[test]
    fn frozen_rates_cost_nothing() {
        with_ctx(AggOp::Sum, |ctx| {
            for model in [
                &TouchedGroupsMaintenance as &dyn MaintenanceCostModel,
                &CalibratedMaintenance::default(),
            ] {
                for view in [ViewMask::APEX, ViewMask::full(2)] {
                    assert_eq!(
                        model.maintenance_cost(ctx, view, &UpdateRates::FROZEN),
                        0.0,
                        "{} on a frozen graph",
                        model.name()
                    );
                }
            }
        });
    }

    #[test]
    fn sharded_maintenance_amdahl_scales_the_inner_estimate() {
        with_ctx(AggOp::Sum, |ctx| {
            let rates = UpdateRates::new(4.0, 2.0);
            let view = ViewMask::full(2);
            let serial = TouchedGroupsMaintenance.maintenance_cost(ctx, view, &rates);
            assert!(serial > 0.0);

            // One shard (or one thread) = no scaling at all.
            for (shards, threads) in [(1, 8), (8, 1)] {
                let model = ShardedMaintenance::new(TouchedGroupsMaintenance, shards, threads);
                assert_eq!(model.effective_parallelism(), 1);
                assert!((model.maintenance_cost(ctx, view, &rates) - serial).abs() < 1e-9);
            }

            // 4 shards × 2 threads: parallelism 2, bounded below by the
            // serial fraction.
            let model = ShardedMaintenance::new(TouchedGroupsMaintenance, 4, 2);
            assert_eq!(model.effective_parallelism(), 2);
            let cost = model.maintenance_cost(ctx, view, &rates);
            assert!(cost < serial, "parallel upkeep is cheaper");
            assert!(
                cost > serial * 0.4,
                "the serial fraction floors the speedup"
            );

            // Unbounded parallelism converges to the serial fraction.
            let wide = ShardedMaintenance::new(TouchedGroupsMaintenance, 1024, 1024)
                .with_serial_fraction(0.25);
            let floor = wide.maintenance_cost(ctx, view, &rates);
            assert!((floor / serial - 0.25).abs() < 1e-2);

            // Frozen rates still cost nothing through the wrapper.
            assert_eq!(model.maintenance_cost(ctx, view, &UpdateRates::FROZEN), 0.0);
        });
    }

    #[test]
    fn measured_serial_fraction_replaces_the_prior() {
        use sofos_maintain::PipelineTelemetry;
        with_ctx(AggOp::Sum, |ctx| {
            let rates = UpdateRates::new(4.0, 2.0);
            let view = ViewMask::full(2);
            let serial = TouchedGroupsMaintenance.maintenance_cost(ctx, view, &rates);

            // Measured split: 1 part serial to 9 parts parallel work.
            let telemetry = PipelineTelemetry {
                serial_us: 100,
                parallel_work_us: 900,
                parallel_wall_us: 300,
            };
            let model =
                ShardedMaintenance::from_telemetry(TouchedGroupsMaintenance, 4, 4, &telemetry);
            assert!((model.serial_fraction() - 0.1).abs() < 1e-12);
            let expected = serial * (0.1 + 0.9 / 4.0);
            assert!((model.maintenance_cost(ctx, view, &rates) - expected).abs() < 1e-6);

            // Empty telemetry keeps the prior.
            let cold = ShardedMaintenance::from_telemetry(
                TouchedGroupsMaintenance,
                4,
                4,
                &PipelineTelemetry::default(),
            );
            assert_eq!(cold.serial_fraction(), 0.4);
        });
    }

    #[test]
    fn occupancy_bound_shape() {
        assert_eq!(expected_touched_groups(10, 0.0), 0.0);
        // One op touches exactly one group.
        assert!((expected_touched_groups(10, 1.0) - 1.0).abs() < 1e-9);
        // Many ops saturate at the group count.
        assert!(expected_touched_groups(3, 1000.0) <= 3.0 + 1e-9);
        assert!(expected_touched_groups(3, 1000.0) > 2.99);
        // An empty view: every op opens a group.
        assert_eq!(expected_touched_groups(0, 5.0), 5.0);
    }

    #[test]
    fn finer_views_cost_more_to_maintain() {
        with_ctx(AggOp::Sum, |ctx| {
            let rates = UpdateRates::new(4.0, 2.0);
            let model = TouchedGroupsMaintenance;
            let apex = model.maintenance_cost(ctx, ViewMask::APEX, &rates);
            let base = model.maintenance_cost(ctx, ViewMask::full(2), &rates);
            assert!(
                apex < base,
                "apex upkeep {apex} should undercut base upkeep {base}"
            );
        });
    }

    #[test]
    fn deletes_make_minmax_views_expensive() {
        let rates_ins = UpdateRates::new(6.0, 0.0);
        let rates_del = UpdateRates::new(3.0, 3.0);
        let sum_cost = with_ctx(AggOp::Sum, |ctx| {
            TouchedGroupsMaintenance.maintenance_cost(ctx, ViewMask::full(2), &rates_del)
        });
        let (min_ins, min_del) = with_ctx(AggOp::Min, |ctx| {
            (
                TouchedGroupsMaintenance.maintenance_cost(ctx, ViewMask::full(2), &rates_ins),
                TouchedGroupsMaintenance.maintenance_cost(ctx, ViewMask::full(2), &rates_del),
            )
        });
        assert!(
            min_del > min_ins,
            "deletes trigger MIN re-evaluation: {min_del} vs {min_ins}"
        );
        assert!(
            min_del > sum_cost,
            "MIN upkeep under deletes exceeds SUM's: {min_del} vs {sum_cost}"
        );
    }

    #[test]
    fn unsized_views_are_unpriceable() {
        with_ctx(AggOp::Sum, |ctx| {
            let rates = UpdateRates::new(1.0, 1.0);
            assert!(TouchedGroupsMaintenance
                .maintenance_cost(ctx, ViewMask(0b10000), &rates)
                .is_infinite());
            assert!(CalibratedMaintenance::default()
                .maintenance_cost(ctx, ViewMask(0b10000), &rates)
                .is_infinite());
        });
    }

    #[test]
    fn calibration_recovers_unit_costs() {
        // Synthetic telemetry from exact unit costs 2 µs/triple, 50 µs/re-eval.
        let mut samples = Vec::new();
        for i in 1..20usize {
            let triples = i * 7 % 13 + 1;
            let reevals = i % 4;
            samples.push(MaintenanceCost {
                view: ViewMask(i as u64 % 4),
                strategy: MaintenanceStrategy::Counting,
                triples_touched: triples,
                groups_patched: triples,
                groups_reevaluated: reevals,
                rows_inserted: 0,
                rows_retracted: 0,
                wall_us: (2 * triples + 50 * reevals) as u64,
            });
        }
        let model = CalibratedMaintenance::calibrate(&samples);
        let c = model.coefficients();
        assert!((c.us_per_triple - 2.0).abs() < 0.2, "{c:?}");
        assert!((c.us_per_reeval - 50.0).abs() < 2.0, "{c:?}");
    }

    #[test]
    fn calibration_without_samples_keeps_priors() {
        let model = CalibratedMaintenance::calibrate(&[]);
        assert_eq!(model.coefficients(), MaintenanceCoefficients::default());
    }

    #[test]
    fn fixed_maintenance_scales_with_rates() {
        with_ctx(AggOp::Sum, |ctx| {
            let hot = ViewMask::full(2);
            let model = FixedMaintenance::new([(hot, 10.0)], 1.0);
            let rates = UpdateRates::new(2.0, 1.0);
            assert_eq!(model.maintenance_cost(ctx, hot, &rates), 30.0);
            assert_eq!(model.maintenance_cost(ctx, ViewMask::APEX, &rates), 3.0);
            assert_eq!(model.maintenance_cost(ctx, hot, &UpdateRates::FROZEN), 0.0);
        });
    }
}
