//! The static cost models: Random, #Triples, #AggValues, #Nodes, UserDefined.
//!
//! Quoting §3.1 of the paper:
//!
//! * **Random** — "This cost function is constant C(Vi) = 1 … this will
//!   output a random k-size subset of V(F)." (Implemented as a seeded hash
//!   so that "random" is reproducible and still constant-quality: with all
//!   costs equal the greedy selector would degenerate to an arbitrary but
//!   fixed order; hashing the mask with a seed gives the intended random
//!   subset while keeping experiments replayable.)
//! * **Number of triples** — "analogous to the number of tuples in
//!   relational databases … C(Vi) = |G_Vi|".
//! * **Number of aggregated values** — "the number of results of the query
//!   representing the view, C(Vi) = |Vi(G)|".
//! * **Number of nodes** — "the number of node values in the view Vi,
//!   C(Vi) = |Ii ∪ Bi ∪ Li|".
//! * **User defined** — "The user acts as a cost function, selecting k
//!   views from the lattice."

use crate::context::CostContext;
use sofos_cube::ViewMask;
use sofos_rdf::hash::fx_hash_u64;
use sofos_rdf::FxHashMap;
use std::fmt;

/// A cost model `C : V(F) → R+` predicting the query cost against a view.
pub trait CostModel: Send + Sync {
    /// Short stable name, used in reports and experiment tables.
    fn name(&self) -> &'static str;

    /// The cost of a candidate view. Views the context cannot size are
    /// priced pessimistically (`f64::INFINITY`).
    fn cost(&self, ctx: &CostContext<'_>, view: ViewMask) -> f64;
}

/// The six cost-model families of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostModelKind {
    /// Constant cost ⇒ random k-subset.
    Random,
    /// `|G_Vi|` — triples of the materialized view graph.
    Triples,
    /// `|Vi(G)|` — result rows of the view query.
    AggValues,
    /// `|Ii ∪ Bi ∪ Li|` — distinct nodes of the view graph.
    Nodes,
    /// Learned deep-regression estimate (see [`crate::learned`]).
    Learned,
    /// The user picks the views (costs supplied explicitly).
    UserDefined,
}

impl CostModelKind {
    /// All six kinds, in the paper's order.
    pub const ALL: [CostModelKind; 6] = [
        CostModelKind::Random,
        CostModelKind::Triples,
        CostModelKind::AggValues,
        CostModelKind::Nodes,
        CostModelKind::Learned,
        CostModelKind::UserDefined,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CostModelKind::Random => "random",
            CostModelKind::Triples => "triples",
            CostModelKind::AggValues => "agg-values",
            CostModelKind::Nodes => "nodes",
            CostModelKind::Learned => "learned",
            CostModelKind::UserDefined => "user-defined",
        }
    }
}

impl fmt::Display for CostModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Cost model #1: random (constant cost, seeded tie-breaking).
#[derive(Debug, Clone, Copy)]
pub struct RandomCost {
    seed: u64,
}

impl RandomCost {
    /// A random cost model with a reproducible seed.
    pub fn new(seed: u64) -> RandomCost {
        RandomCost { seed }
    }
}

impl CostModel for RandomCost {
    fn name(&self) -> &'static str {
        "random"
    }

    fn cost(&self, _ctx: &CostContext<'_>, view: ViewMask) -> f64 {
        // Uniform in (0, 1], deterministic per (seed, mask).
        let h = fx_hash_u64(self.seed ^ view.0.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (h >> 11) as f64 / (1u64 << 53) as f64 + f64::EPSILON
    }
}

/// Cost model #2: number of triples `|G_Vi|`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TriplesCost;

impl CostModel for TriplesCost {
    fn name(&self) -> &'static str {
        "triples"
    }

    fn cost(&self, ctx: &CostContext<'_>, view: ViewMask) -> f64 {
        ctx.stats(view).map_or(f64::INFINITY, |s| s.triples as f64)
    }
}

/// Cost model #3: number of aggregated values `|Vi(G)|`.
#[derive(Debug, Clone, Copy, Default)]
pub struct AggValuesCost;

impl CostModel for AggValuesCost {
    fn name(&self) -> &'static str {
        "agg-values"
    }

    fn cost(&self, ctx: &CostContext<'_>, view: ViewMask) -> f64 {
        ctx.stats(view).map_or(f64::INFINITY, |s| s.rows as f64)
    }
}

/// Cost model #4: number of nodes `|Ii ∪ Bi ∪ Li|`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodesCost;

impl CostModel for NodesCost {
    fn name(&self) -> &'static str {
        "nodes"
    }

    fn cost(&self, ctx: &CostContext<'_>, view: ViewMask) -> f64 {
        ctx.stats(view).map_or(f64::INFINITY, |s| s.nodes as f64)
    }
}

/// Cost model #6: user-defined costs (the demo's "User Selected Views"
/// station — participants effectively assign their own cost function).
#[derive(Debug, Clone, Default)]
pub struct UserDefinedCost {
    costs: FxHashMap<ViewMask, f64>,
    default: f64,
}

impl UserDefinedCost {
    /// Build from explicit `(view, cost)` pairs; unlisted views get
    /// `default` (use `f64::INFINITY` to forbid them).
    pub fn new(pairs: impl IntoIterator<Item = (ViewMask, f64)>, default: f64) -> UserDefinedCost {
        UserDefinedCost {
            costs: pairs.into_iter().collect(),
            default,
        }
    }

    /// Mark a set of views as the preferred selection (cost 0, everything
    /// else infinite): exactly "the user acts as a cost function".
    pub fn preferring(views: impl IntoIterator<Item = ViewMask>) -> UserDefinedCost {
        UserDefinedCost {
            costs: views.into_iter().map(|v| (v, 0.0)).collect(),
            default: f64::INFINITY,
        }
    }
}

impl CostModel for UserDefinedCost {
    fn name(&self) -> &'static str {
        "user-defined"
    }

    fn cost(&self, _ctx: &CostContext<'_>, view: ViewMask) -> f64 {
        self.costs.get(&view).copied().unwrap_or(self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::size_lattice;
    use sofos_cube::{AggOp, Dimension, Facet, Lattice};
    use sofos_rdf::Term;
    use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};
    use sofos_store::{Dataset, GraphStats};

    fn setup() -> (Dataset, Facet) {
        let mut ds = Dataset::new();
        let a = Term::iri("http://e/a");
        let b = Term::iri("http://e/b");
        let m = Term::iri("http://e/m");
        for i in 0..20 {
            let obs = Term::blank(format!("o{i}"));
            ds.insert(None, &obs, &a, &Term::iri(format!("http://e/A{}", i % 5)));
            ds.insert(None, &obs, &b, &Term::iri(format!("http://e/B{}", i % 2)));
            ds.insert(None, &obs, &m, &Term::literal_int(i));
        }
        let pattern = GroupPattern::triples(vec![
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/a"),
                PatternTerm::var("a"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/b"),
                PatternTerm::var("b"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/m"),
                PatternTerm::var("m"),
            ),
        ]);
        let facet = Facet::new(
            "t",
            vec![Dimension::new("a"), Dimension::new("b")],
            pattern,
            "m",
            AggOp::Sum,
        )
        .unwrap();
        (ds, facet)
    }

    fn with_ctx<R>(f: impl FnOnce(&CostContext<'_>) -> R) -> R {
        let (ds, facet) = setup();
        let lattice = Lattice::new(facet.clone());
        let sized = size_lattice(&ds, &lattice).unwrap();
        let base = GraphStats::compute(ds.default_graph());
        let ctx = CostContext {
            facet: &facet,
            view_stats: &sized,
            base: &base,
        };
        f(&ctx)
    }

    #[test]
    fn static_costs_match_view_stats() {
        with_ctx(|ctx| {
            let base = ViewMask::full(2);
            let stats = ctx.stats(base).unwrap().clone();
            assert_eq!(TriplesCost.cost(ctx, base), stats.triples as f64);
            assert_eq!(AggValuesCost.cost(ctx, base), stats.rows as f64);
            assert_eq!(NodesCost.cost(ctx, base), stats.nodes as f64);
        });
    }

    #[test]
    fn coarser_views_cost_less_under_all_static_models() {
        with_ctx(|ctx| {
            let apex = ViewMask::APEX;
            let base = ViewMask::full(2);
            for model in [&TriplesCost as &dyn CostModel, &AggValuesCost, &NodesCost] {
                assert!(
                    model.cost(ctx, apex) < model.cost(ctx, base),
                    "{}: apex should be cheaper",
                    model.name()
                );
            }
        });
    }

    #[test]
    fn unsized_views_are_infinite() {
        with_ctx(|ctx| {
            let ghost = ViewMask(0b100000);
            assert!(TriplesCost.cost(ctx, ghost).is_infinite());
            assert!(AggValuesCost.cost(ctx, ghost).is_infinite());
            assert!(NodesCost.cost(ctx, ghost).is_infinite());
        });
    }

    #[test]
    fn random_cost_is_deterministic_per_seed_and_spread() {
        with_ctx(|ctx| {
            let a = RandomCost::new(1);
            let b = RandomCost::new(1);
            let c = RandomCost::new(2);
            let v1 = ViewMask(1);
            let v2 = ViewMask(2);
            assert_eq!(a.cost(ctx, v1), b.cost(ctx, v1));
            assert_ne!(a.cost(ctx, v1), c.cost(ctx, v1), "different seeds differ");
            assert_ne!(a.cost(ctx, v1), a.cost(ctx, v2), "different views differ");
            for v in 0..16u64 {
                let cost = a.cost(ctx, ViewMask(v));
                assert!(cost > 0.0 && cost <= 1.0, "cost {cost} out of range");
            }
        });
    }

    #[test]
    fn user_defined_prefers_listed_views() {
        with_ctx(|ctx| {
            let favorite = ViewMask::from_dims(&[0]);
            let model = UserDefinedCost::preferring([favorite]);
            assert_eq!(model.cost(ctx, favorite), 0.0);
            assert!(model.cost(ctx, ViewMask::APEX).is_infinite());

            let scored = UserDefinedCost::new([(ViewMask::APEX, 5.0)], 10.0);
            assert_eq!(scored.cost(ctx, ViewMask::APEX), 5.0);
            assert_eq!(scored.cost(ctx, favorite), 10.0);
        });
    }

    #[test]
    fn kind_names_are_stable() {
        let names: Vec<&str> = CostModelKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "random",
                "triples",
                "agg-values",
                "nodes",
                "learned",
                "user-defined"
            ]
        );
        assert_eq!(CostModelKind::Triples.to_string(), "triples");
    }
}
