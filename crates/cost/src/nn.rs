//! A small feed-forward neural network, implemented from scratch.
//!
//! The paper's learned cost model (§3.1) "adapt\[s\] a cost estimate from a
//! learned deep regression model" (Ortiz et al.). SOFOS needs exactly that:
//! a multilayer perceptron mapping a query/view feature vector to a running
//! time. To keep the workspace dependency-free this module implements dense
//! layers, ReLU, mean-squared-error loss and the Adam optimizer directly
//! (~250 lines); at the feature dimensionalities involved (≲64) this is
//! orders of magnitude below any performance threshold that would justify
//! an ML framework.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One dense layer: `y = W·x + b` with optional ReLU.
#[derive(Debug, Clone)]
struct Dense {
    input: usize,
    output: usize,
    /// Row-major `output × input`.
    weights: Vec<f64>,
    bias: Vec<f64>,
    relu: bool,
    // Adam state.
    m_w: Vec<f64>,
    v_w: Vec<f64>,
    m_b: Vec<f64>,
    v_b: Vec<f64>,
}

impl Dense {
    fn new(input: usize, output: usize, relu: bool, rng: &mut StdRng) -> Dense {
        // He initialization suits ReLU nets.
        let scale = (2.0 / input as f64).sqrt();
        let weights = (0..input * output)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect::<Vec<f64>>();
        Dense {
            input,
            output,
            bias: vec![0.0; output],
            m_w: vec![0.0; input * output],
            v_w: vec![0.0; input * output],
            m_b: vec![0.0; output],
            v_b: vec![0.0; output],
            weights,
            relu,
        }
    }

    /// Forward pass; returns pre-activation and post-activation.
    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        debug_assert_eq!(x.len(), self.input);
        let mut pre = self.bias.clone();
        for (o, pre_o) in pre.iter_mut().enumerate() {
            let row = &self.weights[o * self.input..(o + 1) * self.input];
            let mut acc = 0.0;
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            *pre_o += acc;
        }
        let post = if self.relu {
            pre.iter().map(|&v| v.max(0.0)).collect()
        } else {
            pre.clone()
        };
        (pre, post)
    }
}

/// A feed-forward regression network with Adam training.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    step: u64,
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 200,
            learning_rate: 1e-2,
            batch_size: 16,
            seed: 7,
        }
    }
}

const BETA1: f64 = 0.9;
const BETA2: f64 = 0.999;
const EPS: f64 = 1e-8;

impl Mlp {
    /// Build a network with the given layer widths, e.g. `[8, 16, 16, 1]`.
    /// Hidden layers use ReLU; the output layer is linear.
    pub fn new(widths: &[usize], seed: u64) -> Mlp {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Dense::new(w[0], w[1], i + 2 < widths.len(), &mut rng))
            .collect();
        Mlp { layers, step: 0 }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, |l| l.input)
    }

    /// Predict a scalar for one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut activation = x.to_vec();
        for layer in &self.layers {
            activation = layer.forward(&activation).1;
        }
        activation[0]
    }

    /// One Adam update on a mini-batch; returns the batch MSE before the
    /// update.
    fn train_batch(&mut self, batch: &[(&[f64], f64)], lr: f64) -> f64 {
        // Accumulate gradients over the batch.
        let mut grad_w: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; l.weights.len()])
            .collect();
        let mut grad_b: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; l.bias.len()])
            .collect();
        let mut loss = 0.0;

        for (x, target) in batch {
            // Forward, remembering activations.
            let mut activations: Vec<Vec<f64>> = vec![x.to_vec()];
            let mut pre_acts: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len());
            for layer in &self.layers {
                let (pre, post) = layer.forward(activations.last().expect("nonempty"));
                pre_acts.push(pre);
                activations.push(post);
            }
            let prediction = activations.last().expect("nonempty")[0];
            let error = prediction - target;
            loss += error * error;

            // Backward.
            let mut delta: Vec<f64> = vec![2.0 * error];
            for (li, layer) in self.layers.iter().enumerate().rev() {
                // delta is d(loss)/d(post_li); convert through ReLU.
                let mut dpre = delta.clone();
                if layer.relu {
                    for (d, &p) in dpre.iter_mut().zip(&pre_acts[li]) {
                        if p <= 0.0 {
                            *d = 0.0;
                        }
                    }
                }
                let input_act = &activations[li];
                for o in 0..layer.output {
                    grad_b[li][o] += dpre[o];
                    let row = &mut grad_w[li][o * layer.input..(o + 1) * layer.input];
                    for (g, &a) in row.iter_mut().zip(input_act) {
                        *g += dpre[o] * a;
                    }
                }
                // Propagate to previous layer.
                if li > 0 {
                    let mut prev = vec![0.0; layer.input];
                    for (o, &d) in dpre.iter().enumerate().take(layer.output) {
                        let row = &layer.weights[o * layer.input..(o + 1) * layer.input];
                        for (p, &w) in prev.iter_mut().zip(row) {
                            *p += d * w;
                        }
                    }
                    delta = prev;
                }
            }
        }

        // Adam step.
        self.step += 1;
        let t = self.step as f64;
        let scale = 1.0 / batch.len() as f64;
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (i, g) in grad_w[li].iter().enumerate() {
                let g = g * scale;
                layer.m_w[i] = BETA1 * layer.m_w[i] + (1.0 - BETA1) * g;
                layer.v_w[i] = BETA2 * layer.v_w[i] + (1.0 - BETA2) * g * g;
                let m_hat = layer.m_w[i] / (1.0 - BETA1.powf(t));
                let v_hat = layer.v_w[i] / (1.0 - BETA2.powf(t));
                layer.weights[i] -= lr * m_hat / (v_hat.sqrt() + EPS);
            }
            for (i, g) in grad_b[li].iter().enumerate() {
                let g = g * scale;
                layer.m_b[i] = BETA1 * layer.m_b[i] + (1.0 - BETA1) * g;
                layer.v_b[i] = BETA2 * layer.v_b[i] + (1.0 - BETA2) * g * g;
                let m_hat = layer.m_b[i] / (1.0 - BETA1.powf(t));
                let v_hat = layer.v_b[i] / (1.0 - BETA2.powf(t));
                layer.bias[i] -= lr * m_hat / (v_hat.sqrt() + EPS);
            }
        }
        loss / batch.len() as f64
    }

    /// Train on `(features, target)` pairs; returns per-epoch mean MSE.
    pub fn train(
        &mut self,
        features: &[Vec<f64>],
        targets: &[f64],
        config: TrainConfig,
    ) -> Vec<f64> {
        assert_eq!(features.len(), targets.len());
        if features.is_empty() {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut history = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            // Fisher-Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(config.batch_size.max(1)) {
                let batch: Vec<(&[f64], f64)> = chunk
                    .iter()
                    .map(|&i| (features[i].as_slice(), targets[i]))
                    .collect();
                epoch_loss += self.train_batch(&batch, config.learning_rate);
                batches += 1;
            }
            history.push(epoch_loss / batches.max(1) as f64);
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn final_loss(history: &[f64]) -> f64 {
        *history.last().expect("trained at least one epoch")
    }

    #[test]
    fn fits_a_linear_function() {
        // y = 3x + 1 on [0, 1].
        let features: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 50.0]).collect();
        let targets: Vec<f64> = features.iter().map(|x| 3.0 * x[0] + 1.0).collect();
        let mut net = Mlp::new(&[1, 8, 1], 42);
        let history = net.train(&features, &targets, TrainConfig::default());
        assert!(
            final_loss(&history) < 1e-2,
            "loss: {}",
            final_loss(&history)
        );
        assert!((net.predict(&[0.5]) - 2.5).abs() < 0.2);
    }

    #[test]
    fn fits_xor_shape() {
        // XOR is the canonical non-linear sanity check.
        let features = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let targets = vec![0.0, 1.0, 1.0, 0.0];
        let mut net = Mlp::new(&[2, 8, 8, 1], 3);
        let config = TrainConfig {
            epochs: 2000,
            learning_rate: 5e-3,
            batch_size: 4,
            seed: 3,
        };
        net.train(&features, &targets, config);
        for (x, t) in features.iter().zip(&targets) {
            let p = net.predict(x);
            assert!((p - t).abs() < 0.25, "xor({x:?}) = {p}, want {t}");
        }
    }

    #[test]
    fn loss_decreases_during_training() {
        let features: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i as f64 / 10.0).sin(), i as f64 / 40.0])
            .collect();
        let targets: Vec<f64> = features.iter().map(|x| x[0] * 2.0 + x[1] * x[1]).collect();
        let mut net = Mlp::new(&[2, 16, 1], 9);
        let history = net.train(&features, &targets, TrainConfig::default());
        let early: f64 = history[..10].iter().sum::<f64>() / 10.0;
        let late: f64 = history[history.len() - 10..].iter().sum::<f64>() / 10.0;
        assert!(
            late < early,
            "training did not reduce loss: {early} → {late}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let features: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..20).map(|i| i as f64 * 0.5).collect();
        let mut a = Mlp::new(&[1, 4, 1], 11);
        let mut b = Mlp::new(&[1, 4, 1], 11);
        a.train(&features, &targets, TrainConfig::default());
        b.train(&features, &targets, TrainConfig::default());
        assert_eq!(a.predict(&[3.0]), b.predict(&[3.0]));
    }

    #[test]
    fn different_seeds_differ() {
        let a = Mlp::new(&[2, 4, 1], 1);
        let b = Mlp::new(&[2, 4, 1], 2);
        assert_ne!(a.predict(&[1.0, 1.0]), b.predict(&[1.0, 1.0]));
    }

    #[test]
    fn input_dim_reports_first_layer() {
        assert_eq!(Mlp::new(&[7, 3, 1], 0).input_dim(), 7);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_degenerate_shape() {
        let _ = Mlp::new(&[4], 0);
    }

    #[test]
    fn empty_training_set_is_a_no_op() {
        let mut net = Mlp::new(&[2, 4, 1], 5);
        let before = net.predict(&[1.0, 2.0]);
        let history = net.train(&[], &[], TrainConfig::default());
        assert!(history.is_empty());
        assert_eq!(net.predict(&[1.0, 2.0]), before);
    }
}
