//! Facet definitions: `F = ⟨X̄, P, agg(u)⟩`.

use sofos_sparql::GroupPattern;
use std::fmt;

/// One grouping dimension of a facet: a variable of the pattern `P`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dimension {
    /// The variable name in the facet pattern (without `?`).
    pub var: String,
    /// Human-readable label for reports.
    pub label: String,
}

impl Dimension {
    /// Create a dimension whose label equals its variable name.
    pub fn new(var: impl Into<String>) -> Dimension {
        let var = var.into();
        Dimension {
            label: var.clone(),
            var,
        }
    }

    /// Create a dimension with an explicit label.
    pub fn labeled(var: impl Into<String>, label: impl Into<String>) -> Dimension {
        Dimension {
            var: var.into(),
            label: label.into(),
        }
    }
}

/// The aggregation operators of the paper: `{SUM, AVG, COUNT, MAX, MIN}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    /// `SUM(u)`.
    Sum,
    /// `AVG(u)` — materialized as SUM+COUNT for exact re-aggregation.
    Avg,
    /// `COUNT(u)`.
    Count,
    /// `MIN(u)`.
    Min,
    /// `MAX(u)`.
    Max,
}

impl AggOp {
    /// All aggregation operators (for workload generators).
    pub const ALL: [AggOp; 5] = [AggOp::Sum, AggOp::Avg, AggOp::Count, AggOp::Min, AggOp::Max];

    /// SPARQL keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            AggOp::Sum => "SUM",
            AggOp::Avg => "AVG",
            AggOp::Count => "COUNT",
            AggOp::Min => "MIN",
            AggOp::Max => "MAX",
        }
    }

    /// The distributive components a materialized view must store so this
    /// aggregate can be *exactly* recomputed from coarser groups:
    /// AVG ⇒ SUM+COUNT, everything else ⇒ itself.
    pub fn components(self) -> &'static [MaterialComponent] {
        match self {
            AggOp::Sum => &[MaterialComponent::Sum],
            AggOp::Count => &[MaterialComponent::Count],
            AggOp::Avg => &[MaterialComponent::Sum, MaterialComponent::Count],
            AggOp::Min => &[MaterialComponent::Min],
            AggOp::Max => &[MaterialComponent::Max],
        }
    }
}

impl fmt::Display for AggOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A distributive component stored by the materializer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaterialComponent {
    /// Partial sums.
    Sum,
    /// Partial counts.
    Count,
    /// Partial minima.
    Min,
    /// Partial maxima.
    Max,
}

/// Errors constructing a facet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FacetError {
    /// A dimension variable does not occur in the pattern.
    UnknownDimension(String),
    /// The measure variable does not occur in the pattern.
    UnknownMeasure(String),
    /// More dimensions than the lattice supports.
    TooManyDimensions(usize),
    /// Duplicate dimension variable.
    DuplicateDimension(String),
}

impl fmt::Display for FacetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FacetError::UnknownDimension(v) => {
                write!(
                    f,
                    "dimension variable ?{v} does not appear in the facet pattern"
                )
            }
            FacetError::UnknownMeasure(v) => {
                write!(
                    f,
                    "measure variable ?{v} does not appear in the facet pattern"
                )
            }
            FacetError::TooManyDimensions(n) => {
                write!(f, "{n} dimensions exceed the supported maximum of 20")
            }
            FacetError::DuplicateDimension(v) => {
                write!(f, "dimension variable ?{v} is declared twice")
            }
        }
    }
}

impl std::error::Error for FacetError {}

/// An analytical facet `F = ⟨X̄, P, agg(u)⟩` (§3 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Facet {
    /// Short identifier, used in view-graph IRIs and reports.
    pub id: String,
    /// The grouping dimensions `X̄` (indexable by `ViewMask` bits).
    pub dimensions: Vec<Dimension>,
    /// The pattern `P` binding dimensions and measure (default graph).
    pub pattern: GroupPattern,
    /// The measure variable `u`.
    pub measure: String,
    /// The facet's aggregation `agg`.
    pub agg: AggOp,
}

impl Facet {
    /// Maximum supported dimensions (2^20 lattice nodes ≈ 1M views).
    pub const MAX_DIMENSIONS: usize = 20;

    /// Create a validated facet.
    pub fn new(
        id: impl Into<String>,
        dimensions: Vec<Dimension>,
        pattern: GroupPattern,
        measure: impl Into<String>,
        agg: AggOp,
    ) -> Result<Facet, FacetError> {
        let measure = measure.into();
        if dimensions.len() > Self::MAX_DIMENSIONS {
            return Err(FacetError::TooManyDimensions(dimensions.len()));
        }
        let pattern_vars = pattern.pattern_variables();
        for (i, d) in dimensions.iter().enumerate() {
            if !pattern_vars.contains(&d.var) {
                return Err(FacetError::UnknownDimension(d.var.clone()));
            }
            if dimensions[..i].iter().any(|other| other.var == d.var) {
                return Err(FacetError::DuplicateDimension(d.var.clone()));
            }
        }
        if !pattern_vars.contains(&measure) {
            return Err(FacetError::UnknownMeasure(measure));
        }
        Ok(Facet {
            id: id.into(),
            dimensions,
            pattern,
            measure,
            agg,
        })
    }

    /// Number of dimensions `|X̄|`.
    pub fn dim_count(&self) -> usize {
        self.dimensions.len()
    }

    /// Index of a dimension by variable name.
    pub fn dim_index(&self, var: &str) -> Option<usize> {
        self.dimensions.iter().position(|d| d.var == var)
    }

    /// The dimension at a mask bit.
    pub fn dimension(&self, index: usize) -> &Dimension {
        &self.dimensions[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};

    fn pattern() -> GroupPattern {
        GroupPattern::triples(vec![
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("c"),
                PatternTerm::var("country"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("l"),
                PatternTerm::var("lang"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("p"),
                PatternTerm::var("pop"),
            ),
        ])
    }

    #[test]
    fn valid_facet() {
        let f = Facet::new(
            "pop",
            vec![Dimension::new("country"), Dimension::new("lang")],
            pattern(),
            "pop",
            AggOp::Sum,
        )
        .expect("valid");
        assert_eq!(f.dim_count(), 2);
        assert_eq!(f.dim_index("lang"), Some(1));
        assert_eq!(f.dim_index("nope"), None);
        assert_eq!(f.dimension(0).var, "country");
    }

    #[test]
    fn rejects_unknown_dimension() {
        let err = Facet::new(
            "x",
            vec![Dimension::new("ghost")],
            pattern(),
            "pop",
            AggOp::Sum,
        )
        .unwrap_err();
        assert_eq!(err, FacetError::UnknownDimension("ghost".into()));
    }

    #[test]
    fn rejects_unknown_measure() {
        let err = Facet::new(
            "x",
            vec![Dimension::new("country")],
            pattern(),
            "ghost",
            AggOp::Sum,
        )
        .unwrap_err();
        assert_eq!(err, FacetError::UnknownMeasure("ghost".into()));
    }

    #[test]
    fn rejects_duplicate_dimension() {
        let err = Facet::new(
            "x",
            vec![Dimension::new("country"), Dimension::new("country")],
            pattern(),
            "pop",
            AggOp::Sum,
        )
        .unwrap_err();
        assert_eq!(err, FacetError::DuplicateDimension("country".into()));
    }

    #[test]
    fn rejects_too_many_dimensions() {
        // Build a pattern with 21 variables to trip the limit.
        let mut triples = Vec::new();
        let mut dims = Vec::new();
        for i in 0..21 {
            triples.push(TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri(format!("p{i}")),
                PatternTerm::var(format!("d{i}")),
            ));
            dims.push(Dimension::new(format!("d{i}")));
        }
        triples.push(TriplePattern::new(
            PatternTerm::var("o"),
            PatternTerm::iri("m"),
            PatternTerm::var("u"),
        ));
        let err =
            Facet::new("x", dims, GroupPattern::triples(triples), "u", AggOp::Sum).unwrap_err();
        assert!(matches!(err, FacetError::TooManyDimensions(21)));
    }

    #[test]
    fn agg_components() {
        assert_eq!(AggOp::Sum.components(), [MaterialComponent::Sum]);
        assert_eq!(
            AggOp::Avg.components(),
            [MaterialComponent::Sum, MaterialComponent::Count]
        );
        assert_eq!(AggOp::Min.components(), [MaterialComponent::Min]);
        assert_eq!(AggOp::Count.components(), [MaterialComponent::Count]);
    }

    #[test]
    fn agg_keywords() {
        for (op, kw) in AggOp::ALL.iter().zip(["SUM", "AVG", "COUNT", "MIN", "MAX"]) {
            assert_eq!(op.keyword(), kw);
        }
    }
}
