//! The view lattice `V(F)` induced by a facet.

use crate::facet::Facet;
use crate::mask::ViewMask;

/// The lattice of all `2^d` views of a facet, ordered by dimension-set
/// inclusion. "Materializing the entire lattice is impractical from the
/// memory consumption standpoint" (§3) — which is exactly why SOFOS selects
/// a `k`-subset; this type provides the enumeration and cover structure the
/// selectors and the GUI's "Full Lattice view" (Figure 3 ①) work over.
#[derive(Debug, Clone)]
pub struct Lattice {
    facet: Facet,
}

impl Lattice {
    /// Build the lattice of a facet.
    pub fn new(facet: Facet) -> Lattice {
        Lattice { facet }
    }

    /// The underlying facet.
    pub fn facet(&self) -> &Facet {
        &self.facet
    }

    /// Number of dimensions `d`.
    pub fn dim_count(&self) -> usize {
        self.facet.dim_count()
    }

    /// Number of views `2^d`.
    pub fn num_views(&self) -> u64 {
        1u64 << self.facet.dim_count()
    }

    /// The base view (all dimensions).
    pub fn base(&self) -> ViewMask {
        ViewMask::full(self.facet.dim_count())
    }

    /// The apex view (total aggregation).
    pub fn apex(&self) -> ViewMask {
        ViewMask::APEX
    }

    /// Enumerate all views, ascending by mask value (deterministic).
    pub fn views(&self) -> impl Iterator<Item = ViewMask> {
        (0..self.num_views()).map(ViewMask)
    }

    /// Enumerate views at a given level (number of retained dimensions).
    pub fn views_at_level(&self, level: u32) -> Vec<ViewMask> {
        self.views().filter(|v| v.dim_count() == level).collect()
    }

    /// Direct children of a view: one dimension removed (what this view can
    /// derive in a single roll-up step).
    pub fn children(&self, view: ViewMask) -> Vec<ViewMask> {
        view.dims().into_iter().map(|d| view.without(d)).collect()
    }

    /// Direct parents of a view: one dimension added.
    pub fn parents(&self, view: ViewMask) -> Vec<ViewMask> {
        (0..self.facet.dim_count())
            .filter(|&d| !view.contains(d))
            .map(|d| view.with(d))
            .collect()
    }

    /// All views that can answer a query grouped by `required` dimensions:
    /// exactly the masks covering `required`, ascending.
    pub fn covering_views(&self, required: ViewMask) -> Vec<ViewMask> {
        self.views().filter(|v| v.covers(required)).collect()
    }

    /// Dimension variable names of a view, in mask-bit order.
    pub fn view_dim_vars(&self, view: ViewMask) -> Vec<&str> {
        view.dims()
            .into_iter()
            .filter(|&d| d < self.facet.dim_count())
            .map(|d| self.facet.dimensions[d].var.as_str())
            .collect()
    }

    /// A short human-readable name for a view (`pop{country,lang}`).
    pub fn view_name(&self, view: ViewMask) -> String {
        let dims: Vec<&str> = self.view_dim_vars(view);
        format!("{}{{{}}}", self.facet.id, dims.join(","))
    }

    /// Total number of cover edges in the lattice: `d * 2^(d-1)`.
    pub fn num_edges(&self) -> u64 {
        let d = self.facet.dim_count() as u64;
        if d == 0 {
            0
        } else {
            d * (1u64 << (d - 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facet::{AggOp, Dimension};
    use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};

    fn facet(dims: usize) -> Facet {
        let mut triples = Vec::new();
        let mut dimensions = Vec::new();
        for i in 0..dims {
            triples.push(TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri(format!("http://e/p{i}")),
                PatternTerm::var(format!("d{i}")),
            ));
            dimensions.push(Dimension::new(format!("d{i}")));
        }
        triples.push(TriplePattern::new(
            PatternTerm::var("o"),
            PatternTerm::iri("http://e/m"),
            PatternTerm::var("u"),
        ));
        Facet::new(
            "f",
            dimensions,
            GroupPattern::triples(triples),
            "u",
            AggOp::Sum,
        )
        .unwrap()
    }

    #[test]
    fn lattice_sizes() {
        for d in 0..6 {
            let l = Lattice::new(facet(d));
            assert_eq!(l.num_views(), 1 << d);
            assert_eq!(l.views().count() as u64, l.num_views());
            // Levels sum to total: Σ C(d, k) = 2^d.
            let total: usize = (0..=d as u32).map(|k| l.views_at_level(k).len()).sum();
            assert_eq!(total as u64, l.num_views());
        }
    }

    #[test]
    fn edge_count_formula() {
        for d in 1..6 {
            let l = Lattice::new(facet(d));
            let edges: usize = l.views().map(|v| l.children(v).len()).sum();
            assert_eq!(edges as u64, l.num_edges(), "d={d}");
        }
    }

    #[test]
    fn parents_and_children_are_inverse() {
        let l = Lattice::new(facet(4));
        for v in l.views() {
            for child in l.children(v) {
                assert!(l.parents(child).contains(&v));
                assert_eq!(child.dim_count() + 1, v.dim_count());
                assert!(v.covers(child));
            }
        }
    }

    #[test]
    fn base_and_apex() {
        let l = Lattice::new(facet(3));
        assert_eq!(l.base().dim_count(), 3);
        assert_eq!(l.apex().dim_count(), 0);
        assert!(l.base().covers(l.apex()));
        assert!(l.children(l.apex()).is_empty());
        assert!(l.parents(l.base()).is_empty());
    }

    #[test]
    fn covering_views_cover() {
        let l = Lattice::new(facet(3));
        let required = ViewMask::from_dims(&[1]);
        let covering = l.covering_views(required);
        // Half of the lattice contains dimension 1: 2^(d-1) = 4.
        assert_eq!(covering.len(), 4);
        assert!(covering.iter().all(|v| v.covers(required)));
        // The base always covers; the apex never (unless required empty).
        assert!(covering.contains(&l.base()));
        assert!(!covering.contains(&l.apex()));
        assert_eq!(l.covering_views(ViewMask::APEX).len(), 8);
    }

    #[test]
    fn view_names_and_vars() {
        let l = Lattice::new(facet(3));
        let v = ViewMask::from_dims(&[0, 2]);
        assert_eq!(l.view_dim_vars(v), ["d0", "d2"]);
        assert_eq!(l.view_name(v), "f{d0,d2}");
        assert_eq!(l.view_name(ViewMask::APEX), "f{}");
    }
}
