//! # sofos-cube — analytical facets and view lattices
//!
//! The paper (§3) defines an *analytical facet* `F = ⟨X̄, P, agg(u)⟩`: a set
//! of grouping variables `X̄`, a SPARQL pattern `P` selecting the target
//! triples, and an aggregation over a measure variable `u`. A *view*
//! `V = ⟨X̄′, P, agg(u)⟩` aggregates over a subset `X̄′ ⊆ X̄`; the facet
//! therefore induces a lattice `V(F)` of `2^|X̄|` views, partially ordered by
//! dimension-set inclusion.
//!
//! This crate provides:
//! * [`Facet`] / [`Dimension`] / [`AggOp`] — facet definitions;
//! * [`ViewMask`] — a view as a bitmask over the facet's dimensions;
//! * [`Lattice`] — enumeration and cover structure of `V(F)`;
//! * [`query_gen`] — building the SPARQL [`sofos_sparql::Query`] for a view
//!   (used by the materializer) or for a workload query against a facet.
//!
//! A deliberate design decision (documented in `DESIGN.md`): every view
//! keeps the *full* pattern `P`, so row multiplicities — and hence SUM and
//! COUNT — are preserved and any view whose dimensions cover a query's
//! grouping set can answer it by exact re-aggregation.

pub mod facet;
pub mod lattice;
pub mod mask;
pub mod query_gen;

pub use facet::{AggOp, Dimension, Facet, FacetError, MaterialComponent};
pub use lattice::Lattice;
pub use mask::ViewMask;
pub use query_gen::{
    component_alias, facet_query, view_query, COUNT_ALIAS, MAX_ALIAS, MIN_ALIAS, SUM_ALIAS,
    VALUE_ALIAS,
};
