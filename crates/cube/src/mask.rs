//! View identities as dimension bitmasks.

use std::fmt;

/// A view in a facet's lattice, identified by the set of grouping
/// dimensions it retains (bit `i` set ⇔ dimension `i` is grouped).
///
/// The empty mask is the *apex* (total aggregation, one row); the full mask
/// is the *base view* (finest granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewMask(pub u64);

impl ViewMask {
    /// The apex view (no grouping dimensions).
    pub const APEX: ViewMask = ViewMask(0);

    /// The full mask over `dims` dimensions.
    pub fn full(dims: usize) -> ViewMask {
        debug_assert!(dims <= 63);
        ViewMask((1u64 << dims) - 1)
    }

    /// Build from explicit dimension indices.
    pub fn from_dims(dims: &[usize]) -> ViewMask {
        let mut mask = 0u64;
        for &d in dims {
            debug_assert!(d < 63);
            mask |= 1 << d;
        }
        ViewMask(mask)
    }

    /// Is dimension `i` retained?
    pub fn contains(self, i: usize) -> bool {
        self.0 & (1 << i) != 0
    }

    /// Number of retained dimensions (the view's "level" in the lattice).
    pub fn dim_count(self) -> u32 {
        self.0.count_ones()
    }

    /// Indices of retained dimensions, ascending.
    pub fn dims(self) -> Vec<usize> {
        (0..64).filter(|&i| self.contains(i)).collect()
    }

    /// Does this view retain every dimension of `other`? (⇒ this view can
    /// answer queries grouped like `other` via re-aggregation.)
    pub fn covers(self, other: ViewMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// Set-union of dimensions.
    pub fn union(self, other: ViewMask) -> ViewMask {
        ViewMask(self.0 | other.0)
    }

    /// Mask with dimension `i` added.
    pub fn with(self, i: usize) -> ViewMask {
        ViewMask(self.0 | (1 << i))
    }

    /// Mask with dimension `i` removed.
    pub fn without(self, i: usize) -> ViewMask {
        ViewMask(self.0 & !(1 << i))
    }
}

impl fmt::Display for ViewMask {
    /// Render as `{0,2,3}`-style dimension sets.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for d in self.dims() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_apex() {
        assert_eq!(ViewMask::full(3).0, 0b111);
        assert_eq!(ViewMask::APEX.dim_count(), 0);
        assert_eq!(ViewMask::full(0), ViewMask::APEX);
    }

    #[test]
    fn from_dims_round_trips() {
        let m = ViewMask::from_dims(&[0, 2, 5]);
        assert_eq!(m.dims(), [0, 2, 5]);
        assert_eq!(m.dim_count(), 3);
        assert!(m.contains(2));
        assert!(!m.contains(1));
    }

    #[test]
    fn covers_is_superset() {
        let big = ViewMask::from_dims(&[0, 1, 2]);
        let small = ViewMask::from_dims(&[0, 2]);
        assert!(big.covers(small));
        assert!(big.covers(big));
        assert!(!small.covers(big));
        assert!(big.covers(ViewMask::APEX), "everything covers the apex");
    }

    #[test]
    fn with_without() {
        let m = ViewMask::APEX.with(3).with(1);
        assert_eq!(m.dims(), [1, 3]);
        assert_eq!(m.without(3).dims(), [1]);
        assert_eq!(m.with(1), m, "idempotent add");
    }

    #[test]
    fn union() {
        let a = ViewMask::from_dims(&[0]);
        let b = ViewMask::from_dims(&[2]);
        assert_eq!(a.union(b).dims(), [0, 2]);
    }

    #[test]
    fn display() {
        assert_eq!(ViewMask::from_dims(&[0, 2]).to_string(), "{0,2}");
        assert_eq!(ViewMask::APEX.to_string(), "{}");
    }
}
