//! SPARQL query generation for views and facet queries.

use crate::facet::{AggOp, Facet, MaterialComponent};
use crate::mask::ViewMask;
use sofos_sparql::{Aggregate, Expr, PatternElement, Query, SelectItem};

/// Column alias of the materialized SUM component.
pub const SUM_ALIAS: &str = "agg_sum";
/// Column alias of the materialized COUNT component.
pub const COUNT_ALIAS: &str = "agg_count";
/// Column alias of the materialized MIN component.
pub const MIN_ALIAS: &str = "agg_min";
/// Column alias of the materialized MAX component.
pub const MAX_ALIAS: &str = "agg_max";
/// Column alias of the aggregate value in workload queries.
pub const VALUE_ALIAS: &str = "value";

/// The select alias for a material component.
pub fn component_alias(c: MaterialComponent) -> &'static str {
    match c {
        MaterialComponent::Sum => SUM_ALIAS,
        MaterialComponent::Count => COUNT_ALIAS,
        MaterialComponent::Min => MIN_ALIAS,
        MaterialComponent::Max => MAX_ALIAS,
    }
}

fn component_aggregate(c: MaterialComponent, measure: &str) -> Aggregate {
    let expr = Box::new(Expr::var(measure));
    match c {
        MaterialComponent::Sum => Aggregate::Sum {
            distinct: false,
            expr,
        },
        MaterialComponent::Count => Aggregate::Count {
            distinct: false,
            expr: Some(expr),
        },
        MaterialComponent::Min => Aggregate::Min { expr },
        MaterialComponent::Max => Aggregate::Max { expr },
    }
}

/// The query the materializer evaluates to populate view `mask`:
///
/// `SELECT dims(mask) components(agg) WHERE P GROUP BY dims(mask)`
///
/// The components are the distributive parts of the facet's aggregate
/// ([`AggOp::components`]); for AVG both SUM and COUNT are emitted so that
/// coarser re-aggregation stays exact.
pub fn view_query(facet: &Facet, mask: ViewMask) -> Query {
    let mut select: Vec<SelectItem> = Vec::new();
    let mut group_by: Vec<String> = Vec::new();
    for d in mask.dims() {
        if d < facet.dim_count() {
            let var = facet.dimensions[d].var.clone();
            select.push(SelectItem::Var(var.clone()));
            group_by.push(var);
        }
    }
    for &component in facet.agg.components() {
        select.push(SelectItem::Expr {
            expr: Expr::Aggregate(component_aggregate(component, &facet.measure)),
            alias: component_alias(component).to_string(),
        });
    }
    Query {
        select,
        wildcard: false,
        distinct: false,
        pattern: facet.pattern.clone(),
        group_by,
        having: None,
        order_by: Vec::new(),
        limit: None,
        offset: None,
    }
}

/// A workload query against a facet: group by the dimensions in `mask`,
/// aggregate the measure with `agg`, optionally restricted by `filters`
/// (the paper: queries "can be further specialized by also introducing
/// additional FILTER conditions").
pub fn facet_query(facet: &Facet, mask: ViewMask, agg: AggOp, filters: Vec<Expr>) -> Query {
    let mut select: Vec<SelectItem> = Vec::new();
    let mut group_by: Vec<String> = Vec::new();
    for d in mask.dims() {
        if d < facet.dim_count() {
            let var = facet.dimensions[d].var.clone();
            select.push(SelectItem::Var(var.clone()));
            group_by.push(var);
        }
    }
    let measure = Box::new(Expr::var(facet.measure.clone()));
    let aggregate = match agg {
        AggOp::Sum => Aggregate::Sum {
            distinct: false,
            expr: measure,
        },
        AggOp::Avg => Aggregate::Avg {
            distinct: false,
            expr: measure,
        },
        AggOp::Count => Aggregate::Count {
            distinct: false,
            expr: Some(measure),
        },
        AggOp::Min => Aggregate::Min { expr: measure },
        AggOp::Max => Aggregate::Max { expr: measure },
    };
    select.push(SelectItem::Expr {
        expr: Expr::Aggregate(aggregate),
        alias: VALUE_ALIAS.to_string(),
    });

    let mut pattern = facet.pattern.clone();
    for filter in filters {
        pattern.elements.push(PatternElement::Filter(filter));
    }

    Query {
        select,
        wildcard: false,
        distinct: false,
        pattern,
        group_by,
        having: None,
        order_by: Vec::new(),
        limit: None,
        offset: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facet::Dimension;
    use sofos_sparql::{query_to_sparql, CompareOp, GroupPattern, PatternTerm, TriplePattern};

    fn facet(agg: AggOp) -> Facet {
        let pattern = GroupPattern::triples(vec![
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/country"),
                PatternTerm::var("country"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/lang"),
                PatternTerm::var("lang"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri("http://e/pop"),
                PatternTerm::var("pop"),
            ),
        ]);
        Facet::new(
            "pop",
            vec![Dimension::new("country"), Dimension::new("lang")],
            pattern,
            "pop",
            agg,
        )
        .unwrap()
    }

    #[test]
    fn view_query_groups_by_mask_dims() {
        let f = facet(AggOp::Sum);
        let q = view_query(&f, ViewMask::from_dims(&[0]));
        assert_eq!(q.group_by, ["country"]);
        assert_eq!(q.select.len(), 2); // country + agg_sum
        assert_eq!(q.select[1].name(), SUM_ALIAS);
    }

    #[test]
    fn avg_views_store_sum_and_count() {
        let f = facet(AggOp::Avg);
        let q = view_query(&f, ViewMask::from_dims(&[0, 1]));
        let names: Vec<&str> = q.select.iter().map(|i| i.name()).collect();
        assert_eq!(names, ["country", "lang", SUM_ALIAS, COUNT_ALIAS]);
    }

    #[test]
    fn apex_view_has_no_group_by() {
        let f = facet(AggOp::Sum);
        let q = view_query(&f, ViewMask::APEX);
        assert!(q.group_by.is_empty());
        assert_eq!(q.select.len(), 1);
    }

    #[test]
    fn generated_queries_render_and_reparse() {
        let f = facet(AggOp::Avg);
        for mask in [
            ViewMask::APEX,
            ViewMask::from_dims(&[0]),
            ViewMask::from_dims(&[0, 1]),
        ] {
            let q = view_query(&f, mask);
            let text = query_to_sparql(&q);
            let back = sofos_sparql::parse_query(&text)
                .unwrap_or_else(|e| panic!("view query must reparse: {text}\n{e}"));
            assert_eq!(q, back);
        }
    }

    #[test]
    fn facet_query_appends_filters() {
        let f = facet(AggOp::Sum);
        let filter = Expr::Compare(
            CompareOp::Eq,
            Box::new(Expr::var("lang")),
            Box::new(Expr::Const(sofos_rdf::Term::literal_str("French"))),
        );
        let q = facet_query(&f, ViewMask::from_dims(&[0]), AggOp::Sum, vec![filter]);
        assert_eq!(q.group_by, ["country"]);
        assert_eq!(q.select.last().unwrap().name(), VALUE_ALIAS);
        assert!(q
            .pattern
            .elements
            .iter()
            .any(|e| matches!(e, PatternElement::Filter(_))));
    }

    #[test]
    fn facet_query_supports_all_aggs() {
        let f = facet(AggOp::Sum);
        for agg in AggOp::ALL {
            let q = facet_query(&f, ViewMask::from_dims(&[1]), agg, vec![]);
            let text = query_to_sparql(&q);
            assert!(text.contains(agg.keyword()), "{text}");
        }
    }

    #[test]
    fn mask_bits_beyond_dims_are_ignored() {
        let f = facet(AggOp::Sum);
        let q = view_query(&f, ViewMask(0b1111)); // only 2 dims exist
        assert_eq!(q.group_by, ["country", "lang"]);
    }
}
