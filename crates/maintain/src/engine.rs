//! The [`Maintainer`]: applies deltas and patches view graphs.
//!
//! Since the two-phase pipeline (PR 4, see the `pipeline` module) the patch
//! logic is *plan-based*: every maintenance decision — group the delta by
//! the view's mask, locate observation nodes, patch vs. re-evaluate —
//! runs **read-only** against the dataset and emits the exact triple
//! writes as a [`ViewPatch`](crate::ViewPatch); a separate serial commit
//! applies them. The serial [`Maintainer::maintain`] plans and commits
//! one view at a time; [`Maintainer::maintain_pipelined`] plans every
//! view in parallel first. Both run the same planning core, which is why
//! they are bit-equivalent by construction (and by proptest).

use crate::pipeline::{NodeRef, ObjectRef, PatchBuilder, PatchOp, ViewPatch};
use crate::star::StarPattern;
use crate::{MaintenanceCost, MaintenanceReport, MaintenanceStrategy};
use sofos_cube::{component_alias, view_query, Facet, MaterialComponent, ViewMask};
use sofos_materialize::{encode_view, evaluate_view};
use sofos_rdf::vocab::{rdf, sofos};
use sofos_rdf::{FxHashMap, Numeric, Term, TermId};
use sofos_sparql::{CompareOp, Evaluator, Expr, PatternElement, SparqlError};
use sofos_store::{Bitmap, ChangeSet, Dataset, Delta, GraphStore, IdPattern};
use std::time::Instant;

/// How the planner locates groups and pre-filters star-scan subjects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanIndexMode {
    /// Intersect bitmap posting lists ([`sofos_store::posting`]): group
    /// location via per-(dimension, value) subject bitmaps, scan
    /// candidates via per-predicate bitmaps. Sub-linear in view/dataset
    /// size for sparse deltas. The default.
    #[default]
    Bitmap,
    /// Walk permutation-index runs per pattern — the pre-bitmap planner,
    /// kept as the comparison baseline for `e13_bitmap_scan` and the
    /// bitmap≡run-walk equivalence proptest. Also skips posting-list
    /// registration so the baseline pays no index upkeep it won't use.
    RunWalk,
}

/// The net effect of a batch on the facet pattern's binding multiset:
/// `(dimension values, measure) → net multiplicity` (positive = asserted,
/// negative = retracted). Dimension values are in facet dimension order.
///
/// Row deltas are additive: buffering several batches and merging their
/// deltas maintains views as correctly as eager per-batch propagation —
/// which is what the lazy and bounded staleness policies (and the batched
/// epochs of the pipeline) rely on. Merging also *cancels*: a batch that
/// nets out touches no group at all.
#[derive(Debug, Clone, Default)]
pub struct RowDelta {
    counts: FxHashMap<(Vec<TermId>, TermId), i64>,
}

impl RowDelta {
    /// True when the batch did not change the pattern's bindings.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Number of distinct changed rows.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Total asserted row multiplicity.
    pub fn asserted(&self) -> i64 {
        self.counts.values().filter(|&&n| n > 0).sum()
    }

    /// Total retracted row multiplicity (as a positive number).
    pub fn retracted(&self) -> i64 {
        -self.counts.values().filter(|&&n| n < 0).sum::<i64>()
    }

    /// Accumulate another delta (later batches on top of earlier ones).
    pub fn merge(&mut self, other: &RowDelta) {
        for (key, net) in &other.counts {
            let slot = self.counts.entry(key.clone()).or_insert(0);
            *slot += net;
            if *slot == 0 {
                self.counts.remove(key);
            }
        }
    }

    /// Iterate the net changes: `(dimension values, measure, net)`.
    /// Dimension values are in facet dimension order (the finest
    /// grouping) — the input to per-group churn tracking.
    pub fn iter(&self) -> impl Iterator<Item = (&[TermId], TermId, i64)> + '_ {
        self.counts
            .iter()
            .map(|((dims, measure), &net)| (dims.as_slice(), *measure, net))
    }

    /// Record a net row change directly — the public constructor for
    /// synthetic deltas (tests, harnesses); the maintenance engine itself
    /// derives deltas from binding scans.
    pub fn record(&mut self, dims: Vec<TermId>, measure: TermId, net: i64) {
        self.add(dims, measure, net);
    }

    pub(crate) fn add(&mut self, dims: Vec<TermId>, measure: TermId, net: i64) {
        if net == 0 {
            return;
        }
        let key = (dims, measure);
        let slot = self.counts.entry(key.clone()).or_insert(0);
        *slot += net;
        if *slot == 0 {
            self.counts.remove(&key);
        }
    }

    pub(crate) fn counts(&self) -> &FxHashMap<(Vec<TermId>, TermId), i64> {
        &self.counts
    }
}

/// Result of [`Maintainer::apply`].
#[derive(Debug, Clone)]
pub struct ApplyOutcome {
    /// Net store-level changes (per graph).
    pub changes: ChangeSet,
    /// Net pattern-binding changes; `None` when the facet does not admit
    /// incremental maintenance (non-star pattern) — views then need a
    /// [`MaintenanceStrategy::FullRefresh`].
    pub rows: Option<RowDelta>,
}

/// Propagates base-graph deltas into a facet's materialized view graphs.
pub struct Maintainer {
    facet: Facet,
    star: Option<StarPattern>,
    fresh: u64,
    index_mode: PlanIndexMode,
}

impl Maintainer {
    /// Build a maintainer for one facet. Non-star facets are accepted but
    /// degrade every maintenance pass to full refresh.
    pub fn new(facet: &Facet) -> Maintainer {
        Maintainer {
            star: StarPattern::detect(facet),
            facet: facet.clone(),
            fresh: 0,
            index_mode: PlanIndexMode::default(),
        }
    }

    /// Select how plans locate groups and filter scan candidates. Both
    /// modes produce bit-equal view graphs; `RunWalk` exists for
    /// benchmarking the bitmap path against its predecessor.
    pub fn set_index_mode(&mut self, mode: PlanIndexMode) {
        self.index_mode = mode;
    }

    /// The active [`PlanIndexMode`].
    pub fn index_mode(&self) -> PlanIndexMode {
        self.index_mode
    }

    /// Does this facet admit the counting algorithm?
    pub fn is_incremental(&self) -> bool {
        self.star.is_some()
    }

    /// The detected star pattern, if any (the parallel engine splits its
    /// row scans by subject shard).
    pub(crate) fn star(&self) -> Option<&StarPattern> {
        self.star.as_ref()
    }

    /// The fresh-label counter (plans start their minting here).
    pub(crate) fn fresh_counter(&self) -> u64 {
        self.fresh
    }

    /// The maintained facet.
    pub fn facet(&self) -> &Facet {
        &self.facet
    }

    /// Apply a batch to the dataset, capturing the pattern-binding delta
    /// (pre/post rows of the touched subjects) alongside the store-level
    /// [`ChangeSet`]. Does **not** touch any view — pair with
    /// [`Maintainer::maintain`], immediately (eager) or later (lazy).
    pub fn apply(&mut self, dataset: &mut Dataset, delta: Delta) -> ApplyOutcome {
        let Some(star) = &self.star else {
            let changes = dataset.apply(delta);
            return ApplyOutcome {
                changes,
                rows: None,
            };
        };
        let affected = star.affected_subjects(dataset, &delta);
        let leg_ids = star.leg_ids(dataset);

        let candidates = scan_candidates(self.index_mode, dataset.default_graph(), &leg_ids);
        let mut pre: Vec<(Vec<TermId>, TermId, i64)> = Vec::new();
        for &subject in &affected {
            if skip_subject(&candidates, subject) {
                continue;
            }
            star.subject_rows(dataset.default_graph(), &leg_ids, subject, &mut pre);
        }
        let changes = dataset.apply(delta);
        let mut rows = RowDelta::default();
        if !changes.default_graph.is_empty() {
            let candidates = scan_candidates(self.index_mode, dataset.default_graph(), &leg_ids);
            let mut post: Vec<(Vec<TermId>, TermId, i64)> = Vec::new();
            for &subject in &affected {
                if skip_subject(&candidates, subject) {
                    continue;
                }
                star.subject_rows(dataset.default_graph(), &leg_ids, subject, &mut post);
            }
            for (dims, measure, mult) in post {
                rows.add(dims, measure, mult);
            }
            for (dims, measure, mult) in pre {
                rows.add(dims, measure, -mult);
            }
        }
        ApplyOutcome {
            changes,
            rows: Some(rows),
        }
    }

    /// Maintain every catalog view against a row delta, updating each
    /// catalog entry's row count in place. `rows = None` forces full
    /// refresh (non-star facets, or a caller that lost the delta).
    pub fn maintain(
        &mut self,
        dataset: &mut Dataset,
        rows: Option<&RowDelta>,
        views: &mut [(ViewMask, usize)],
    ) -> Result<MaintenanceReport, SparqlError> {
        let start = Instant::now();
        let mut report = MaintenanceReport::default();
        for view in views.iter_mut() {
            report
                .per_view
                .push(self.maintain_view(dataset, rows, view)?);
        }
        report.total_us = start.elapsed().as_micros() as u64;
        Ok(report)
    }

    /// Eager convenience: apply the batch and maintain all views.
    pub fn apply_and_maintain(
        &mut self,
        dataset: &mut Dataset,
        delta: Delta,
        views: &mut [(ViewMask, usize)],
    ) -> Result<(ChangeSet, MaintenanceReport), SparqlError> {
        let outcome = self.apply(dataset, delta);
        let report = self.maintain(dataset, outcome.rows.as_ref(), views)?;
        Ok((outcome.changes, report))
    }

    /// Maintain one view; updates the catalog entry's row count in place.
    /// The serial path through the plan/commit core: plan the view's patch
    /// read-only, apply it immediately.
    pub fn maintain_view(
        &mut self,
        dataset: &mut Dataset,
        rows: Option<&RowDelta>,
        view: &mut (ViewMask, usize),
    ) -> Result<MaintenanceCost, SparqlError> {
        let start = Instant::now();
        let ids = ViewIds::prepare(dataset, &self.facet, view.0);
        if self.index_mode == PlanIndexMode::Bitmap {
            ids.register_value_preds(dataset);
        }
        let patch = self.plan_view(dataset, rows, *view, &ids, self.fresh)?;
        if patch.cost.strategy == MaintenanceStrategy::Noop {
            return Ok(patch.cost);
        }
        let mut cost = self.commit_patch(dataset, patch, view);
        cost.wall_us = start.elapsed().as_micros() as u64;
        Ok(cost)
    }

    /// Phase 1 of the pipeline for one view: decide the maintenance
    /// strategy and plan every triple write — entirely read-only.
    pub(crate) fn plan_view(
        &self,
        dataset: &Dataset,
        rows: Option<&RowDelta>,
        view: (ViewMask, usize),
        ids: &ViewIds,
        fresh_start: u64,
    ) -> Result<ViewPatch, SparqlError> {
        self.plan_view_chunk(dataset, rows, view, ids, fresh_start, Chunking::whole())
    }

    /// [`Maintainer::plan_view`] restricted to one [`Chunking`] chunk:
    /// the chunk's contiguous slice of the view's sorted group keys.
    /// Non-chunkable strategies (refresh, noop) are planned whole by
    /// the leader chunk while sibling chunks return no-ops; the decision
    /// is deterministic across chunks because each one inspects the full
    /// delta before slicing.
    pub(crate) fn plan_view_chunk(
        &self,
        dataset: &Dataset,
        rows: Option<&RowDelta>,
        view: (ViewMask, usize),
        ids: &ViewIds,
        fresh_start: u64,
        chunking: Chunking,
    ) -> Result<ViewPatch, SparqlError> {
        let (mask, catalog_rows) = view;
        match rows {
            None if chunking.leader() => {
                self.plan_full_refresh(dataset, ids, catalog_rows, fresh_start)
            }
            None => Ok(ViewPatch::noop(mask, ids.graph, fresh_start, catalog_rows)),
            Some(rows) if rows.is_empty() => {
                Ok(ViewPatch::noop(mask, ids.graph, fresh_start, catalog_rows))
            }
            Some(rows) => {
                match self.plan_counting(dataset, rows, ids, catalog_rows, fresh_start, chunking)? {
                    Some(patch) => Ok(patch),
                    // Counting declined (non-numeric measure in the delta,
                    // or the view graph is missing).
                    None if chunking.leader() => {
                        self.plan_full_refresh(dataset, ids, catalog_rows, fresh_start)
                    }
                    None => Ok(ViewPatch::noop(mask, ids.graph, fresh_start, catalog_rows)),
                }
            }
        }
    }

    /// Phase 2 for one view: apply a planned patch — pure mechanical
    /// writes — and sync the catalog entry and fresh-label counter.
    pub(crate) fn commit_patch(
        &mut self,
        dataset: &mut Dataset,
        patch: ViewPatch,
        view: &mut (ViewMask, usize),
    ) -> MaintenanceCost {
        let apply_start = Instant::now();
        let fresh_ids: Vec<TermId> = patch
            .fresh
            .iter()
            .map(|label| dataset.intern(&Term::blank(label.clone())))
            .collect();
        for op in &patch.ops {
            match op {
                PatchOp::Remove(triple) => {
                    dataset.remove_encoded(Some(patch.graph), triple);
                }
                PatchOp::Insert { node, pred, object } => {
                    let s = match node {
                        NodeRef::Existing(id) => *id,
                        NodeRef::Fresh(i) => fresh_ids[*i],
                    };
                    let o = match object {
                        ObjectRef::Existing(id) => *id,
                        ObjectRef::New(term) => dataset.intern(term),
                    };
                    dataset.insert_encoded(Some(patch.graph), [s, *pred, o]);
                }
                PatchOp::Replace { encoded } => {
                    dataset.drop_graph(patch.graph);
                    dataset.create_graph(patch.graph);
                    dataset.load(Some(patch.graph), encoded);
                }
            }
        }
        self.fresh = self.fresh.max(patch.fresh_end);
        view.1 = patch.rows;
        let mut cost = patch.cost;
        cost.wall_us += apply_start.elapsed().as_micros() as u64;
        cost
    }

    /// Plan a drop + re-materialize: evaluate the view query (read-only),
    /// encode the replacement graph, and emit one `Replace` op.
    fn plan_full_refresh(
        &self,
        dataset: &Dataset,
        ids: &ViewIds,
        catalog_rows: usize,
        fresh_start: u64,
    ) -> Result<ViewPatch, SparqlError> {
        let old_len = dataset.graph(Some(ids.graph)).map_or(0, |g| g.len());
        let results = evaluate_view(dataset, &self.facet, ids.mask)?;
        let encoded = encode_view(&self.facet, ids.mask, &results);
        let new_rows = encoded.stats.rows;
        let cost = MaintenanceCost {
            view: ids.mask,
            strategy: MaintenanceStrategy::FullRefresh,
            triples_touched: old_len + encoded.stats.triples,
            groups_patched: 0,
            groups_reevaluated: new_rows,
            rows_inserted: new_rows,
            rows_retracted: catalog_rows,
            wall_us: 0,
        };
        Ok(ViewPatch {
            view: ids.mask,
            graph: ids.graph,
            fresh: Vec::new(),
            ops: vec![PatchOp::Replace {
                encoded: encoded.graph,
            }],
            cost,
            rows: new_rows,
            fresh_end: fresh_start,
        })
    }

    /// Plan the counting algorithm over one view — or, under a split
    /// plan, over one [`Chunking`] chunk of the view's sorted group
    /// keys. Returns `Ok(None)` when the delta contains a non-numeric
    /// measure or the view graph is absent (caller falls back to a
    /// refresh plan); both checks cover the *full* delta so every chunk
    /// declines identically.
    fn plan_counting(
        &self,
        dataset: &Dataset,
        rows: &RowDelta,
        ids: &ViewIds,
        catalog_rows: usize,
        fresh_start: u64,
        chunking: Chunking,
    ) -> Result<Option<ViewPatch>, SparqlError> {
        if dataset.graph(Some(ids.graph)).is_none() {
            // Catalog view that was never (or no longer is) materialized:
            // refresh is the only correct move.
            return Ok(None);
        }

        // 1. Group the delta rows by the view's dimension mask.
        let mut groups: FxHashMap<Vec<TermId>, GroupDelta> = FxHashMap::default();
        for ((dims, measure), &net) in rows.counts() {
            let Some(measure_num) = dataset
                .term(*measure)
                .as_literal()
                .and_then(|l| l.numeric())
            else {
                return Ok(None);
            };
            let key: Vec<TermId> = ids.mask_dims.iter().map(|&d| dims[d]).collect();
            let group = groups.entry(key).or_default();
            group.count += net;
            group.sum = Numeric::add(group.sum, Numeric::mul(measure_num, Numeric::Integer(net)));
            if net > 0 {
                group.asserted.push(measure_num);
            } else {
                group.retracted = true;
            }
        }

        // 2. Plan this chunk's contiguous slice of the sorted group keys
        // (the whole list when unsplit).
        let mut builder = PatchBuilder::new(ids.mask, fresh_start);
        if chunking.split > 1 {
            builder.label_tag = format!("s{}", chunking.chunk);
        }
        let mut keys: Vec<Vec<TermId>> = groups.keys().cloned().collect();
        keys.sort_unstable(); // deterministic patch order
        let (lo, hi) = chunk_range(keys.len(), chunking.chunk, chunking.split);
        for key in &keys[lo..hi] {
            let group = &groups[key];
            self.plan_group(dataset, ids, key, group, &mut builder)?;
        }
        let new_rows =
            (catalog_rows + builder.cost.rows_inserted).saturating_sub(builder.cost.rows_retracted);
        Ok(Some(builder.into_patch(ids.graph, new_rows)))
    }

    /// Plan one group of one view.
    fn plan_group(
        &self,
        dataset: &Dataset,
        ids: &ViewIds,
        key: &[TermId],
        group: &GroupDelta,
        builder: &mut PatchBuilder,
    ) -> Result<(), SparqlError> {
        let obs = find_obs(dataset, ids, key, self.index_mode);
        let needs_reeval = match self.facet.agg.components() {
            // SUM-only views cannot witness group emptiness (no stored
            // count), and MIN/MAX are not invertible under deletes.
            comps
                if comps.contains(&MaterialComponent::Min)
                    || comps.contains(&MaterialComponent::Max) =>
            {
                group.retracted
            }
            [MaterialComponent::Sum] => group.retracted,
            _ => false,
        };
        // A retraction against a group the view does not have means the
        // view and base have diverged; re-evaluation repairs it.
        let inconsistent = obs.is_none() && group.retracted;

        if needs_reeval || inconsistent {
            builder.cost.groups_reevaluated += 1;
            return self.plan_reevaluate_group(dataset, ids, key, obs, builder);
        }

        match obs {
            None => {
                // Brand-new group: all of its rows come from the delta.
                if group.count <= 0 {
                    return Ok(());
                }
                let components = self.components_from_delta(group);
                self.plan_create_obs(dataset, ids, key, &components, builder);
                builder.cost.groups_patched += 1;
            }
            Some(obs) => {
                // Patch stored components arithmetically. Writes are
                // staged: a COUNT reaching zero abandons them and retracts
                // the observation instead.
                let mut staged: Vec<PatchOp> = Vec::new();
                let mut writes = 0usize;
                let mut retract = false;
                for &component in self.facet.agg.components() {
                    let pred = ids.component(component);
                    let old = read_component(dataset, ids.graph, obs, pred);
                    let old_num = old
                        .and_then(|id| dataset.term(id).as_literal().and_then(|l| l.numeric()))
                        .unwrap_or(Numeric::Integer(0));
                    let new_num = match component {
                        MaterialComponent::Sum => Numeric::add(old_num, group.sum),
                        MaterialComponent::Count => {
                            let n = match old_num {
                                Numeric::Integer(n) => n,
                                other => other.to_f64() as i64,
                            } + group.count;
                            if n <= 0 {
                                retract = true;
                                break;
                            }
                            Numeric::Integer(n)
                        }
                        MaterialComponent::Min | MaterialComponent::Max => {
                            let keep = if component == MaterialComponent::Min {
                                std::cmp::Ordering::Less
                            } else {
                                std::cmp::Ordering::Greater
                            };
                            match old {
                                Some(_) => best(old_num, &group.asserted, keep),
                                // No stored extremum (the apex row over an
                                // emptied graph encodes MIN/MAX as "no
                                // triple"): the delta's own extremum is the
                                // value — defaulting the absent side to 0
                                // would invent a bound.
                                None if !group.asserted.is_empty() => {
                                    extremum(&group.asserted, keep)
                                }
                                None => continue,
                            }
                        }
                    };
                    writes += plan_write_term(
                        dataset,
                        &mut staged,
                        obs,
                        pred,
                        old,
                        &Term::Literal(new_num.to_literal()),
                    );
                }
                if retract {
                    if ids.mask == ViewMask::APEX {
                        // SPARQL's *implicit* group never disappears: the
                        // apex view of an emptied graph still has one row
                        // (COUNT = 0, SUM = 0, extrema unbound), so
                        // re-evaluate the row instead of retracting it —
                        // that reproduces the materializer's encoding
                        // exactly.
                        builder.cost.groups_reevaluated += 1;
                        return self.plan_reevaluate_group(dataset, ids, key, Some(obs), builder);
                    }
                    builder.cost.triples_touched +=
                        plan_retract_obs(dataset, &mut builder.ops, ids.graph, obs);
                    builder.cost.rows_retracted += 1;
                } else {
                    builder.ops.extend(staged);
                    builder.cost.triples_touched += writes;
                }
                builder.cost.groups_patched += 1;
            }
        }
        Ok(())
    }

    /// Components of a group that exists only in the delta.
    fn components_from_delta(&self, group: &GroupDelta) -> Vec<(MaterialComponent, Term)> {
        self.facet
            .agg
            .components()
            .iter()
            .map(|&component| {
                let value = match component {
                    MaterialComponent::Sum => group.sum,
                    MaterialComponent::Count => Numeric::Integer(group.count),
                    MaterialComponent::Min => extremum(&group.asserted, std::cmp::Ordering::Less),
                    MaterialComponent::Max => {
                        extremum(&group.asserted, std::cmp::Ordering::Greater)
                    }
                };
                (component, Term::Literal(value.to_literal()))
            })
            .collect()
    }

    /// Recompute one group from the base graph via the SPARQL evaluator
    /// (the view query with the group key pinned by FILTERs), then plan
    /// the sync of the observation node: patch, create, or retract.
    fn plan_reevaluate_group(
        &self,
        dataset: &Dataset,
        ids: &ViewIds,
        key: &[TermId],
        obs: Option<TermId>,
        builder: &mut PatchBuilder,
    ) -> Result<(), SparqlError> {
        let mut query = view_query(&self.facet, ids.mask);
        for (&dim, &value) in ids.mask_dims.iter().zip(key) {
            query
                .pattern
                .elements
                .push(PatternElement::Filter(Expr::Compare(
                    CompareOp::Eq,
                    Box::new(Expr::var(self.facet.dimensions[dim].var.clone())),
                    Box::new(Expr::Const(dataset.term(value).clone())),
                )));
        }
        let results = Evaluator::new(dataset).evaluate(&query)?;

        if results.is_empty() {
            if let Some(obs) = obs {
                builder.cost.triples_touched +=
                    plan_retract_obs(dataset, &mut builder.ops, ids.graph, obs);
                builder.cost.rows_retracted += 1;
            }
            return Ok(());
        }
        // A component can come back *unbound* even though the group kept a
        // row: MIN/MAX over SPARQL's implicit group (the apex view with
        // every binding gone) aggregate an empty multiset. The
        // materializer encodes such cells as "no triple"
        // ([`sofos_materialize::encode_view`] skips unbound values), so
        // maintenance mirrors that exactly: write bound components, remove
        // stale triples of unbound ones.
        let components: Vec<(MaterialComponent, Option<Term>)> = self
            .facet
            .agg
            .components()
            .iter()
            .map(|&component| {
                let column = results
                    .column(component_alias(component))
                    .expect("view query projects its component aliases");
                (component, results.rows[0][column].clone())
            })
            .collect();
        match obs {
            Some(obs) => {
                for (component, value) in &components {
                    let pred = ids.component(*component);
                    let old = read_component(dataset, ids.graph, obs, pred);
                    match value {
                        Some(value) => {
                            builder.cost.triples_touched +=
                                plan_write_term(dataset, &mut builder.ops, obs, pred, old, value);
                        }
                        None => {
                            if let Some(old) = old {
                                builder.ops.push(PatchOp::Remove([obs, pred, old]));
                                builder.cost.triples_touched += 1;
                            }
                        }
                    }
                }
            }
            None => {
                let bound: Vec<(MaterialComponent, Term)> = components
                    .into_iter()
                    .filter_map(|(component, value)| value.map(|v| (component, v)))
                    .collect();
                self.plan_create_obs(dataset, ids, key, &bound, builder)
            }
        }
        Ok(())
    }

    /// Plan a fresh observation node for a new group.
    fn plan_create_obs(
        &self,
        dataset: &Dataset,
        ids: &ViewIds,
        key: &[TermId],
        components: &[(MaterialComponent, Term)],
        builder: &mut PatchBuilder,
    ) {
        // `m`-prefixed labels cannot collide with the materializer's
        // row-indexed ones; the loop guards against label reuse across
        // maintainer instances on the same graph. Labels minted within
        // this patch never collide either — the counter only advances —
        // and sibling chunks of a split plan mint in disjoint `s<chunk>`
        // namespaces (the tag is empty unsplit, preserving the historical
        // format).
        let label = loop {
            let label = format!(
                "v{}_{}_{}m{}",
                self.facet.id, ids.mask.0, builder.label_tag, builder.next_fresh
            );
            builder.next_fresh += 1;
            let in_use = dataset
                .dict()
                .get_id(&Term::blank(label.clone()))
                .is_some_and(|id| {
                    dataset.graph(Some(ids.graph)).is_some_and(|g| {
                        g.scan(IdPattern::new(Some(id), None, None))
                            .next()
                            .is_some()
                    })
                });
            if !in_use {
                break label;
            }
        };
        let node = NodeRef::Fresh(builder.fresh.len());
        builder.fresh.push(label);
        builder.ops.push(PatchOp::Insert {
            node,
            pred: ids.type_pred,
            object: ObjectRef::Existing(ids.observation),
        });
        builder.cost.triples_touched += 1;
        for (&pred, &value) in ids.dim_preds.iter().zip(key) {
            builder.ops.push(PatchOp::Insert {
                node,
                pred,
                object: ObjectRef::Existing(value),
            });
            builder.cost.triples_touched += 1;
        }
        for (component, value) in components {
            builder.ops.push(PatchOp::Insert {
                node,
                pred: ids.component(*component),
                object: ObjectRef::New(value.clone()),
            });
            builder.cost.triples_touched += 1;
        }
        builder.cost.rows_inserted += 1;
    }
}

/// Per-group accumulated delta.
#[derive(Debug, Clone)]
struct GroupDelta {
    /// Net row multiplicity.
    count: i64,
    /// Net measure sum (assertions minus retractions).
    sum: Numeric,
    /// Measures of asserted rows (for MIN/MAX patching).
    asserted: Vec<Numeric>,
    /// Did any retraction hit this group?
    retracted: bool,
}

impl Default for GroupDelta {
    fn default() -> GroupDelta {
        GroupDelta {
            count: 0,
            sum: Numeric::Integer(0),
            asserted: Vec::new(),
            retracted: false,
        }
    }
}

/// Interned ids a maintenance pass needs for one view. Prepared in the
/// serial prologue (interning needs the writer's dictionary) so planning
/// itself can be read-only.
pub(crate) struct ViewIds {
    pub(crate) mask: ViewMask,
    pub(crate) graph: TermId,
    type_pred: TermId,
    observation: TermId,
    /// Facet dimension indices retained by the mask (ascending).
    mask_dims: Vec<usize>,
    /// Interned `sofos:dim<d>` predicates, parallel to `mask_dims`.
    dim_preds: Vec<TermId>,
    sum: TermId,
    count: TermId,
    min: TermId,
    max: TermId,
}

impl ViewIds {
    pub(crate) fn prepare(dataset: &mut Dataset, facet: &Facet, mask: ViewMask) -> ViewIds {
        let mask_dims: Vec<usize> = mask
            .dims()
            .into_iter()
            .filter(|&d| d < facet.dim_count())
            .collect();
        let dim_preds: Vec<TermId> = mask_dims
            .iter()
            .map(|&d| dataset.intern_iri(&sofos::dim(d)))
            .collect();
        ViewIds {
            mask,
            graph: dataset.intern_iri(&sofos::view_graph(&facet.id, mask.0)),
            type_pred: dataset.intern_iri(rdf::TYPE),
            observation: dataset.intern_iri(sofos::OBSERVATION),
            mask_dims,
            dim_preds,
            sum: dataset.intern_iri(sofos::SUM),
            count: dataset.intern_iri(sofos::COUNT),
            min: dataset.intern_iri(sofos::MIN),
            max: dataset.intern_iri(sofos::MAX),
        }
    }

    fn component(&self, component: MaterialComponent) -> TermId {
        match component {
            MaterialComponent::Sum => self.sum,
            MaterialComponent::Count => self.count,
            MaterialComponent::Min => self.min,
            MaterialComponent::Max => self.max,
        }
    }

    /// Register the group-location predicates — the dimension predicates
    /// plus `rdf:type` (the apex lookup keys on `sofos:Observation`) — for
    /// per-(predicate, value) bitmaps on the view graph. Idempotent;
    /// re-run after every `Replace` commit because a rebuilt graph starts
    /// with empty registrations. No-op while the graph does not exist.
    pub(crate) fn register_value_preds(&self, dataset: &mut Dataset) {
        let mut preds = self.dim_preds.clone();
        preds.push(self.type_pred);
        dataset.register_value_preds(Some(self.graph), &preds);
    }
}

/// Find the observation node of a group in the view graph (read-only —
/// the dimension predicates were interned by [`ViewIds::prepare`]).
///
/// In [`PlanIndexMode::Bitmap`] the lookup intersects the view graph's
/// per-(dimension, value) subject bitmaps — O(intersection) instead of
/// O(matching triples) per leg — falling back to the run walk when a
/// predicate is not registered yet (first pass after recovery).
fn find_obs(
    dataset: &Dataset,
    ids: &ViewIds,
    key: &[TermId],
    mode: PlanIndexMode,
) -> Option<TermId> {
    let store = dataset.graph(Some(ids.graph))?;
    if mode == PlanIndexMode::Bitmap {
        if let Some(found) = find_obs_bitmap(store, ids, key) {
            return found;
        }
    }
    if ids.mask_dims.is_empty() {
        // Apex: the (single) observation node.
        return store
            .scan(IdPattern::new(
                None,
                Some(ids.type_pred),
                Some(ids.observation),
            ))
            .map(|[s, _, _]| s)
            .min();
    }
    let mut candidates: Option<Vec<TermId>> = None;
    for (&pred, &value) in ids.dim_preds.iter().zip(key) {
        let mut subjects: Vec<TermId> = store
            .scan(IdPattern::new(None, Some(pred), Some(value)))
            .map(|[s, _, _]| s)
            .collect();
        subjects.sort_unstable();
        subjects.dedup();
        candidates = Some(match candidates {
            None => subjects,
            Some(previous) => previous
                .into_iter()
                .filter(|s| subjects.binary_search(s).is_ok())
                .collect(),
        });
        if candidates.as_ref().is_some_and(Vec::is_empty) {
            return None;
        }
    }
    candidates.and_then(|c| c.into_iter().min())
}

/// Bitmap-indexed group location. Outer `None` means the index cannot
/// answer (a lookup predicate is unregistered on this graph) and the
/// caller must run-walk; `Some(None)` is a definitive "no observation".
fn find_obs_bitmap(store: &GraphStore, ids: &ViewIds, key: &[TermId]) -> Option<Option<TermId>> {
    if ids.mask_dims.is_empty() {
        if !store.has_value_pred(ids.type_pred) {
            return None;
        }
        let min = store
            .value_subjects(ids.type_pred, ids.observation)
            .and_then(Bitmap::min);
        return Some(min.map(TermId));
    }
    let mut acc: Option<Bitmap> = None;
    for (&pred, &value) in ids.dim_preds.iter().zip(key) {
        if !store.has_value_pred(pred) {
            return None;
        }
        let Some(bm) = store.value_subjects(pred, value) else {
            return Some(None);
        };
        let next = match acc {
            None => bm.clone(),
            Some(prev) => prev.and(bm),
        };
        if next.is_empty() {
            return Some(None);
        }
        acc = Some(next);
    }
    Some(acc.and_then(|bm| bm.min()).map(TermId))
}

/// Intersection of the star legs' per-predicate subject bitmaps on the
/// base graph: the subjects that can possibly bind a complete star row
/// (every leg present at least once). `None` disables filtering
/// ([`PlanIndexMode::RunWalk`]); an empty bitmap rules out every subject.
pub(crate) fn scan_candidates(
    mode: PlanIndexMode,
    base: &GraphStore,
    leg_ids: &[TermId],
) -> Option<Bitmap> {
    if mode == PlanIndexMode::RunWalk {
        return None;
    }
    let mut acc: Option<Bitmap> = None;
    for &pred in leg_ids {
        let bm = base.pred_subjects(pred).cloned().unwrap_or_default();
        let next = match acc {
            None => bm,
            Some(prev) => prev.and(&bm),
        };
        if next.is_empty() {
            return Some(next);
        }
        acc = Some(next);
    }
    Some(acc.unwrap_or_default())
}

/// Should this subject be skipped by the candidate pre-filter?
/// Equivalent to `StarPattern::subject_rows`' empty-leg early return —
/// the filter only rules out subjects that would bind no row anyway.
pub(crate) fn skip_subject(candidates: &Option<Bitmap>, subject: TermId) -> bool {
    candidates.as_ref().is_some_and(|c| !c.contains(subject.0))
}

/// One slice of a `split`-way within-view plan: chunk `chunk` of the
/// view's sorted group keys. [`Chunking::whole`] is the unsplit case;
/// the [`Chunking::leader`] chunk owns non-chunkable strategies
/// (refresh, noop) while its siblings plan no-ops.
#[derive(Clone, Copy)]
pub(crate) struct Chunking {
    pub(crate) chunk: usize,
    pub(crate) split: usize,
}

impl Chunking {
    /// The unsplit plan: one chunk covering every group key.
    pub(crate) fn whole() -> Self {
        Chunking { chunk: 0, split: 1 }
    }

    /// Whether this chunk plans whole-view (non-chunkable) strategies.
    fn leader(self) -> bool {
        self.chunk == 0
    }
}

/// Chunk `chunk` of `split`'s half-open slice of `len` sorted keys —
/// balanced contiguous ranges that partition `0..len`.
fn chunk_range(len: usize, chunk: usize, split: usize) -> (usize, usize) {
    (chunk * len / split, (chunk + 1) * len / split)
}

/// Read a component value of an observation.
fn read_component(dataset: &Dataset, graph: TermId, obs: TermId, pred: TermId) -> Option<TermId> {
    dataset
        .graph(Some(graph))?
        .scan(IdPattern::new(Some(obs), Some(pred), None))
        .map(|[_, _, o]| o)
        .next()
}

/// Plan a component-term write; returns triples touched (0 when
/// unchanged — no-op writes are dropped at plan time).
fn plan_write_term(
    dataset: &Dataset,
    ops: &mut Vec<PatchOp>,
    obs: TermId,
    pred: TermId,
    old: Option<TermId>,
    new: &Term,
) -> usize {
    if let Some(old) = old {
        if dataset.term(old) == new {
            return 0;
        }
        ops.push(PatchOp::Remove([obs, pred, old]));
        ops.push(PatchOp::Insert {
            node: NodeRef::Existing(obs),
            pred,
            object: ObjectRef::New(new.clone()),
        });
        2
    } else {
        ops.push(PatchOp::Insert {
            node: NodeRef::Existing(obs),
            pred,
            object: ObjectRef::New(new.clone()),
        });
        1
    }
}

/// Plan the removal of every triple of an observation node; returns
/// triples planned for removal.
fn plan_retract_obs(
    dataset: &Dataset,
    ops: &mut Vec<PatchOp>,
    graph: TermId,
    obs: TermId,
) -> usize {
    let Some(store) = dataset.graph(Some(graph)) else {
        return 0;
    };
    let mut removed = 0usize;
    for triple in store.scan(IdPattern::new(Some(obs), None, None)) {
        ops.push(PatchOp::Remove(triple));
        removed += 1;
    }
    removed
}

/// The stored extremum updated with asserted measures.
fn best(stored: Numeric, asserted: &[Numeric], keep: std::cmp::Ordering) -> Numeric {
    let mut current = stored;
    for &candidate in asserted {
        if Numeric::compare(candidate, current) == Some(keep) {
            current = candidate;
        }
    }
    current
}

/// Extremum over asserted measures (for brand-new groups; non-empty by
/// construction: new groups have `count > 0`).
fn extremum(asserted: &[Numeric], keep: std::cmp::Ordering) -> Numeric {
    let mut iter = asserted.iter().copied();
    let mut current = iter.next().expect("new groups carry asserted rows");
    for candidate in iter {
        if Numeric::compare(candidate, current) == Some(keep) {
            current = candidate;
        }
    }
    current
}
