//! # sofos-maintain — incremental view maintenance for a living `G+`
//!
//! SOFOS (§3) materializes views once over a frozen graph; the paper's
//! central tension — view *benefit* vs. *maintenance cost* — is only half
//! exercisable while the store is read-only. This crate adds the missing
//! half: when the base graph changes through the store's transactional
//! delta API ([`sofos_store::Dataset::apply`]), the [`Maintainer`]
//! propagates the net [`sofos_store::ChangeSet`] into every materialized
//! view graph *without* re-evaluating the views, and reports what each
//! view's upkeep actually cost ([`MaintenanceCost`]) so the cost models
//! can finally price staleness against refresh.
//!
//! ## The counting algorithm, on RDF-encoded views
//!
//! A facet whose pattern `P` is a *star* (every triple pattern
//! `?o <p_i> ?v_i` around one subject variable — all SOFOS facets are
//! shaped like this) admits exact delta bindings: the subjects touched by
//! a batch are known, so the batch's effect on `P`'s bindings is
//! `rows_after(touched) − rows_before(touched)` as a multiset
//! ([`RowDelta`]). Per view, those delta rows are grouped by the view's
//! dimension mask and patched in place:
//!
//! * **SUM / COUNT / AVG** groups are patched arithmetically from the
//!   delta (AVG via its stored SUM+COUNT components); a group whose count
//!   reaches zero is retracted (its observation node's triples are
//!   removed);
//! * **MIN / MAX** groups are patched on pure inserts (compare against the
//!   stored extremum) but fall back to *per-group re-evaluation* on any
//!   delete — the classic non-invertibility of extrema; re-evaluation
//!   reuses the SPARQL evaluator with the group's key pinned by FILTERs,
//!   so patched literals are canonically identical to re-materialization;
//! * groups that appear for the first time get a fresh observation node;
//! * an update that only touches dimensions outside a view's mask nets
//!   out to zero component change and writes nothing.
//!
//! Facets whose pattern is not a star (or whose measures are not numeric)
//! degrade to [`MaintenanceStrategy::FullRefresh`]: drop + re-materialize,
//! with the cost reported honestly — which is itself a data point the
//! selection experiments want.

mod engine;
mod parallel;
mod pipeline;
mod star;

pub use engine::{ApplyOutcome, Maintainer, PlanIndexMode, RowDelta};
pub use parallel::{ShardScanCost, ShardedApplyOutcome};
pub use pipeline::{PipelineOutcome, PipelineTelemetry, ViewPatch};
pub use star::StarPattern;

use sofos_cube::ViewMask;
use std::fmt;

/// How a view was brought up to date.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceStrategy {
    /// Counting algorithm: groups patched in place from delta bindings.
    Counting,
    /// Dropped and re-materialized from the base graph.
    FullRefresh,
    /// Nothing to do (empty delta for this view).
    Noop,
}

impl fmt::Display for MaintenanceStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MaintenanceStrategy::Counting => "counting",
            MaintenanceStrategy::FullRefresh => "full-refresh",
            MaintenanceStrategy::Noop => "noop",
        })
    }
}

/// What maintaining one view cost — the per-view term the cost models
/// need to price staleness vs. refresh.
#[derive(Debug, Clone)]
pub struct MaintenanceCost {
    /// The maintained view.
    pub view: ViewMask,
    /// Strategy used.
    pub strategy: MaintenanceStrategy,
    /// View-graph triples written or removed.
    pub triples_touched: usize,
    /// Groups patched arithmetically in place.
    pub groups_patched: usize,
    /// Groups recomputed from the base graph (MIN/MAX deletes, SUM
    /// emptiness checks, consistency repairs).
    pub groups_reevaluated: usize,
    /// Observation rows added to the view.
    pub rows_inserted: usize,
    /// Observation rows retracted from the view.
    pub rows_retracted: usize,
    /// Wall time of this view's maintenance (µs).
    pub wall_us: u64,
}

impl MaintenanceCost {
    fn noop(view: ViewMask) -> MaintenanceCost {
        MaintenanceCost {
            view,
            strategy: MaintenanceStrategy::Noop,
            triples_touched: 0,
            groups_patched: 0,
            groups_reevaluated: 0,
            rows_inserted: 0,
            rows_retracted: 0,
            wall_us: 0,
        }
    }
}

/// Aggregate outcome of one maintenance pass over a set of views.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceReport {
    /// Per-view costs, in catalog order.
    pub per_view: Vec<MaintenanceCost>,
    /// Total wall time (µs) across the pass.
    pub total_us: u64,
}

impl MaintenanceReport {
    /// Total view-graph triples touched across views.
    pub fn triples_touched(&self) -> usize {
        self.per_view.iter().map(|c| c.triples_touched).sum()
    }

    /// Total per-group re-evaluations across views.
    pub fn reevaluations(&self) -> usize {
        self.per_view.iter().map(|c| c.groups_reevaluated).sum()
    }

    /// Merge another report into this one (accumulating a session log).
    pub fn absorb(&mut self, other: MaintenanceReport) {
        self.total_us += other.total_us;
        self.per_view.extend(other.per_view);
    }
}
