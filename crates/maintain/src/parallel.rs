//! Sharded, parallel delta application — since PR 4 a thin wrapper over
//! the pipeline stages (plan → scan → apply → scan → merge).
//!
//! The expensive half of [`Maintainer::apply`] is re-enumerating the
//! pattern bindings of every subject a batch touches (pre- and
//! post-image). Those scans are read-only and independent per subject, so
//! they parallelize perfectly along the store's subject-hash shards
//! ([`ShardRouter`]): each worker thread owns a disjoint set of shards,
//! scans its subjects against the shared dataset, and produces a partial
//! [`RowDelta`] plus a per-shard [`ShardScanCost`]. Row deltas are
//! additive, so the merge of the per-shard partials is exactly the serial
//! result — [`Maintainer::apply_sharded`] is bit-equivalent to
//! [`Maintainer::apply`] (property-tested in `tests/maintenance.rs`).
//!
//! What stays serial here — interning the batch and pushing it through
//! the index deltas — plus the patch-apply phase of
//! [`Maintainer::maintain_pipelined`] is the measured Amdahl floor the
//! shard-aware maintenance cost model (`sofos_cost::ShardedMaintenance`)
//! prices via [`crate::PipelineTelemetry`].

use crate::engine::{ApplyOutcome, RowDelta};
use crate::Maintainer;
use sofos_store::{Dataset, Delta, ShardRouter};
use std::time::Instant;

/// What one shard's scan work cost during a parallel apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardScanCost {
    /// The shard index.
    pub shard: usize,
    /// Affected subjects scanned on this shard.
    pub subjects: usize,
    /// Binding rows enumerated (pre- plus post-image).
    pub rows_scanned: usize,
    /// Wall time of this shard's scans (µs), summed over both phases.
    pub wall_us: u64,
}

impl ShardScanCost {
    /// Fold another shard's cost into this one (cross-shard totals).
    pub fn merge(&mut self, other: &ShardScanCost) {
        self.subjects += other.subjects;
        self.rows_scanned += other.rows_scanned;
        self.wall_us += other.wall_us;
    }
}

/// Outcome of [`Maintainer::apply_sharded`]: the serial
/// [`ApplyOutcome`] plus per-shard scan accounting.
#[derive(Debug, Clone)]
pub struct ShardedApplyOutcome {
    /// Net store changes and merged row delta (identical to what the
    /// serial path would produce).
    pub outcome: ApplyOutcome,
    /// Per-shard scan costs, index = shard (empty for non-star facets,
    /// which skip the scan phases entirely).
    pub shard_costs: Vec<ShardScanCost>,
    /// Wall time of the two parallel scan phases end to end (µs) —
    /// compare against the sum of `shard_costs` wall times to see the
    /// parallel speedup.
    pub scan_wall_us: u64,
    /// Wall time of the serial stages (interning the batch, bucketing
    /// subjects, mutating the store), µs.
    pub serial_us: u64,
}

impl ShardedApplyOutcome {
    /// Summed per-shard scan work (µs) — the parallelizable half of this
    /// apply, as [`crate::PipelineTelemetry`] counts it.
    pub fn scan_work_us(&self) -> u64 {
        self.shard_costs.iter().map(|c| c.wall_us).sum()
    }
}

impl Maintainer {
    /// [`Maintainer::apply`], with the pre/post binding scans split by
    /// subject shard and run on a scoped pool of `threads` workers.
    ///
    /// Stages (all hosted by the `pipeline` module): **plan** the scan
    /// (serial — intern the batch's terms, bucket affected subjects by
    /// shard), **scan** the pre-image (parallel), **apply** the delta to
    /// the store (serial), **scan** the post-image (parallel), and merge
    /// the per-shard row deltas (additive, so the merged result is
    /// exactly the serial one). With `threads <= 1` or a single-shard
    /// router the scans run inline — the degenerate configuration *is*
    /// the serial engine.
    pub fn apply_sharded(
        &mut self,
        dataset: &mut Dataset,
        delta: Delta,
        router: &ShardRouter,
        threads: usize,
    ) -> ShardedApplyOutcome {
        let serial_start = Instant::now();
        let Some(plan) = self.plan_scan(dataset, &delta, router) else {
            let changes = dataset.apply(delta);
            return ShardedApplyOutcome {
                outcome: ApplyOutcome {
                    changes,
                    rows: None,
                },
                shard_costs: Vec::new(),
                scan_wall_us: 0,
                serial_us: serial_start.elapsed().as_micros() as u64,
            };
        };
        let mut serial_us = serial_start.elapsed().as_micros() as u64;

        let scan_start = Instant::now();
        let pre = self.scan_stage(dataset, &plan, threads);
        let mut scan_wall_us = scan_start.elapsed().as_micros() as u64;

        // Serial heart: the store mutation.
        let serial_start = Instant::now();
        let changes = dataset.apply(delta);
        serial_us += serial_start.elapsed().as_micros() as u64;

        let mut rows = RowDelta::default();
        let mut shard_costs: Vec<ShardScanCost> = pre
            .iter()
            .enumerate()
            .map(|(shard, p)| ShardScanCost {
                shard,
                subjects: p.subjects,
                rows_scanned: p.rows.len(),
                wall_us: p.wall_us,
            })
            .collect();
        if !changes.default_graph.is_empty() {
            let scan_start = Instant::now();
            let post = self.scan_stage(dataset, &plan, threads);
            scan_wall_us += scan_start.elapsed().as_micros() as u64;
            for (shard, (p, q)) in pre.into_iter().zip(post).enumerate() {
                shard_costs[shard].rows_scanned += q.rows.len();
                shard_costs[shard].wall_us += q.wall_us;
                for (dims, measure, mult) in q.rows {
                    rows.add(dims, measure, mult);
                }
                for (dims, measure, mult) in p.rows {
                    rows.add(dims, measure, -mult);
                }
            }
        }
        ShardedApplyOutcome {
            outcome: ApplyOutcome {
                changes,
                rows: Some(rows),
            },
            shard_costs,
            scan_wall_us,
            serial_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_cube::{AggOp, Dimension, Facet};
    use sofos_rdf::Term;
    use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};

    fn leg(p: &str, v: &str) -> TriplePattern {
        TriplePattern::new(
            PatternTerm::var("o"),
            PatternTerm::iri(format!("http://e/{p}")),
            PatternTerm::var(v),
        )
    }

    fn star_facet() -> Facet {
        Facet::new(
            "f",
            vec![Dimension::new("a"), Dimension::new("b")],
            GroupPattern::triples(vec![leg("a", "a"), leg("b", "b"), leg("m", "m")]),
            "m",
            AggOp::Sum,
        )
        .unwrap()
    }

    fn seeded_dataset() -> Dataset {
        let mut ds = Dataset::new();
        for i in 0..30 {
            let s = Term::blank(format!("o{i}"));
            ds.insert(
                None,
                &s,
                &Term::iri("http://e/a"),
                &Term::iri(format!("http://e/a{}", i % 3)),
            );
            ds.insert(
                None,
                &s,
                &Term::iri("http://e/b"),
                &Term::iri(format!("http://e/b{}", i % 2)),
            );
            ds.insert(None, &s, &Term::iri("http://e/m"), &Term::literal_int(i));
        }
        ds
    }

    fn churn_delta() -> Delta {
        let mut delta = Delta::new();
        for i in 0..8 {
            let s = Term::blank(format!("n{i}"));
            delta.insert(
                s.clone(),
                Term::iri("http://e/a"),
                Term::iri(format!("http://e/a{}", i % 3)),
            );
            delta.insert(s.clone(), Term::iri("http://e/b"), Term::iri("http://e/b0"));
            delta.insert(s, Term::iri("http://e/m"), Term::literal_int(100 + i));
        }
        for i in 0..5 {
            let s = Term::blank(format!("o{i}"));
            delta.delete(s, Term::iri("http://e/m"), Term::literal_int(i));
        }
        delta
    }

    #[test]
    fn sharded_apply_equals_serial_apply() {
        let facet = star_facet();
        for (shards, threads) in [(1, 1), (4, 1), (4, 2), (8, 4)] {
            let mut serial_ds = seeded_dataset();
            let mut sharded_ds = seeded_dataset();
            let mut serial = Maintainer::new(&facet);
            let mut sharded = Maintainer::new(&facet);

            let reference = serial.apply(&mut serial_ds, churn_delta());
            let router = ShardRouter::new(shards);
            let outcome = sharded.apply_sharded(&mut sharded_ds, churn_delta(), &router, threads);

            let reference_rows = reference.rows.expect("star facet");
            let sharded_rows = outcome.outcome.rows.expect("star facet");
            assert_eq!(reference_rows.len(), sharded_rows.len());
            assert_eq!(reference_rows.asserted(), sharded_rows.asserted());
            assert_eq!(reference_rows.retracted(), sharded_rows.retracted());
            assert_eq!(
                reference.changes.default_graph, outcome.outcome.changes.default_graph,
                "shards={shards} threads={threads}"
            );
            assert_eq!(
                serial_ds.default_graph().len(),
                sharded_ds.default_graph().len()
            );

            // Every affected subject is accounted to exactly one shard.
            assert_eq!(outcome.shard_costs.len(), shards);
            let scanned: usize = outcome.shard_costs.iter().map(|c| c.subjects).sum();
            assert!(scanned > 0, "the delta touches subjects");
        }
    }

    #[test]
    fn non_star_facets_skip_the_scan_phase() {
        use sofos_sparql::{Expr, PatternElement};
        let mut facet = star_facet();
        facet
            .pattern
            .elements
            .push(PatternElement::Filter(Expr::int(1)));
        let mut maintainer = Maintainer::new(&facet);
        assert!(!maintainer.is_incremental());
        let mut ds = seeded_dataset();
        let outcome = maintainer.apply_sharded(&mut ds, churn_delta(), &ShardRouter::new(4), 2);
        assert!(outcome.outcome.rows.is_none(), "full refresh regime");
        assert!(outcome.shard_costs.is_empty());
    }

    #[test]
    fn shard_costs_merge_additively() {
        let mut a = ShardScanCost {
            shard: 0,
            subjects: 3,
            rows_scanned: 9,
            wall_us: 10,
        };
        let b = ShardScanCost {
            shard: 1,
            subjects: 2,
            rows_scanned: 4,
            wall_us: 7,
        };
        a.merge(&b);
        assert_eq!(a.subjects, 5);
        assert_eq!(a.rows_scanned, 13);
        assert_eq!(a.wall_us, 17);
    }
}
