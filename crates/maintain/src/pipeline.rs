//! The two-phase maintenance pipeline: parallel read-only patch
//! *planning*, serial batched patch *application*.
//!
//! The serial engine interleaves the expensive and the cheap halves of a
//! maintenance pass: locating observation nodes, grouping delta rows, and
//! re-evaluating non-invertible groups (all read-only, all view-local) run
//! on the same thread as the handful of triple writes they decide on. The
//! pipeline splits them:
//!
//! * **Phase 1 — plan (parallel, read-only).** Every catalog view's patch
//!   is computed against the already-updated base graph: the row delta is
//!   grouped by the view's mask, observation nodes are located, patch vs.
//!   re-evaluation is decided, and the exact triple writes are emitted as
//!   a [`ViewPatch`] — without touching any view graph. Plans for
//!   different views share nothing but the immutable dataset, so they run
//!   on a scoped thread pool (round-robin by catalog index, so the
//!   assignment is deterministic).
//! * **Phase 2 — apply (serial, cheap).** Patches are applied in catalog
//!   order: pure mechanical triple writes — no query evaluation, no group
//!   lookups — so the store's single-writer section shrinks to the part
//!   that genuinely needs it. Callers batching several deltas publish the
//!   whole pass as **one** epoch
//!   ([`sofos_store::EpochStore::begin_batch`]).
//!
//! Invariants (property-tested in `tests/maintenance.rs`):
//!
//! 1. **Bit-equality.** [`Maintainer::maintain_pipelined`] produces view
//!    graphs identical (up to blank labels) to the serial
//!    [`Maintainer::maintain`] — both run the same planning core
//!    (`plan_view`), the serial path just applies each plan immediately.
//! 2. **Plan independence.** Group keys are disjoint per view and views
//!    own disjoint graphs, so no plan reads state another plan writes.
//!    Re-evaluations read only the *base* graph (plus the group's own
//!    observation), which phase 1 never mutates.
//! 3. **All-or-nothing planning.** A planning error surfaces before any
//!    write is applied: a failed pipelined pass leaves every view graph
//!    exactly as it was (the serial path cannot offer this — it may have
//!    half-patched earlier views).
//!
//! The [`PipelineTelemetry`] on every outcome records how the pass split
//! into serial and parallelizable work; its measured
//! [`PipelineTelemetry::serial_fraction`] replaces the fixed Amdahl floor
//! in `sofos_cost::ShardedMaintenance`.

use crate::engine::{scan_candidates, skip_subject, Chunking, PlanIndexMode, RowDelta, ViewIds};
use crate::{Maintainer, MaintenanceCost, MaintenanceReport, MaintenanceStrategy};
use sofos_cube::ViewMask;
use sofos_rdf::{Graph, Term, TermId};
use sofos_sparql::SparqlError;
use sofos_store::{Dataset, Delta, ShardRouter};
use std::time::Instant;

/// A view-graph subject referenced by a planned write: an existing
/// observation node, or a blank node the patch mints at apply time
/// (index into [`ViewPatch::fresh`]).
#[derive(Debug, Clone, Copy)]
pub(crate) enum NodeRef {
    Existing(TermId),
    Fresh(usize),
}

/// A planned object value: an already-interned term, or a term (typically
/// a freshly-computed aggregate literal) interned at apply time.
#[derive(Debug, Clone)]
pub(crate) enum ObjectRef {
    Existing(TermId),
    New(Term),
}

/// One planned view-graph write.
#[derive(Debug, Clone)]
pub(crate) enum PatchOp {
    /// Remove an existing encoded triple.
    Remove([TermId; 3]),
    /// Insert a triple (subject/object may need interning at apply time).
    Insert {
        node: NodeRef,
        pred: TermId,
        object: ObjectRef,
    },
    /// Drop the whole view graph and load the encoded replacement — the
    /// full-refresh regime, planned read-only like everything else.
    Replace { encoded: Graph },
}

/// One view's fully-planned maintenance: the exact writes phase 2 will
/// apply, plus the cost accounting phase 1 already knows.
pub struct ViewPatch {
    pub(crate) view: ViewMask,
    pub(crate) graph: TermId,
    /// Blank labels minted by planning; interned on apply.
    pub(crate) fresh: Vec<String>,
    pub(crate) ops: Vec<PatchOp>,
    /// Planned cost; `wall_us` holds the planning wall until apply adds
    /// its own share.
    pub(crate) cost: MaintenanceCost,
    /// The view's catalog row count after the patch.
    pub(crate) rows: usize,
    /// The maintainer's fresh-label counter after this plan.
    pub(crate) fresh_end: u64,
}

impl ViewPatch {
    pub(crate) fn noop(view: ViewMask, graph: TermId, fresh_end: u64, rows: usize) -> ViewPatch {
        ViewPatch {
            view,
            graph,
            fresh: Vec::new(),
            ops: Vec::new(),
            cost: MaintenanceCost::noop(view),
            rows,
            fresh_end,
        }
    }

    /// The planned view.
    pub fn view(&self) -> ViewMask {
        self.view
    }

    /// Planned writes (0 for a no-op patch).
    pub fn planned_ops(&self) -> usize {
        self.ops.len()
    }

    /// The planned cost (apply time not yet included).
    pub fn cost(&self) -> &MaintenanceCost {
        &self.cost
    }
}

/// Scratch state one view plan accumulates into.
pub(crate) struct PatchBuilder {
    pub(crate) ops: Vec<PatchOp>,
    pub(crate) fresh: Vec<String>,
    pub(crate) cost: MaintenanceCost,
    pub(crate) next_fresh: u64,
    /// Blank-label namespace (empty unsplit; `s<chunk>` under a split
    /// plan so sibling chunks minting from the same counter never
    /// collide).
    pub(crate) label_tag: String,
}

impl PatchBuilder {
    pub(crate) fn new(view: ViewMask, fresh_start: u64) -> PatchBuilder {
        PatchBuilder {
            ops: Vec::new(),
            fresh: Vec::new(),
            label_tag: String::new(),
            cost: MaintenanceCost {
                view,
                strategy: MaintenanceStrategy::Counting,
                triples_touched: 0,
                groups_patched: 0,
                groups_reevaluated: 0,
                rows_inserted: 0,
                rows_retracted: 0,
                wall_us: 0,
            },
            next_fresh: fresh_start,
        }
    }

    pub(crate) fn into_patch(self, graph: TermId, rows: usize) -> ViewPatch {
        ViewPatch {
            view: self.cost.view,
            graph,
            fresh: self.fresh,
            ops: self.ops,
            cost: self.cost,
            rows,
            fresh_end: self.next_fresh,
        }
    }
}

/// How a pipelined pass split between the serial spine and the work that
/// ran (or could run) on the thread pool. All figures are microseconds of
/// *work*, except `parallel_wall_us` which is the end-to-end wall of the
/// parallel phases — compare the two to see the achieved speedup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineTelemetry {
    /// Work that must run single-threaded: interning prologues, the store
    /// mutation itself, and patch application.
    pub serial_us: u64,
    /// Summed per-task work of the parallelizable phases (per-shard scans,
    /// per-view plans) — the numerator Amdahl divides by `p`.
    pub parallel_work_us: u64,
    /// End-to-end wall of the parallel phases.
    pub parallel_wall_us: u64,
}

impl PipelineTelemetry {
    /// Fold another pass's split into this one (accumulating a session
    /// total).
    pub fn merge(&mut self, other: &PipelineTelemetry) {
        self.serial_us += other.serial_us;
        self.parallel_work_us += other.parallel_work_us;
        self.parallel_wall_us += other.parallel_wall_us;
    }

    /// The measured serial fraction of maintenance work: the Amdahl floor
    /// `sofos_cost::ShardedMaintenance` should use instead of its prior.
    /// `None` until any work has been recorded.
    pub fn serial_fraction(&self) -> Option<f64> {
        let total = self.serial_us + self.parallel_work_us;
        if total == 0 {
            return None;
        }
        Some(self.serial_us as f64 / total as f64)
    }
}

/// Result of one [`Maintainer::maintain_pipelined`] pass.
pub struct PipelineOutcome {
    /// Per-view costs, exactly as the serial engine would report them.
    pub report: MaintenanceReport,
    /// How the pass split between serial and parallel work.
    pub telemetry: PipelineTelemetry,
}

/// Serial prologue of a sharded scan: the interning work and subject
/// bucketing that must precede the parallel per-shard scans.
pub(crate) struct ScanPlan {
    pub(crate) leg_ids: Vec<TermId>,
    pub(crate) buckets: Vec<Vec<TermId>>,
}

/// Per-shard scan output of one phase.
pub(crate) struct ShardRows {
    pub(crate) rows: Vec<(Vec<TermId>, TermId, i64)>,
    pub(crate) subjects: usize,
    pub(crate) wall_us: u64,
}

impl Maintainer {
    /// Stage 1 of a sharded apply: intern the batch's terms and bucket the
    /// affected subjects by shard. `None` for non-star facets (which skip
    /// the scan phases entirely).
    pub(crate) fn plan_scan(
        &self,
        dataset: &mut Dataset,
        delta: &Delta,
        router: &ShardRouter,
    ) -> Option<ScanPlan> {
        let star = self.star()?;
        let affected = star.affected_subjects(dataset, delta);
        let leg_ids = star.leg_ids(dataset);
        let buckets = router.split_subjects(affected.iter().copied());
        Some(ScanPlan { leg_ids, buckets })
    }

    /// Stage 2 of a sharded apply: scan every bucket's subjects against
    /// `dataset`, distributing buckets over at most `threads` workers
    /// (round-robin by shard index, so the assignment is deterministic).
    pub(crate) fn scan_stage(
        &self,
        dataset: &Dataset,
        plan: &ScanPlan,
        threads: usize,
    ) -> Vec<ShardRows> {
        let star = self
            .star()
            .expect("scan_stage is only called for star facets");
        // Bitmap pre-filter: a subject outside the intersection of the
        // legs' per-predicate subject bitmaps cannot bind a complete star
        // row, so its per-leg scans are skipped entirely. Computed once
        // per stage against the graph state this stage scans.
        let candidates = scan_candidates(self.index_mode(), dataset.default_graph(), &plan.leg_ids);
        parallel_indexed(plan.buckets.len(), threads, |shard| {
            let bucket = &plan.buckets[shard];
            let start = Instant::now();
            let mut rows = Vec::new();
            for &subject in bucket {
                if skip_subject(&candidates, subject) {
                    continue;
                }
                star.subject_rows(dataset.default_graph(), &plan.leg_ids, subject, &mut rows);
            }
            ShardRows {
                subjects: bucket.len(),
                wall_us: start.elapsed().as_micros() as u64,
                rows,
            }
        })
    }

    /// The two-phase pipeline over a whole catalog: plan every view's
    /// patch read-only on a scoped pool of `threads` workers, then apply
    /// the patches serially in catalog order.
    ///
    /// Produces the same [`MaintenanceReport`] and the same view graphs as
    /// the serial [`Maintainer::maintain`] (property-tested). Unlike the
    /// serial path, a planning error aborts *before* any write: the view
    /// graphs are untouched on `Err`.
    pub fn maintain_pipelined(
        &mut self,
        dataset: &mut Dataset,
        rows: Option<&RowDelta>,
        views: &mut [(ViewMask, usize)],
        threads: usize,
    ) -> Result<PipelineOutcome, SparqlError> {
        self.maintain_pipelined_split(dataset, rows, views, threads, 1)
    }

    /// [`Maintainer::maintain_pipelined`] with *within-view* plan
    /// parallelism: each view's planning is split into `split` chunks of
    /// its sorted group-key range, so a catalog dominated by one hot view
    /// still fills the pool (`views × split` tasks). Chunks re-group the
    /// delta independently (cheap, deterministic) and plan disjoint
    /// contiguous key ranges; their patches are concatenated in key order,
    /// so the merged patch is op-for-op the unsplit plan up to blank-node
    /// labels (chunks mint in per-chunk namespaces). `split = 1` is
    /// exactly the unsplit pipeline.
    pub fn maintain_pipelined_split(
        &mut self,
        dataset: &mut Dataset,
        rows: Option<&RowDelta>,
        views: &mut [(ViewMask, usize)],
        threads: usize,
        split: usize,
    ) -> Result<PipelineOutcome, SparqlError> {
        let split = split.max(1);
        let pass_start = Instant::now();

        // Serial prologue: interning (and posting-list registration)
        // needs the writer's dictionary.
        let serial_start = Instant::now();
        let ids: Vec<ViewIds> = views
            .iter()
            .map(|&(mask, _)| {
                let ids = ViewIds::prepare(dataset, self.facet(), mask);
                if self.index_mode() == PlanIndexMode::Bitmap {
                    ids.register_value_preds(dataset);
                }
                ids
            })
            .collect();
        let mut serial_us = serial_start.elapsed().as_micros() as u64;

        // Phase 1: plan all patch chunks against the immutable dataset.
        let plan_start = Instant::now();
        let planned = self.plan_all(dataset, rows, views, &ids, threads, split);
        let parallel_wall_us = plan_start.elapsed().as_micros() as u64;
        let parallel_work_us = planned.iter().map(|(_, work)| work).sum();
        let mut chunk_patches = planned.into_iter().map(|(patch, _)| patch);
        let mut patches: Vec<ViewPatch> = Vec::with_capacity(views.len());
        for &(_, catalog_rows) in views.iter() {
            let chunks: Vec<ViewPatch> = chunk_patches
                .by_ref()
                .take(split)
                .collect::<Result<_, _>>()?;
            patches.push(merge_chunk_patches(chunks, catalog_rows));
        }

        // Phase 2: apply serially, in catalog order.
        let apply_start = Instant::now();
        let mut report = MaintenanceReport::default();
        for (patch, entry) in patches.into_iter().zip(views.iter_mut()) {
            report
                .per_view
                .push(self.commit_patch(dataset, patch, entry));
        }
        serial_us += apply_start.elapsed().as_micros() as u64;
        report.total_us = pass_start.elapsed().as_micros() as u64;

        Ok(PipelineOutcome {
            report,
            telemetry: PipelineTelemetry {
                serial_us,
                parallel_work_us,
                parallel_wall_us,
            },
        })
    }

    /// Plan every view's patch chunks, each timed, distributing the
    /// `views × split` tasks over at most `threads` workers (round-robin
    /// by task index). Task `t` plans chunk `t % split` of view
    /// `t / split`, so results arrive grouped by view in chunk order.
    #[allow(clippy::type_complexity)]
    fn plan_all(
        &self,
        dataset: &Dataset,
        rows: Option<&RowDelta>,
        views: &[(ViewMask, usize)],
        ids: &[ViewIds],
        threads: usize,
        split: usize,
    ) -> Vec<(Result<ViewPatch, SparqlError>, u64)> {
        let fresh_start = self.fresh_counter();
        parallel_indexed(views.len() * split, threads, |task| {
            let (index, chunk) = (task / split, task % split);
            let start = Instant::now();
            let patch = self.plan_view_chunk(
                dataset,
                rows,
                views[index],
                &ids[index],
                fresh_start,
                Chunking { chunk, split },
            );
            (patch, start.elapsed().as_micros() as u64)
        })
    }
}

/// Fold one view's chunk patches back into a single patch equivalent to
/// the unsplit plan. Refresh plans are whole by construction (chunk 0
/// plans them, siblings no-op); counting chunks concatenate — their key
/// ranges partition the sorted key list, so op order matches the unsplit
/// plan and only blank-node indices need remapping.
fn merge_chunk_patches(mut chunks: Vec<ViewPatch>, catalog_rows: usize) -> ViewPatch {
    if chunks.len() == 1 {
        return chunks.pop().expect("at least one chunk per view");
    }
    if let Some(pos) = chunks
        .iter()
        .position(|p| p.cost.strategy == MaintenanceStrategy::FullRefresh)
    {
        return chunks.swap_remove(pos);
    }
    if chunks
        .iter()
        .all(|p| p.cost.strategy == MaintenanceStrategy::Noop)
    {
        return chunks.swap_remove(0);
    }
    let mut merged = chunks.remove(0);
    for patch in chunks {
        let offset = merged.fresh.len();
        merged.fresh.extend(patch.fresh);
        merged.ops.extend(patch.ops.into_iter().map(|op| match op {
            PatchOp::Insert {
                node: NodeRef::Fresh(i),
                pred,
                object,
            } => PatchOp::Insert {
                node: NodeRef::Fresh(i + offset),
                pred,
                object,
            },
            other => other,
        }));
        merged.cost.triples_touched += patch.cost.triples_touched;
        merged.cost.groups_patched += patch.cost.groups_patched;
        merged.cost.groups_reevaluated += patch.cost.groups_reevaluated;
        merged.cost.rows_inserted += patch.cost.rows_inserted;
        merged.cost.rows_retracted += patch.cost.rows_retracted;
        merged.cost.wall_us += patch.cost.wall_us;
        merged.fresh_end = merged.fresh_end.max(patch.fresh_end);
    }
    merged.rows =
        (catalog_rows + merged.cost.rows_inserted).saturating_sub(merged.cost.rows_retracted);
    merged
}

/// Run `task(0..n)` on at most `threads` scoped workers, round-robin by
/// index (deterministic assignment), returning results in index order.
/// With one worker (or one item) the tasks run inline — the degenerate
/// configuration is the serial loop. Shared by the scan and plan stages.
fn parallel_indexed<T: Send>(n: usize, threads: usize, task: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        return (0..n).map(task).collect();
    }
    let mut results: Vec<Option<T>> = Vec::new();
    results.resize_with(n, || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for worker in 0..workers {
            let task = &task;
            handles.push(scope.spawn(move || {
                let mut partial: Vec<(usize, T)> = Vec::new();
                let mut index = worker;
                while index < n {
                    partial.push((index, task(index)));
                    index += workers;
                }
                partial
            }));
        }
        for handle in handles {
            for (index, value) in handle.join().expect("pipeline worker panicked") {
                results[index] = Some(value);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index produced a result"))
        .collect()
}
