//! Star-shaped facet patterns and their delta bindings.
//!
//! Every SOFOS facet pattern in this repository is a *star*: one subject
//! variable (the observation) with one triple pattern per bound variable,
//! `?o <p_i> ?v_i`. Stars make incremental binding computation exact and
//! cheap: the pattern's bindings for one subject are the cartesian product
//! of its per-predicate object lists, so a batch's effect on the binding
//! multiset only involves the subjects the batch touched.

use sofos_cube::Facet;
use sofos_rdf::{FxHashSet, Term, TermId};
use sofos_sparql::{GraphSpec, PatternElement, PatternTerm};
use sofos_store::{Dataset, GraphStore, IdPattern};

/// One leg of the star: a constant predicate binding one variable.
#[derive(Debug, Clone)]
pub struct StarLeg {
    /// The predicate IRI.
    pub predicate: Term,
    /// The object variable it binds.
    pub var: String,
}

/// A facet pattern recognized as a star join.
#[derive(Debug, Clone)]
pub struct StarPattern {
    /// The shared subject variable (the observation node).
    pub subject_var: String,
    /// All legs, in pattern order.
    pub legs: Vec<StarLeg>,
    /// Leg index of each facet dimension (`dims[d]` binds dimension `d`).
    pub dim_legs: Vec<usize>,
    /// Leg index of the measure variable.
    pub measure_leg: usize,
}

impl StarPattern {
    /// Recognize a facet's pattern as a star; `None` when it has filters,
    /// optionals, non-default graphs, non-constant predicates, repeated
    /// object variables, or more than one subject variable.
    pub fn detect(facet: &Facet) -> Option<StarPattern> {
        let [PatternElement::Triples {
            graph: GraphSpec::Default,
            patterns,
        }] = facet.pattern.elements.as_slice()
        else {
            return None;
        };
        let mut subject_var: Option<&str> = None;
        let mut legs: Vec<StarLeg> = Vec::with_capacity(patterns.len());
        let mut seen_vars: FxHashSet<&str> = FxHashSet::default();
        for pattern in patterns {
            let subject = pattern.subject.as_var()?;
            match subject_var {
                None => subject_var = Some(subject),
                Some(s) if s == subject => {}
                Some(_) => return None,
            }
            let PatternTerm::Const(predicate) = &pattern.predicate else {
                return None;
            };
            let var = pattern.object.as_var()?;
            if var == subject || !seen_vars.insert(var) {
                return None;
            }
            legs.push(StarLeg {
                predicate: predicate.clone(),
                var: var.to_string(),
            });
        }
        let subject_var = subject_var?.to_string();

        let mut dim_legs = Vec::with_capacity(facet.dim_count());
        for dim in &facet.dimensions {
            dim_legs.push(legs.iter().position(|l| l.var == dim.var)?);
        }
        let measure_leg = legs.iter().position(|l| l.var == facet.measure)?;
        Some(StarPattern {
            subject_var,
            legs,
            dim_legs,
            measure_leg,
        })
    }

    /// Interned predicate ids of all legs (interning is idempotent).
    pub fn leg_ids(&self, dataset: &mut Dataset) -> Vec<TermId> {
        self.legs
            .iter()
            .map(|l| dataset.intern(&l.predicate))
            .collect()
    }

    /// Subjects a delta's default-graph operations can affect: subjects of
    /// ops whose predicate is one of the star's predicates.
    pub fn affected_subjects(
        &self,
        dataset: &mut Dataset,
        delta: &sofos_store::Delta,
    ) -> FxHashSet<TermId> {
        let mut affected = FxHashSet::default();
        for op in delta.ops() {
            if op.graph.is_some() {
                continue;
            }
            let [s, p, _] = &op.triple;
            if !self.legs.iter().any(|l| l.predicate == *p) {
                continue;
            }
            match op.kind {
                // Inserts intern their subject during apply anyway.
                sofos_store::OpKind::Insert => {
                    affected.insert(dataset.intern(s));
                }
                // A subject the dictionary has never seen has no triples,
                // so deleting from it cannot change any binding — and
                // interning it here would leak ghost terms into the
                // never-garbage-collected dictionary.
                sofos_store::OpKind::Delete => {
                    if let Some(id) = dataset.dict().get_id(s) {
                        affected.insert(id);
                    }
                }
            }
        }
        affected
    }

    /// The full binding rows of one subject, projected to
    /// `(dimension values, measure)` with multiplicities.
    ///
    /// Legs that bind neither a dimension nor the measure only multiply
    /// row multiplicity, so they are not enumerated — their sizes are.
    pub fn subject_rows(
        &self,
        base: &GraphStore,
        leg_ids: &[TermId],
        subject: TermId,
        out: &mut Vec<(Vec<TermId>, TermId, i64)>,
    ) {
        let mut relevant: Vec<Vec<TermId>> = Vec::with_capacity(self.dim_legs.len() + 1);
        let mut multiplier: i64 = 1;
        let mut relevant_index: Vec<usize> = Vec::new();
        for (leg, &pred) in leg_ids.iter().enumerate() {
            let values: Vec<TermId> = base
                .scan(IdPattern::new(Some(subject), Some(pred), None))
                .map(|[_, _, o]| o)
                .collect();
            if values.is_empty() {
                return; // inner join: no bindings for this subject
            }
            if self.dim_legs.contains(&leg) || leg == self.measure_leg {
                relevant_index.push(leg);
                relevant.push(values);
            } else {
                multiplier *= values.len() as i64;
            }
        }
        // Odometer over the relevant legs' value lists.
        let mut cursor = vec![0usize; relevant.len()];
        loop {
            let value_of = |leg: usize| -> TermId {
                let i = relevant_index
                    .iter()
                    .position(|&l| l == leg)
                    .expect("dimension and measure legs are enumerated");
                relevant[i][cursor[i]]
            };
            let dims: Vec<TermId> = self.dim_legs.iter().map(|&l| value_of(l)).collect();
            let measure = value_of(self.measure_leg);
            out.push((dims, measure, multiplier));

            let mut pos = relevant.len();
            loop {
                if pos == 0 {
                    return;
                }
                pos -= 1;
                cursor[pos] += 1;
                if cursor[pos] < relevant[pos].len() {
                    break;
                }
                cursor[pos] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_cube::{AggOp, Dimension};
    use sofos_sparql::{Expr, GroupPattern, TriplePattern};

    fn leg(p: &str, v: &str) -> TriplePattern {
        TriplePattern::new(
            PatternTerm::var("o"),
            PatternTerm::iri(format!("http://e/{p}")),
            PatternTerm::var(v),
        )
    }

    fn star_facet() -> Facet {
        Facet::new(
            "f",
            vec![Dimension::new("a"), Dimension::new("b")],
            GroupPattern::triples(vec![leg("a", "a"), leg("b", "b"), leg("m", "m")]),
            "m",
            AggOp::Sum,
        )
        .unwrap()
    }

    #[test]
    fn detects_star_and_maps_legs() {
        let star = StarPattern::detect(&star_facet()).expect("star");
        assert_eq!(star.subject_var, "o");
        assert_eq!(star.legs.len(), 3);
        assert_eq!(star.dim_legs, [0, 1]);
        assert_eq!(star.measure_leg, 2);
    }

    #[test]
    fn rejects_non_star_shapes() {
        // Filter inside the pattern.
        let mut facet = star_facet();
        facet
            .pattern
            .elements
            .push(PatternElement::Filter(Expr::int(1)));
        assert!(StarPattern::detect(&facet).is_none());

        // Two subject variables.
        let pattern = GroupPattern::triples(vec![
            leg("a", "a"),
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::iri("http://e/m"),
                PatternTerm::var("m"),
            ),
        ]);
        let facet = Facet::new("f", vec![Dimension::new("a")], pattern, "m", AggOp::Sum).unwrap();
        assert!(StarPattern::detect(&facet).is_none());

        // Variable predicate.
        let pattern = GroupPattern::triples(vec![
            leg("a", "a"),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::var("p"),
                PatternTerm::var("m"),
            ),
        ]);
        let facet = Facet::new("f", vec![Dimension::new("a")], pattern, "m", AggOp::Sum).unwrap();
        assert!(StarPattern::detect(&facet).is_none());
    }

    #[test]
    fn subject_rows_enumerate_cartesian_products() {
        let facet = star_facet();
        let star = StarPattern::detect(&facet).unwrap();
        let mut ds = Dataset::new();
        let s = Term::blank("o1");
        let pa = Term::iri("http://e/a");
        let pb = Term::iri("http://e/b");
        let pm = Term::iri("http://e/m");
        // Two values for dimension a, one for b, one measure: 2 rows.
        ds.insert(None, &s, &pa, &Term::iri("http://e/a1"));
        ds.insert(None, &s, &pa, &Term::iri("http://e/a2"));
        ds.insert(None, &s, &pb, &Term::iri("http://e/b1"));
        ds.insert(None, &s, &pm, &Term::literal_int(5));
        let leg_ids = star.leg_ids(&mut ds);
        let subject = ds.dict().get_id(&s).unwrap();
        let mut rows = Vec::new();
        star.subject_rows(ds.default_graph(), &leg_ids, subject, &mut rows);
        assert_eq!(rows.len(), 2);
        assert!(rows
            .iter()
            .all(|(dims, _, mult)| dims.len() == 2 && *mult == 1));

        // Remove the measure: no rows at all.
        ds.remove(None, &s, &pm, &Term::literal_int(5));
        let mut rows = Vec::new();
        star.subject_rows(ds.default_graph(), &leg_ids, subject, &mut rows);
        assert!(rows.is_empty());
    }

    #[test]
    fn irrelevant_legs_become_multiplicity() {
        // Facet with an extra leg that is neither dimension nor measure.
        let facet = Facet::new(
            "f",
            vec![Dimension::new("a")],
            GroupPattern::triples(vec![leg("a", "a"), leg("extra", "x"), leg("m", "m")]),
            "m",
            AggOp::Count,
        )
        .unwrap();
        let star = StarPattern::detect(&facet).unwrap();
        let mut ds = Dataset::new();
        let s = Term::blank("o1");
        ds.insert(
            None,
            &s,
            &Term::iri("http://e/a"),
            &Term::iri("http://e/a1"),
        );
        ds.insert(
            None,
            &s,
            &Term::iri("http://e/extra"),
            &Term::iri("http://e/x1"),
        );
        ds.insert(
            None,
            &s,
            &Term::iri("http://e/extra"),
            &Term::iri("http://e/x2"),
        );
        ds.insert(
            None,
            &s,
            &Term::iri("http://e/extra"),
            &Term::iri("http://e/x3"),
        );
        ds.insert(None, &s, &Term::iri("http://e/m"), &Term::literal_int(1));
        let leg_ids = star.leg_ids(&mut ds);
        let subject = ds.dict().get_id(&s).unwrap();
        let mut rows = Vec::new();
        star.subject_rows(ds.default_graph(), &leg_ids, subject, &mut rows);
        assert_eq!(rows.len(), 1, "extra leg is not enumerated");
        assert_eq!(rows[0].2, 3, "it multiplies row multiplicity instead");
    }
}
