//! Maintenance fidelity: incrementally maintained view graphs must be
//! triple-for-triple equal (up to blank-node labels) to views
//! re-materialized from scratch — across aggregates, edge cases, and
//! random update batches.

use proptest::prelude::*;
use sofos_cube::{AggOp, Dimension, Facet, ViewMask};
use sofos_maintain::{Maintainer, MaintenanceStrategy};
use sofos_materialize::materialize_view;
use sofos_rdf::vocab::sofos;
use sofos_rdf::Term;
use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};
use sofos_store::{Dataset, Delta};
use std::collections::BTreeMap;

const NS: &str = "http://maintain.example/";

fn iri(local: impl std::fmt::Display) -> Term {
    Term::iri(format!("{NS}{local}"))
}

fn facet(dims: usize, agg: AggOp) -> Facet {
    let mut patterns = Vec::new();
    let mut dimensions = Vec::new();
    for d in 0..dims {
        patterns.push(TriplePattern::new(
            PatternTerm::var("o"),
            PatternTerm::iri(format!("{NS}dim{d}")),
            PatternTerm::var(format!("d{d}")),
        ));
        dimensions.push(Dimension::new(format!("d{d}")));
    }
    patterns.push(TriplePattern::new(
        PatternTerm::var("o"),
        PatternTerm::iri(format!("{NS}measure")),
        PatternTerm::var("m"),
    ));
    Facet::new("mf", dimensions, GroupPattern::triples(patterns), "m", agg).unwrap()
}

/// Insert one observation: one value per dimension plus a measure.
fn obs_delta(delta: &mut Delta, label: &str, dims: &[u8], measure: i64) {
    let node = Term::blank(label.to_string());
    for (d, v) in dims.iter().enumerate() {
        delta.insert(
            node.clone(),
            iri(format!("dim{d}")),
            iri(format!("v{d}_{v}")),
        );
    }
    delta.insert(node, iri("measure"), Term::literal_int(measure));
}

fn obs_delete(delta: &mut Delta, label: &str, dims: &[u8], measure: i64) {
    let node = Term::blank(label.to_string());
    for (d, v) in dims.iter().enumerate() {
        delta.delete(
            node.clone(),
            iri(format!("dim{d}")),
            iri(format!("v{d}_{v}")),
        );
    }
    delta.delete(node, iri("measure"), Term::literal_int(measure));
}

/// The view graph as a canonical multiset of observation-row signatures:
/// blank labels differ between maintenance and re-materialization, but the
/// (predicate, object) sets per observation must match exactly.
fn view_signature(ds: &Dataset, facet: &Facet, mask: ViewMask) -> Vec<Vec<(String, String)>> {
    let iri = Term::iri(sofos::view_graph(&facet.id, mask.0));
    let Some(id) = ds.dict().get_id(&iri) else {
        return Vec::new();
    };
    let Some(graph) = ds.graph(Some(id)) else {
        return Vec::new();
    };
    let mut per_subject: BTreeMap<u32, Vec<(String, String)>> = BTreeMap::new();
    for [s, p, o] in graph.iter() {
        per_subject
            .entry(s.0)
            .or_default()
            .push((format!("{:?}", ds.term(p)), format!("{:?}", ds.term(o))));
    }
    let mut rows: Vec<Vec<(String, String)>> = per_subject
        .into_values()
        .map(|mut row| {
            row.sort();
            row
        })
        .collect();
    rows.sort();
    rows
}

/// Re-materialize the same views over a fresh dataset holding the same
/// base triples, and return the reference signatures.
fn reference_signatures(
    ds: &Dataset,
    facet: &Facet,
    masks: &[ViewMask],
) -> Vec<Vec<Vec<(String, String)>>> {
    let mut fresh = Dataset::new();
    for [s, p, o] in ds.default_graph().iter() {
        fresh.insert(None, ds.term(s), ds.term(p), ds.term(o));
    }
    masks
        .iter()
        .map(|&mask| {
            materialize_view(&mut fresh, facet, mask).expect("reference materialization");
            view_signature(&fresh, facet, mask)
        })
        .collect()
}

fn assert_views_match(ds: &Dataset, facet: &Facet, masks: &[ViewMask], context: &str) {
    let reference = reference_signatures(ds, facet, masks);
    for (&mask, expected) in masks.iter().zip(&reference) {
        let actual = view_signature(ds, facet, mask);
        assert_eq!(
            &actual, expected,
            "{context}: view {mask} diverged from re-materialization"
        );
    }
}

/// Seed dataset + materialized views + maintainer for one aggregate.
fn setup(agg: AggOp, masks: &[ViewMask]) -> (Dataset, Facet, Maintainer, Vec<(ViewMask, usize)>) {
    let facet = facet(2, agg);
    let mut ds = Dataset::new();
    let mut seed = Delta::new();
    obs_delta(&mut seed, "o0", &[0, 0], 10);
    obs_delta(&mut seed, "o1", &[0, 1], 5);
    obs_delta(&mut seed, "o2", &[1, 0], 7);
    obs_delta(&mut seed, "o3", &[0, 0], 1);
    ds.apply(seed);
    let mut catalog = Vec::new();
    for &mask in masks {
        let v = materialize_view(&mut ds, &facet, mask).unwrap();
        catalog.push((mask, v.stats.rows));
    }
    let maintainer = Maintainer::new(&facet);
    assert!(maintainer.is_incremental());
    (ds, facet, maintainer, catalog)
}

const ALL_MASKS: [ViewMask; 4] = [
    ViewMask(0b11),
    ViewMask(0b01),
    ViewMask(0b10),
    ViewMask::APEX,
];

#[test]
fn delete_of_last_row_retracts_observation() {
    for agg in AggOp::ALL {
        let (mut ds, facet, mut maintainer, mut catalog) = setup(agg, &ALL_MASKS);
        let before = view_signature(&ds, &facet, ViewMask(0b11)).len();
        // Group (d0=1, d1=0) has exactly one row: observation o2.
        let mut delta = Delta::new();
        obs_delete(&mut delta, "o2", &[1, 0], 7);
        let (_, report) = maintainer
            .apply_and_maintain(&mut ds, delta, &mut catalog)
            .unwrap();
        assert_views_match(&ds, &facet, &ALL_MASKS, &format!("{agg} last-row delete"));
        let after = view_signature(&ds, &facet, ViewMask(0b11)).len();
        assert_eq!(
            after,
            before - 1,
            "{agg}: the group's observation is retracted"
        );
        assert!(
            report.per_view.iter().any(|c| c.rows_retracted > 0),
            "{agg}: a retraction is reported"
        );
        assert_eq!(catalog[0].1, after, "catalog row count tracks the view");
    }
}

#[test]
fn min_max_delete_triggers_per_group_reevaluation() {
    for agg in [AggOp::Min, AggOp::Max] {
        let (mut ds, facet, mut maintainer, mut catalog) = setup(agg, &ALL_MASKS);
        // Group (0,0) = {10, 1}: delete one contributor; the other remains.
        let mut delta = Delta::new();
        obs_delete(&mut delta, "o3", &[0, 0], 1);
        let (_, report) = maintainer
            .apply_and_maintain(&mut ds, delta, &mut catalog)
            .unwrap();
        assert_views_match(&ds, &facet, &ALL_MASKS, &format!("{agg} delete"));
        let base_view_cost = &report.per_view[0];
        assert_eq!(base_view_cost.strategy, MaintenanceStrategy::Counting);
        assert!(
            base_view_cost.groups_reevaluated >= 1,
            "{agg}: deletes force per-group re-evaluation, got {base_view_cost:?}"
        );
    }
}

#[test]
fn min_max_pure_inserts_patch_without_reevaluation() {
    for agg in [AggOp::Min, AggOp::Max] {
        let (mut ds, facet, mut maintainer, mut catalog) = setup(agg, &ALL_MASKS);
        let mut delta = Delta::new();
        obs_delta(
            &mut delta,
            "n0",
            &[0, 0],
            if agg == AggOp::Min { -3 } else { 99 },
        );
        let (_, report) = maintainer
            .apply_and_maintain(&mut ds, delta, &mut catalog)
            .unwrap();
        assert_views_match(&ds, &facet, &ALL_MASKS, &format!("{agg} insert"));
        for cost in &report.per_view {
            assert_eq!(
                cost.groups_reevaluated, 0,
                "{agg}: pure inserts patch in place"
            );
            assert_eq!(cost.strategy, MaintenanceStrategy::Counting);
        }
    }
}

#[test]
fn avg_patches_sum_and_count_components() {
    let (mut ds, facet, mut maintainer, mut catalog) = setup(AggOp::Avg, &ALL_MASKS);
    let mut delta = Delta::new();
    obs_delta(&mut delta, "n0", &[0, 0], 4); // group (0,0): sum 11→15, count 2→3
    let (_, report) = maintainer
        .apply_and_maintain(&mut ds, delta, &mut catalog)
        .unwrap();
    assert_views_match(&ds, &facet, &ALL_MASKS, "avg insert");
    let base = &report.per_view[0];
    assert_eq!(base.strategy, MaintenanceStrategy::Counting);
    assert_eq!(
        base.groups_reevaluated, 0,
        "AVG is patched via SUM+COUNT, not re-evaluated"
    );
    // Both components of the (0,0) group changed: 2 triples each.
    assert_eq!(base.triples_touched, 4);

    // Deletes also patch arithmetically (stored COUNT witnesses emptiness).
    let mut delta = Delta::new();
    obs_delete(&mut delta, "n0", &[0, 0], 4);
    let (_, report) = maintainer
        .apply_and_maintain(&mut ds, delta, &mut catalog)
        .unwrap();
    assert_views_match(&ds, &facet, &ALL_MASKS, "avg delete");
    assert_eq!(report.per_view[0].groups_reevaluated, 0);
}

#[test]
fn off_mask_dimension_update_is_a_noop_for_that_view() {
    let (mut ds, facet, mut maintainer, mut catalog) = setup(AggOp::Sum, &ALL_MASKS);
    // Move o1 from d1=1 to d1=2 — dimension 1 only.
    let node = Term::blank("o1");
    let mut delta = Delta::new();
    delta.delete(node.clone(), iri("dim1"), iri("v1_1"));
    delta.insert(node, iri("dim1"), iri("v1_2"));
    let (_, report) = maintainer
        .apply_and_maintain(&mut ds, delta, &mut catalog)
        .unwrap();
    assert_views_match(&ds, &facet, &ALL_MASKS, "off-mask dim move");

    let by_view = |mask: ViewMask| {
        report
            .per_view
            .iter()
            .find(|c| c.view == mask)
            .unwrap_or_else(|| panic!("cost for {mask}"))
    };
    // Views retaining dimension 1 change...
    assert!(by_view(ViewMask(0b11)).triples_touched > 0);
    assert!(by_view(ViewMask(0b10)).triples_touched > 0);
    // ...views that project it away see an exact cancellation.
    assert_eq!(
        by_view(ViewMask(0b01)).triples_touched,
        0,
        "d0-only view untouched"
    );
    assert_eq!(by_view(ViewMask::APEX).triples_touched, 0, "apex untouched");
}

#[test]
fn new_group_creates_observation_node() {
    for agg in AggOp::ALL {
        let (mut ds, facet, mut maintainer, mut catalog) = setup(agg, &ALL_MASKS);
        let before = view_signature(&ds, &facet, ViewMask(0b11)).len();
        let mut delta = Delta::new();
        obs_delta(&mut delta, "n0", &[3, 3], 42); // unseen dimension values
        let (_, report) = maintainer
            .apply_and_maintain(&mut ds, delta, &mut catalog)
            .unwrap();
        assert_views_match(&ds, &facet, &ALL_MASKS, &format!("{agg} new group"));
        assert_eq!(
            view_signature(&ds, &facet, ViewMask(0b11)).len(),
            before + 1
        );
        assert!(report.per_view.iter().any(|c| c.rows_inserted > 0));
    }
}

#[test]
fn non_star_facets_fall_back_to_full_refresh() {
    // A two-hop (chain) pattern: ?o dim0 ?d0 . ?d0 weight ?m — not a star.
    let pattern = GroupPattern::triples(vec![
        TriplePattern::new(
            PatternTerm::var("o"),
            PatternTerm::iri(format!("{NS}dim0")),
            PatternTerm::var("d0"),
        ),
        TriplePattern::new(
            PatternTerm::var("d0"),
            PatternTerm::iri(format!("{NS}weight")),
            PatternTerm::var("m"),
        ),
    ]);
    let facet = Facet::new(
        "chain",
        vec![Dimension::new("d0")],
        pattern,
        "m",
        AggOp::Sum,
    )
    .unwrap();
    let mut ds = Dataset::new();
    ds.insert(None, &Term::blank("o0"), &iri("dim0"), &iri("a"));
    ds.insert(None, &iri("a"), &iri("weight"), &Term::literal_int(3));
    let mask = ViewMask(0b1);
    let v = materialize_view(&mut ds, &facet, mask).unwrap();
    let mut catalog = vec![(mask, v.stats.rows)];

    let mut maintainer = Maintainer::new(&facet);
    assert!(!maintainer.is_incremental());
    let mut delta = Delta::new();
    delta.insert(Term::blank("o1"), iri("dim0"), iri("b"));
    delta.insert(iri("b"), iri("weight"), Term::literal_int(9));
    let (_, report) = maintainer
        .apply_and_maintain(&mut ds, delta, &mut catalog)
        .unwrap();
    assert_eq!(
        report.per_view[0].strategy,
        MaintenanceStrategy::FullRefresh
    );
    assert_views_match(&ds, &facet, &[mask], "non-star refresh");
    assert_eq!(catalog[0].1, 2, "catalog rows refreshed");
}

#[test]
fn multi_valued_dimensions_keep_multiplicities_straight() {
    // An observation with two values for dim0 contributes two rows.
    let (mut ds, facet, mut maintainer, mut catalog) = setup(AggOp::Count, &ALL_MASKS);
    let node = Term::blank("o0");
    let mut delta = Delta::new();
    delta.insert(node.clone(), iri("dim0"), iri("v0_9"));
    let (_, _) = maintainer
        .apply_and_maintain(&mut ds, delta, &mut catalog)
        .unwrap();
    assert_views_match(&ds, &facet, &ALL_MASKS, "dim value added");

    // Removing it again restores the original views.
    let mut delta = Delta::new();
    delta.delete(node, iri("dim0"), iri("v0_9"));
    let (_, _) = maintainer
        .apply_and_maintain(&mut ds, delta, &mut catalog)
        .unwrap();
    assert_views_match(&ds, &facet, &ALL_MASKS, "dim value removed");
}

/// One randomized update operation.
#[derive(Debug, Clone)]
enum Op {
    InsertObs { dims: Vec<u8>, measure: i64 },
    DeleteObs { index: usize },
    MoveDim { index: usize, dim: usize, value: u8 },
    SetMeasure { index: usize, measure: i64 },
    DropDimTriple { index: usize, dim: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (proptest::collection::vec(0u8..4, 3), -20i64..20)
            .prop_map(|(dims, measure)| Op::InsertObs { dims, measure }),
        (0usize..64).prop_map(|index| Op::DeleteObs { index }),
        (0usize..64, 0usize..3, 0u8..4).prop_map(|(index, dim, value)| Op::MoveDim {
            index,
            dim,
            value
        }),
        (0usize..64, -20i64..20).prop_map(|(index, measure)| Op::SetMeasure { index, measure }),
        (0usize..64, 0usize..3).prop_map(|(index, dim)| Op::DropDimTriple { index, dim }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// The parallel engine is bit-equivalent to the serial one: for random
    /// batch streams, a dataset maintained through per-shard scans on a
    /// thread pool ends up with view graphs identical to one maintained
    /// serially — for every shard × thread configuration.
    #[test]
    fn sharded_maintenance_equals_serial(
        batches in proptest::collection::vec(
            proptest::collection::vec(
                (proptest::bool::weighted(0.7), proptest::collection::vec(0u8..4, 3), -20i64..20),
                1..8,
            ),
            1..4,
        ),
        shards in 1usize..6,
        threads in 1usize..4,
    ) {
        use sofos_store::ShardRouter;
        let agg = AggOp::Avg; // SUM+COUNT components exercise both patch paths
        let facet = facet(3, agg);
        let masks = [ViewMask(0b111), ViewMask(0b010), ViewMask::APEX];
        let router = ShardRouter::new(shards);

        let mut serial_ds = Dataset::new();
        let mut sharded_ds = Dataset::new();
        let mut serial_catalog = Vec::new();
        let mut sharded_catalog = Vec::new();
        for &mask in &masks {
            let v = materialize_view(&mut serial_ds, &facet, mask).unwrap();
            serial_catalog.push((mask, v.stats.rows));
            let v = materialize_view(&mut sharded_ds, &facet, mask).unwrap();
            sharded_catalog.push((mask, v.stats.rows));
        }
        let mut serial = Maintainer::new(&facet);
        let mut sharded = Maintainer::new(&facet);

        // Deltas are rebuilt per dataset so both intern identically.
        let build_delta = |ops: &[(bool, Vec<u8>, i64)], next: &mut usize, live: &mut Vec<Option<(Vec<u8>, i64)>>| {
            let mut delta = Delta::new();
            for (insert, dims, measure) in ops {
                if *insert {
                    let label = format!("p{next}");
                    obs_delta(&mut delta, &label, dims, *measure);
                    live.push(Some((dims.clone(), *measure)));
                    *next += 1;
                } else if !live.is_empty() {
                    let slot = (*measure).unsigned_abs() as usize % live.len();
                    if let Some((dims, measure)) = live[slot].take() {
                        obs_delete(&mut delta, &format!("p{slot}"), &dims, measure);
                    }
                }
            }
            delta
        };

        let (mut next_a, mut live_a) = (0usize, Vec::new());
        let (mut next_b, mut live_b) = (0usize, Vec::new());
        for ops in &batches {
            let delta_a = build_delta(ops, &mut next_a, &mut live_a);
            let delta_b = build_delta(ops, &mut next_b, &mut live_b);
            serial
                .apply_and_maintain(&mut serial_ds, delta_a, &mut serial_catalog)
                .expect("serial maintenance succeeds");
            let outcome = sharded.apply_sharded(&mut sharded_ds, delta_b, &router, threads);
            sharded
                .maintain(&mut sharded_ds, outcome.outcome.rows.as_ref(), &mut sharded_catalog)
                .expect("sharded maintenance succeeds");

            for &mask in &masks {
                prop_assert_eq!(
                    view_signature(&serial_ds, &facet, mask),
                    view_signature(&sharded_ds, &facet, mask),
                    "shards={} threads={} view {} diverged", shards, threads, mask
                );
            }
        }
        prop_assert_eq!(serial_catalog, sharded_catalog);
    }

    /// The two-phase pipeline is bit-equal to the serial engine across
    /// shard × thread × batch-size × delta-mix grids: one dataset is
    /// maintained per-delta through the serial path, the other coalesces
    /// `batch_size` deltas into a merged row delta and maintains it in a
    /// single parallel plan → serial apply pass. View graphs (and catalog
    /// row counts) must agree at every batch boundary.
    #[test]
    fn pipelined_maintenance_equals_serial(
        batches in proptest::collection::vec(
            proptest::collection::vec(
                (proptest::bool::weighted(0.7), proptest::collection::vec(0u8..4, 3), -20i64..20),
                1..8,
            ),
            1..6,
        ),
        batch_size in 1usize..5,
        shards in 1usize..6,
        threads in 1usize..4,
    ) {
        use sofos_maintain::RowDelta;
        use sofos_store::ShardRouter;
        let agg = AggOp::Avg; // SUM+COUNT components exercise both patch paths
        let facet = facet(3, agg);
        let masks = [ViewMask(0b111), ViewMask(0b010), ViewMask::APEX];
        let router = ShardRouter::new(shards);

        let mut serial_ds = Dataset::new();
        let mut piped_ds = Dataset::new();
        let mut serial_catalog = Vec::new();
        let mut piped_catalog = Vec::new();
        for &mask in &masks {
            let v = materialize_view(&mut serial_ds, &facet, mask).unwrap();
            serial_catalog.push((mask, v.stats.rows));
            let v = materialize_view(&mut piped_ds, &facet, mask).unwrap();
            piped_catalog.push((mask, v.stats.rows));
        }
        let mut serial = Maintainer::new(&facet);
        let mut piped = Maintainer::new(&facet);

        // Deltas are rebuilt per dataset so both intern identically.
        let build_delta = |ops: &[(bool, Vec<u8>, i64)], next: &mut usize, live: &mut Vec<Option<(Vec<u8>, i64)>>| {
            let mut delta = Delta::new();
            for (insert, dims, measure) in ops {
                if *insert {
                    let label = format!("p{next}");
                    obs_delta(&mut delta, &label, dims, *measure);
                    live.push(Some((dims.clone(), *measure)));
                    *next += 1;
                } else if !live.is_empty() {
                    let slot = (*measure).unsigned_abs() as usize % live.len();
                    if let Some((dims, measure)) = live[slot].take() {
                        obs_delete(&mut delta, &format!("p{slot}"), &dims, measure);
                    }
                }
            }
            delta
        };

        let (mut next_a, mut live_a) = (0usize, Vec::new());
        let (mut next_b, mut live_b) = (0usize, Vec::new());
        for chunk in batches.chunks(batch_size) {
            // Serial engine: one maintenance pass per delta.
            for ops in chunk {
                let delta = build_delta(ops, &mut next_a, &mut live_a);
                serial
                    .apply_and_maintain(&mut serial_ds, delta, &mut serial_catalog)
                    .expect("serial maintenance succeeds");
            }
            // Pipeline: coalesce the chunk's row deltas, then one
            // parallel-plan / serial-apply pass for the whole batch.
            let mut merged = RowDelta::default();
            for ops in chunk {
                let delta = build_delta(ops, &mut next_b, &mut live_b);
                let outcome = piped.apply_sharded(&mut piped_ds, delta, &router, threads);
                merged.merge(outcome.outcome.rows.as_ref().expect("star facet"));
            }
            piped
                .maintain_pipelined(&mut piped_ds, Some(&merged), &mut piped_catalog, threads)
                .expect("pipelined maintenance succeeds");

            for &mask in &masks {
                prop_assert_eq!(
                    view_signature(&serial_ds, &facet, mask),
                    view_signature(&piped_ds, &facet, mask),
                    "shards={} threads={} batch={} view {} diverged",
                    shards, threads, batch_size, mask
                );
            }
        }
        prop_assert_eq!(serial_catalog, piped_catalog);
    }

    /// The bitmap-indexed planner (posting-list group location + scan
    /// candidate pre-filter + within-view split planning) is bit-equal to
    /// the run-walking planner it replaced: across shard × thread ×
    /// split × delta-mix grids, two datasets maintained through the two
    /// [`sofos_maintain::PlanIndexMode`]s end up with identical view
    /// graphs and catalogs at every batch boundary.
    #[test]
    fn bitmap_planning_equals_run_walk(
        batches in proptest::collection::vec(
            proptest::collection::vec(
                (proptest::bool::weighted(0.7), proptest::collection::vec(0u8..4, 3), -20i64..20),
                1..8,
            ),
            1..6,
        ),
        batch_size in 1usize..5,
        shards in 1usize..6,
        threads in 1usize..4,
        split in 1usize..5,
    ) {
        use sofos_maintain::{PlanIndexMode, RowDelta};
        use sofos_store::ShardRouter;
        let agg = AggOp::Avg; // SUM+COUNT components exercise both patch paths
        let facet = facet(3, agg);
        let masks = [ViewMask(0b111), ViewMask(0b010), ViewMask::APEX];
        let router = ShardRouter::new(shards);

        let mut walk_ds = Dataset::new();
        let mut bitmap_ds = Dataset::new();
        let mut walk_catalog = Vec::new();
        let mut bitmap_catalog = Vec::new();
        for &mask in &masks {
            let v = materialize_view(&mut walk_ds, &facet, mask).unwrap();
            walk_catalog.push((mask, v.stats.rows));
            let v = materialize_view(&mut bitmap_ds, &facet, mask).unwrap();
            bitmap_catalog.push((mask, v.stats.rows));
        }
        let mut walk = Maintainer::new(&facet);
        walk.set_index_mode(PlanIndexMode::RunWalk);
        let mut bitmap = Maintainer::new(&facet);
        assert_eq!(bitmap.index_mode(), PlanIndexMode::Bitmap, "bitmap is the default");

        // Deltas are rebuilt per dataset so both intern identically.
        let build_delta = |ops: &[(bool, Vec<u8>, i64)], next: &mut usize, live: &mut Vec<Option<(Vec<u8>, i64)>>| {
            let mut delta = Delta::new();
            for (insert, dims, measure) in ops {
                if *insert {
                    let label = format!("p{next}");
                    obs_delta(&mut delta, &label, dims, *measure);
                    live.push(Some((dims.clone(), *measure)));
                    *next += 1;
                } else if !live.is_empty() {
                    let slot = (*measure).unsigned_abs() as usize % live.len();
                    if let Some((dims, measure)) = live[slot].take() {
                        obs_delete(&mut delta, &format!("p{slot}"), &dims, measure);
                    }
                }
            }
            delta
        };

        let (mut next_a, mut live_a) = (0usize, Vec::new());
        let (mut next_b, mut live_b) = (0usize, Vec::new());
        for chunk in batches.chunks(batch_size) {
            // Both sides coalesce the chunk and run one pipelined pass;
            // only the index mode (and the bitmap side's split) differ.
            let mut merged_a = RowDelta::default();
            for ops in chunk {
                let delta = build_delta(ops, &mut next_a, &mut live_a);
                let outcome = walk.apply_sharded(&mut walk_ds, delta, &router, threads);
                merged_a.merge(outcome.outcome.rows.as_ref().expect("star facet"));
            }
            walk.maintain_pipelined(&mut walk_ds, Some(&merged_a), &mut walk_catalog, threads)
                .expect("run-walk maintenance succeeds");

            let mut merged_b = RowDelta::default();
            for ops in chunk {
                let delta = build_delta(ops, &mut next_b, &mut live_b);
                let outcome = bitmap.apply_sharded(&mut bitmap_ds, delta, &router, threads);
                merged_b.merge(outcome.outcome.rows.as_ref().expect("star facet"));
            }
            bitmap
                .maintain_pipelined_split(
                    &mut bitmap_ds, Some(&merged_b), &mut bitmap_catalog, threads, split,
                )
                .expect("bitmap maintenance succeeds");

            for &mask in &masks {
                prop_assert_eq!(
                    view_signature(&walk_ds, &facet, mask),
                    view_signature(&bitmap_ds, &facet, mask),
                    "shards={} threads={} split={} view {} diverged",
                    shards, threads, split, mask
                );
            }
        }
        prop_assert_eq!(walk_catalog, bitmap_catalog);
    }

    /// The acceptance property: for random update batches, incrementally
    /// maintained view graphs equal views re-materialized from scratch —
    /// for all five aggregation operators.
    #[test]
    fn maintenance_equals_rematerialization(
        seed_obs in proptest::collection::vec(
            (proptest::collection::vec(0u8..4, 3), -20i64..20), 0..12),
        batches in proptest::collection::vec(
            proptest::collection::vec(arb_op(), 1..6), 1..4),
        agg_idx in 0usize..5,
    ) {
        let agg = AggOp::ALL[agg_idx];
        let facet = facet(3, agg);
        let masks = [
            ViewMask(0b111),
            ViewMask(0b101),
            ViewMask(0b010),
            ViewMask::APEX,
        ];

        // Live observation bookkeeping mirrors what the updates do so
        // deletes/moves can reference real triples: dimension values,
        // measure, and which dimension triples are still present.
        type LiveObs = (Vec<u8>, i64, Vec<bool>);
        let mut live: Vec<Option<LiveObs>> = Vec::new();
        let mut ds = Dataset::new();
        let mut seed = Delta::new();
        for (dims, measure) in seed_obs {
            let label = format!("s{}", live.len());
            obs_delta(&mut seed, &label, &dims, measure);
            live.push(Some((dims.clone(), measure, vec![true; 3])));
        }
        ds.apply(seed);

        let mut catalog = Vec::new();
        for &mask in &masks {
            let v = materialize_view(&mut ds, &facet, mask).unwrap();
            catalog.push((mask, v.stats.rows));
        }
        let mut maintainer = Maintainer::new(&facet);

        for ops in batches {
            let mut delta = Delta::new();
            for op in ops {
                match op {
                    Op::InsertObs { dims, measure } => {
                        let label = format!("s{}", live.len());
                        obs_delta(&mut delta, &label, &dims, measure);
                        live.push(Some((dims, measure, vec![true; 3])));
                    }
                    Op::DeleteObs { index } => {
                        let slot = index.checked_rem(live.len()).unwrap_or(0);
                        if let Some(Some((dims, measure, present))) = live.get(slot).cloned() {
                            let node = Term::blank(format!("s{slot}"));
                            for (d, v) in dims.iter().enumerate() {
                                if present[d] {
                                    delta.delete(
                                        node.clone(),
                                        iri(format!("dim{d}")),
                                        iri(format!("v{d}_{v}")),
                                    );
                                }
                            }
                            delta.delete(node, iri("measure"), Term::literal_int(measure));
                            live[slot] = None;
                        }
                    }
                    Op::MoveDim { index, dim, value } => {
                        let slot = index.checked_rem(live.len()).unwrap_or(0);
                        if let Some(Some((dims, _, present))) = live.get(slot).cloned() {
                            let node = Term::blank(format!("s{slot}"));
                            if present[dim] {
                                delta.delete(
                                    node.clone(),
                                    iri(format!("dim{dim}")),
                                    iri(format!("v{dim}_{}", dims[dim])),
                                );
                            }
                            delta.insert(
                                node,
                                iri(format!("dim{dim}")),
                                iri(format!("v{dim}_{value}")),
                            );
                            if let Some(Some(obs)) = live.get_mut(slot) {
                                obs.0[dim] = value;
                                obs.2[dim] = true;
                            }
                        }
                    }
                    Op::SetMeasure { index, measure } => {
                        let slot = index.checked_rem(live.len()).unwrap_or(0);
                        if let Some(Some((_, old, _))) = live.get(slot).cloned() {
                            let node = Term::blank(format!("s{slot}"));
                            delta.delete(node.clone(), iri("measure"), Term::literal_int(old));
                            delta.insert(node, iri("measure"), Term::literal_int(measure));
                            if let Some(Some(obs)) = live.get_mut(slot) {
                                obs.1 = measure;
                            }
                        }
                    }
                    Op::DropDimTriple { index, dim } => {
                        let slot = index.checked_rem(live.len()).unwrap_or(0);
                        if let Some(Some((dims, _, present))) = live.get(slot).cloned() {
                            if present[dim] {
                                let node = Term::blank(format!("s{slot}"));
                                delta.delete(
                                    node,
                                    iri(format!("dim{dim}")),
                                    iri(format!("v{dim}_{}", dims[dim])),
                                );
                                if let Some(Some(obs)) = live.get_mut(slot) {
                                    obs.2[dim] = false;
                                }
                            }
                        }
                    }
                }
            }
            if delta.is_empty() {
                continue;
            }
            maintainer
                .apply_and_maintain(&mut ds, delta, &mut catalog)
                .expect("maintenance succeeds");
            // Fidelity after *every* batch, not only at the end.
            let reference = reference_signatures(&ds, &facet, &masks);
            for (&mask, expected) in masks.iter().zip(&reference) {
                let actual = view_signature(&ds, &facet, mask);
                prop_assert_eq!(
                    &actual, expected,
                    "agg {} view {} diverged", agg, mask
                );
            }
            // Catalog row counts stay exact.
            for &(mask, rows) in &catalog {
                prop_assert_eq!(
                    rows,
                    view_signature(&ds, &facet, mask).len(),
                    "agg {} view {} row count drifted", agg, mask
                );
            }
        }
    }
}
