//! # sofos-materialize — view materialization into the expanded graph `G+`
//!
//! Implements the paper's §3.1 "View materialization": for each selected
//! view SOFOS "generat\[es\] a new graph … contain\[ing\] a set of extra blank
//! nodes to which is attached the value of the aggregation of different
//! bindings for the subset of the template variables in X̄" — a
//! generalization of the MARVEL encoding.
//!
//! Concretely, view `V(X̄′)` of facet `F` becomes a named graph
//! `sofos:view/<facet>/<mask>` where each result row is one observation:
//!
//! ```text
//! _:obs  rdf:type     sofos:Observation .
//! _:obs  sofos:dim3   <value of dimension 3> .      # one per dim in X̄′
//! _:obs  sofos:sum    "123"^^xsd:integer .          # agg components
//! _:obs  sofos:count  "4"^^xsd:integer .            # (AVG ⇒ SUM+COUNT)
//! ```
//!
//! The same encoding is exposed *virtually* ([`encode_view`]) so the cost
//! models can size a candidate view — triples, nodes, rows, bytes — without
//! mutating the dataset.

use sofos_cube::{component_alias, AggOp, Facet, MaterialComponent, ViewMask};
use sofos_rdf::vocab::{rdf, sofos};
use sofos_rdf::{FxHashSet, Graph, Term, Triple};
use sofos_sparql::{Evaluator, QueryResults, SparqlError};
use sofos_store::Dataset;

/// Sizing and identity of one (possibly virtual) materialized view.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewStats {
    /// Facet the view belongs to.
    pub facet_id: String,
    /// The view's dimension mask.
    pub mask: ViewMask,
    /// Result rows of the view query — the paper's cost model #3,
    /// "number of aggregated values" `|V_i(G)|`.
    pub rows: usize,
    /// Triples in the encoded view graph — cost model #2, `|G_{V_i}|`.
    pub triples: usize,
    /// Distinct nodes (subjects ∪ objects) in the encoded view graph —
    /// cost model #4, `|I_i ∪ B_i ∪ L_i|`.
    pub nodes: usize,
    /// Estimated bytes of the encoded triples (term text heap footprint).
    pub bytes: usize,
}

/// The result of encoding a view's query results as RDF.
#[derive(Debug, Clone)]
pub struct EncodedView {
    /// The triples of the view graph.
    pub graph: Graph,
    /// Sizing statistics.
    pub stats: ViewStats,
}

/// A view that has been written into the dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterializedView {
    /// Sizing statistics at materialization time.
    pub stats: ViewStats,
    /// IRI of the named graph holding the view.
    pub graph_iri: String,
}

/// Evaluate a view query over the dataset's default graph.
pub fn evaluate_view(
    dataset: &Dataset,
    facet: &Facet,
    mask: ViewMask,
) -> Result<QueryResults, SparqlError> {
    let query = sofos_cube::view_query(facet, mask);
    Evaluator::new(dataset).evaluate(&query)
}

/// Encode view query results as an RDF graph (without touching the dataset).
///
/// Rows with unbound dimension cells contribute no triple for that dimension
/// (facet patterns are expected to bind every dimension; this mirrors how
/// SPARQL grouping treats unbound keys).
pub fn encode_view(facet: &Facet, mask: ViewMask, results: &QueryResults) -> EncodedView {
    let type_pred = Term::iri(rdf::TYPE);
    let observation = Term::iri(sofos::OBSERVATION);
    let component_columns: Vec<(usize, Term)> = facet
        .agg
        .components()
        .iter()
        .map(|&c| {
            let alias = component_alias(c);
            let column = results
                .column(alias)
                .expect("view query projects its component aliases");
            (column, component_term(c))
        })
        .collect();
    let dim_columns: Vec<(usize, Term)> = mask
        .dims()
        .into_iter()
        .filter(|&d| d < facet.dim_count())
        .map(|d| {
            let var = facet.dimensions[d].var.as_str();
            let column = results
                .column(var)
                .expect("view query projects its dimension variables");
            (column, Term::iri(sofos::dim(d)))
        })
        .collect();

    let mut graph = Graph::new();
    let mut nodes: FxHashSet<Term> = FxHashSet::default();
    let mut bytes = 0usize;
    for (i, row) in results.rows.iter().enumerate() {
        let obs = Term::blank(format!("v{}_{}_{i}", facet.id, mask.0));
        bytes += obs.estimated_bytes();
        nodes.insert(obs.clone());
        nodes.insert(observation.clone());
        graph.insert(Triple::new_unchecked(
            obs.clone(),
            type_pred.clone(),
            observation.clone(),
        ));
        for (column, pred) in &dim_columns {
            if let Some(value) = &row[*column] {
                bytes += value.estimated_bytes();
                nodes.insert(value.clone());
                graph.insert(Triple::new_unchecked(
                    obs.clone(),
                    pred.clone(),
                    value.clone(),
                ));
            }
        }
        for (column, pred) in &component_columns {
            if let Some(value) = &row[*column] {
                bytes += value.estimated_bytes();
                nodes.insert(value.clone());
                graph.insert(Triple::new_unchecked(
                    obs.clone(),
                    pred.clone(),
                    value.clone(),
                ));
            }
        }
    }

    let stats = ViewStats {
        facet_id: facet.id.clone(),
        mask,
        rows: results.len(),
        triples: graph.len(),
        nodes: nodes.len(),
        bytes,
    };
    EncodedView { graph, stats }
}

/// Evaluate + encode + insert a view into its named graph in `G+`.
pub fn materialize_view(
    dataset: &mut Dataset,
    facet: &Facet,
    mask: ViewMask,
) -> Result<MaterializedView, SparqlError> {
    let results = evaluate_view(dataset, facet, mask)?;
    let encoded = encode_view(facet, mask, &results);
    let graph_iri = sofos::view_graph(&facet.id, mask.0);
    let name = dataset.intern_iri(&graph_iri);
    dataset.create_graph(name);
    dataset.load(Some(name), &encoded.graph);
    Ok(MaterializedView {
        stats: encoded.stats,
        graph_iri,
    })
}

/// Materialize a set of views, returning stats in input order.
pub fn materialize_views(
    dataset: &mut Dataset,
    facet: &Facet,
    masks: &[ViewMask],
) -> Result<Vec<MaterializedView>, SparqlError> {
    masks
        .iter()
        .map(|&m| materialize_view(dataset, facet, m))
        .collect()
}

/// Drop a materialized view's graph; returns `true` if it existed.
pub fn drop_view(dataset: &mut Dataset, facet: &Facet, mask: ViewMask) -> bool {
    let graph_iri = sofos::view_graph(&facet.id, mask.0);
    match dataset.dict().get_id(&Term::iri(&graph_iri)) {
        Some(id) => dataset.drop_graph(id),
        None => false,
    }
}

/// Size a candidate view without mutating the dataset (used by the cost
/// models and the "Full Lattice view" of the demo GUI).
pub fn virtual_view_stats(
    dataset: &Dataset,
    facet: &Facet,
    mask: ViewMask,
) -> Result<ViewStats, SparqlError> {
    let results = evaluate_view(dataset, facet, mask)?;
    Ok(encode_view(facet, mask, &results).stats)
}

fn component_term(c: MaterialComponent) -> Term {
    Term::iri(match c {
        MaterialComponent::Sum => sofos::SUM,
        MaterialComponent::Count => sofos::COUNT,
        MaterialComponent::Min => sofos::MIN,
        MaterialComponent::Max => sofos::MAX,
    })
}

/// The component columns a query aggregate needs from a view:
/// `(primary, secondary)` — AVG needs SUM and COUNT, the rest only
/// themselves. Shared with the rewriter.
pub fn final_agg_components(agg: AggOp) -> (&'static str, Option<&'static str>) {
    use sofos_cube::{COUNT_ALIAS, MAX_ALIAS, MIN_ALIAS, SUM_ALIAS};
    match agg {
        AggOp::Sum => (SUM_ALIAS, None),
        AggOp::Count => (COUNT_ALIAS, None),
        AggOp::Avg => (SUM_ALIAS, Some(COUNT_ALIAS)),
        AggOp::Min => (MIN_ALIAS, None),
        AggOp::Max => (MAX_ALIAS, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofos_cube::Dimension;
    use sofos_sparql::{GroupPattern, PatternTerm, TriplePattern};

    const NS: &str = "http://e/";

    fn sample_dataset() -> Dataset {
        let mut ds = Dataset::new();
        let country = Term::iri(format!("{NS}country"));
        let lang = Term::iri(format!("{NS}lang"));
        let pop = Term::iri(format!("{NS}pop"));
        let rows = [
            ("fr", "french", 67),
            ("de", "german", 82),
            ("ca", "english", 20),
            ("ca", "french", 8),
        ];
        for (i, (c, l, p)) in rows.iter().enumerate() {
            let obs = Term::blank(format!("o{i}"));
            ds.insert(None, &obs, &country, &Term::iri(format!("{NS}{c}")));
            ds.insert(None, &obs, &lang, &Term::literal_str(*l));
            ds.insert(None, &obs, &pop, &Term::literal_int(*p));
        }
        ds
    }

    fn sample_facet(agg: AggOp) -> Facet {
        let pattern = GroupPattern::triples(vec![
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri(format!("{NS}country")),
                PatternTerm::var("country"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri(format!("{NS}lang")),
                PatternTerm::var("lang"),
            ),
            TriplePattern::new(
                PatternTerm::var("o"),
                PatternTerm::iri(format!("{NS}pop")),
                PatternTerm::var("pop"),
            ),
        ]);
        Facet::new(
            "pop",
            vec![Dimension::new("country"), Dimension::new("lang")],
            pattern,
            "pop",
            agg,
        )
        .unwrap()
    }

    #[test]
    fn materializes_base_view() {
        let mut ds = sample_dataset();
        let facet = sample_facet(AggOp::Sum);
        let mask = ViewMask::full(2);
        let view = materialize_view(&mut ds, &facet, mask).unwrap();
        // 4 distinct (country, lang) pairs.
        assert_eq!(view.stats.rows, 4);
        // Each row: type + 2 dims + 1 sum component = 4 triples.
        assert_eq!(view.stats.triples, 16);
        let name = ds.dict().get_id(&Term::iri(&view.graph_iri)).unwrap();
        assert_eq!(ds.graph(Some(name)).unwrap().len(), 16);
    }

    #[test]
    fn apex_view_has_one_row() {
        let mut ds = sample_dataset();
        let facet = sample_facet(AggOp::Sum);
        let view = materialize_view(&mut ds, &facet, ViewMask::APEX).unwrap();
        assert_eq!(view.stats.rows, 1);
        // type + sum = 2 triples.
        assert_eq!(view.stats.triples, 2);
    }

    #[test]
    fn avg_views_carry_sum_and_count() {
        let mut ds = sample_dataset();
        let facet = sample_facet(AggOp::Avg);
        let mask = ViewMask::from_dims(&[0]); // by country
        let view = materialize_view(&mut ds, &facet, mask).unwrap();
        // 3 countries; each row: type + dim + sum + count = 4.
        assert_eq!(view.stats.rows, 3);
        assert_eq!(view.stats.triples, 12);
        // The graph contains sofos:count triples.
        let name = ds.dict().get_id(&Term::iri(&view.graph_iri)).unwrap();
        let count_pred = ds.dict().get_id(&Term::iri(sofos::COUNT)).unwrap();
        let store = ds.graph(Some(name)).unwrap();
        let n = store
            .scan(sofos_store::IdPattern::new(None, Some(count_pred), None))
            .count();
        assert_eq!(n, 3);
    }

    #[test]
    fn view_sums_are_correct() {
        let mut ds = sample_dataset();
        let facet = sample_facet(AggOp::Sum);
        let mask = ViewMask::from_dims(&[1]); // by language
        materialize_view(&mut ds, &facet, mask).unwrap();
        // Query the view graph directly: french = 67 + 8 = 75.
        let graph_iri = sofos::view_graph("pop", mask.0);
        let q = format!(
            "SELECT ?s WHERE {{ GRAPH <{graph_iri}> {{ \
               ?obs <{dim}> \"french\" . ?obs <{sum}> ?s }} }}",
            dim = sofos::dim(1),
            sum = sofos::SUM,
        );
        let r = Evaluator::new(&ds).evaluate_str(&q).unwrap();
        assert_eq!(r.len(), 1);
        let v = r.rows[0][0].as_ref().unwrap();
        assert_eq!(v.as_literal().unwrap().numeric().unwrap().to_f64(), 75.0);
    }

    #[test]
    fn virtual_stats_match_actual_materialization() {
        let mut ds = sample_dataset();
        let facet = sample_facet(AggOp::Avg);
        for mask in [ViewMask::APEX, ViewMask::from_dims(&[0]), ViewMask::full(2)] {
            let virtual_stats = virtual_view_stats(&ds, &facet, mask).unwrap();
            let actual = materialize_view(&mut ds, &facet, mask).unwrap();
            assert_eq!(virtual_stats, actual.stats, "mask {mask}");
            drop_view(&mut ds, &facet, mask);
        }
    }

    #[test]
    fn drop_view_removes_graph() {
        let mut ds = sample_dataset();
        let facet = sample_facet(AggOp::Sum);
        let mask = ViewMask::full(2);
        materialize_view(&mut ds, &facet, mask).unwrap();
        assert!(drop_view(&mut ds, &facet, mask));
        assert!(!drop_view(&mut ds, &facet, mask), "second drop is a no-op");
        let name = ds
            .dict()
            .get_id(&Term::iri(sofos::view_graph("pop", mask.0)));
        assert!(name.is_none() || ds.graph(name).is_none());
    }

    #[test]
    fn materialize_views_batch() {
        let mut ds = sample_dataset();
        let facet = sample_facet(AggOp::Sum);
        let masks = [ViewMask::APEX, ViewMask::from_dims(&[0])];
        let views = materialize_views(&mut ds, &facet, &masks).unwrap();
        assert_eq!(views.len(), 2);
        assert_eq!(ds.graph_names().len(), 2);
    }

    #[test]
    fn node_count_deduplicates_shared_values() {
        let ds = sample_dataset();
        let facet = sample_facet(AggOp::Count);
        // Group by language: 3 languages; counts are 1, 1, 2 → values {1, 2}.
        let stats = virtual_view_stats(&ds, &facet, ViewMask::from_dims(&[1])).unwrap();
        assert_eq!(stats.rows, 3);
        // Nodes: 3 blanks + Observation + 3 language strings + 2 distinct counts.
        assert_eq!(stats.nodes, 3 + 1 + 3 + 2);
    }

    #[test]
    fn bytes_accounting_is_positive_and_monotone() {
        let ds = sample_dataset();
        let facet = sample_facet(AggOp::Sum);
        let apex = virtual_view_stats(&ds, &facet, ViewMask::APEX).unwrap();
        let base = virtual_view_stats(&ds, &facet, ViewMask::full(2)).unwrap();
        assert!(apex.bytes > 0);
        assert!(base.bytes > apex.bytes, "finer views cost more bytes");
    }

    #[test]
    fn final_components_table() {
        assert_eq!(final_agg_components(AggOp::Sum).0, sofos_cube::SUM_ALIAS);
        assert_eq!(
            final_agg_components(AggOp::Avg).1,
            Some(sofos_cube::COUNT_ALIAS)
        );
        assert_eq!(final_agg_components(AggOp::Min).1, None);
    }
}
