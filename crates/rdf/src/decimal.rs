//! Exact fixed-point arithmetic for `xsd:decimal` literals.
//!
//! SPARQL aggregate semantics over `xsd:decimal` must be exact: SOFOS
//! re-aggregates materialized partial sums, and a float-based decimal would
//! make "answer from view" and "answer from base graph" drift apart, breaking
//! the golden invariant tested throughout the workspace. [`Decimal`] stores
//! an `i128` unscaled value plus a power-of-ten scale, giving 38 significant
//! digits — far beyond any workload generated here.
//!
//! All arithmetic is *checked*: on overflow the operation returns `None` and
//! the SPARQL evaluator promotes the operands to `xsd:double`, mirroring the
//! XPath fallback behaviour.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// Maximum scale we keep after division; beyond this a value is truncated.
pub const DIV_SCALE: u32 = 18;

/// Largest scale accepted when parsing / rescaling. `i128` holds ~38 digits.
const MAX_SCALE: u32 = 30;

/// An exact decimal number: `unscaled × 10^(-scale)`.
///
/// Invariants (maintained by every constructor):
/// * `scale <= MAX_SCALE`;
/// * the representation is normalized — `unscaled` is not divisible by 10
///   unless `scale == 0`; zero is always `(0, 0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decimal {
    unscaled: i128,
    scale: u32,
}

/// `10^exp` as `i128`, or `None` if it overflows.
#[inline]
fn pow10(exp: u32) -> Option<i128> {
    10i128.checked_pow(exp)
}

impl Decimal {
    /// Zero.
    pub const ZERO: Decimal = Decimal {
        unscaled: 0,
        scale: 0,
    };
    /// One.
    pub const ONE: Decimal = Decimal {
        unscaled: 1,
        scale: 0,
    };

    /// Build from raw parts, normalizing. Returns `None` when `scale`
    /// exceeds the supported range.
    pub fn from_parts(unscaled: i128, scale: u32) -> Option<Decimal> {
        if scale > MAX_SCALE {
            return None;
        }
        Some(Decimal { unscaled, scale }.normalize())
    }

    /// The unscaled mantissa (after normalization).
    pub fn unscaled(&self) -> i128 {
        self.unscaled
    }

    /// The scale (number of fractional digits after normalization).
    pub fn scale(&self) -> u32 {
        self.scale
    }

    fn normalize(mut self) -> Decimal {
        if self.unscaled == 0 {
            return Decimal::ZERO;
        }
        while self.scale > 0 && self.unscaled % 10 == 0 {
            self.unscaled /= 10;
            self.scale -= 1;
        }
        self
    }

    /// Rescale so that both operands share a scale. Returns the common
    /// scale's pair of unscaled values, or `None` on overflow.
    fn align(&self, other: &Decimal) -> Option<(i128, i128, u32)> {
        match self.scale.cmp(&other.scale) {
            Ordering::Equal => Some((self.unscaled, other.unscaled, self.scale)),
            Ordering::Less => {
                let factor = pow10(other.scale - self.scale)?;
                let lhs = self.unscaled.checked_mul(factor)?;
                Some((lhs, other.unscaled, other.scale))
            }
            Ordering::Greater => {
                let factor = pow10(self.scale - other.scale)?;
                let rhs = other.unscaled.checked_mul(factor)?;
                Some((self.unscaled, rhs, self.scale))
            }
        }
    }

    /// Checked addition.
    pub fn checked_add(&self, other: &Decimal) -> Option<Decimal> {
        let (a, b, scale) = self.align(other)?;
        Decimal::from_parts(a.checked_add(b)?, scale)
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, other: &Decimal) -> Option<Decimal> {
        let (a, b, scale) = self.align(other)?;
        Decimal::from_parts(a.checked_sub(b)?, scale)
    }

    /// Checked multiplication.
    pub fn checked_mul(&self, other: &Decimal) -> Option<Decimal> {
        let unscaled = self.unscaled.checked_mul(other.unscaled)?;
        let scale = self.scale.checked_add(other.scale)?;
        if scale > MAX_SCALE {
            // Try to renormalize before giving up (e.g. 0.5 * 2).
            return Decimal { unscaled, scale }.reduce_to(MAX_SCALE);
        }
        Decimal::from_parts(unscaled, scale)
    }

    /// Checked division, truncating toward zero at [`DIV_SCALE`] fractional
    /// digits. Division by zero returns `None`.
    pub fn checked_div(&self, other: &Decimal) -> Option<Decimal> {
        if other.unscaled == 0 {
            return None;
        }
        // self / other = (a * 10^DIV_SCALE / b) * 10^-(DIV_SCALE + sa - sb)
        let shifted = self.unscaled.checked_mul(pow10(DIV_SCALE)?)?;
        let quotient = shifted / other.unscaled;
        let scale_signed = DIV_SCALE as i64 + self.scale as i64 - other.scale as i64;
        if scale_signed < 0 {
            let factor = pow10((-scale_signed) as u32)?;
            Decimal::from_parts(quotient.checked_mul(factor)?, 0)
        } else {
            Decimal::from_parts(quotient, scale_signed as u32)
        }
    }

    /// Negation (cannot overflow except at `i128::MIN`).
    pub fn checked_neg(&self) -> Option<Decimal> {
        Some(Decimal {
            unscaled: self.unscaled.checked_neg()?,
            scale: self.scale,
        })
    }

    /// Absolute value.
    pub fn checked_abs(&self) -> Option<Decimal> {
        Some(Decimal {
            unscaled: self.unscaled.checked_abs()?,
            scale: self.scale,
        })
    }

    /// True when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.unscaled == 0
    }

    /// Sign: -1, 0, or 1.
    pub fn signum(&self) -> i32 {
        self.unscaled.signum() as i32
    }

    /// Truncate excess fractional digits down to `target` scale.
    fn reduce_to(mut self, target: u32) -> Option<Decimal> {
        while self.scale > target {
            if self.unscaled % 10 != 0 {
                return None; // would lose precision
            }
            self.unscaled /= 10;
            self.scale -= 1;
        }
        Some(self.normalize())
    }

    /// Lossy conversion to `f64` (used when promoting to `xsd:double`).
    pub fn to_f64(&self) -> f64 {
        self.unscaled as f64 / 10f64.powi(self.scale as i32)
    }

    /// Exact conversion to `i64` when the value is integral and in range.
    pub fn to_i64(&self) -> Option<i64> {
        if self.scale != 0 {
            return None;
        }
        i64::try_from(self.unscaled).ok()
    }

    /// Round half-up to the nearest integer, returning a scale-0 decimal.
    pub fn round(&self) -> Decimal {
        if self.scale == 0 {
            return *self;
        }
        let factor = pow10(self.scale).expect("scale bounded by MAX_SCALE");
        let half = factor / 2;
        let adjusted = if self.unscaled >= 0 {
            self.unscaled + half
        } else {
            self.unscaled - half
        };
        Decimal {
            unscaled: adjusted / factor,
            scale: 0,
        }
    }

    /// Floor toward negative infinity, returning a scale-0 decimal.
    pub fn floor(&self) -> Decimal {
        if self.scale == 0 {
            return *self;
        }
        let factor = pow10(self.scale).expect("scale bounded by MAX_SCALE");
        let mut q = self.unscaled / factor;
        if self.unscaled < 0 && self.unscaled % factor != 0 {
            q -= 1;
        }
        Decimal {
            unscaled: q,
            scale: 0,
        }
    }

    /// Ceiling toward positive infinity, returning a scale-0 decimal.
    pub fn ceil(&self) -> Decimal {
        if self.scale == 0 {
            return *self;
        }
        let factor = pow10(self.scale).expect("scale bounded by MAX_SCALE");
        let mut q = self.unscaled / factor;
        if self.unscaled > 0 && self.unscaled % factor != 0 {
            q += 1;
        }
        Decimal {
            unscaled: q,
            scale: 0,
        }
    }
}

impl From<i64> for Decimal {
    fn from(v: i64) -> Self {
        Decimal {
            unscaled: v as i128,
            scale: 0,
        }
    }
}

impl From<i32> for Decimal {
    fn from(v: i32) -> Self {
        Decimal {
            unscaled: v as i128,
            scale: 0,
        }
    }
}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.align(other) {
            Some((a, b, _)) => a.cmp(&b),
            // Alignment can only overflow for astronomically different
            // magnitudes; compare signs then magnitudes via f64.
            None => match self.signum().cmp(&other.signum()) {
                Ordering::Equal => self
                    .to_f64()
                    .partial_cmp(&other.to_f64())
                    .unwrap_or(Ordering::Equal),
                ord => ord,
            },
        }
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.unscaled);
        }
        let digits = self.unscaled.unsigned_abs().to_string();
        let sign = if self.unscaled < 0 { "-" } else { "" };
        let scale = self.scale as usize;
        if digits.len() > scale {
            let (int, frac) = digits.split_at(digits.len() - scale);
            write!(f, "{sign}{int}.{frac}")
        } else {
            write!(f, "{sign}0.{digits:0>scale$}")
        }
    }
}

impl FromStr for Decimal {
    type Err = ();

    /// Parse `[+-]?digits[.digits]` (the `xsd:decimal` lexical space).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(());
        }
        let (sign, rest) = match s.as_bytes()[0] {
            b'+' => (1i128, &s[1..]),
            b'-' => (-1i128, &s[1..]),
            _ => (1i128, s),
        };
        if rest.is_empty() {
            return Err(());
        }
        let (int_part, frac_part) = match rest.split_once('.') {
            // "1." is not in the xsd:decimal lexical space.
            Some((_, "")) => return Err(()),
            Some((i, fr)) => (i, fr),
            None => (rest, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(());
        }
        if !int_part.bytes().all(|b| b.is_ascii_digit())
            || !frac_part.bytes().all(|b| b.is_ascii_digit())
        {
            return Err(());
        }
        if frac_part.len() as u32 > MAX_SCALE {
            return Err(());
        }
        let mut unscaled: i128 = 0;
        for b in int_part.bytes().chain(frac_part.bytes()) {
            unscaled = unscaled
                .checked_mul(10)
                .and_then(|v| v.checked_add((b - b'0') as i128))
                .ok_or(())?;
        }
        Decimal::from_parts(sign * unscaled, frac_part.len() as u32).ok_or(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(s: &str) -> Decimal {
        s.parse().unwrap_or_else(|_| panic!("bad decimal {s}"))
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0", "1", "-1", "2.75", "-2.5", "0.001", "12345.6789"] {
            assert_eq!(dec(s).to_string(), s);
        }
    }

    #[test]
    fn parse_normalizes_trailing_zeros() {
        assert_eq!(dec("1.50"), dec("1.5"));
        assert_eq!(dec("1.50").to_string(), "1.5");
        assert_eq!(dec("0.0"), Decimal::ZERO);
        assert_eq!(dec("0.0").to_string(), "0");
        assert_eq!(dec("+42"), Decimal::from(42i64));
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", ".", "-", "1.2.3", "abc", "1e5", "--1", "1.", "1. 2"] {
            assert!(s.parse::<Decimal>().is_err(), "accepted {s:?}");
        }
        // A lone ".5" and "5." are not in the xsd:decimal lexical space
        // variants we accept: ".5" parses (int part empty, frac "5").
        assert!(".5".parse::<Decimal>().is_ok());
    }

    #[test]
    fn addition_aligns_scales() {
        assert_eq!(dec("1.5").checked_add(&dec("2.25")).unwrap(), dec("3.75"));
        assert_eq!(dec("0.1").checked_add(&dec("0.2")).unwrap(), dec("0.3"));
        assert_eq!(dec("-1").checked_add(&dec("1")).unwrap(), Decimal::ZERO);
    }

    #[test]
    fn subtraction_and_negation() {
        assert_eq!(dec("5").checked_sub(&dec("7.5")).unwrap(), dec("-2.5"));
        assert_eq!(dec("-2.5").checked_neg().unwrap(), dec("2.5"));
        assert_eq!(dec("-2.5").checked_abs().unwrap(), dec("2.5"));
    }

    #[test]
    fn multiplication() {
        assert_eq!(dec("1.5").checked_mul(&dec("2")).unwrap(), dec("3"));
        assert_eq!(dec("0.5").checked_mul(&dec("0.5")).unwrap(), dec("0.25"));
        assert_eq!(dec("-3").checked_mul(&dec("2.5")).unwrap(), dec("-7.5"));
    }

    #[test]
    fn division_truncates_at_div_scale() {
        assert_eq!(dec("1").checked_div(&dec("4")).unwrap(), dec("0.25"));
        assert_eq!(dec("10").checked_div(&dec("4")).unwrap(), dec("2.5"));
        // 1/3 truncated to 18 digits.
        let third = dec("1").checked_div(&dec("3")).unwrap();
        assert_eq!(third.to_string(), "0.333333333333333333");
        assert!(dec("1").checked_div(&Decimal::ZERO).is_none());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(dec("1.5") < dec("1.51"));
        assert!(dec("-2") < dec("0.001"));
        assert!(dec("10") > dec("9.999999"));
        assert_eq!(dec("2.0").cmp(&dec("2")), Ordering::Equal);
    }

    #[test]
    fn rounding_modes() {
        assert_eq!(dec("2.5").round(), dec("3"));
        assert_eq!(dec("-2.5").round(), dec("-3"));
        assert_eq!(dec("2.4").round(), dec("2"));
        assert_eq!(dec("2.5").floor(), dec("2"));
        assert_eq!(dec("-2.5").floor(), dec("-3"));
        assert_eq!(dec("2.5").ceil(), dec("3"));
        assert_eq!(dec("-2.5").ceil(), dec("-2"));
        assert_eq!(dec("7").round(), dec("7"));
    }

    #[test]
    fn conversions() {
        assert_eq!(dec("42").to_i64(), Some(42));
        assert_eq!(dec("42.5").to_i64(), None);
        assert!((dec("2.75").to_f64() - 2.75).abs() < 1e-12);
        assert_eq!(Decimal::from(7i32), dec("7"));
    }

    #[test]
    fn overflow_is_reported_not_wrapped() {
        let huge = Decimal::from_parts(i128::MAX, 0).unwrap();
        assert!(huge.checked_add(&Decimal::ONE).is_none());
        assert!(huge.checked_mul(&dec("2")).is_none());
    }

    #[test]
    fn zero_has_canonical_form() {
        let z = dec("0.000");
        assert_eq!(z.scale(), 0);
        assert_eq!(z.unscaled(), 0);
        assert!(z.is_zero());
        assert_eq!(z.signum(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_decimal() -> impl Strategy<Value = Decimal> {
        (-1_000_000_000i64..1_000_000_000i64, 0u32..6)
            .prop_map(|(u, s)| Decimal::from_parts(u as i128, s).expect("in range"))
    }

    proptest! {
        #[test]
        fn display_parse_round_trip(d in small_decimal()) {
            let s = d.to_string();
            let back: Decimal = s.parse().expect("display must re-parse");
            prop_assert_eq!(d, back);
        }

        #[test]
        fn addition_commutes(a in small_decimal(), b in small_decimal()) {
            prop_assert_eq!(a.checked_add(&b), b.checked_add(&a));
        }

        #[test]
        fn add_then_sub_is_identity(a in small_decimal(), b in small_decimal()) {
            let sum = a.checked_add(&b).expect("small values don't overflow");
            prop_assert_eq!(sum.checked_sub(&b).unwrap(), a);
        }

        #[test]
        fn ordering_agrees_with_f64(a in small_decimal(), b in small_decimal()) {
            // f64 has 52 mantissa bits; our strategy stays well within them.
            let expect = a.to_f64().partial_cmp(&b.to_f64()).unwrap();
            prop_assert_eq!(a.cmp(&b), expect);
        }

        #[test]
        fn normalization_invariant(a in small_decimal(), b in small_decimal()) {
            for v in [a.checked_add(&b), a.checked_mul(&b)].into_iter().flatten() {
                prop_assert!(v.scale() == 0 || v.unscaled() % 10 != 0,
                    "not normalized: {:?}", v);
            }
        }

        #[test]
        fn floor_le_round_le_ceil(a in small_decimal()) {
            prop_assert!(a.floor() <= a.ceil());
            prop_assert!(a.floor() <= a.round());
            prop_assert!(a.round() <= a.ceil());
        }
    }
}
