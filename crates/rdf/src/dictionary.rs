//! Dictionary encoding: interning of [`Term`]s to dense [`TermId`]s.
//!
//! Every store and query-engine structure in SOFOS operates on 4-byte ids
//! instead of full terms; this module is the single source of truth for the
//! id ↔ term mapping. Ids are assigned densely in first-seen order, which
//! makes them usable directly as indices into side tables (statistics,
//! feature vectors for the learned cost model).

use crate::error::RdfError;
use crate::hash::FxHashMap;
use crate::term::Term;

/// A dense identifier for an interned [`Term`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only term dictionary.
///
/// Interning a term already present returns its existing id; terms are never
/// removed (views are dropped wholesale by discarding their graphs, not by
/// garbage-collecting terms — the same simplification production RDF stores
/// make for their dictionaries).
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    terms: Vec<Term>,
    index: FxHashMap<Term, TermId>,
    bytes: usize,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Intern a term, returning its id (existing or fresh).
    pub fn intern(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.index.get(term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("dictionary overflow: >4G terms"));
        self.bytes += term.estimated_bytes();
        self.terms.push(term.clone());
        self.index.insert(term.clone(), id);
        id
    }

    /// Intern an IRI given as a string.
    pub fn intern_iri(&mut self, iri: &str) -> TermId {
        self.intern(&Term::iri(iri))
    }

    /// Look up an already-interned term without inserting.
    pub fn get_id(&self, term: &Term) -> Option<TermId> {
        self.index.get(term).copied()
    }

    /// Resolve an id to its term.
    pub fn term(&self, id: TermId) -> Result<&Term, RdfError> {
        self.terms
            .get(id.index())
            .ok_or(RdfError::UnknownTermId(id.0))
    }

    /// Resolve an id, panicking on unknown ids (for internal invariant sites).
    pub fn term_unchecked(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Estimated heap bytes of all interned terms (dictionary side of the
    /// storage-amplification accounting).
    pub fn estimated_bytes(&self) -> usize {
        self.bytes
    }

    /// Iterate `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Literal;

    #[test]
    fn interning_is_idempotent() {
        let mut d = Dictionary::new();
        let a1 = d.intern(&Term::iri("http://e/a"));
        let b = d.intern(&Term::iri("http://e/b"));
        let a2 = d.intern(&Term::iri("http://e/a"));
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_first_seen() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern(&Term::iri("x")), TermId(0));
        assert_eq!(d.intern(&Term::iri("y")), TermId(1));
        assert_eq!(d.intern(&Term::iri("x")), TermId(0));
        assert_eq!(d.intern(&Term::blank("b")), TermId(2));
    }

    #[test]
    fn lookup_round_trips() {
        let mut d = Dictionary::new();
        let lit = Term::Literal(Literal::integer(42));
        let id = d.intern(&lit);
        assert_eq!(d.term(id).unwrap(), &lit);
        assert_eq!(d.get_id(&lit), Some(id));
        assert_eq!(d.get_id(&Term::iri("missing")), None);
        assert!(d.term(TermId(999)).is_err());
    }

    #[test]
    fn distinguishes_term_kinds_with_same_text() {
        let mut d = Dictionary::new();
        let iri = d.intern(&Term::iri("x"));
        let blank = d.intern(&Term::blank("x"));
        let lit = d.intern(&Term::literal_str("x"));
        assert_ne!(iri, blank);
        assert_ne!(blank, lit);
        assert_ne!(iri, lit);
    }

    #[test]
    fn byte_accounting_grows_monotonically() {
        let mut d = Dictionary::new();
        let before = d.estimated_bytes();
        d.intern(&Term::iri("http://example.org/some/long/iri"));
        assert!(d.estimated_bytes() > before);
        let mid = d.estimated_bytes();
        d.intern(&Term::iri("http://example.org/some/long/iri")); // duplicate
        assert_eq!(d.estimated_bytes(), mid, "duplicates don't grow the dict");
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut d = Dictionary::new();
        d.intern(&Term::iri("a"));
        d.intern(&Term::iri("b"));
        let pairs: Vec<(u32, String)> = d.iter().map(|(id, t)| (id.0, t.to_string())).collect();
        assert_eq!(pairs, vec![(0, "<a>".into()), (1, "<b>".into())]);
    }
}
