//! Error type shared by the RDF substrate.

use std::fmt;

/// Errors produced while constructing or parsing RDF data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// A syntax error in a serialized RDF document (N-Triples input).
    Syntax {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An IRI failed validation (empty, contains whitespace or angle brackets).
    InvalidIri(String),
    /// A blank-node label failed validation.
    InvalidBlankNode(String),
    /// A literal's lexical form is not valid for its datatype.
    InvalidLiteral {
        /// The lexical form that failed to parse.
        lexical: String,
        /// The datatype IRI it was checked against.
        datatype: String,
    },
    /// A term id was looked up that is not present in the dictionary.
    UnknownTermId(u32),
    /// An RDF position constraint was violated (e.g. a literal subject).
    InvalidPosition(&'static str),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Syntax { line, message } => {
                write!(f, "syntax error on line {line}: {message}")
            }
            RdfError::InvalidIri(iri) => write!(f, "invalid IRI: {iri:?}"),
            RdfError::InvalidBlankNode(label) => {
                write!(f, "invalid blank node label: {label:?}")
            }
            RdfError::InvalidLiteral { lexical, datatype } => {
                write!(f, "invalid literal {lexical:?} for datatype <{datatype}>")
            }
            RdfError::UnknownTermId(id) => write!(f, "unknown term id {id}"),
            RdfError::InvalidPosition(what) => {
                write!(f, "term not allowed in this triple position: {what}")
            }
        }
    }
}

impl std::error::Error for RdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = RdfError::Syntax {
            line: 3,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "syntax error on line 3: bad token");
        assert_eq!(
            RdfError::InvalidIri("a b".into()).to_string(),
            "invalid IRI: \"a b\""
        );
        assert_eq!(RdfError::UnknownTermId(7).to_string(), "unknown term id 7");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RdfError::InvalidPosition("literal subject"));
    }
}
