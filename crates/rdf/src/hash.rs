//! A fast, non-cryptographic hasher (FxHash family) plus collection aliases.
//!
//! The SOFOS store keys maps by dense integer ids and short strings in hot
//! paths (dictionary lookups, join bindings). The standard library's SipHash
//! is DoS-resistant but measurably slower for these keys; the classic
//! Firefox/rustc "Fx" multiply-xor hash is the conventional replacement in
//! database engines. It is implemented here in ~40 lines rather than pulling
//! in an external crate.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash algorithm (64-bit golden-ratio
/// derived, as used by rustc).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state. Create through [`FxBuildHasher`] /
/// [`BuildHasherDefault`]; not cryptographically secure.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the length so "a" and "a\0" differ.
            buf[7] = rem.len() as u8;
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the Fx hasher. Drop-in for `std::collections::HashMap`.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the Fx hasher. Drop-in for `std::collections::HashSet`.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hash a single `u64` with the Fx mix; handy for cheap fingerprints.
#[inline]
pub fn fx_hash_u64(value: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(value);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(hash_of(&12345u64), hash_of(&12345u64));
    }

    #[test]
    fn distinguishes_close_inputs() {
        assert_ne!(hash_of(&"hello"), hash_of(&"hellp"));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(fx_hash_u64(0), fx_hash_u64(1));
    }

    #[test]
    fn length_is_mixed_into_tail() {
        // Same prefix bytes, different lengths must differ.
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 3, 0][..]));
        assert_ne!(hash_of(&"a"), hash_of(&"a\0"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));

        let mut s: FxHashSet<String> = FxHashSet::default();
        assert!(s.insert("x".to_string()));
        assert!(!s.insert("x".to_string()));
    }

    #[test]
    fn empty_input_hashes_to_seed() {
        let h = FxHasher::default();
        assert_eq!(h.finish(), 0);
        // Writing an empty slice leaves the state unchanged.
        let mut h2 = FxHasher::default();
        h2.write(&[]);
        assert_eq!(h2.finish(), 0);
    }

    #[test]
    fn spread_over_small_integers_is_reasonable() {
        // Fx is weak by design but must not collapse small ints into few
        // buckets; check all values 0..1024 hash distinctly.
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..1024 {
            assert!(seen.insert(fx_hash_u64(i)), "collision at {i}");
        }
    }
}
