//! # sofos-rdf — RDF data model for the SOFOS view-selection framework
//!
//! This crate implements the RDF substrate that every other SOFOS crate
//! builds on. Following the paper's formalization (§3), a knowledge graph
//! `G` is a set of triples `(s, p, o) ∈ (I ∪ B) × I × (I ∪ B ∪ L)` where
//! `I` are IRIs, `B` are blank nodes and `L` are literals.
//!
//! Provided here:
//!
//! * [`term`] — [`Iri`], [`BlankNode`], [`Literal`] and the [`Term`] sum type;
//! * [`literal`] — typed literals with the XSD datatypes SOFOS needs
//!   (strings, booleans, integers, decimals, doubles, dateTimes);
//! * [`decimal`] — an exact fixed-point [`Decimal`] used for `xsd:decimal`
//!   arithmetic so aggregate re-computation is bit-stable;
//! * [`triple`] — term-level [`Triple`]s and a small deterministic [`Graph`]
//!   container used by parsers and tests (the indexed store lives in
//!   `sofos-store`);
//! * [`dictionary`] — interning of terms to dense [`TermId`]s, the basis of
//!   the dictionary-encoded store;
//! * [`ntriples`] — an N-Triples parser/serializer for data interchange;
//! * [`vocab`] — IRI constants (RDF/RDFS/XSD and the `sofos:` namespace used
//!   by materialized views);
//! * [`hash`] — a fast FxHash-style hasher plus `HashMap`/`HashSet` aliases
//!   (integer-keyed maps are pervasive in the store and the perf cost of
//!   SipHash is not justified; implemented in-tree to avoid a dependency).

pub mod decimal;
pub mod dictionary;
pub mod error;
pub mod hash;
pub mod literal;
pub mod ntriples;
pub mod term;
pub mod triple;
pub mod turtle;
pub mod vocab;

pub use decimal::Decimal;
pub use dictionary::{Dictionary, TermId};
pub use error::RdfError;
pub use hash::{FxHashMap, FxHashSet};
pub use literal::{Literal, LiteralKind, Numeric};
pub use ntriples::{parse_ntriples, write_ntriples};
pub use term::{BlankNode, Iri, Term};
pub use triple::{Graph, Triple};
pub use turtle::{parse_turtle, write_turtle};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RdfError>;
