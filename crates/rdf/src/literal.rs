//! Typed RDF literals and the numeric tower used by SPARQL evaluation.

use crate::decimal::Decimal;
use crate::term::Iri;
use crate::vocab::xsd;
use std::cmp::Ordering;
use std::fmt;

/// How a literal is typed.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LiteralKind {
    /// A plain literal; semantically identical to `xsd:string`.
    Plain,
    /// A language-tagged string (`"foo"@en`). The tag is stored lowercase.
    Lang(Box<str>),
    /// A literal with an explicit datatype IRI (`"5"^^xsd:integer`).
    Typed(Iri),
}

/// An RDF literal: a lexical form plus a [`LiteralKind`].
///
/// Equality and hashing are *term* equality (lexical + datatype), matching
/// RDF semantics: `"1"^^xsd:integer` and `"01"^^xsd:integer` are different
/// terms even though they compare numerically equal in SPARQL `FILTER`s.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    lexical: Box<str>,
    kind: LiteralKind,
}

/// A numeric literal value in the SPARQL promotion tower
/// (integer < decimal < double).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Numeric {
    /// `xsd:integer`.
    Integer(i64),
    /// `xsd:decimal` (exact).
    Decimal(Decimal),
    /// `xsd:double`.
    Double(f64),
}

impl Literal {
    /// A plain string literal.
    pub fn string(value: impl Into<String>) -> Literal {
        Literal {
            lexical: value.into().into_boxed_str(),
            kind: LiteralKind::Plain,
        }
    }

    /// A language-tagged string; the tag is normalized to lowercase.
    pub fn lang_string(value: impl Into<String>, lang: impl Into<String>) -> Literal {
        Literal {
            lexical: value.into().into_boxed_str(),
            kind: LiteralKind::Lang(lang.into().to_ascii_lowercase().into_boxed_str()),
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(value: i64) -> Literal {
        Literal {
            lexical: value.to_string().into_boxed_str(),
            kind: LiteralKind::Typed(Iri::new_unchecked(xsd::INTEGER)),
        }
    }

    /// An `xsd:decimal` literal in canonical form.
    pub fn decimal(value: Decimal) -> Literal {
        Literal {
            lexical: value.to_string().into_boxed_str(),
            kind: LiteralKind::Typed(Iri::new_unchecked(xsd::DECIMAL)),
        }
    }

    /// An `xsd:double` literal (canonical Rust float formatting).
    pub fn double(value: f64) -> Literal {
        Literal {
            lexical: value.to_string().into_boxed_str(),
            kind: LiteralKind::Typed(Iri::new_unchecked(xsd::DOUBLE)),
        }
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(value: bool) -> Literal {
        Literal {
            lexical: value.to_string().into_boxed_str(),
            kind: LiteralKind::Typed(Iri::new_unchecked(xsd::BOOLEAN)),
        }
    }

    /// An `xsd:gYear` literal, as used for the `year` dimension in facets.
    pub fn year(value: i32) -> Literal {
        Literal {
            lexical: value.to_string().into_boxed_str(),
            kind: LiteralKind::Typed(Iri::new_unchecked(xsd::G_YEAR)),
        }
    }

    /// An `xsd:dateTime` literal from components (no timezone). Lexical form
    /// `YYYY-MM-DDThh:mm:ss`, which orders correctly as a string.
    pub fn date_time(y: i32, mo: u32, d: u32, h: u32, mi: u32, s: u32) -> Literal {
        Literal {
            lexical: format!("{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}").into_boxed_str(),
            kind: LiteralKind::Typed(Iri::new_unchecked(xsd::DATE_TIME)),
        }
    }

    /// An arbitrary typed literal (no lexical validation; use the dedicated
    /// constructors when the datatype is known).
    pub fn typed(value: impl Into<String>, datatype: Iri) -> Literal {
        Literal {
            lexical: value.into().into_boxed_str(),
            kind: LiteralKind::Typed(datatype),
        }
    }

    /// The lexical form.
    pub fn lexical(&self) -> &str {
        &self.lexical
    }

    /// The literal kind.
    pub fn kind(&self) -> &LiteralKind {
        &self.kind
    }

    /// The language tag, if any.
    pub fn language(&self) -> Option<&str> {
        match &self.kind {
            LiteralKind::Lang(tag) => Some(tag),
            _ => None,
        }
    }

    /// The effective datatype IRI as a string (`xsd:string` for plain
    /// literals, `rdf:langString` for tagged ones).
    pub fn datatype_str(&self) -> &str {
        match &self.kind {
            LiteralKind::Plain => xsd::STRING,
            LiteralKind::Lang(_) => xsd::LANG_STRING,
            LiteralKind::Typed(iri) => iri.as_str(),
        }
    }

    /// Interpret the literal as a number, if its datatype is numeric and its
    /// lexical form parses. Integers out of `i64` range fall back to double.
    pub fn numeric(&self) -> Option<Numeric> {
        match self.datatype_str() {
            xsd::INTEGER | xsd::G_YEAR => match self.lexical.parse::<i64>() {
                Ok(v) => Some(Numeric::Integer(v)),
                Err(_) => self.lexical.parse::<f64>().ok().map(Numeric::Double),
            },
            xsd::DECIMAL => self.lexical.parse::<Decimal>().ok().map(Numeric::Decimal),
            xsd::DOUBLE => self.lexical.parse::<f64>().ok().map(Numeric::Double),
            _ => None,
        }
    }

    /// Interpret the literal as a boolean (`xsd:boolean` only).
    pub fn as_bool(&self) -> Option<bool> {
        if self.datatype_str() == xsd::BOOLEAN {
            match &*self.lexical {
                "true" | "1" => Some(true),
                "false" | "0" => Some(false),
                _ => None,
            }
        } else {
            None
        }
    }

    /// For `xsd:dateTime`/`xsd:gYear` literals: `(year, month, day)` parts
    /// (month/day are 0 for gYear).
    pub fn date_parts(&self) -> Option<(i32, u32, u32)> {
        match self.datatype_str() {
            xsd::G_YEAR => self.lexical.parse::<i32>().ok().map(|y| (y, 0, 0)),
            xsd::DATE_TIME => {
                let b = self.lexical.as_bytes();
                if b.len() < 10 || b[4] != b'-' || b[7] != b'-' {
                    return None;
                }
                let y = self.lexical.get(0..4)?.parse().ok()?;
                let m = self.lexical.get(5..7)?.parse().ok()?;
                let d = self.lexical.get(8..10)?.parse().ok()?;
                Some((y, m, d))
            }
            _ => None,
        }
    }

    /// Approximate heap footprint in bytes (lexical + datatype overhead).
    pub fn estimated_bytes(&self) -> usize {
        self.lexical.len()
            + match &self.kind {
                LiteralKind::Plain => 0,
                LiteralKind::Lang(tag) => tag.len(),
                // Datatype IRIs are drawn from a tiny set that a real store
                // would intern; charge a constant instead of the full IRI.
                LiteralKind::Typed(_) => 4,
            }
    }
}

impl fmt::Display for Literal {
    /// N-Triples-compatible rendering with escaping.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"")?;
        for c in self.lexical.chars() {
            match c {
                '"' => write!(f, "\\\"")?,
                '\\' => write!(f, "\\\\")?,
                '\n' => write!(f, "\\n")?,
                '\r' => write!(f, "\\r")?,
                '\t' => write!(f, "\\t")?,
                c => write!(f, "{c}")?,
            }
        }
        write!(f, "\"")?;
        match &self.kind {
            LiteralKind::Plain => Ok(()),
            LiteralKind::Lang(tag) => write!(f, "@{tag}"),
            LiteralKind::Typed(dt) => write!(f, "^^{dt}"),
        }
    }
}

// The arithmetic entry points are deliberately associated functions taking
// both operands (`Numeric::add(a, b)`), not `std::ops` impls: SPARQL
// promotion and overflow fallback don't fit operator semantics.
#[allow(clippy::should_implement_trait)]
impl Numeric {
    /// Lossy view as `f64` (exact for integers within 2^53).
    pub fn to_f64(&self) -> f64 {
        match self {
            Numeric::Integer(v) => *v as f64,
            Numeric::Decimal(d) => d.to_f64(),
            Numeric::Double(v) => *v,
        }
    }

    /// Promote a pair to their least common type in the tower.
    fn promote(a: Numeric, b: Numeric) -> (Numeric, Numeric) {
        use Numeric::*;
        match (a, b) {
            (Integer(_), Integer(_)) | (Decimal(_), Decimal(_)) | (Double(_), Double(_)) => (a, b),
            (Integer(x), Decimal(_)) => (Decimal(crate::Decimal::from(x)), b),
            (Decimal(_), Integer(y)) => (a, Decimal(crate::Decimal::from(y))),
            (Double(_), _) => (a, Double(b.to_f64())),
            (_, Double(_)) => (Double(a.to_f64()), b),
        }
    }

    /// Addition with SPARQL promotion; decimal overflow falls back to double.
    pub fn add(a: Numeric, b: Numeric) -> Numeric {
        use Numeric::*;
        match Numeric::promote(a, b) {
            (Integer(x), Integer(y)) => match x.checked_add(y) {
                Some(v) => Integer(v),
                None => Double(x as f64 + y as f64),
            },
            (Decimal(x), Decimal(y)) => match x.checked_add(&y) {
                Some(v) => Decimal(v),
                None => Double(x.to_f64() + y.to_f64()),
            },
            (x, y) => Double(x.to_f64() + y.to_f64()),
        }
    }

    /// Subtraction with promotion.
    pub fn sub(a: Numeric, b: Numeric) -> Numeric {
        Numeric::add(a, Numeric::neg(b))
    }

    /// Multiplication with promotion.
    pub fn mul(a: Numeric, b: Numeric) -> Numeric {
        use Numeric::*;
        match Numeric::promote(a, b) {
            (Integer(x), Integer(y)) => match x.checked_mul(y) {
                Some(v) => Integer(v),
                None => Double(x as f64 * y as f64),
            },
            (Decimal(x), Decimal(y)) => match x.checked_mul(&y) {
                Some(v) => Decimal(v),
                None => Double(x.to_f64() * y.to_f64()),
            },
            (x, y) => Double(x.to_f64() * y.to_f64()),
        }
    }

    /// Division. Integer ÷ integer yields decimal (SPARQL `op:numeric-divide`);
    /// division by zero yields `None` (the evaluator maps it to an error).
    pub fn div(a: Numeric, b: Numeric) -> Option<Numeric> {
        use Numeric::*;
        match Numeric::promote(a, b) {
            (Integer(x), Integer(y)) => crate::Decimal::from(x)
                .checked_div(&crate::Decimal::from(y))
                .map(Decimal),
            (Decimal(x), Decimal(y)) => match x.checked_div(&y) {
                Some(v) => Some(Decimal(v)),
                None if y.is_zero() => None,
                None => Some(Double(x.to_f64() / y.to_f64())),
            },
            (x, y) => {
                let d = y.to_f64();
                if d == 0.0 {
                    None
                } else {
                    Some(Double(x.to_f64() / d))
                }
            }
        }
    }

    /// Unary negation.
    pub fn neg(a: Numeric) -> Numeric {
        use Numeric::*;
        match a {
            Integer(x) => x.checked_neg().map(Integer).unwrap_or(Double(-(x as f64))),
            Decimal(x) => x.checked_neg().map(Decimal).unwrap_or(Double(-x.to_f64())),
            Double(x) => Double(-x),
        }
    }

    /// SPARQL value comparison across the numeric tower.
    pub fn compare(a: Numeric, b: Numeric) -> Option<Ordering> {
        use Numeric::*;
        match Numeric::promote(a, b) {
            (Integer(x), Integer(y)) => Some(x.cmp(&y)),
            (Decimal(x), Decimal(y)) => Some(x.cmp(&y)),
            (x, y) => x.to_f64().partial_cmp(&y.to_f64()),
        }
    }

    /// Render as a canonical literal of the matching datatype.
    pub fn to_literal(&self) -> Literal {
        match self {
            Numeric::Integer(v) => Literal::integer(*v),
            Numeric::Decimal(d) => Literal::decimal(*d),
            Numeric::Double(v) => Literal::double(*v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_datatypes() {
        assert_eq!(Literal::string("x").datatype_str(), xsd::STRING);
        assert_eq!(Literal::integer(3).datatype_str(), xsd::INTEGER);
        assert_eq!(Literal::decimal(Decimal::ONE).datatype_str(), xsd::DECIMAL);
        assert_eq!(Literal::double(1.5).datatype_str(), xsd::DOUBLE);
        assert_eq!(Literal::boolean(true).datatype_str(), xsd::BOOLEAN);
        assert_eq!(Literal::year(2019).datatype_str(), xsd::G_YEAR);
        assert_eq!(
            Literal::lang_string("France", "FR").datatype_str(),
            xsd::LANG_STRING
        );
    }

    #[test]
    fn lang_tags_are_lowercased() {
        assert_eq!(Literal::lang_string("x", "EN-us").language(), Some("en-us"));
    }

    #[test]
    fn numeric_parsing() {
        assert_eq!(Literal::integer(42).numeric(), Some(Numeric::Integer(42)));
        assert_eq!(Literal::year(2019).numeric(), Some(Numeric::Integer(2019)));
        assert!(matches!(
            Literal::decimal("2.5".parse().unwrap()).numeric(),
            Some(Numeric::Decimal(_))
        ));
        assert_eq!(Literal::string("42").numeric(), None);
        // Malformed integer lexical falls through to None via double parse.
        let bad = Literal::typed("not-a-number", Iri::new_unchecked(xsd::INTEGER));
        assert_eq!(bad.numeric(), None);
    }

    #[test]
    fn booleans() {
        assert_eq!(Literal::boolean(true).as_bool(), Some(true));
        assert_eq!(Literal::boolean(false).as_bool(), Some(false));
        assert_eq!(
            Literal::typed("1", Iri::new_unchecked(xsd::BOOLEAN)).as_bool(),
            Some(true)
        );
        assert_eq!(Literal::string("true").as_bool(), None);
    }

    #[test]
    fn date_parts_extraction() {
        let dt = Literal::date_time(2019, 6, 30, 12, 0, 0);
        assert_eq!(dt.date_parts(), Some((2019, 6, 30)));
        assert_eq!(Literal::year(2020).date_parts(), Some((2020, 0, 0)));
        assert_eq!(Literal::string("2019").date_parts(), None);
    }

    #[test]
    fn date_time_orders_lexicographically() {
        let a = Literal::date_time(2019, 6, 30, 12, 0, 0);
        let b = Literal::date_time(2020, 1, 1, 0, 0, 0);
        assert!(a.lexical() < b.lexical());
    }

    #[test]
    fn display_escapes() {
        let l = Literal::string("a\"b\\c\nd");
        assert_eq!(l.to_string(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Literal::lang_string("hi", "en").to_string(), "\"hi\"@en");
        assert!(Literal::integer(5)
            .to_string()
            .starts_with("\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>"));
    }

    #[test]
    fn term_equality_is_lexical() {
        let a = Literal::typed("1", Iri::new_unchecked(xsd::INTEGER));
        let b = Literal::typed("01", Iri::new_unchecked(xsd::INTEGER));
        assert_ne!(a, b, "different lexical forms are different terms");
        // ... but compare numerically equal:
        assert_eq!(
            Numeric::compare(a.numeric().unwrap(), b.numeric().unwrap()),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn numeric_promotion_ladder() {
        use Numeric::*;
        // int + int stays int
        assert_eq!(Numeric::add(Integer(1), Integer(2)), Integer(3));
        // int + decimal → decimal
        assert!(matches!(
            Numeric::add(Integer(1), Decimal("0.5".parse().unwrap())),
            Decimal(_)
        ));
        // anything + double → double
        assert!(matches!(Numeric::add(Integer(1), Double(0.5)), Double(_)));
        // int overflow promotes to double rather than wrapping
        assert!(matches!(
            Numeric::add(Integer(i64::MAX), Integer(1)),
            Double(_)
        ));
    }

    #[test]
    fn division_semantics() {
        use Numeric::*;
        // SPARQL: integer / integer = decimal
        match Numeric::div(Integer(1), Integer(4)).unwrap() {
            Decimal(d) => assert_eq!(d.to_string(), "0.25"),
            other => panic!("expected decimal, got {other:?}"),
        }
        assert!(Numeric::div(Integer(1), Integer(0)).is_none());
        assert!(Numeric::div(Double(1.0), Double(0.0)).is_none());
    }

    #[test]
    fn comparisons_across_types() {
        use Numeric::*;
        assert_eq!(
            Numeric::compare(Integer(2), Double(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Numeric::compare(Decimal("1.5".parse().unwrap()), Integer(2)),
            Some(Ordering::Less)
        );
    }
}
