//! N-Triples parsing and serialization (the interchange format SOFOS uses
//! for loading fixtures and exporting generated datasets).
//!
//! Supported per the W3C N-Triples grammar: IRIs in angle brackets, `_:`
//! blank nodes, literals with `\"` escapes, language tags and `^^` datatypes,
//! `#` comment lines, and blank lines. Unicode escapes `\uXXXX`/`\UXXXXXXXX`
//! are decoded.

use crate::error::RdfError;
use crate::literal::Literal;
use crate::term::{BlankNode, Iri, Term};
use crate::triple::{Graph, Triple};
use std::fmt::Write as _;

/// Parse an N-Triples document into a [`Graph`].
pub fn parse_ntriples(input: &str) -> Result<Graph, RdfError> {
    let mut graph = Graph::new();
    for (lineno, raw_line) in input.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let triple = parse_line(line, lineno + 1)?;
        graph.insert(triple);
    }
    Ok(graph)
}

/// Serialize a graph as N-Triples (sorted, one triple per line).
pub fn write_ntriples(graph: &Graph) -> String {
    let mut out = String::new();
    for triple in graph.iter() {
        // Triple's Display is already N-Triples-compatible.
        let _ = writeln!(out, "{triple}");
    }
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: impl Into<String>) -> RdfError {
        RdfError::Syntax {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), RdfError> {
        match self.bump() {
            Some(b) if b == byte => Ok(()),
            other => Err(self.err(format!(
                "expected {:?}, found {:?}",
                byte as char,
                other.map(|b| b as char)
            ))),
        }
    }

    fn str_slice(&self, start: usize, end: usize) -> Result<&'a str, RdfError> {
        std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| self.err("invalid UTF-8 inside token"))
    }
}

fn parse_line(line: &str, lineno: usize) -> Result<Triple, RdfError> {
    let mut cur = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
        line: lineno,
    };

    cur.skip_ws();
    let subject = parse_term(&mut cur)?;
    cur.skip_ws();
    let predicate = parse_term(&mut cur)?;
    cur.skip_ws();
    let object = parse_term(&mut cur)?;
    cur.skip_ws();
    cur.expect(b'.')?;
    cur.skip_ws();
    if let Some(rest) = cur.peek() {
        if rest != b'#' {
            return Err(cur.err("trailing content after '.'"));
        }
    }
    Triple::new(subject, predicate, object)
}

fn parse_term(cur: &mut Cursor<'_>) -> Result<Term, RdfError> {
    match cur.peek() {
        Some(b'<') => parse_iri(cur).map(Term::Iri),
        Some(b'_') => parse_blank(cur).map(Term::Blank),
        Some(b'"') => parse_literal(cur).map(Term::Literal),
        other => Err(cur.err(format!(
            "expected term, found {:?}",
            other.map(|b| b as char)
        ))),
    }
}

fn parse_iri(cur: &mut Cursor<'_>) -> Result<Iri, RdfError> {
    cur.expect(b'<')?;
    let start = cur.pos;
    loop {
        match cur.bump() {
            Some(b'>') => break,
            Some(_) => {}
            None => return Err(cur.err("unterminated IRI")),
        }
    }
    let text = cur.str_slice(start, cur.pos - 1)?;
    Iri::new(text)
}

fn parse_blank(cur: &mut Cursor<'_>) -> Result<BlankNode, RdfError> {
    cur.expect(b'_')?;
    cur.expect(b':')?;
    let start = cur.pos;
    while matches!(cur.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
    {
        cur.pos += 1;
    }
    let label = cur.str_slice(start, cur.pos)?;
    BlankNode::new(label)
}

fn parse_literal(cur: &mut Cursor<'_>) -> Result<Literal, RdfError> {
    cur.expect(b'"')?;
    let mut value = String::new();
    loop {
        match cur.bump() {
            Some(b'"') => break,
            Some(b'\\') => match cur.bump() {
                Some(b'"') => value.push('"'),
                Some(b'\\') => value.push('\\'),
                Some(b'n') => value.push('\n'),
                Some(b'r') => value.push('\r'),
                Some(b't') => value.push('\t'),
                Some(b'u') => value.push(parse_unicode_escape(cur, 4)?),
                Some(b'U') => value.push(parse_unicode_escape(cur, 8)?),
                other => {
                    return Err(cur.err(format!("invalid escape \\{:?}", other.map(|b| b as char))))
                }
            },
            Some(b) if b < 0x80 => value.push(b as char),
            Some(b) => {
                // Re-assemble the multi-byte UTF-8 sequence.
                let len = utf8_len(b);
                let start = cur.pos - 1;
                for _ in 1..len {
                    cur.bump()
                        .ok_or_else(|| cur.err("truncated UTF-8 sequence"))?;
                }
                value.push_str(cur.str_slice(start, cur.pos)?);
            }
            None => return Err(cur.err("unterminated literal")),
        }
    }
    match cur.peek() {
        Some(b'@') => {
            cur.pos += 1;
            let start = cur.pos;
            while matches!(cur.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'-') {
                cur.pos += 1;
            }
            if cur.pos == start {
                return Err(cur.err("empty language tag"));
            }
            let tag = cur.str_slice(start, cur.pos)?;
            Ok(Literal::lang_string(value, tag))
        }
        Some(b'^') => {
            cur.expect(b'^')?;
            cur.expect(b'^')?;
            let datatype = parse_iri(cur)?;
            Ok(Literal::typed(value, datatype))
        }
        _ => Ok(Literal::string(value)),
    }
}

fn parse_unicode_escape(cur: &mut Cursor<'_>, digits: usize) -> Result<char, RdfError> {
    let mut code: u32 = 0;
    for _ in 0..digits {
        let b = cur
            .bump()
            .ok_or_else(|| cur.err("truncated unicode escape"))?;
        let d = (b as char)
            .to_digit(16)
            .ok_or_else(|| cur.err("non-hex digit in unicode escape"))?;
        code = code * 16 + d;
    }
    char::from_u32(code).ok_or_else(|| cur.err("invalid unicode code point"))
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::xsd;

    #[test]
    fn parses_basic_document() {
        let doc = "\
# a comment
<http://e/s> <http://e/p> <http://e/o> .

<http://e/s> <http://e/p> \"plain\" .
<http://e/s> <http://e/p> \"tagged\"@en-US .
<http://e/s> <http://e/p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b1 <http://e/p> _:b2 .
";
        let g = parse_ntriples(doc).expect("valid document");
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn round_trips_through_serializer() {
        let doc = "\
<http://e/s> <http://e/p> \"a\\\"b\\nc\" .
<http://e/s> <http://e/p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:x <http://e/p> \"v\"@fr .
";
        let g1 = parse_ntriples(doc).unwrap();
        let out = write_ntriples(&g1);
        let g2 = parse_ntriples(&out).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn unicode_escapes_decode() {
        let doc = "<http://e/s> <http://e/p> \"caf\\u00e9\" .";
        let g = parse_ntriples(doc).unwrap();
        let t = g.iter().next().unwrap();
        assert_eq!(t.object.as_literal().unwrap().lexical(), "café");
    }

    #[test]
    fn raw_utf8_in_literals_survives() {
        let doc = "<http://e/s> <http://e/p> \"naïve 日本\" .";
        let g = parse_ntriples(doc).unwrap();
        let t = g.iter().next().unwrap();
        assert_eq!(t.object.as_literal().unwrap().lexical(), "naïve 日本");
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let doc = "<http://e/s> <http://e/p> <http://e/o> .\n<http://e/s> <bad";
        match parse_ntriples(doc) {
            Err(RdfError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_literal_subject() {
        let doc = "\"lit\" <http://e/p> <http://e/o> .";
        assert!(matches!(
            parse_ntriples(doc),
            Err(RdfError::InvalidPosition(_))
        ));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let doc = "<http://e/s> <http://e/p> <http://e/o> . extra";
        assert!(parse_ntriples(doc).is_err());
    }

    #[test]
    fn allows_trailing_comment() {
        let doc = "<http://e/s> <http://e/p> <http://e/o> . # note";
        assert_eq!(parse_ntriples(doc).unwrap().len(), 1);
    }

    #[test]
    fn typed_literal_datatype_preserved() {
        let doc = "<http://e/s> <http://e/p> \"2.5\"^^<http://www.w3.org/2001/XMLSchema#decimal> .";
        let g = parse_ntriples(doc).unwrap();
        let lit = g
            .iter()
            .next()
            .unwrap()
            .object
            .as_literal()
            .unwrap()
            .clone();
        assert_eq!(lit.datatype_str(), xsd::DECIMAL);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_iri() -> impl Strategy<Value = Term> {
        "[a-z]{1,8}(/[a-z0-9]{1,8}){0,2}"
            .prop_map(|path| Term::iri(format!("http://example.org/{path}")))
    }

    fn arb_literal() -> impl Strategy<Value = Term> {
        prop_oneof![
            // Includes characters that require escaping.
            "[ -~]{0,20}".prop_map(Term::literal_str),
            any::<i64>().prop_map(Term::literal_int),
            ("[ -~]{0,10}", "[a-z]{2}")
                .prop_map(|(v, l)| Term::Literal(Literal::lang_string(v, l))),
        ]
    }

    fn arb_triple() -> impl Strategy<Value = Triple> {
        (arb_iri(), arb_iri(), prop_oneof![arb_iri(), arb_literal()])
            .prop_map(|(s, p, o)| Triple::new_unchecked(s, p, o))
    }

    proptest! {
        #[test]
        fn serialize_parse_round_trip(triples in proptest::collection::vec(arb_triple(), 0..30)) {
            let g1: Graph = triples.into_iter().collect();
            let text = write_ntriples(&g1);
            let g2 = parse_ntriples(&text).expect("serializer output must parse");
            prop_assert_eq!(g1, g2);
        }
    }
}
