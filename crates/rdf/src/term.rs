//! RDF terms: IRIs, blank nodes, and the [`Term`] sum type.

use crate::error::RdfError;
use crate::literal::Literal;
use std::fmt;

/// An IRI (we accept any non-empty string free of whitespace and angle
/// brackets; full RFC 3987 validation is out of scope for a benchmarking
/// framework and would reject nothing the generators produce).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(Box<str>);

impl Iri {
    /// Create a validated IRI.
    pub fn new(iri: impl Into<String>) -> Result<Iri, RdfError> {
        let iri = iri.into();
        if iri.is_empty()
            || iri
                .chars()
                .any(|c| c.is_whitespace() || c == '<' || c == '>' || c == '"')
        {
            return Err(RdfError::InvalidIri(iri));
        }
        Ok(Iri(iri.into_boxed_str()))
    }

    /// Create an IRI without validation. Intended for compile-time constants
    /// in [`crate::vocab`] and generator-produced IRIs that are valid by
    /// construction.
    pub fn new_unchecked(iri: impl Into<String>) -> Iri {
        Iri(iri.into().into_boxed_str())
    }

    /// The IRI text, without angle brackets.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl AsRef<str> for Iri {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A blank node, identified by its label (scoped to a document/graph).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlankNode(Box<str>);

impl BlankNode {
    /// Create a validated blank node; labels must be non-empty alphanumerics
    /// (plus `_`, `-`, `.` in non-leading positions).
    pub fn new(label: impl Into<String>) -> Result<BlankNode, RdfError> {
        let label = label.into();
        let mut chars = label.chars();
        let valid_head = chars
            .next()
            .map(|c| c.is_ascii_alphanumeric() || c == '_')
            .unwrap_or(false);
        let valid_tail =
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.');
        if !valid_head || !valid_tail {
            return Err(RdfError::InvalidBlankNode(label));
        }
        Ok(BlankNode(label.into_boxed_str()))
    }

    /// Create a blank node without validation (generator-internal labels).
    pub fn new_unchecked(label: impl Into<String>) -> BlankNode {
        BlankNode(label.into().into_boxed_str())
    }

    /// The label, without the `_:` prefix.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

/// An RDF term: the union `I ∪ B ∪ L` from the paper's §3.
///
/// `Ord` is derived so that graphs and query results can be sorted into a
/// deterministic order (IRIs < blank nodes < literals, then lexicographic) —
/// determinism is load-bearing for the reproducibility of every experiment.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI node (entities and predicates).
    Iri(Iri),
    /// A blank node (used by SOFOS to encode aggregate observations).
    Blank(BlankNode),
    /// A literal value (only allowed in object position).
    Literal(Literal),
}

impl Term {
    /// Convenience: IRI term from a string, unchecked.
    pub fn iri(iri: impl Into<String>) -> Term {
        Term::Iri(Iri::new_unchecked(iri))
    }

    /// Convenience: blank term from a label, unchecked.
    pub fn blank(label: impl Into<String>) -> Term {
        Term::Blank(BlankNode::new_unchecked(label))
    }

    /// Convenience: plain string literal term.
    pub fn literal_str(value: impl Into<String>) -> Term {
        Term::Literal(Literal::string(value))
    }

    /// Convenience: `xsd:integer` literal term.
    pub fn literal_int(value: i64) -> Term {
        Term::Literal(Literal::integer(value))
    }

    /// True for [`Term::Iri`].
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// True for [`Term::Blank`].
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }

    /// True for [`Term::Literal`].
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// The IRI if this term is one.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(iri) => Some(iri),
            _ => None,
        }
    }

    /// The literal if this term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(lit) => Some(lit),
            _ => None,
        }
    }

    /// Approximate heap footprint in bytes, used by the storage-amplification
    /// accounting (§4 "space amplification").
    pub fn estimated_bytes(&self) -> usize {
        match self {
            Term::Iri(iri) => iri.as_str().len(),
            Term::Blank(b) => b.as_str().len(),
            Term::Literal(lit) => lit.estimated_bytes(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => iri.fmt(f),
            Term::Blank(b) => b.fmt(f),
            Term::Literal(lit) => lit.fmt(f),
        }
    }
}

impl From<Iri> for Term {
    fn from(iri: Iri) -> Term {
        Term::Iri(iri)
    }
}

impl From<BlankNode> for Term {
    fn from(b: BlankNode) -> Term {
        Term::Blank(b)
    }
}

impl From<Literal> for Term {
    fn from(lit: Literal) -> Term {
        Term::Literal(lit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_validation() {
        assert!(Iri::new("http://example.org/a").is_ok());
        assert!(Iri::new("").is_err());
        assert!(Iri::new("http://a b").is_err());
        assert!(Iri::new("http://a<b").is_err());
        assert!(Iri::new("urn:x\"y").is_err());
    }

    #[test]
    fn blank_validation() {
        assert!(BlankNode::new("b0").is_ok());
        assert!(BlankNode::new("_x").is_ok());
        assert!(BlankNode::new("a-b.c").is_ok());
        assert!(BlankNode::new("").is_err());
        assert!(BlankNode::new("-x").is_err());
        assert!(BlankNode::new("a b").is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("http://e/x").to_string(), "<http://e/x>");
        assert_eq!(Term::blank("b1").to_string(), "_:b1");
        assert_eq!(Term::literal_str("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn kind_predicates_and_accessors() {
        let i = Term::iri("http://e/x");
        let b = Term::blank("z");
        let l = Term::literal_int(5);
        assert!(i.is_iri() && !i.is_blank() && !i.is_literal());
        assert!(b.is_blank());
        assert!(l.is_literal());
        assert_eq!(i.as_iri().unwrap().as_str(), "http://e/x");
        assert!(l.as_iri().is_none());
        assert!(l.as_literal().is_some());
    }

    #[test]
    fn ordering_groups_kinds() {
        let i = Term::iri("z");
        let b = Term::blank("a");
        let l = Term::literal_str("a");
        assert!(i < b, "IRIs sort before blanks");
        assert!(b < l, "blanks sort before literals");
    }

    #[test]
    fn byte_estimates_are_positive() {
        assert!(Term::iri("http://e/x").estimated_bytes() > 0);
        assert!(Term::literal_int(1).estimated_bytes() > 0);
    }
}
