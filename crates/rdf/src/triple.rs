//! Term-level triples and a small deterministic graph container.
//!
//! [`Graph`] is the interchange representation used by parsers, generators
//! and tests; the query-servicing indexed store lives in `sofos-store`.

use crate::error::RdfError;
use crate::term::Term;
use std::collections::BTreeSet;
use std::fmt;

/// An RDF triple over concrete [`Term`]s.
///
/// Position constraints (§3: `(s,p,o) ∈ (I∪B) × I × (I∪B∪L)`) are enforced
/// by [`Triple::new`]; the `new_unchecked` escape hatch exists for code that
/// guarantees them structurally.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject: an IRI or blank node.
    pub subject: Term,
    /// Predicate: always an IRI.
    pub predicate: Term,
    /// Object: any term.
    pub object: Term,
}

impl Triple {
    /// Create a triple, enforcing RDF position constraints.
    pub fn new(subject: Term, predicate: Term, object: Term) -> Result<Triple, RdfError> {
        if subject.is_literal() {
            return Err(RdfError::InvalidPosition("literal in subject position"));
        }
        if !predicate.is_iri() {
            return Err(RdfError::InvalidPosition("non-IRI in predicate position"));
        }
        Ok(Triple {
            subject,
            predicate,
            object,
        })
    }

    /// Create a triple without checking positions.
    pub fn new_unchecked(subject: Term, predicate: Term, object: Term) -> Triple {
        Triple {
            subject,
            predicate,
            object,
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// A set of triples with deterministic (sorted) iteration order.
///
/// Backing storage is a `BTreeSet`, so insertion is `O(log n)` and iteration
/// yields triples in `Ord` order — which keeps serialized output, test
/// fixtures and generator snapshots stable across runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    triples: BTreeSet<Triple>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Insert a triple; returns `true` if it was not already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        self.triples.insert(triple)
    }

    /// Insert from raw terms, enforcing position constraints.
    pub fn insert_terms(
        &mut self,
        subject: Term,
        predicate: Term,
        object: Term,
    ) -> Result<bool, RdfError> {
        Ok(self.insert(Triple::new(subject, predicate, object)?))
    }

    /// Membership test.
    pub fn contains(&self, triple: &Triple) -> bool {
        self.triples.contains(triple)
    }

    /// Remove a triple; returns `true` if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        self.triples.remove(triple)
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when the graph has no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Iterate in deterministic sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.triples.iter()
    }

    /// Merge another graph into this one.
    pub fn extend(&mut self, other: Graph) {
        self.triples.extend(other.triples);
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Graph {
        Graph {
            triples: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Graph {
    type Item = Triple;
    type IntoIter = std::collections::btree_set::IntoIter<Triple>;

    fn into_iter(self) -> Self::IntoIter {
        self.triples.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new_unchecked(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn position_constraints() {
        assert!(Triple::new(Term::literal_int(1), Term::iri("p"), Term::iri("o")).is_err());
        assert!(Triple::new(Term::iri("s"), Term::blank("p"), Term::iri("o")).is_err());
        assert!(Triple::new(Term::iri("s"), Term::literal_str("p"), Term::iri("o")).is_err());
        assert!(Triple::new(Term::blank("s"), Term::iri("p"), Term::literal_int(1)).is_ok());
    }

    #[test]
    fn graph_set_semantics() {
        let mut g = Graph::new();
        assert!(g.insert(t("s", "p", "o")));
        assert!(!g.insert(t("s", "p", "o")), "duplicate insert is a no-op");
        assert_eq!(g.len(), 1);
        assert!(g.contains(&t("s", "p", "o")));
        assert!(g.remove(&t("s", "p", "o")));
        assert!(g.is_empty());
    }

    #[test]
    fn iteration_is_sorted_and_deterministic() {
        let mut g = Graph::new();
        g.insert(t("b", "p", "o"));
        g.insert(t("a", "p", "o"));
        g.insert(t("c", "p", "o"));
        let subjects: Vec<String> = g
            .iter()
            .map(|tr| tr.subject.as_iri().unwrap().as_str().to_string())
            .collect();
        assert_eq!(subjects, ["a", "b", "c"]);
    }

    #[test]
    fn extend_merges() {
        let mut g1: Graph = [t("a", "p", "o")].into_iter().collect();
        let g2: Graph = [t("b", "p", "o"), t("a", "p", "o")].into_iter().collect();
        g1.extend(g2);
        assert_eq!(g1.len(), 2);
    }

    #[test]
    fn display_is_ntriples_shaped() {
        assert_eq!(t("s", "p", "o").to_string(), "<s> <p> <o> .");
    }
}
